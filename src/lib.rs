//! # ompx-suite — the umbrella crate of the ompx-rs reproduction
//!
//! Re-exports every workspace crate so the examples under `examples/` and
//! the cross-crate integration tests under `tests/` see one coherent
//! surface. The crates, bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | [`ompx_sim`] | the GPU: functional SIMT simulator + analytical timing model |
//! | [`ompx_klang`] | CUDA/HIP-like native kernel languages + toolchain codegen models + vendor BLAS |
//! | [`ompx_devicert`] | LLVM OpenMP device runtime model (generic/SPMD modes, globalization) |
//! | [`ompx_hostrt`] | LLVM OpenMP host runtime (target regions, mapping, tasks, interop, allocators) |
//! | [`ompx`] | **the paper's contribution**: `ompx_bare`, multi-dim geometry, device/host APIs, `depend(interopobj:)`, vendor-library wrapper |
//! | [`ompx_hecbench`] | the six evaluation applications in four program versions each |
//!
//! Start from the [README](https://example.org/ompx-rs) and DESIGN.md; the
//! benchmark harness lives in the `ompx-bench` crate (`figures` and
//! `hecbench` binaries).

pub use ompx;
pub use ompx_devicert;
pub use ompx_hecbench;
pub use ompx_hostrt;
pub use ompx_klang;
pub use ompx_sim;

/// One-stop import for programs written against the extension surface.
pub mod prelude {
    pub use ompx::prelude::*;
    pub use ompx_sim::prelude::*;
}
