//! The extended `depend` clause: `depend(interopobj: obj)` (§3.5).
//!
//! OpenMP's `depend` clause resolves dependences by the *location* of the
//! list item, never its semantics, so a stream handle in a `depend` clause
//! would just be another address. The paper introduces a new dependence
//! type, `interopobj`, whose semantics are: *dispatch the associated
//! construct into the stream held by the interop object*. Figure 5:
//!
//! ```c
//! omp_interop_t obj = omp_interop_none;
//! #pragma omp interop init(targetsync: obj)
//! #pragma omp target teams ompx_bare nowait depend(interopobj: obj)
//! { ... }
//! #pragma omp taskwait depend(interopobj: obj)   // stream synchronize
//! ```
//!
//! Rendered here: [`launch_nowait_interopobj`] enqueues a prepared bare
//! region into the object's stream, and [`taskwait_interopobj`] is the
//! stream synchronization.

use crate::bare::PreparedBare;
use ompx_hostrt::InteropObj;
use ompx_sim::span::{self, SpanCategory};
use ompx_sim::stream::Event;

/// `#pragma omp target teams ompx_bare nowait depend(interopobj: obj)`:
/// dispatch the kernel into the stream associated with `obj`. Returns an
/// event completing when the kernel has executed (useful for tests; the
/// paper's idiom is [`taskwait_interopobj`]).
///
/// When a profiler span log is installed, the submission is recorded on
/// the host track with a flow arrow to the kernel's span on the stream's
/// track — the `nowait` dependence made visible.
pub fn launch_nowait_interopobj(prepared: &PreparedBare, obj: &InteropObj) -> Event {
    let p = prepared.clone();
    let stream = obj.stream().clone();
    let flow = span::active().map(|log| {
        log.host_op_flow(
            &format!("nowait depend(interopobj) {}", prepared.name()),
            SpanCategory::Task,
            0.0,
            0,
        )
    });
    obj.enqueue(move || {
        if let Ok(r) = p.execute_silent() {
            stream.add_modeled_span(p.name(), SpanCategory::Kernel, r.modeled.seconds, 0, flow);
        }
    });
    obj.record_event()
}

/// `#pragma omp taskwait depend(interopobj: obj)` — synchronize with the
/// object's stream.
pub fn taskwait_interopobj(obj: &InteropObj) {
    obj.synchronize();
    if let Some(log) = span::active() {
        log.host_op("taskwait depend(interopobj)", SpanCategory::Sync, 0.0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bare::BareTarget;
    use ompx_hostrt::{KnownIssues, OpenMp};
    use ompx_klang::toolchain::Toolchain;
    use ompx_sim::device::{Device, DeviceProfile};

    fn omp() -> OpenMp {
        OpenMp::with_device(
            Device::new(DeviceProfile::test_small()),
            Toolchain::OmpxPrototype,
            KnownIssues::new(),
        )
    }

    #[test]
    fn figure5_idiom_end_to_end() {
        let omp = omp();
        let obj = InteropObj::init_targetsync(&omp);
        let n = 128usize;
        let buf = omp.device().alloc::<f32>(n);

        // Two kernels into the same stream: the second reads what the
        // first wrote — stream ordering is the only thing sequencing them.
        let k1 = BareTarget::new(&omp, "stage1").num_teams([2u32]).thread_limit([64u32]).prepare({
            let buf = buf.clone();
            move |tc| {
                let i = tc.global_thread_id_x();
                if i < n {
                    tc.write(&buf, i, i as f32);
                }
            }
        });
        let k2 = BareTarget::new(&omp, "stage2").num_teams([2u32]).thread_limit([64u32]).prepare({
            let buf = buf.clone();
            move |tc| {
                let i = tc.global_thread_id_x();
                if i < n {
                    let v = tc.read(&buf, i);
                    tc.write(&buf, i, v * 2.0);
                }
            }
        });

        launch_nowait_interopobj(&k1, &obj);
        launch_nowait_interopobj(&k2, &obj);
        taskwait_interopobj(&obj);

        let got = buf.to_vec();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
        // The stream accumulated both kernels' modeled time.
        assert!(obj.modeled_busy_seconds() > 0.0);
    }

    #[test]
    fn two_interop_objects_are_independent_streams() {
        let omp = omp();
        let a = InteropObj::init_targetsync(&omp);
        let b = InteropObj::init_targetsync(&omp);
        let buf = omp.device().alloc::<u32>(2);

        let ka = BareTarget::new(&omp, "ka").num_teams([1u32]).thread_limit([1u32]).prepare({
            let buf = buf.clone();
            move |tc| {
                tc.atomic_add(&buf, 0, 1);
            }
        });
        let kb = BareTarget::new(&omp, "kb").num_teams([1u32]).thread_limit([1u32]).prepare({
            let buf = buf.clone();
            move |tc| {
                tc.atomic_add(&buf, 1, 1);
            }
        });
        for _ in 0..10 {
            launch_nowait_interopobj(&ka, &a);
            launch_nowait_interopobj(&kb, &b);
        }
        // Waiting on `a` says nothing about `b` — but after both waits all
        // twenty kernels have run.
        taskwait_interopobj(&a);
        taskwait_interopobj(&b);
        assert_eq!(buf.to_vec(), vec![10, 10]);
    }
}
