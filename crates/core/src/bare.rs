//! The `ompx_bare` clause (§3.1) with multi-dimensional geometry (§3.2).
//!
//! `#pragma omp target teams ompx_bare num_teams(gx, gy, gz)
//! thread_limit(bx, by, bz)` launches the region in "bare metal" mode:
//!
//! * the front end generates **no device-runtime initialization** — the
//!   region starts with every thread of every team active, exactly like a
//!   CUDA `__global__` kernel;
//! * region-local variables are **not globalized** (plain Rust locals in
//!   the body closure — registers/stack, uncounted);
//! * team-shared variables come from `groupprivate(team:)`, surfaced here
//!   as [`BareTarget::shared_array`] slots;
//! * `num_teams`/`thread_limit` accept dimension lists; dimensions beyond
//!   the device's capability (three) are disregarded, per the paper.
//!
//! Launch cost is [`ExecMode::Bare`]: just the device's base latency — the
//! whole point of the extension.

use ompx_devicert::mode::ExecMode;
use ompx_hostrt::target::{host_model_seconds, LaunchPlan, TargetResult};
use ompx_hostrt::{OmpxError, OpenMp};
use ompx_sim::counters::StatsSnapshot;
use ompx_sim::dim::{Dim3, LaunchConfig};
use ompx_sim::error::SimResult;
use ompx_sim::exec::{Kernel, KernelFlags};
use ompx_sim::mem::DeviceScalar;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::timing::{model_kernel, CodegenInfo, ModeledTime};

/// Number of geometry dimensions a device supports; list entries beyond
/// this are disregarded (§3.2).
pub const DEVICE_MAX_DIMS: usize = 3;

fn dims_from_list(list: &[u32]) -> Dim3 {
    // "While we do not impose a dimensionality constraint at the OpenMP
    // level, any dimensions exceeding a device's capability will be
    // disregarded." — entries past DEVICE_MAX_DIMS are dropped; absent or
    // zero entries default to 1 (dim3 constructor semantics).
    let mut d = [1u32; DEVICE_MAX_DIMS];
    for (slot, &v) in d.iter_mut().zip(list.iter()) {
        *slot = v.max(1);
    }
    Dim3::new(d[0], d[1], d[2])
}

/// Builder for a bare target region.
pub struct BareTarget {
    omp: OpenMp,
    name: String,
    num_teams: Dim3,
    thread_limit: Dim3,
    cfg_shared: LaunchConfig,
    flags: KernelFlags,
}

impl BareTarget {
    /// Start building `#pragma omp target teams ompx_bare` for kernel
    /// `name` on runtime `omp`.
    pub fn new(omp: &OpenMp, name: &str) -> Self {
        BareTarget {
            omp: omp.clone(),
            name: name.to_string(),
            num_teams: Dim3::x(1),
            thread_limit: Dim3::x(128),
            cfg_shared: LaunchConfig::new(1u32, 1u32),
            flags: KernelFlags::default(),
        }
    }

    /// `num_teams(list…)` — grid size, multi-dimensional (§3.2). Extra
    /// dimensions beyond the device capability are disregarded.
    pub fn num_teams(mut self, list: impl AsRef<[u32]>) -> Self {
        self.num_teams = dims_from_list(list.as_ref());
        self
    }

    /// `thread_limit(list…)` — block size, multi-dimensional (§3.2).
    pub fn thread_limit(mut self, list: impl AsRef<[u32]>) -> Self {
        self.thread_limit = dims_from_list(list.as_ref());
        self
    }

    /// `#pragma omp groupprivate(team: var)` — declare a team-shared array
    /// of `len` elements of `T`; returns the slot id for
    /// [`ThreadCtx::shared`].
    pub fn shared_array<T: DeviceScalar>(&mut self, len: usize) -> usize {
        self.cfg_shared.shared_array::<T>(len)
    }

    /// Declare that the kernel uses block-wide barriers
    /// (`ompx_sync_thread_block`).
    pub fn uses_block_sync(mut self) -> Self {
        self.flags.uses_block_sync = true;
        self
    }

    /// Declare that the kernel uses warp-level primitives
    /// (`ompx_sync_warp`, `ompx_shfl_sync`, …).
    pub fn uses_warp_ops(mut self) -> Self {
        self.flags.uses_warp_ops = true;
        self
    }

    /// The launch geometry after dimension handling.
    pub fn geometry(&self) -> (Dim3, Dim3) {
        (self.num_teams, self.thread_limit)
    }

    fn launch_config(&self) -> LaunchConfig {
        let mut cfg = LaunchConfig::new(self.num_teams, self.thread_limit);
        cfg.shared_slots = self.cfg_shared.shared_slots.clone();
        cfg.dynamic_shared_bytes = self.cfg_shared.dynamic_shared_bytes;
        cfg
    }

    /// Build the bare kernel without running it (stream/nowait paths).
    pub fn prepare(
        self,
        body: impl Fn(&mut ThreadCtx<'_>) + Send + Sync + 'static,
    ) -> PreparedBare {
        let kernel = Kernel::with_flags(self.name.clone(), self.flags, body);
        let cfg = self.launch_config();
        PreparedBare { omp: self.omp, name: self.name, kernel, cfg }
    }

    /// Launch synchronously (the `target` construct's default semantics:
    /// "OpenMP ensures that the program progresses only after all
    /// operations associated with the target region are complete").
    pub fn launch(
        self,
        body: impl Fn(&mut ThreadCtx<'_>) + Send + Sync + 'static,
    ) -> SimResult<TargetResult> {
        self.prepare(body).execute()
    }
}

/// A built bare kernel, reusable and stream-dispatchable.
#[derive(Clone)]
pub struct PreparedBare {
    pub(crate) omp: OpenMp,
    name: String,
    pub(crate) kernel: Kernel,
    pub(crate) cfg: LaunchConfig,
}

impl PreparedBare {
    /// Execute synchronously; functional stats + modeled time.
    ///
    /// Infallible wrapper over [`PreparedBare::try_execute`]: the
    /// historical `SimResult` signature is preserved for existing callers.
    pub fn execute(&self) -> SimResult<TargetResult> {
        self.try_execute().map_err(OmpxError::into_sim)
    }

    /// Execute synchronously with the typed host-runtime error. Injected
    /// transient faults are retried under the device's retry policy; a
    /// lost device re-dispatches the region through the host-fallback
    /// path (a bare region is still an OpenMP `target` region, so host
    /// execution remains legal — only the modeled cost changes).
    pub fn try_execute(&self) -> Result<TargetResult, OmpxError> {
        let r = self.try_execute_silent()?;
        // One kernel bar on the profiler's host track (synchronous target
        // semantics occupy the submitting thread for the modeled time).
        if let Some(log) = ompx_sim::span::active() {
            log.host_op(&self.name, ompx_sim::span::SpanCategory::Kernel, r.modeled.seconds, 0);
        }
        Ok(r)
    }

    /// Execute without host-track span emission: the stream/nowait paths
    /// run this from a stream worker and record a stream span instead.
    pub(crate) fn execute_silent(&self) -> SimResult<TargetResult> {
        self.try_execute_silent().map_err(OmpxError::into_sim)
    }

    fn try_execute_silent(&self) -> Result<TargetResult, OmpxError> {
        let device = self.omp.device();
        let policy = device.retry_policy();
        match ompx_sim::fault::run_with_retry(device, &policy, &self.name, || {
            device.launch(&self.kernel, self.cfg.clone())
        }) {
            Ok(stats) => {
                let r = self.model(&stats);
                device.trace().attribute_model(&self.name, r.modeled.seconds);
                Ok(r)
            }
            // Device loss (or a persistent launch fault): degrade to the
            // host rather than fail. Most launch faults fire before any
            // kernel side effects; a watchdog timeout leaves a committed
            // partial block prefix, which the fallback erases by restoring
            // the device's pre-launch checkpoint before re-dispatching.
            Err(e) if e.is_injected() => self.execute_host_fallback(&e),
            Err(e) if e.is_transient() => Err(OmpxError::RetriesExhausted {
                op: self.name.clone(),
                attempts: policy.max_attempts,
                last: e,
            }),
            Err(e) => Err(OmpxError::Device(e)),
        }
    }

    /// Re-dispatch the bare region on the host after a non-recoverable
    /// injected fault: the lowered kernel is reused functionally
    /// (simulated device memory is host-backed, so results are
    /// bit-identical by construction), charged at a serial host core.
    fn execute_host_fallback(
        &self,
        cause: &ompx_sim::error::SimError,
    ) -> Result<TargetResult, OmpxError> {
        let device = self.omp.device();
        if let Some(f) = device.faults() {
            f.note_fallback(&self.name);
        }
        // A watchdog timeout committed a partial block prefix; restore the
        // pre-launch checkpoint so the host re-dispatch computes from clean
        // state. No-op for side-effect-free faults.
        device.restore_checkpoint(&self.name);
        let stats =
            device.launch_unchecked(&self.kernel, self.cfg.clone()).map_err(OmpxError::Device)?;
        let seconds = host_model_seconds(&stats);
        if let Some(log) = ompx_sim::span::active() {
            // Emitted after the re-dispatch so the fallback bar spans its
            // modeled host duration instead of rendering zero-width.
            log.host_op(
                &format!("fallback {} ({cause})", self.name),
                ompx_sim::span::SpanCategory::Fallback,
                seconds,
                0,
            );
        }
        let plan = LaunchPlan {
            mode: ExecMode::Host,
            teams: 1,
            threads: 1,
            heap_to_shared: false,
            invalid_result: false,
        };
        let modeled = ModeledTime { seconds, ..Default::default() };
        Ok(TargetResult { stats, modeled, plan })
    }

    /// Model a (possibly workload-scaled) snapshot for this bare kernel.
    pub fn model(&self, stats: &StatsSnapshot) -> TargetResult {
        TargetResult { stats: *stats, modeled: self.modeled_time(stats), plan: self.plan() }
    }

    fn modeled_time(&self, stats: &StatsSnapshot) -> ModeledTime {
        let cg = self.omp.codegen().lookup_vendor(
            &self.name,
            self.omp.device().profile().vendor,
            self.omp.toolchain(),
            CodegenInfo::default(),
        );
        model_kernel(
            self.omp.device().profile(),
            self.cfg.threads_per_block() as u32,
            stats.blocks_executed.max(self.cfg.num_blocks() as u64),
            self.cfg.shared_bytes_per_block(),
            stats,
            &cg,
            &ExecMode::Bare.overheads(),
        )
    }

    /// The plan a bare launch always uses.
    pub fn plan(&self) -> LaunchPlan {
        LaunchPlan {
            mode: ExecMode::Bare,
            teams: self.cfg.num_blocks() as u32,
            threads: self.cfg.threads_per_block() as u32,
            heap_to_shared: false,
            invalid_result: false,
        }
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_klang::toolchain::Toolchain;
    use ompx_sim::device::{Device, DeviceProfile};

    fn omp() -> OpenMp {
        OpenMp::with_device(
            Device::new(DeviceProfile::test_small()),
            Toolchain::OmpxPrototype,
            ompx_hostrt::KnownIssues::new(),
        )
    }

    #[test]
    fn bare_launch_is_simt() {
        let omp = omp();
        let n = 200usize;
        let out = omp.device().alloc::<u32>(256);
        let r = BareTarget::new(&omp, "simt")
            .num_teams([2u32])
            .thread_limit([128u32])
            .launch({
                let out = out.clone();
                move |tc| {
                    // All threads in all teams are active — Figure 4.
                    let i = tc.global_thread_id_x();
                    if i < n {
                        tc.write(&out, i, i as u32);
                    }
                }
            })
            .unwrap();
        assert_eq!(r.plan.mode, ExecMode::Bare);
        assert_eq!(r.stats.threads_executed, 256);
        assert_eq!(out.to_vec()[199], 199);
        // Bare launches carry no mode overheads.
        assert_eq!(r.modeled.t_mode, 0.0);
    }

    #[test]
    fn multidim_geometry_and_disregarded_dimensions() {
        let omp = omp();
        let t = BareTarget::new(&omp, "dims")
            .num_teams([4u32, 2, 1, 99, 7]) // 4th/5th dims disregarded
            .thread_limit([8u32, 4]);
        let (grid, block) = t.geometry();
        assert_eq!(grid, Dim3::new(4, 2, 1));
        assert_eq!(block, Dim3::new(8, 4, 1));

        let seen = omp.device().alloc::<u32>(grid.count() * block.count());
        t.launch({
            let seen = seen.clone();
            move |tc| {
                tc.atomic_add(&seen, tc.global_rank(), 1);
            }
        })
        .unwrap();
        assert!(seen.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn groupprivate_shared_arrays_work() {
        let omp = omp();
        let tpb = 16usize;
        let out = omp.device().alloc::<u32>(2 * tpb);
        let mut t = BareTarget::new(&omp, "gp")
            .num_teams([2u32])
            .thread_limit([tpb as u32])
            .uses_block_sync();
        let slot = t.shared_array::<u32>(tpb);
        t.launch({
            let out = out.clone();
            move |tc| {
                let tile = tc.shared::<u32>(slot);
                let tid = tc.thread_rank();
                tc.swrite(&tile, tid, (tc.block_rank() * 100 + tid) as u32);
                tc.sync_threads();
                let v = tc.sread(&tile, (tid + 1) % tpb);
                tc.write(&out, tc.global_rank(), v);
            }
        })
        .unwrap();
        let got = out.to_vec();
        assert_eq!(got[0], 1);
        assert_eq!(got[tpb - 1], 0);
        assert_eq!(got[tpb], 101);
    }

    #[test]
    fn bare_beats_spmd_beats_generic_for_the_same_work() {
        // The paper's core performance claim, as a mechanical consequence
        // of the mode overheads: same loop, three modes, ordered times.
        let omp = omp();
        let n = 4096usize;
        let src = omp.device().alloc_from(&vec![1.0f32; n]);
        let dst = omp.device().alloc::<f32>(n);

        let bare = BareTarget::new(&omp, "triplet")
            .num_teams([(n / 64) as u32])
            .thread_limit([64u32])
            .launch({
                let (src, dst) = (src.clone(), dst.clone());
                move |tc| {
                    let i = tc.global_thread_id_x();
                    if i < n {
                        let v = tc.read(&src, i);
                        tc.flops(1);
                        tc.write(&dst, i, v + 1.0);
                    }
                }
            })
            .unwrap();

        let spmd = omp
            .target("triplet")
            .num_teams((n / 64) as u32)
            .thread_limit(64)
            .run_distribute_parallel_for(n, {
                let (src, dst) = (src.clone(), dst.clone());
                move |tc, i, _s| {
                    let v = tc.read(&src, i);
                    tc.flops(1);
                    tc.write(&dst, i, v + 1.0);
                }
            })
            .unwrap();

        omp.quirks().set(
            "triplet_gen",
            ompx_hostrt::QuirkSet { force_generic: true, ..Default::default() },
        );
        let generic = omp
            .target("triplet_gen")
            .num_teams((n / 64) as u32)
            .thread_limit(64)
            .run_distribute_parallel_for(n, {
                let (src, dst) = (src.clone(), dst.clone());
                move |tc, i, _s| {
                    let v = tc.read(&src, i);
                    tc.flops(1);
                    tc.write(&dst, i, v + 1.0);
                }
            })
            .unwrap();

        assert!(bare.modeled.seconds < spmd.modeled.seconds);
        assert!(spmd.modeled.seconds < generic.modeled.seconds);
        assert_eq!(dst.to_vec(), vec![2.0f32; n]);
    }

    #[test]
    fn racecheck_catches_missing_groupprivate_barrier() {
        use ompx_sim::san::{DiagKind, SanState, ToolMask};
        let omp = omp();
        let san = SanState::new(ToolMask::RACECHECK);
        omp.device().attach_sanitizer(std::sync::Arc::clone(&san));
        let tpb = 8usize;
        let mut t = BareTarget::new(&omp, "racy")
            .num_teams([1u32])
            .thread_limit([tpb as u32])
            .uses_block_sync();
        let slot = t.shared_array::<u32>(tpb);
        t.launch(move |tc| {
            let tile = tc.shared::<u32>(slot);
            let t = tc.thread_rank();
            tc.swrite(&tile, t, t as u32);
            // Missing ompx_sync_thread_block() here!
            let _ = tc.sread(&tile, (t + 1) % tpb);
        })
        .unwrap();
        omp.device().detach_sanitizer();
        let diags = san.drain_diagnostics();
        assert!(diags.iter().any(|d| d.kind == DiagKind::SharedRace), "{diags:?}");
    }

    #[test]
    fn prepared_bare_is_reusable() {
        let omp = omp();
        let acc = omp.device().alloc::<u32>(1);
        let p = BareTarget::new(&omp, "reuse").num_teams([2u32]).thread_limit([8u32]).prepare({
            let acc = acc.clone();
            move |tc| {
                tc.atomic_add(&acc, 0, tc.global_rank() as u32 + 1);
            }
        });
        let per_launch: u32 = (1..=16).sum();
        p.execute().unwrap();
        p.execute().unwrap();
        assert_eq!(acc.get(0), 2 * per_launch);
    }
}
