//! # ompx — OpenMP kernel language extensions (the paper's contribution)
//!
//! This crate is the Rust rendering of the extensions proposed in
//! *"OpenMP Kernel Language Extensions for Performance Portable GPU
//! Codes"* (Tian, Scogland, Chapman, Doerfert — SC-W 2023), built on the
//! modeled LLVM OpenMP stack (`ompx-hostrt` + `ompx-devicert`) and the GPU
//! simulator (`ompx-sim`):
//!
//! | Paper section | Extension | Here |
//! |---|---|---|
//! | §3.1 | `ompx_bare` clause: bare-metal target regions with no device runtime and no globalization | [`bare::BareTarget`] |
//! | §3.2 | multi-dimensional `num_teams` / `thread_limit` | [`bare::BareTarget::num_teams`] accepts 1-, 2-, 3-D (and longer — extra dimensions are disregarded, as specified) |
//! | §3.3 | device APIs: thread indexing, block/warp sync, warp primitives | [`device_api`] (C-style `ompx_*` functions and the idiomatic [`device_api::Dim`]-based forms) |
//! | §3.4 | host APIs (`ompx_malloc`, …) | [`host_api`] |
//! | §3.5 | `depend(interopobj: obj)` dependence type | [`interop_depend`] |
//! | §3.6 | wrapper layer over vendor libraries | [`blas`] |
//!
//! ## The porting story (Figure 1 → Figure 4)
//!
//! A CUDA kernel ports to a bare OpenMP target region by text replacement:
//!
//! ```
//! use ompx::prelude::*;
//!
//! let omp = ompx::runtime_nvidia();              // prototype toolchain
//! let n = 1000usize;
//! let a = ompx::host_api::ompx_malloc_from(&omp, &vec![2.0f32; n]);
//! let b = ompx::host_api::ompx_malloc::<f32>(&omp, n);
//!
//! let bsize = 128u32;
//! let gsize = (n as u32).div_ceil(bsize);
//! // #pragma omp target teams ompx_bare num_teams(gsize) thread_limit(bsize)
//! let r = BareTarget::new(&omp, "vscale")
//!     .num_teams([gsize])
//!     .thread_limit([bsize])
//!     .launch({
//!         let (a, b) = (a.clone(), b.clone());
//!         move |tc| {
//!             let i = ompx_block_id_x(tc) * ompx_block_dim_x(tc) + ompx_thread_id_x(tc);
//!             if i < n {
//!                 let v = tc.read(&a, i);
//!                 tc.flops(1);
//!                 tc.write(&b, i, 2.0 * v);
//!             }
//!         }
//!     })
//!     .unwrap();
//! assert_eq!(b.to_vec(), vec![4.0f32; n]);
//! assert!(r.modeled.seconds > 0.0);
//! ```

pub mod bare;
pub mod blas;
pub mod device_api;
pub mod host_api;
pub mod interop_depend;

pub use bare::BareTarget;
pub use ompx_hostrt::{InteropObj, OmpxError, OpenMp};

use ompx_klang::toolchain::Toolchain;
use ompx_sim::device::{Device, DeviceProfile};

/// The runtime of an `ompx`-compiled program on the paper's NVIDIA system:
/// A100 + the LLVM 18 prototype toolchain, no `omp`-mode quirks (bare
/// regions bypass the runtime paths the quirks live in).
pub fn runtime_nvidia() -> OpenMp {
    OpenMp::with_device(
        Device::new(DeviceProfile::a100()),
        Toolchain::OmpxPrototype,
        ompx_hostrt::KnownIssues::new(),
    )
}

/// The runtime of an `ompx`-compiled program on the paper's AMD system.
pub fn runtime_amd() -> OpenMp {
    OpenMp::with_device(
        Device::new(DeviceProfile::mi250()),
        Toolchain::OmpxPrototype,
        ompx_hostrt::KnownIssues::new(),
    )
}

/// An `ompx` runtime on an explicit device.
pub fn runtime_on(device: Device) -> OpenMp {
    OpenMp::with_device(device, Toolchain::OmpxPrototype, ompx_hostrt::KnownIssues::new())
}

/// Convenient glob import mirroring `#include <ompx.h>` + `using namespace
/// ompx`.
pub mod prelude {
    pub use crate::bare::BareTarget;
    pub use crate::device_api::*;
    pub use crate::host_api::*;
    pub use crate::interop_depend::*;
    pub use ompx_hostrt::{InteropObj, OmpxError, OpenMp};
    pub use ompx_sim::fault::{FaultKind, FaultPlan, FaultSite, RetryPolicy};
    pub use ompx_sim::thread::ThreadCtx;
}
