//! Device APIs (§3.3): thread indexing, synchronization, warp primitives.
//!
//! The paper provides two API surfaces over the same functionality,
//! following the device-runtime design of Tian et al. (IWOMP'21):
//!
//! * **C APIs** prefixed `ompx_` — `ompx_thread_id_x()`,
//!   `ompx_sync_thread_block()`, `ompx_shfl_sync()`, … rendered here as
//!   free functions over the thread context (the context argument plays
//!   the role the implicit GPU thread state plays in C);
//! * **C++ APIs** in the `ompx` namespace — `ompx::thread_id(ompx::DIM_X)`,
//!   rendered as the [`Dim`]-parameterised functions.
//!
//! Both forward to the same [`ThreadCtx`] machinery that the CUDA/HIP
//! facades use, which is the reproduction's statement of the paper's
//! point: these APIs *are* the kernel-language primitives, only portable.

use ompx_sim::mem::DeviceScalar;
use ompx_sim::thread::ThreadCtx;

/// Geometry dimension selector (the C++ API's `ompx::DIM_X/Y/Z`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    X,
    Y,
    Z,
}

// ---- C-style thread indexing (§3.3.1) -----------------------------------

/// `ompx_thread_id_x()` — `threadIdx.x`.
#[inline]
pub fn ompx_thread_id_x(tc: &ThreadCtx<'_>) -> usize {
    tc.thread_id_x()
}
/// `ompx_thread_id_y()` — `threadIdx.y`.
#[inline]
pub fn ompx_thread_id_y(tc: &ThreadCtx<'_>) -> usize {
    tc.thread_id_y()
}
/// `ompx_thread_id_z()` — `threadIdx.z`.
#[inline]
pub fn ompx_thread_id_z(tc: &ThreadCtx<'_>) -> usize {
    tc.thread_id_z()
}
/// `ompx_block_id_x()` — `blockIdx.x`.
#[inline]
pub fn ompx_block_id_x(tc: &ThreadCtx<'_>) -> usize {
    tc.block_id_x()
}
/// `ompx_block_id_y()` — `blockIdx.y`.
#[inline]
pub fn ompx_block_id_y(tc: &ThreadCtx<'_>) -> usize {
    tc.block_id_y()
}
/// `ompx_block_id_z()` — `blockIdx.z`.
#[inline]
pub fn ompx_block_id_z(tc: &ThreadCtx<'_>) -> usize {
    tc.block_id_z()
}
/// `ompx_block_dim_x()` — `blockDim.x`.
#[inline]
pub fn ompx_block_dim_x(tc: &ThreadCtx<'_>) -> usize {
    tc.block_dim_x()
}
/// `ompx_block_dim_y()` — `blockDim.y`.
#[inline]
pub fn ompx_block_dim_y(tc: &ThreadCtx<'_>) -> usize {
    tc.block_dim_y()
}
/// `ompx_block_dim_z()` — `blockDim.z`.
#[inline]
pub fn ompx_block_dim_z(tc: &ThreadCtx<'_>) -> usize {
    tc.block_dim_z()
}
/// `ompx_grid_dim_x()` — `gridDim.x`.
#[inline]
pub fn ompx_grid_dim_x(tc: &ThreadCtx<'_>) -> usize {
    tc.grid_dim_x()
}
/// `ompx_grid_dim_y()` — `gridDim.y`.
#[inline]
pub fn ompx_grid_dim_y(tc: &ThreadCtx<'_>) -> usize {
    tc.grid_dim_y()
}
/// `ompx_grid_dim_z()` — `gridDim.z`.
#[inline]
pub fn ompx_grid_dim_z(tc: &ThreadCtx<'_>) -> usize {
    tc.grid_dim_z()
}

// ---- C++-style indexing (ompx::thread_id(ompx::DIM_X)) -------------------

/// `ompx::thread_id(dim)`.
#[inline]
pub fn thread_id(tc: &ThreadCtx<'_>, dim: Dim) -> usize {
    match dim {
        Dim::X => tc.thread_id_x(),
        Dim::Y => tc.thread_id_y(),
        Dim::Z => tc.thread_id_z(),
    }
}

/// `ompx::block_id(dim)`.
#[inline]
pub fn block_id(tc: &ThreadCtx<'_>, dim: Dim) -> usize {
    match dim {
        Dim::X => tc.block_id_x(),
        Dim::Y => tc.block_id_y(),
        Dim::Z => tc.block_id_z(),
    }
}

/// `ompx::block_dim(dim)`.
#[inline]
pub fn block_dim(tc: &ThreadCtx<'_>, dim: Dim) -> usize {
    match dim {
        Dim::X => tc.block_dim_x(),
        Dim::Y => tc.block_dim_y(),
        Dim::Z => tc.block_dim_z(),
    }
}

/// `ompx::grid_dim(dim)`.
#[inline]
pub fn grid_dim(tc: &ThreadCtx<'_>, dim: Dim) -> usize {
    match dim {
        Dim::X => tc.grid_dim_x(),
        Dim::Y => tc.grid_dim_y(),
        Dim::Z => tc.grid_dim_z(),
    }
}

// ---- synchronization (§3.3.2) --------------------------------------------

/// `ompx_sync_thread_block()` — `__syncthreads()`.
#[inline]
pub fn ompx_sync_thread_block(tc: &mut ThreadCtx<'_>) {
    tc.sync_threads();
}

/// `ompx_sync_warp()` — `__syncwarp()`. (The OpenMP committee is
/// considering "warp" as a forward-progress contention group; this is the
/// prototype spelling.)
#[inline]
pub fn ompx_sync_warp(tc: &mut ThreadCtx<'_>) {
    tc.sync_warp();
}

// ---- warp primitives (§3.3.2) --------------------------------------------

/// `ompx_shfl_sync(val, src_lane)` — `__shfl_sync`.
#[inline]
pub fn ompx_shfl_sync<T: DeviceScalar>(tc: &mut ThreadCtx<'_>, val: T, src_lane: usize) -> T {
    tc.shfl(val, src_lane)
}

/// `ompx_shfl_down_sync(val, delta)` — `__shfl_down_sync`.
#[inline]
pub fn ompx_shfl_down_sync<T: DeviceScalar>(tc: &mut ThreadCtx<'_>, val: T, delta: usize) -> T {
    tc.shfl_down(val, delta)
}

/// `ompx_shfl_up_sync(val, delta)` — `__shfl_up_sync`.
#[inline]
pub fn ompx_shfl_up_sync<T: DeviceScalar>(tc: &mut ThreadCtx<'_>, val: T, delta: usize) -> T {
    tc.shfl_up(val, delta)
}

/// `ompx_shfl_xor_sync(val, mask)` — `__shfl_xor_sync`.
#[inline]
pub fn ompx_shfl_xor_sync<T: DeviceScalar>(tc: &mut ThreadCtx<'_>, val: T, mask: usize) -> T {
    tc.shfl_xor(val, mask)
}

/// `ompx_ballot_sync(pred)` — `__ballot_sync`.
#[inline]
pub fn ompx_ballot_sync(tc: &mut ThreadCtx<'_>, pred: bool) -> u64 {
    tc.ballot(pred)
}

/// `ompx_any_sync(pred)` — `__any_sync`: true if any lane votes true.
#[inline]
pub fn ompx_any_sync(tc: &mut ThreadCtx<'_>, pred: bool) -> bool {
    tc.any_sync(pred)
}

/// `ompx_all_sync(pred)` — `__all_sync`: true if every lane votes true.
#[inline]
pub fn ompx_all_sync(tc: &mut ThreadCtx<'_>, pred: bool) -> bool {
    tc.all_sync(pred)
}

// ---- warp/lane identity ----------------------------------------------------

/// `ompx_warp_size()` — the device warp/wavefront width (32 on NVIDIA,
/// 64 on AMD; the "forward progress group" size of the paper's footnote 4).
#[inline]
pub fn ompx_warp_size(tc: &ThreadCtx<'_>) -> usize {
    tc.warp_size()
}

/// `ompx_warp_id()` — the warp index of this thread within its block.
#[inline]
pub fn ompx_warp_id(tc: &ThreadCtx<'_>) -> usize {
    tc.warp_id()
}

/// `ompx_lane_id()` — the lane index of this thread within its warp.
#[inline]
pub fn ompx_lane_id(tc: &ThreadCtx<'_>) -> usize {
    tc.lane_id()
}

/// `ompx_global_thread_id_x()` — the canonical
/// `blockIdx.x * blockDim.x + threadIdx.x`.
#[inline]
pub fn ompx_global_thread_id_x(tc: &ThreadCtx<'_>) -> usize {
    tc.global_thread_id_x()
}

// ---- device atomics ---------------------------------------------------------

/// `ompx_atomic_add` — `atomicAdd`; returns the previous value.
#[inline]
pub fn ompx_atomic_add<T: DeviceScalar>(
    tc: &mut ThreadCtx<'_>,
    buf: &ompx_sim::mem::DBuf<T>,
    i: usize,
    v: T,
) -> T {
    tc.atomic_add(buf, i, v)
}

/// `ompx_atomic_min` — `atomicMin`; returns the previous value.
#[inline]
pub fn ompx_atomic_min<T: DeviceScalar>(
    tc: &mut ThreadCtx<'_>,
    buf: &ompx_sim::mem::DBuf<T>,
    i: usize,
    v: T,
) -> T {
    tc.atomic_min(buf, i, v)
}

/// `ompx_atomic_max` — `atomicMax`; returns the previous value.
#[inline]
pub fn ompx_atomic_max<T: DeviceScalar>(
    tc: &mut ThreadCtx<'_>,
    buf: &ompx_sim::mem::DBuf<T>,
    i: usize,
    v: T,
) -> T {
    tc.atomic_max(buf, i, v)
}

/// `ompx_atomic_cas` — `atomicCAS`; `Ok(previous)` on success.
#[inline]
pub fn ompx_atomic_cas<T: DeviceScalar>(
    tc: &mut ThreadCtx<'_>,
    buf: &ompx_sim::mem::DBuf<T>,
    i: usize,
    current: T,
    new: T,
) -> Result<T, T> {
    tc.atomic_cas(buf, i, current, new)
}

// ---- blending traditional OpenMP into bare regions ---------------------------

/// Block-level worksharing *inside* a bare region — the paper's "blend
/// traditional and kernel-like OpenMP code" capability: a SIMT kernel can
/// still say "distribute these `n` iterations over my team" instead of
/// hand-computing offsets. Block-strided static schedule; every thread of
/// the block must call it (no implicit barrier, like `nowait`).
pub fn ompx_for_each_in_block(
    tc: &mut ThreadCtx<'_>,
    n: usize,
    mut body: impl FnMut(&mut ThreadCtx<'_>, usize),
) {
    let stride = tc.block_dim_x() * tc.block_dim_y() * tc.block_dim_z();
    let mut i = tc.thread_rank();
    while i < n {
        body(tc, i);
        i += stride;
    }
}

/// Grid-level worksharing inside a bare region: distribute `0..n` over
/// every thread of the launch (grid-stride loop).
pub fn ompx_for_each_in_grid(
    tc: &mut ThreadCtx<'_>,
    n: usize,
    mut body: impl FnMut(&mut ThreadCtx<'_>, usize),
) {
    let stride = tc.global_size();
    let mut i = tc.global_rank();
    while i < n {
        body(tc, i);
        i += stride;
    }
}

// ---- collective conveniences -----------------------------------------------

/// Warp-wide sum via the butterfly shuffle pattern — the idiom kernels
/// build from `ompx_shfl_down_sync`, provided as a convenience.
pub fn ompx_warp_reduce_sum_f64(tc: &mut ThreadCtx<'_>, val: f64) -> f64 {
    let mut acc = val;
    let mut offset = tc.warp_size() / 2;
    while offset > 0 {
        let other = tc.shfl_xor(acc, offset);
        tc.flops(1);
        acc += other;
        offset /= 2;
    }
    acc
}

/// Block-wide sum: values staged through a shared slot (declared by the
/// caller with `BareTarget::shared_array::<f64>(block_size)`) and
/// tree-reduced with block barriers. Every thread receives the block
/// total. Works for any block size, including non-powers-of-two.
/// Requires `uses_block_sync`.
pub fn ompx_block_reduce_sum_f64(tc: &mut ThreadCtx<'_>, slot: usize, val: f64) -> f64 {
    let tile = tc.shared::<f64>(slot);
    let tid = tc.thread_rank();
    let block = tc.block_dim_x() * tc.block_dim_y() * tc.block_dim_z();
    debug_assert!(tile.len() >= block, "reduce slot must hold one element per thread");
    tc.swrite(&tile, tid, val);
    tc.sync_threads();

    let mut stride = block.next_power_of_two() / 2;
    while stride > 0 {
        if tid < stride && tid + stride < block {
            let a = tc.sread(&tile, tid);
            let b = tc.sread(&tile, tid + stride);
            tc.flops(1);
            tc.swrite(&tile, tid, a + b);
        }
        tc.sync_threads();
        stride /= 2;
    }
    tc.sread(&tile, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bare::BareTarget;
    use ompx_hostrt::{KnownIssues, OpenMp};
    use ompx_klang::toolchain::Toolchain;
    use ompx_sim::device::{Device, DeviceProfile};

    fn omp() -> OpenMp {
        OpenMp::with_device(
            Device::new(DeviceProfile::test_small()),
            Toolchain::OmpxPrototype,
            KnownIssues::new(),
        )
    }

    #[test]
    fn c_and_cxx_indexing_apis_agree() {
        let omp = omp();
        let ok = omp.device().alloc::<u32>(1);
        BareTarget::new(&omp, "agree")
            .num_teams([2u32, 2])
            .thread_limit([4u32, 2])
            .launch({
                let ok = ok.clone();
                move |tc| {
                    assert_eq!(ompx_thread_id_x(tc), thread_id(tc, Dim::X));
                    assert_eq!(ompx_thread_id_y(tc), thread_id(tc, Dim::Y));
                    assert_eq!(ompx_block_id_x(tc), block_id(tc, Dim::X));
                    assert_eq!(ompx_block_dim_y(tc), block_dim(tc, Dim::Y));
                    assert_eq!(ompx_grid_dim_x(tc), grid_dim(tc, Dim::X));
                    assert_eq!(ompx_grid_dim_z(tc), 1);
                    tc.atomic_add(&ok, 0, 1);
                }
            })
            .unwrap();
        assert_eq!(ok.get(0), 2 * 2 * 4 * 2);
    }

    #[test]
    fn warp_reduce_sum_matches_reference() {
        let omp = omp(); // warp width 4 on the test device
        let out = omp.device().alloc::<f64>(8);
        BareTarget::new(&omp, "wredux")
            .num_teams([1u32])
            .thread_limit([8u32])
            .uses_warp_ops()
            .launch({
                let out = out.clone();
                move |tc| {
                    let v = (tc.thread_rank() + 1) as f64;
                    let sum = ompx_warp_reduce_sum_f64(tc, v);
                    tc.write(&out, tc.thread_rank(), sum);
                }
            })
            .unwrap();
        let got = out.to_vec();
        // Warp 0: lanes 0..4 hold 1+2+3+4 = 10; warp 1: 5+6+7+8 = 26.
        assert_eq!(&got[..4], &[10.0; 4]);
        assert_eq!(&got[4..], &[26.0; 4]);
    }

    #[test]
    fn block_reduce_sum_any_block_size() {
        let omp = omp();
        for block in [1usize, 2, 5, 8, 13, 32] {
            let out = omp.device().alloc::<f64>(block);
            let mut t = BareTarget::new(&omp, "bredux")
                .num_teams([2u32])
                .thread_limit([block as u32])
                .uses_block_sync();
            let slot = t.shared_array::<f64>(block);
            t.launch({
                let out = out.clone();
                move |tc| {
                    let total = ompx_block_reduce_sum_f64(tc, slot, (tc.thread_rank() + 1) as f64);
                    if tc.block_rank() == 0 {
                        tc.write(&out, tc.thread_rank(), total);
                    }
                }
            })
            .unwrap();
            let expect = (block * (block + 1) / 2) as f64;
            assert!(
                out.to_vec().iter().all(|&v| v == expect),
                "block={block}: expected {expect}, got {:?}",
                out.to_vec()
            );
        }
    }

    #[test]
    fn warp_votes() {
        let omp = omp(); // warp width 4
        let out = omp.device().alloc::<u32>(8);
        BareTarget::new(&omp, "votes")
            .num_teams([1u32])
            .thread_limit([8u32])
            .uses_warp_ops()
            .launch({
                let out = out.clone();
                move |tc| {
                    let lane = tc.lane_id();
                    // Warp 0 (ranks 0-3): lane 2 votes true -> any=1, all=0.
                    // Warp 1 (ranks 4-7): everyone votes true -> any=1, all=1.
                    let pred = tc.warp_id() == 1 || lane == 2;
                    let any = ompx_any_sync(tc, pred);
                    let all = ompx_all_sync(tc, pred);
                    tc.write(&out, tc.thread_rank(), u32::from(any) * 10 + u32::from(all));
                }
            })
            .unwrap();
        let got = out.to_vec();
        assert_eq!(&got[..4], &[10; 4], "warp 0: any but not all");
        assert_eq!(&got[4..], &[11; 4], "warp 1: all");
    }

    #[test]
    fn blended_worksharing_covers_every_iteration() {
        // The "blend traditional and kernel-like OpenMP" capability: a
        // bare SIMT region using workshare loops instead of manual offsets.
        let omp = omp();
        let n = 1000usize;
        let block_hits = omp.device().alloc::<u32>(n);
        let grid_hits = omp.device().alloc::<u32>(n);
        BareTarget::new(&omp, "blend")
            .num_teams([3u32])
            .thread_limit([16u32])
            .launch({
                let (bh, gh) = (block_hits.clone(), grid_hits.clone());
                move |tc| {
                    // Each block covers all of 0..n (block-level share).
                    ompx_for_each_in_block(tc, n, |tc, i| {
                        tc.atomic_add(&bh, i, 1);
                    });
                    // The grid covers 0..n once in total.
                    ompx_for_each_in_grid(tc, n, |tc, i| {
                        tc.atomic_add(&gh, i, 1);
                    });
                }
            })
            .unwrap();
        assert!(block_hits.to_vec().iter().all(|&v| v == 3), "once per block");
        assert!(grid_hits.to_vec().iter().all(|&v| v == 1), "once per grid");
    }

    #[test]
    fn warp_lane_identity_and_atomics() {
        let omp = omp(); // warp width 4
        let acc = omp.device().alloc::<u64>(1);
        let mx = omp.device().alloc::<i32>(1);
        BareTarget::new(&omp, "ident2")
            .num_teams([1u32])
            .thread_limit([8u32])
            .launch({
                let (acc, mx) = (acc.clone(), mx.clone());
                move |tc| {
                    assert_eq!(ompx_warp_size(tc), 4);
                    assert_eq!(ompx_warp_id(tc), tc.thread_rank() / 4);
                    assert_eq!(ompx_lane_id(tc), tc.thread_rank() % 4);
                    assert_eq!(ompx_global_thread_id_x(tc), tc.thread_rank());
                    ompx_atomic_add(tc, &acc, 0, 1u64);
                    ompx_atomic_max(tc, &mx, 0, tc.thread_rank() as i32);
                }
            })
            .unwrap();
        assert_eq!(acc.get(0), 8);
        assert_eq!(mx.get(0), 7);
    }

    #[test]
    fn ballot_and_shuffles_via_api() {
        let omp = omp();
        let out = omp.device().alloc::<u64>(4);
        BareTarget::new(&omp, "ballot")
            .num_teams([1u32])
            .thread_limit([4u32])
            .uses_warp_ops()
            .launch({
                let out = out.clone();
                move |tc| {
                    let lane = tc.lane_id();
                    let m = ompx_ballot_sync(tc, lane % 2 == 1);
                    let from_zero: u64 = ompx_shfl_sync(tc, lane as u64 * 7, 0);
                    tc.write(&out, lane, m + from_zero);
                }
            })
            .unwrap();
        assert_eq!(out.to_vec(), vec![0b1010; 4]);
    }
}
