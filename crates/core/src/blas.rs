//! The vendor-library wrapper layer (§3.6).
//!
//! "Crafting a performance-portable library with the same capabilities as
//! vendor libraries from the ground up is not feasible. To address this,
//! our extension introduces a lightweight wrapper layer \[whose\] function
//! signatures \[are\] similar to those in vendor libraries … Under the hood,
//! this wrapper layer invokes the appropriate vendor library based on the
//! offloading target determined at compile time."
//!
//! Here the "offloading target" is the vendor of the runtime's device, and
//! the vendor libraries are the simulated cuBLAS/rocBLAS in
//! [`ompx_klang::blaslib`]. One signature, both GPUs — the same program
//! text links against cuBLAS on the NVIDIA system and rocBLAS on the AMD
//! system.

use ompx_hostrt::OpenMp;
use ompx_klang::blaslib::{self, BlasVendor};
use ompx_klang::runtime::{LaunchResult, NativeCtx};
use ompx_klang::toolchain::Toolchain;
use ompx_sim::mem::DBuf;
use ompx_sim::Vendor;

fn vendor_binding(omp: &OpenMp) -> (BlasVendor, NativeCtx) {
    // Vendor libraries ship as vendor-compiled binaries; the wrapper binds
    // them to the current device. Generic test devices have no vendor
    // library of their own, so they bind to the cuBLAS-like reference path
    // through an NVIDIA-masqueraded context (the wrapper's job is
    // dispatch; the library's vendor check still runs).
    match omp.device().profile().vendor {
        Vendor::Nvidia => {
            (BlasVendor::Cublas, NativeCtx::new(omp.device().clone(), Toolchain::Nvcc))
        }
        Vendor::Amd => {
            (BlasVendor::Rocblas, NativeCtx::new(omp.device().clone(), Toolchain::Hipcc))
        }
        Vendor::Generic => {
            use ompx_sim::device::Device;
            let mut profile = omp.device().profile().clone();
            profile.vendor = Vendor::Nvidia;
            (BlasVendor::Cublas, NativeCtx::new(Device::new(profile), Toolchain::Clang))
        }
    }
}

/// `ompx::blas::axpy` — `y = alpha*x + y`, dispatched to the vendor BLAS.
///
/// ```
/// let omp = ompx::runtime_nvidia();     // dispatches to simulated cuBLAS
/// let x = omp.device().alloc_from(&[1.0f32; 8]);
/// let y = omp.device().alloc_from(&[2.0f32; 8]);
/// ompx::blas::axpy(&omp, 3.0, &x, &y);
/// assert_eq!(y.get(0), 5.0);
/// ```
pub fn axpy(omp: &OpenMp, alpha: f32, x: &DBuf<f32>, y: &DBuf<f32>) -> LaunchResult {
    let (vendor, ctx) = vendor_binding(omp);
    blaslib::saxpy(vendor, &ctx, alpha, x, y)
}

/// `ompx::blas::dot` — dot product, dispatched to the vendor BLAS.
pub fn dot(omp: &OpenMp, x: &DBuf<f32>, y: &DBuf<f32>) -> (f64, LaunchResult) {
    let (vendor, ctx) = vendor_binding(omp);
    blaslib::sdot(vendor, &ctx, x, y)
}

/// `ompx::blas::gemm` — `C = alpha*A*B + beta*C`, dispatched to the vendor
/// BLAS.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    omp: &OpenMp,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &DBuf<f32>,
    b: &DBuf<f32>,
    beta: f32,
    c: &DBuf<f32>,
) -> LaunchResult {
    let (vendor, ctx) = vendor_binding(omp);
    blaslib::sgemm(vendor, &ctx, m, n, k, alpha, a, b, beta, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_same_call_dispatches_per_vendor() {
        // Identical program text on the two systems — §3.6's promise.
        for omp in [crate::runtime_nvidia(), crate::runtime_amd()] {
            let n = 512;
            let x = omp.device().alloc_from(&vec![1.0f32; n]);
            let y = omp.device().alloc_from(&vec![2.0f32; n]);
            axpy(&omp, 3.0, &x, &y);
            assert_eq!(y.to_vec(), vec![5.0f32; n]);
            let (d, _) = dot(&omp, &x, &y);
            assert_eq!(d, 5.0 * n as f64);
        }
    }

    #[test]
    fn gemm_dispatch_matches_reference() {
        for omp in [crate::runtime_nvidia(), crate::runtime_amd()] {
            let a = omp.device().alloc_from(&[1.0f32, 2.0, 3.0, 4.0]); // 2x2
            let b = omp.device().alloc_from(&[5.0f32, 6.0, 7.0, 8.0]); // 2x2
            let c = omp.device().alloc::<f32>(4);
            gemm(&omp, 2, 2, 2, 1.0, &a, &b, 0.0, &c);
            assert_eq!(c.to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
        }
    }

    #[test]
    fn wrapper_reports_vendor_kernel_names() {
        let omp = crate::runtime_nvidia();
        let x = omp.device().alloc_from(&[1.0f32; 8]);
        let y = omp.device().alloc_from(&[0.0f32; 8]);
        let r = axpy(&omp, 1.0, &x, &y);
        // The launch really went through the cuBLAS-like library.
        assert!(r.stats.flops > 0);
        let omp = crate::runtime_amd();
        let x = omp.device().alloc_from(&[1.0f32; 8]);
        let y = omp.device().alloc_from(&[0.0f32; 8]);
        let r = axpy(&omp, 1.0, &x, &y);
        assert!(r.stats.flops > 0);
    }
}
