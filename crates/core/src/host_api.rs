//! Host APIs (§3.4): direct device interaction, CUDA-runtime style.
//!
//! OpenMP's directive-based data management automates most transfers, but
//! ported kernel-language programs expect explicit calls. Following the
//! user-facing API layer of Doerfert et al. (PACT'22 — "Breaking the
//! Vendor Lock"), the extensions expose `ompx_` host functions mapping
//! 1:1 onto the CUDA runtime's:
//!
//! | CUDA | ompx |
//! |---|---|
//! | `cudaMalloc` | [`ompx_malloc`] |
//! | `cudaFree` | [`ompx_free`] |
//! | `cudaMemcpy(H2D)` | [`ompx_memcpy_h2d`] |
//! | `cudaMemcpy(D2H)` | [`ompx_memcpy_d2h`] |
//! | `cudaMemcpy(D2D)` | [`ompx_memcpy_d2d`] |
//! | `cudaMemset` | [`ompx_memset`] |
//! | `cudaDeviceSynchronize` | [`ompx_device_synchronize`] |
//! | `cudaStreamCreate` | interop objects ([`crate::interop_depend`]) |

use ompx_hostrt::OpenMp;
use ompx_sim::mem::{DBuf, DeviceScalar};
use ompx_sim::span::{self, SpanCategory};

/// Record a host-API call on the profiler's host track, if a span log is
/// installed. Transfers get their modeled PCIe duration so the timeline
/// shows H2D/D2H bars whose width is the transfer time and whose args
/// carry the byte count.
fn host_span(omp: &OpenMp, name: &str, cat: SpanCategory, bytes: usize) {
    if let Some(log) = span::active() {
        let dur = match cat {
            SpanCategory::MemcpyH2D | SpanCategory::MemcpyD2H | SpanCategory::MemcpyD2D => {
                omp.device().profile().transfer_seconds(bytes)
            }
            _ => 0.0,
        };
        log.host_op(name, cat, dur, bytes as u64);
    }
}

/// `ompx_malloc` — allocate `n` zero-initialized device elements.
pub fn ompx_malloc<T: DeviceScalar>(omp: &OpenMp, n: usize) -> DBuf<T> {
    let buf = omp.device().alloc(n);
    host_span(omp, "ompx_malloc", SpanCategory::HostOp, buf.size_bytes());
    buf
}

/// Allocate and copy in (`ompx_malloc` + `ompx_memcpy_h2d`).
pub fn ompx_malloc_from<T: DeviceScalar>(omp: &OpenMp, data: &[T]) -> DBuf<T> {
    let buf = omp.device().alloc_from(data);
    host_span(omp, "ompx_malloc_from", SpanCategory::MemcpyH2D, buf.size_bytes());
    buf
}

/// `ompx_free`.
pub fn ompx_free<T: DeviceScalar>(omp: &OpenMp, buf: &DBuf<T>) {
    omp.device().free(buf);
    host_span(omp, "ompx_free", SpanCategory::HostOp, buf.size_bytes());
}

/// `ompx_memcpy` host → device. Like the PACT'22 host API (and unlike
/// `cudaMemcpy`), the runtime handle is explicit.
pub fn ompx_memcpy_h2d<T: DeviceScalar>(omp: &OpenMp, dst: &DBuf<T>, src: &[T]) {
    dst.copy_from_host(src);
    host_span(omp, "ompx_memcpy H2D", SpanCategory::MemcpyH2D, std::mem::size_of_val(src));
}

/// `ompx_memcpy` device → host.
pub fn ompx_memcpy_d2h<T: DeviceScalar>(omp: &OpenMp, dst: &mut [T], src: &DBuf<T>) {
    src.copy_to_host(dst);
    host_span(omp, "ompx_memcpy D2H", SpanCategory::MemcpyD2H, std::mem::size_of_val(dst));
}

/// `ompx_memcpy` device → device.
pub fn ompx_memcpy_d2d<T: DeviceScalar>(omp: &OpenMp, dst: &DBuf<T>, src: &DBuf<T>, n: usize) {
    dst.copy_from_device(src, n);
    host_span(omp, "ompx_memcpy D2D", SpanCategory::MemcpyD2D, n * std::mem::size_of::<T>());
}

/// `ompx_memset` (typed fill).
pub fn ompx_memset<T: DeviceScalar>(omp: &OpenMp, buf: &DBuf<T>, v: T) {
    buf.fill(v);
    host_span(omp, "ompx_memset", SpanCategory::HostOp, buf.size_bytes());
}

/// `ompx_device_synchronize` — drain every stream on the device.
pub fn ompx_device_synchronize(omp: &OpenMp) {
    omp.device().synchronize();
    host_span(omp, "ompx_device_synchronize", SpanCategory::Sync, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_hostrt::KnownIssues;
    use ompx_klang::toolchain::Toolchain;
    use ompx_sim::device::{Device, DeviceProfile};

    fn omp() -> OpenMp {
        OpenMp::with_device(
            Device::new(DeviceProfile::test_small()),
            Toolchain::OmpxPrototype,
            KnownIssues::new(),
        )
    }

    #[test]
    fn malloc_memcpy_free_cycle() {
        let omp = omp();
        let before = omp.device().allocated_bytes();
        let buf = ompx_malloc::<f32>(&omp, 16);
        ompx_memcpy_h2d(&omp, &buf, &[1.0, 2.0, 3.0]);
        let mut out = vec![0.0f32; 3];
        ompx_memcpy_d2h(&omp, &mut out, &buf);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
        ompx_free(&omp, &buf);
        assert_eq!(omp.device().allocated_bytes(), before);
    }

    #[test]
    fn d2d_and_memset() {
        let omp = omp();
        let a = ompx_malloc_from(&omp, &[5u32, 6, 7]);
        let b = ompx_malloc::<u32>(&omp, 3);
        ompx_memcpy_d2d(&omp, &b, &a, 3);
        assert_eq!(b.to_vec(), vec![5, 6, 7]);
        ompx_memset(&omp, &b, 9);
        assert_eq!(b.to_vec(), vec![9, 9, 9]);
    }

    #[test]
    fn device_synchronize_flushes_interop_streams() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let omp = omp();
        let obj = ompx_hostrt::InteropObj::init_targetsync(&omp);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        obj.enqueue(move || d.store(true, Ordering::SeqCst));
        ompx_device_synchronize(&omp);
        assert!(done.load(Ordering::SeqCst));
    }
}
