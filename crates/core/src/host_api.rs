//! Host APIs (§3.4): direct device interaction, CUDA-runtime style.
//!
//! OpenMP's directive-based data management automates most transfers, but
//! ported kernel-language programs expect explicit calls. Following the
//! user-facing API layer of Doerfert et al. (PACT'22 — "Breaking the
//! Vendor Lock"), the extensions expose `ompx_` host functions mapping
//! 1:1 onto the CUDA runtime's:
//!
//! | CUDA | ompx |
//! |---|---|
//! | `cudaMalloc` | [`ompx_malloc`] |
//! | `cudaFree` | [`ompx_free`] |
//! | `cudaMemcpy(H2D)` | [`ompx_memcpy_h2d`] |
//! | `cudaMemcpy(D2H)` | [`ompx_memcpy_d2h`] |
//! | `cudaMemcpy(D2D)` | [`ompx_memcpy_d2d`] |
//! | `cudaMemset` | [`ompx_memset`] |
//! | `cudaDeviceSynchronize` | [`ompx_device_synchronize`] |
//! | `cudaStreamCreate` | interop objects ([`crate::interop_depend`]) |

use ompx_hostrt::{OmpxError, OpenMp};
use ompx_sim::error::{SimError, SimResult};
use ompx_sim::fault::{run_with_retry, RetryPolicy};
use ompx_sim::mem::{DBuf, DeviceScalar};
use ompx_sim::span::{self, SpanCategory};

/// Record a host-API call on the profiler's host track, if a span log is
/// installed. Transfers get their modeled PCIe duration so the timeline
/// shows H2D/D2H bars whose width is the transfer time and whose args
/// carry the byte count.
fn host_span(omp: &OpenMp, name: &str, cat: SpanCategory, bytes: usize) {
    if let Some(log) = span::active() {
        let dur = match cat {
            SpanCategory::MemcpyH2D | SpanCategory::MemcpyD2H | SpanCategory::MemcpyD2D => {
                omp.device().profile().transfer_seconds(bytes)
            }
            _ => 0.0,
        };
        log.host_op(name, cat, dur, bytes as u64);
    }
}

/// Classify the terminal error of a retried host-API call: a transient
/// fault that outlived the retry budget reports the budget; everything
/// else passes through as a device error.
fn classify(policy: &RetryPolicy, op: &str, e: SimError) -> OmpxError {
    if e.is_transient() {
        OmpxError::RetriesExhausted { op: op.to_string(), attempts: policy.max_attempts, last: e }
    } else {
        OmpxError::Device(e)
    }
}

/// Run a fallible device operation under the runtime's retry policy and
/// produce the typed host-API error on failure.
fn retried<T>(omp: &OpenMp, op: &str, f: impl FnMut() -> SimResult<T>) -> Result<T, OmpxError> {
    let policy = omp.device().retry_policy();
    run_with_retry(omp.device(), &policy, op, f).map_err(|e| classify(&policy, op, e))
}

/// Degrade an infallible-wrapper call after its `try_` variant failed on
/// an *injected* fault: record the degradation and let the caller redo the
/// operation outside the fault gate. Non-injected errors (size mismatch,
/// genuine exhaustion) keep the historical panic — host-program misuse,
/// per the error policy in ompx-sim's error.rs.
fn degrade_or_panic(omp: &OpenMp, op: &str, e: OmpxError) {
    let e = e.into_sim();
    if e.is_injected() {
        if let Some(f) = omp.device().faults() {
            f.note_degraded(&format!("{op}: {e}"));
        }
    } else {
        panic!("{op}: {e}");
    }
}

/// `ompx_get_last_error` — take and clear the last device error (CUDA's
/// `cudaGetLastError` analogue). Sticky errors — device loss — are
/// reported but *not* cleared.
pub fn ompx_get_last_error(omp: &OpenMp) -> Option<SimError> {
    omp.ompx_get_last_error()
}

/// `ompx_peek_last_error` — inspect the last device error without
/// clearing it (`cudaPeekAtLastError` analogue).
pub fn ompx_peek_last_error(omp: &OpenMp) -> Option<SimError> {
    omp.ompx_peek_last_error()
}

/// `ompx_malloc` — allocate `n` zero-initialized device elements.
///
/// Infallible wrapper: retries and degradation happen inside
/// [`ompx_sim::device::Device::alloc`]; use [`ompx_try_malloc`] for the
/// typed error.
pub fn ompx_malloc<T: DeviceScalar>(omp: &OpenMp, n: usize) -> DBuf<T> {
    let buf = omp.device().alloc(n);
    host_span(omp, "ompx_malloc", SpanCategory::HostOp, buf.size_bytes());
    buf
}

/// Fallible `ompx_malloc`: transient faults are retried under the
/// runtime's policy; persistent failure returns the typed error instead
/// of degrading.
pub fn ompx_try_malloc<T: DeviceScalar>(omp: &OpenMp, n: usize) -> Result<DBuf<T>, OmpxError> {
    let buf = retried(omp, "ompx_malloc", || omp.device().try_alloc(n))?;
    host_span(omp, "ompx_malloc", SpanCategory::HostOp, buf.size_bytes());
    Ok(buf)
}

/// Allocate and copy in (`ompx_malloc` + `ompx_memcpy_h2d`).
pub fn ompx_malloc_from<T: DeviceScalar>(omp: &OpenMp, data: &[T]) -> DBuf<T> {
    let buf = omp.device().alloc_from(data);
    host_span(omp, "ompx_malloc_from", SpanCategory::MemcpyH2D, buf.size_bytes());
    buf
}

/// `ompx_free`.
pub fn ompx_free<T: DeviceScalar>(omp: &OpenMp, buf: &DBuf<T>) {
    omp.device().free(buf);
    host_span(omp, "ompx_free", SpanCategory::HostOp, buf.size_bytes());
}

/// `ompx_memcpy` host → device. Like the PACT'22 host API (and unlike
/// `cudaMemcpy`), the runtime handle is explicit.
///
/// Infallible wrapper over [`ompx_try_memcpy_h2d`]: injected faults that
/// outlive the retry budget degrade to a raw copy (memcpy injection is
/// idempotent — recopying repairs any corruption) rather than failing.
pub fn ompx_memcpy_h2d<T: DeviceScalar>(omp: &OpenMp, dst: &DBuf<T>, src: &[T]) {
    if let Err(e) = ompx_try_memcpy_h2d(omp, dst, src) {
        degrade_or_panic(omp, "ompx_memcpy H2D", e);
        dst.copy_from_host(src);
        host_span(omp, "ompx_memcpy H2D", SpanCategory::MemcpyH2D, std::mem::size_of_val(src));
    }
}

/// Fallible `ompx_memcpy` host → device with the typed error.
pub fn ompx_try_memcpy_h2d<T: DeviceScalar>(
    omp: &OpenMp,
    dst: &DBuf<T>,
    src: &[T],
) -> Result<(), OmpxError> {
    retried(omp, "ompx_memcpy H2D", || omp.device().try_memcpy_h2d(dst, src))?;
    host_span(omp, "ompx_memcpy H2D", SpanCategory::MemcpyH2D, std::mem::size_of_val(src));
    Ok(())
}

/// `ompx_memcpy` device → host (infallible wrapper over
/// [`ompx_try_memcpy_d2h`]; see [`ompx_memcpy_h2d`] for the degradation
/// rules).
pub fn ompx_memcpy_d2h<T: DeviceScalar>(omp: &OpenMp, dst: &mut [T], src: &DBuf<T>) {
    if let Err(e) = ompx_try_memcpy_d2h(omp, dst, src) {
        degrade_or_panic(omp, "ompx_memcpy D2H", e);
        src.copy_to_host(dst);
        host_span(omp, "ompx_memcpy D2H", SpanCategory::MemcpyD2H, std::mem::size_of_val(dst));
    }
}

/// Fallible `ompx_memcpy` device → host with the typed error.
pub fn ompx_try_memcpy_d2h<T: DeviceScalar>(
    omp: &OpenMp,
    dst: &mut [T],
    src: &DBuf<T>,
) -> Result<(), OmpxError> {
    retried(omp, "ompx_memcpy D2H", || omp.device().try_memcpy_d2h(src, dst))?;
    host_span(omp, "ompx_memcpy D2H", SpanCategory::MemcpyD2H, std::mem::size_of_val(dst));
    Ok(())
}

/// `ompx_memcpy` device → device (infallible wrapper over
/// [`ompx_try_memcpy_d2d`]).
pub fn ompx_memcpy_d2d<T: DeviceScalar>(omp: &OpenMp, dst: &DBuf<T>, src: &DBuf<T>, n: usize) {
    if let Err(e) = ompx_try_memcpy_d2d(omp, dst, src, n) {
        degrade_or_panic(omp, "ompx_memcpy D2D", e);
        dst.copy_from_device(src, n);
        host_span(omp, "ompx_memcpy D2D", SpanCategory::MemcpyD2D, n * std::mem::size_of::<T>());
    }
}

/// Fallible `ompx_memcpy` device → device with the typed error.
pub fn ompx_try_memcpy_d2d<T: DeviceScalar>(
    omp: &OpenMp,
    dst: &DBuf<T>,
    src: &DBuf<T>,
    n: usize,
) -> Result<(), OmpxError> {
    retried(omp, "ompx_memcpy D2D", || omp.device().try_memcpy_d2d(dst, src, n))?;
    host_span(omp, "ompx_memcpy D2D", SpanCategory::MemcpyD2D, n * std::mem::size_of::<T>());
    Ok(())
}

/// `ompx_memset` (typed fill).
pub fn ompx_memset<T: DeviceScalar>(omp: &OpenMp, buf: &DBuf<T>, v: T) {
    buf.fill(v);
    host_span(omp, "ompx_memset", SpanCategory::HostOp, buf.size_bytes());
}

/// `ompx_device_synchronize` — drain every stream on the device.
pub fn ompx_device_synchronize(omp: &OpenMp) {
    omp.device().synchronize();
    host_span(omp, "ompx_device_synchronize", SpanCategory::Sync, 0);
}

/// `ompx_register_write_set` — install the write-set hint for `kernel`:
/// the diagnostic labels of the buffers it may write (analyzer
/// access-summary data). A watchdog checkpoint then snapshots only those
/// buffers instead of every live allocation — see
/// [`ompx_restore_watchdog_checkpoint`].
pub fn ompx_register_write_set<S: AsRef<str>>(omp: &OpenMp, kernel: &str, labels: &[S]) {
    omp.device().set_kernel_write_set(kernel, labels);
}

/// `ompx_restore_watchdog_checkpoint` — restore the pre-launch checkpoint
/// taken when an injected watchdog timeout killed `kernel` mid-run,
/// erasing its partially committed block prefix. Returns whether a
/// checkpoint was pending. Programs hand-rolling their own re-dispatch
/// after a `WatchdogTimeout` error call this before re-launching; the
/// language runtimes' degraded/fallback paths restore implicitly.
pub fn ompx_restore_watchdog_checkpoint(omp: &OpenMp, kernel: &str) -> bool {
    let restored = omp.device().restore_checkpoint(kernel);
    if restored {
        host_span(omp, "ompx_restore_watchdog_checkpoint", SpanCategory::Fallback, 0);
    }
    restored
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_hostrt::KnownIssues;
    use ompx_klang::toolchain::Toolchain;
    use ompx_sim::device::{Device, DeviceProfile};

    fn omp() -> OpenMp {
        OpenMp::with_device(
            Device::new(DeviceProfile::test_small()),
            Toolchain::OmpxPrototype,
            KnownIssues::new(),
        )
    }

    #[test]
    fn malloc_memcpy_free_cycle() {
        let omp = omp();
        let before = omp.device().allocated_bytes();
        let buf = ompx_malloc::<f32>(&omp, 16);
        ompx_memcpy_h2d(&omp, &buf, &[1.0, 2.0, 3.0]);
        let mut out = vec![0.0f32; 3];
        ompx_memcpy_d2h(&omp, &mut out, &buf);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
        ompx_free(&omp, &buf);
        assert_eq!(omp.device().allocated_bytes(), before);
    }

    #[test]
    fn d2d_and_memset() {
        let omp = omp();
        let a = ompx_malloc_from(&omp, &[5u32, 6, 7]);
        let b = ompx_malloc::<u32>(&omp, 3);
        ompx_memcpy_d2d(&omp, &b, &a, 3);
        assert_eq!(b.to_vec(), vec![5, 6, 7]);
        ompx_memset(&omp, &b, 9);
        assert_eq!(b.to_vec(), vec![9, 9, 9]);
    }

    #[test]
    fn injected_transient_memcpy_recovers_via_retry() {
        use ompx_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultState};
        let omp = omp();
        let plan =
            FaultPlan::none().with_injection(FaultSite::MemcpyH2D, 0, FaultKind::MemcpyCorrupt);
        let faults = FaultState::new(plan);
        omp.device().attach_faults(std::sync::Arc::clone(&faults));
        let buf = ompx_try_malloc::<f32>(&omp, 4).unwrap();
        // First H2D hits the injected corruption; the retry re-copies and
        // repairs it, so the typed API still succeeds with correct data.
        ompx_try_memcpy_h2d(&omp, &buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(buf.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let snap = faults.snapshot();
        assert_eq!(snap.recovered, 1, "the retry must be recorded as a recovery");
        assert!(ompx_peek_last_error(&omp).is_none(), "recovered faults are not sticky");
        omp.device().detach_faults();
    }

    #[test]
    fn exhausted_retries_surface_the_typed_error() {
        use ompx_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultState, RetryPolicy};
        let omp = omp();
        let plan = FaultPlan::none().with_injection(FaultSite::MemcpyD2H, 0, FaultKind::MemcpyFail);
        omp.device().attach_faults(FaultState::new(plan));
        // A budget of one attempt means the injected fault is terminal.
        omp.set_retry_policy(RetryPolicy { max_attempts: 1, backoff_base_s: 0.0 });
        let buf = ompx_malloc_from(&omp, &[7.0f32, 8.0]);
        let mut out = vec![0.0f32; 2];
        let err = ompx_try_memcpy_d2h(&omp, &mut out, &buf).unwrap_err();
        assert!(
            matches!(err, OmpxError::RetriesExhausted { attempts: 1, .. }),
            "expected RetriesExhausted, got {err}"
        );
        // The failure is recorded as the last error (cudaGetLastError
        // style): peek preserves it, get clears it (it is not sticky).
        assert!(ompx_peek_last_error(&omp).is_some());
        assert!(ompx_get_last_error(&omp).is_some());
        assert!(ompx_get_last_error(&omp).is_none());
        omp.device().detach_faults();
    }

    #[test]
    fn device_loss_degrades_wrappers_and_sticks() {
        use ompx_sim::fault::{FaultPlan, FaultState};
        let omp = omp();
        let buf = ompx_malloc_from(&omp, &[7.0f32, 8.0]);
        let faults = FaultState::new(FaultPlan::none().with_device_loss_at(0));
        omp.device().attach_faults(std::sync::Arc::clone(&faults));
        // The infallible wrapper degrades to a raw copy on the lost device.
        let mut out = vec![0.0f32; 2];
        ompx_memcpy_d2h(&omp, &mut out, &buf);
        assert_eq!(out, vec![7.0, 8.0]);
        assert!(!faults.snapshot().degraded.is_empty());
        // Device loss is sticky: get does not clear it.
        assert!(ompx_get_last_error(&omp).is_some());
        assert!(ompx_get_last_error(&omp).is_some(), "sticky errors survive get");
        omp.device().detach_faults();
    }

    #[test]
    fn watchdog_checkpoint_restores_partial_side_effects() {
        use ompx_sim::dim::LaunchConfig;
        use ompx_sim::exec::Kernel;
        use ompx_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultState};
        let omp = omp();
        let n = 64usize;
        let out = ompx_malloc::<u32>(&omp, n);
        out.set_label("out");
        ompx_register_write_set(&omp, "stamp", &["out"]);
        let kernel = Kernel::new("stamp", {
            let out = out.clone();
            move |tc| {
                let i = tc.global_thread_id_x();
                if i < n {
                    tc.write(&out, i, i as u32 + 1);
                }
            }
        });
        let baseline = out.to_vec();
        let plan = FaultPlan::none().with_injection(FaultSite::Launch, 0, FaultKind::Watchdog);
        omp.device().attach_faults(FaultState::new(plan));
        // The launch dies on the watchdog, leaving a committed block
        // prefix behind (seed 0 commits 10 of 16 blocks).
        let err = omp.device().launch(&kernel, LaunchConfig::new(16u32, 4u32)).unwrap_err();
        assert!(matches!(err, SimError::WatchdogTimeout { .. }), "got {err}");
        assert_ne!(out.to_vec(), baseline, "the partial prefix must be visible");
        // The host API rolls the dirty state back; re-dispatching from the
        // restored state gives the full fault-free result.
        assert!(ompx_restore_watchdog_checkpoint(&omp, "stamp"));
        assert_eq!(out.to_vec(), baseline, "restore must erase the partial prefix");
        assert!(!ompx_restore_watchdog_checkpoint(&omp, "stamp"), "checkpoint is consumed");
        omp.device().launch_unchecked(&kernel, LaunchConfig::new(16u32, 4u32)).unwrap();
        assert_eq!(out.to_vec(), (1..=n as u32).collect::<Vec<_>>());
        omp.device().detach_faults();
    }

    #[test]
    fn size_mismatch_is_a_typed_error_not_a_panic() {
        let omp = omp();
        let buf = ompx_try_malloc::<u32>(&omp, 2).unwrap();
        let err = ompx_try_memcpy_h2d(&omp, &buf, &[1u32, 2, 3]).unwrap_err();
        assert!(matches!(err, OmpxError::Device(SimError::SizeMismatch { .. })), "got {err}");
    }

    #[test]
    fn device_synchronize_flushes_interop_streams() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let omp = omp();
        let obj = ompx_hostrt::InteropObj::init_targetsync(&omp);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        obj.enqueue(move || d.store(true, Ordering::SeqCst));
        ompx_device_synchronize(&omp);
        assert!(done.load(Ordering::SeqCst));
    }
}
