//! HIP-flavoured surface over [`crate::runtime::NativeCtx`].
//!
//! HIP's runtime API is deliberately a near-field-rename of CUDA's
//! (`hipMalloc`/`hipMemcpy`/`hipLaunchKernelGGL`), which is why the paper
//! can port the CUDA benchmark sources to HIP essentially by substitution.
//! The same holds here: a HIP context *is* a [`NativeCtx`], constructed over
//! the AMD MI250 profile with 64-lane wavefronts.

use crate::runtime::NativeCtx;
use crate::toolchain::Toolchain;
use ompx_sim::device::{Device, DeviceProfile};

/// A HIP context is a native context whose device is an AMD profile.
pub type HipCtx = NativeCtx;

/// HIP on the paper's MI250 system, compiled with LLVM/Clang
/// (the `hip` bars of Figure 8).
pub fn hip_context_clang() -> HipCtx {
    NativeCtx::new(Device::new(DeviceProfile::mi250()), Toolchain::Clang)
}

/// HIP on the paper's MI250 system, compiled with `hipcc`
/// (the `hip-hipcc` bars of Figure 8).
pub fn hip_context_hipcc() -> HipCtx {
    NativeCtx::new(Device::new(DeviceProfile::mi250()), Toolchain::Hipcc)
}

/// HIP context on an explicit device/toolchain pair.
pub fn hip_context_on(device: Device, toolchain: Toolchain) -> HipCtx {
    NativeCtx::new(device, toolchain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::prelude::*;
    use ompx_sim::Vendor;

    #[test]
    fn hip_contexts_are_amd_with_wave64() {
        let c = hip_context_clang();
        assert_eq!(c.device().profile().vendor, Vendor::Amd);
        assert_eq!(c.device().profile().warp_size, 64);
        assert_eq!(hip_context_hipcc().toolchain(), Toolchain::Hipcc);
    }

    #[test]
    fn same_kernel_source_runs_on_both_vendors() {
        // The portability premise: one kernel body, two vendor contexts.
        let make = |ctx: &NativeCtx| {
            let n = 256usize;
            let x = ctx.malloc_from(&vec![3.0f32; n]);
            let y = ctx.malloc::<f32>(n);
            let k = Kernel::new("axpy_portable", {
                let (x, y) = (x.clone(), y.clone());
                move |tc: &mut ThreadCtx| {
                    let i = tc.global_thread_id_x();
                    if i < n {
                        let v = tc.read(&x, i);
                        tc.flops(1);
                        tc.write(&y, i, v + 1.0);
                    }
                }
            });
            ctx.launch(&k, 2u32, 128u32).unwrap();
            y.to_vec()
        };
        let nv = make(&crate::cuda::cuda_context_clang());
        let amd = make(&hip_context_clang());
        assert_eq!(nv, amd);
        assert!(nv.iter().all(|&v| v == 4.0));
    }
}
