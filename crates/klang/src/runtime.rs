//! `NativeCtx`: the CUDA-runtime-shaped execution context.
//!
//! This is the program-visible half of a kernel language: memory management
//! (`cudaMalloc`/`cudaMemcpy`/`cudaFree`), chevron-style kernel launches,
//! streams and events, and device synchronization — all lowered onto the
//! simulator. The [`crate::cuda`] and [`crate::hip`] modules give it
//! vendor-flavoured names.
//!
//! Each synchronous launch returns a [`LaunchResult`] carrying both the
//! functional statistics and the modeled execution time computed with the
//! context's toolchain profile; the context also accumulates per-kernel
//! totals, playing the role of `nsys`/`rocprof` for the benchmark harness.

use crate::toolchain::{CodegenDb, Toolchain};
use ompx_sim::counters::StatsSnapshot;
use ompx_sim::device::Device;
use ompx_sim::dim::{Dim3, LaunchConfig};
use ompx_sim::error::{SimError, SimResult};
use ompx_sim::exec::Kernel;
use ompx_sim::fault::{run_with_retry, RetryPolicy};
use ompx_sim::mem::{DBuf, DeviceScalar};
use ompx_sim::span::{self, SpanCategory};
use ompx_sim::stream::{Event, Stream};
use ompx_sim::timing::{model_kernel, CodegenInfo, ModeOverheads, ModeledTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of one synchronous kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchResult {
    /// Counted events, aggregated over the whole grid.
    pub stats: StatsSnapshot,
    /// Modeled execution time under this context's toolchain.
    pub modeled: ModeledTime,
}

/// Accumulated per-kernel profile (launch count + modeled seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelProfile {
    pub launches: u64,
    pub modeled_seconds: f64,
}

struct CtxInner {
    device: Device,
    toolchain: Toolchain,
    codegen: CodegenDb,
    profiles: Mutex<HashMap<String, KernelProfile>>,
}

/// A native kernel-language context: one device + one compiling toolchain.
#[derive(Clone)]
pub struct NativeCtx {
    inner: Arc<CtxInner>,
}

impl NativeCtx {
    /// Create a context for `device` as compiled by `toolchain`.
    pub fn new(device: Device, toolchain: Toolchain) -> Self {
        NativeCtx {
            inner: Arc::new(CtxInner {
                device,
                toolchain,
                codegen: CodegenDb::new(),
                profiles: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The toolchain this context models.
    pub fn toolchain(&self) -> Toolchain {
        self.inner.toolchain
    }

    /// The codegen profile database (register paper-reported values here).
    pub fn codegen(&self) -> &CodegenDb {
        &self.inner.codegen
    }

    // ---- sanitizer (compute-sanitizer / ompx-sanitizer) -------------------

    /// Attach a sanitizer session to this context's device: every
    /// subsequent launch and allocation is observed. The thin wrapper of
    /// running a CUDA/HIP binary under `compute-sanitizer`.
    pub fn sanitizer_attach(&self, state: std::sync::Arc<ompx_sim::san::SanState>) {
        self.inner.device.attach_sanitizer(state);
    }

    /// Detach the session, returning it with its findings.
    pub fn sanitizer_detach(&self) -> Option<std::sync::Arc<ompx_sim::san::SanState>> {
        self.inner.device.detach_sanitizer()
    }

    /// Findings recorded so far, without detaching.
    pub fn sanitizer_findings(&self) -> Vec<ompx_sim::san::Diagnostic> {
        self.inner.device.sanitizer().map(|s| s.diagnostics()).unwrap_or_default()
    }

    // ---- fault handling ---------------------------------------------------

    /// Retry policy used for transient injected faults on this context's
    /// device.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.device.retry_policy()
    }

    /// Replace the retry policy (delegates to the device).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.inner.device.set_retry_policy(policy);
    }

    /// `cudaGetLastError`: last recorded error, cleared on read unless
    /// sticky (device loss).
    pub fn get_last_error(&self) -> Option<SimError> {
        self.inner.device.take_last_error()
    }

    /// `cudaPeekAtLastError`: last recorded error, not cleared.
    pub fn peek_last_error(&self) -> Option<SimError> {
        self.inner.device.peek_last_error()
    }

    /// Retry `attempt` under the device policy. Returns `Err` only for an
    /// unrecovered *injected* fault — the caller then falls back to the
    /// raw, injection-blind copy so the program keeps functionally correct
    /// results (the error stays recorded as sticky device state). A
    /// non-injected error is host-side misuse and panics, preserving the
    /// infallible wrapper's historical contract.
    fn retry_injected(
        &self,
        what: &str,
        attempt: impl FnMut() -> SimResult<()>,
    ) -> Result<(), SimError> {
        match run_with_retry(&self.inner.device, &self.inner.device.retry_policy(), what, attempt) {
            Ok(()) => Ok(()),
            Err(e) if e.is_injected() => {
                if let Some(f) = self.inner.device.faults() {
                    f.note_degraded(&format!("{what}: {e}"));
                }
                Err(e)
            }
            Err(e) => panic!("{what}: {e}"),
        }
    }

    // ---- memory management (cudaMalloc / cudaMemcpy / cudaFree) ----------

    /// `cudaMalloc`: allocate `n` zero-initialized elements.
    pub fn malloc<T: DeviceScalar>(&self, n: usize) -> DBuf<T> {
        self.inner.device.alloc(n)
    }

    /// `cudaMemcpy(…, HostToDevice)` combined with allocation.
    pub fn malloc_from<T: DeviceScalar>(&self, data: &[T]) -> DBuf<T> {
        self.inner.device.alloc_from(data)
    }

    /// `cudaMemcpy(…, HostToDevice)`.
    pub fn memcpy_h2d<T: DeviceScalar>(&self, dst: &DBuf<T>, src: &[T]) {
        if self.retry_injected("memcpy H2D", || self.inner.device.try_memcpy_h2d(dst, src)).is_err()
        {
            dst.copy_from_host(src);
        }
        self.memcpy_span("memcpy H2D", SpanCategory::MemcpyH2D, std::mem::size_of_val(src));
    }

    /// `cudaMemcpy(…, DeviceToHost)`.
    pub fn memcpy_d2h<T: DeviceScalar>(&self, dst: &mut [T], src: &DBuf<T>) {
        let bytes = std::mem::size_of_val(&*dst);
        if self
            .retry_injected("memcpy D2H", || self.inner.device.try_memcpy_d2h(src, &mut *dst))
            .is_err()
        {
            src.copy_to_host(dst);
        }
        self.memcpy_span("memcpy D2H", SpanCategory::MemcpyD2H, bytes);
    }

    /// `cudaMemcpy(…, DeviceToDevice)`.
    pub fn memcpy_d2d<T: DeviceScalar>(&self, dst: &DBuf<T>, src: &DBuf<T>, n: usize) {
        if self
            .retry_injected("memcpy D2D", || self.inner.device.try_memcpy_d2d(dst, src, n))
            .is_err()
        {
            dst.copy_from_device(src, n);
        }
        self.memcpy_span("memcpy D2D", SpanCategory::MemcpyD2D, n * std::mem::size_of::<T>());
    }

    /// Record a synchronous memcpy on the profiler's host track, if a span
    /// log is installed; the bar's width is the modeled transfer time.
    fn memcpy_span(&self, name: &str, cat: SpanCategory, bytes: usize) {
        if let Some(log) = span::active() {
            let seconds = self.inner.device.profile().transfer_seconds(bytes);
            log.host_op(name, cat, seconds, bytes as u64);
        }
    }

    /// `cudaFree`: release the modeled capacity.
    pub fn free<T: DeviceScalar>(&self, buf: &DBuf<T>) {
        self.inner.device.free(buf);
    }

    /// `cudaMemcpyToSymbol`: upload a constant-memory buffer.
    pub fn memcpy_to_symbol<T: DeviceScalar>(&self, data: &[T]) -> ompx_sim::constant::CBuf<T> {
        self.inner.device.alloc_const(data)
    }

    /// `cudaMemcpy(…, HostToDevice)` with the modeled transfer time
    /// returned (interconnect latency + bytes/bandwidth — the §2.6 cost).
    pub fn memcpy_h2d_timed<T: DeviceScalar>(&self, dst: &DBuf<T>, src: &[T]) -> f64 {
        self.memcpy_h2d(dst, src);
        self.inner.device.profile().transfer_seconds(std::mem::size_of_val(src))
    }

    /// `cudaMemcpyAsync(…, HostToDevice, stream)`: the copy is enqueued
    /// behind the stream's prior work and its modeled transfer time is
    /// charged to the stream's timeline.
    pub fn memcpy_h2d_async<T: DeviceScalar>(&self, dst: &DBuf<T>, src: &[T], stream: &Stream) {
        let dst = dst.clone();
        let data: Vec<T> = src.to_vec();
        let bytes = std::mem::size_of_val(src);
        let seconds = self.inner.device.profile().transfer_seconds(bytes);
        let flow = span::active().map(|log| {
            log.host_op_flow("memcpyAsync H2D", SpanCategory::HostOp, 0.0, bytes as u64)
        });
        let stream2 = stream.clone();
        let ctx = self.clone();
        stream.enqueue(move || {
            if ctx
                .retry_injected("memcpyAsync H2D", || ctx.inner.device.try_memcpy_h2d(&dst, &data))
                .is_err()
            {
                dst.copy_from_host(&data);
            }
            stream2.add_modeled_span(
                "memcpy H2D",
                SpanCategory::MemcpyH2D,
                seconds,
                bytes as u64,
                flow,
            );
        });
    }

    /// `cudaOccupancyMaxActiveBlocksPerMultiprocessor`: how many blocks of
    /// `kernel_name` at `block_size` threads (+`smem_per_block` bytes) fit
    /// on one SM under this context's codegen profile.
    pub fn occupancy_max_active_blocks(
        &self,
        kernel_name: &str,
        block_size: u32,
        smem_per_block: usize,
    ) -> u32 {
        let cg = self.codegen_for(kernel_name);
        ompx_sim::timing::occupancy(
            self.inner.device.profile(),
            block_size,
            cg.regs_per_thread,
            smem_per_block + cg.static_smem_bytes,
        )
        .blocks_per_sm
    }

    // ---- streams and events ----------------------------------------------

    /// `cudaStreamCreate`.
    pub fn stream_create(&self) -> Stream {
        Stream::new(&self.inner.device)
    }

    /// `cudaDeviceSynchronize`.
    pub fn device_synchronize(&self) {
        self.inner.device.synchronize();
        if let Some(log) = span::active() {
            log.host_op("deviceSynchronize", SpanCategory::Sync, 0.0, 0);
        }
    }

    // ---- launches ----------------------------------------------------------

    /// Chevron launch: `kernel<<<grid, block>>>(…)`, synchronous.
    pub fn launch(
        &self,
        kernel: &Kernel,
        grid: impl Into<Dim3>,
        block: impl Into<Dim3>,
    ) -> SimResult<LaunchResult> {
        self.launch_cfg(kernel, LaunchConfig::new(grid, block))
    }

    /// Launch with a full configuration (shared-memory slots etc.).
    pub fn launch_cfg(&self, kernel: &Kernel, cfg: LaunchConfig) -> SimResult<LaunchResult> {
        let r = self.launch_cfg_inner(kernel, cfg)?;
        // A synchronous launch occupies the host thread for its modeled
        // duration — one kernel bar on the profiler's host track.
        if let Some(log) = span::active() {
            log.host_op(kernel.name(), SpanCategory::Kernel, r.modeled.seconds, 0);
        }
        Ok(r)
    }

    /// The launch without host-track span emission: the asynchronous path
    /// runs this from the stream worker and records a stream span instead.
    ///
    /// Injected transient faults are retried under the device policy; a
    /// fault the retries cannot clear (watchdog, device loss, exhausted
    /// episode) degrades: native kernel languages have no host-dispatch
    /// alternative — unlike OpenMP target regions — so the runtime restores
    /// the device's pre-launch checkpoint (a watchdog timeout leaves a
    /// committed partial block prefix behind) and re-executes
    /// injection-blind; the error stays recorded as sticky device state.
    fn launch_cfg_inner(&self, kernel: &Kernel, cfg: LaunchConfig) -> SimResult<LaunchResult> {
        let device = &self.inner.device;
        let attempt = run_with_retry(device, &device.retry_policy(), kernel.name(), || {
            device.launch(kernel, cfg.clone())
        });
        let (stats, degraded_by) = match attempt {
            Ok(stats) => (stats, None),
            Err(e) if e.is_injected() => {
                if let Some(f) = device.faults() {
                    f.note_degraded(&format!("launch {}: {e}", kernel.name()));
                }
                // A watchdog timeout committed a partial block prefix;
                // erase it so the blind re-dispatch computes from the
                // pre-launch state. No-op for side-effect-free faults.
                device.restore_checkpoint(kernel.name());
                (device.launch_unchecked(kernel, cfg.clone())?, Some(e))
            }
            Err(e) => return Err(e),
        };
        let modeled = self.model(
            kernel.name(),
            cfg.threads_per_block() as u32,
            cfg.shared_bytes_per_block(),
            &stats,
        );
        if let Some(e) = degraded_by {
            // Emitted after the re-dispatch so the fallback bar spans its
            // modeled duration instead of rendering zero-width.
            if let Some(log) = span::active() {
                log.host_op(
                    &format!("degraded {} ({e})", kernel.name()),
                    SpanCategory::Fallback,
                    modeled.seconds,
                    0,
                );
            }
        }
        self.record(kernel.name(), modeled.seconds);
        self.inner.device.trace().attribute_model(kernel.name(), modeled.seconds);
        Ok(LaunchResult { stats, modeled })
    }

    /// Asynchronous launch into a stream: `kernel<<<grid, block, 0, s>>>`.
    /// Returns an event that completes when the kernel has executed.
    ///
    /// Invalid configurations are rejected immediately with a panic — the
    /// launch-time error CUDA reports from `cudaLaunchKernel` — rather than
    /// silently dropped on the stream.
    pub fn launch_async(&self, kernel: &Kernel, cfg: LaunchConfig, stream: &Stream) -> Event {
        if let Err(e) = self.inner.device.validate_launch(&cfg) {
            panic!("launch_async({}): {e}", kernel.name());
        }
        let flow = span::active().map(|log| {
            log.host_op_flow(&format!("launch {}", kernel.name()), SpanCategory::HostOp, 0.0, 0)
        });
        let ctx = self.clone();
        let kernel = kernel.clone();
        let stream_handle = stream.clone();
        stream.enqueue(move || {
            match ctx.launch_cfg_inner(&kernel, cfg) {
                Ok(r) => stream_handle.add_modeled_span(
                    kernel.name(),
                    SpanCategory::Kernel,
                    r.modeled.seconds,
                    0,
                    flow,
                ),
                // Validation passed above and injected faults are recovered
                // or degraded inside `launch_cfg_inner`; a failure here is a
                // simulator invariant violation — poison the stream loudly.
                // (Deliberate panic, per the error.rs contract.)
                Err(e) => panic!("async launch of {} failed: {e}", kernel.name()),
            }
        });
        stream.record_event()
    }

    /// Model a (possibly workload-scaled) statistics snapshot for `kernel`
    /// under this context's toolchain. Grid size is taken from
    /// `stats.blocks_executed`, so scaled snapshots extrapolate correctly.
    pub fn model(
        &self,
        kernel_name: &str,
        threads_per_block: u32,
        smem_per_block: usize,
        stats: &StatsSnapshot,
    ) -> ModeledTime {
        let cg = self.codegen_for(kernel_name);
        model_kernel(
            self.inner.device.profile(),
            threads_per_block,
            stats.blocks_executed.max(1),
            smem_per_block,
            stats,
            &cg,
            &ModeOverheads::none(),
        )
    }

    /// Resolve the codegen profile this context would use for `kernel_name`
    /// (vendor-aware: `kernel@nvidia` entries override `kernel` entries).
    pub fn codegen_for(&self, kernel_name: &str) -> CodegenInfo {
        self.inner.codegen.lookup_vendor(
            kernel_name,
            self.inner.device.profile().vendor,
            self.inner.toolchain,
            CodegenInfo::default(),
        )
    }

    fn record(&self, kernel: &str, seconds: f64) {
        let mut p = self.inner.profiles.lock();
        let e = p.entry(kernel.to_string()).or_default();
        e.launches += 1;
        e.modeled_seconds += seconds;
    }

    /// Accumulated profile for one kernel (launch count, modeled seconds).
    pub fn kernel_profile(&self, kernel: &str) -> KernelProfile {
        self.inner.profiles.lock().get(kernel).copied().unwrap_or_default()
    }

    /// Total modeled kernel seconds across all launches on this context.
    pub fn total_modeled_seconds(&self) -> f64 {
        self.inner.profiles.lock().values().map(|p| p.modeled_seconds).sum()
    }

    /// A profiler summary table (the `nsys`/`rocprof` role): kernels sorted
    /// by total modeled time, with launch counts and averages.
    pub fn profile_report(&self) -> String {
        use std::fmt::Write as _;
        let profiles = self.inner.profiles.lock();
        let mut rows: Vec<(&String, &KernelProfile)> = profiles.iter().collect();
        rows.sort_by(|a, b| b.1.modeled_seconds.total_cmp(&a.1.modeled_seconds));
        let total: f64 = rows.iter().map(|(_, p)| p.modeled_seconds).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel profile — {} ({})",
            self.inner.device.profile().name,
            self.inner.toolchain.label()
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>14} {:>14} {:>7}",
            "kernel", "launches", "total (us)", "avg (us)", "time%"
        );
        for (name, p) in rows {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>14.2} {:>14.2} {:>6.1}%",
                name,
                p.launches,
                p.modeled_seconds * 1e6,
                p.modeled_seconds * 1e6 / p.launches.max(1) as f64,
                if total > 0.0 { 100.0 * p.modeled_seconds / total } else { 0.0 }
            );
        }
        out
    }
}

impl std::fmt::Debug for NativeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NativeCtx({}, {})",
            self.inner.device.profile().name,
            self.inner.toolchain.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::device::DeviceProfile;
    use ompx_sim::thread::ThreadCtx;

    fn ctx() -> NativeCtx {
        NativeCtx::new(Device::new(DeviceProfile::test_small()), Toolchain::Clang)
    }

    fn saxpy_kernel(a: f32, x: &DBuf<f32>, y: &DBuf<f32>, n: usize) -> Kernel {
        let (x, y) = (x.clone(), y.clone());
        Kernel::new("saxpy", move |tc: &mut ThreadCtx| {
            let i = tc.global_thread_id_x();
            if i < n {
                let xi = tc.read(&x, i);
                let yi = tc.read(&y, i);
                tc.flops(2);
                tc.write(&y, i, a * xi + yi);
            }
        })
    }

    #[test]
    fn malloc_memcpy_launch_roundtrip() {
        let c = ctx();
        let n = 100;
        let x = c.malloc_from(&vec![1.0f32; n]);
        let y = c.malloc::<f32>(n);
        c.memcpy_h2d(&y, &vec![2.0f32; n]);
        let k = saxpy_kernel(3.0, &x, &y, n);
        let r = c.launch(&k, 4u32, 32u32).unwrap();
        assert_eq!(r.stats.flops, 2 * n as u64);
        assert!(r.modeled.seconds > 0.0);
        let mut out = vec![0.0f32; n];
        c.memcpy_d2h(&mut out, &y);
        assert!(out.iter().all(|&v| v == 5.0));
        c.free(&x);
        c.free(&y);
    }

    #[test]
    fn profiles_accumulate_per_kernel() {
        let c = ctx();
        let x = c.malloc_from(&[1.0f32; 32]);
        let y = c.malloc::<f32>(32);
        let k = saxpy_kernel(1.0, &x, &y, 32);
        for _ in 0..3 {
            c.launch(&k, 1u32, 32u32).unwrap();
        }
        let p = c.kernel_profile("saxpy");
        assert_eq!(p.launches, 3);
        assert!(p.modeled_seconds > 0.0);
        assert!((c.total_modeled_seconds() - p.modeled_seconds).abs() < 1e-15);
        assert_eq!(c.kernel_profile("other"), KernelProfile::default());
    }

    #[test]
    fn async_launch_executes_on_stream() {
        let c = ctx();
        let x = c.malloc_from(&[2.0f32; 64]);
        let y = c.malloc::<f32>(64);
        let s = c.stream_create();
        let k = saxpy_kernel(2.0, &x, &y, 64);
        let ev = c.launch_async(&k, LaunchConfig::linear(64, 32), &s);
        ev.wait();
        assert_eq!(y.to_vec(), vec![4.0f32; 64]);
        assert!(s.modeled_busy_seconds() > 0.0);
    }

    #[test]
    fn profile_report_lists_kernels_by_cost() {
        let c = ctx();
        let x = c.malloc_from(&[1.0f32; 64]);
        let y = c.malloc::<f32>(64);
        let cheap = saxpy_kernel(1.0, &x, &y, 8);
        let costly = saxpy_kernel(1.0, &x, &y, 64);
        c.launch(&cheap, 1u32, 8u32).unwrap();
        for _ in 0..3 {
            c.launch(&costly, 2u32, 32u32).unwrap();
        }
        let report = c.profile_report();
        assert!(report.contains("saxpy"));
        assert!(report.contains("kernel profile"));
        // Four launches of the one kernel name.
        assert!(report.contains("       4"), "report:\n{report}");
    }

    #[test]
    fn timed_and_async_memcpys() {
        let c = ctx();
        let dst = c.malloc::<f32>(1024);
        let src = vec![2.5f32; 1024];
        let t = c.memcpy_h2d_timed(&dst, &src);
        assert!(t > 0.0);
        assert_eq!(dst.get(1023), 2.5);

        let dst2 = c.malloc::<f32>(1024);
        let s = c.stream_create();
        c.memcpy_h2d_async(&dst2, &src, &s);
        s.synchronize();
        assert_eq!(dst2.get(0), 2.5);
        assert!(s.modeled_busy_seconds() > 0.0);
    }

    #[test]
    fn constant_memory_upload() {
        let c = ctx();
        let table = c.memcpy_to_symbol(&[1u32, 2, 3]);
        assert_eq!(table.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn occupancy_api_tracks_register_pressure() {
        let c = ctx();
        c.codegen().set(
            "fat_kernel",
            Toolchain::Clang,
            CodegenInfo { regs_per_thread: 128, ..CodegenInfo::default() },
        );
        c.codegen().set(
            "lean_kernel",
            Toolchain::Clang,
            CodegenInfo { regs_per_thread: 16, ..CodegenInfo::default() },
        );
        let fat = c.occupancy_max_active_blocks("fat_kernel", 64, 0);
        let lean = c.occupancy_max_active_blocks("lean_kernel", 64, 0);
        assert!(lean > fat, "lean {lean} should fit more blocks than fat {fat}");
        // Shared memory also limits.
        let smem_bound = c.occupancy_max_active_blocks("lean_kernel", 64, 8 * 1024);
        assert!(smem_bound <= 2);
    }

    #[test]
    fn model_uses_toolchain_profiles() {
        let c = ctx();
        c.codegen().set(
            "saxpy",
            Toolchain::Clang,
            CodegenInfo { regs_per_thread: 128, ..CodegenInfo::default() },
        );
        let cg = c.codegen_for("saxpy");
        assert_eq!(cg.regs_per_thread, 128);
        // Unregistered kernels derive from the toolchain default.
        let cg2 = c.codegen_for("unknown_kernel");
        assert_eq!(cg2, Toolchain::Clang.derive(CodegenInfo::default()));
    }
}
