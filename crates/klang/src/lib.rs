//! # ompx-klang — the "native" kernel languages of the reproduction
//!
//! The paper compares its OpenMP extensions against programs written in the
//! vendors' kernel languages (CUDA on NVIDIA, HIP on AMD), compiled by both
//! LLVM/Clang and the vendor compilers (`nvcc`, `hipcc`). This crate rebuilds
//! that side of the experiment:
//!
//! * [`runtime::NativeCtx`] — a CUDA-runtime-shaped API (malloc/memcpy/launch
//!   with chevron-style geometry, streams, events) lowered onto the
//!   [`ompx_sim`] substrate. [`cuda`] and [`hip`] expose vendor-flavoured
//!   constructors and naming so the ported HeCBench programs read like their
//!   originals.
//! * [`toolchain`] — the compiler model: which compiler produced the kernel
//!   binary, and the resulting [`ompx_sim::timing::CodegenInfo`] (registers,
//!   static shared memory, binary size, coalescing). The paper's profiling
//!   narrative pins these values for the kernels it discusses; the database
//!   carries them and derives defaults for everything else.
//! * [`blaslib`] — simulated vendor BLAS libraries (cuBLAS-like and
//!   rocBLAS-like), the proprietary libraries the paper's §3.6 wrapper layer
//!   dispatches to.

pub mod blaslib;
pub mod cuda;
pub mod hip;
pub mod runtime;
pub mod toolchain;

pub use runtime::{LaunchResult, NativeCtx};
pub use toolchain::{CodegenDb, Toolchain};
