//! Simulated vendor BLAS libraries (cuBLAS-like and rocBLAS-like).
//!
//! §3.6 of the paper: vendor libraries such as cuBLAS are highly efficient
//! but proprietary to one programming model, so the extensions add a thin
//! wrapper layer that "invokes the appropriate vendor library based on the
//! offloading target determined at compile time". To reproduce that wrapper
//! (`ompx::blas` in the core crate) we need the vendor libraries themselves;
//! this module implements the classic Level-1/Level-3 entry points used by
//! the examples as device kernels over the simulator.
//!
//! The two "vendors" share algorithms but are registered under different
//! kernel names and codegen profiles — like the real libraries, you cannot
//! call `cublas_*` on an AMD context (the functions check the vendor and
//! panic with a linker-error-like message).

use crate::runtime::{LaunchResult, NativeCtx};
use ompx_sim::dim::{Dim3, LaunchConfig};
use ompx_sim::exec::Kernel;
use ompx_sim::mem::DBuf;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::Vendor;

/// Which vendor library an entry point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlasVendor {
    /// cuBLAS-like (NVIDIA contexts only).
    Cublas,
    /// rocBLAS-like (AMD contexts only).
    Rocblas,
}

impl BlasVendor {
    fn expect_ctx(&self, ctx: &NativeCtx, func: &str) {
        let vendor = ctx.device().profile().vendor;
        let ok = matches!(
            (self, vendor),
            (BlasVendor::Cublas, Vendor::Nvidia) | (BlasVendor::Rocblas, Vendor::Amd)
        );
        assert!(
            ok,
            "undefined reference to `{func}`: the {} library does not link against {vendor} devices",
            match self {
                BlasVendor::Cublas => "cuBLAS",
                BlasVendor::Rocblas => "rocBLAS",
            }
        );
    }

    fn prefix(&self) -> &'static str {
        match self {
            BlasVendor::Cublas => "cublas",
            BlasVendor::Rocblas => "rocblas",
        }
    }
}

const BLOCK: u32 = 256;

/// `y = alpha * x + y` (single precision).
pub fn saxpy(
    vendor: BlasVendor,
    ctx: &NativeCtx,
    alpha: f32,
    x: &DBuf<f32>,
    y: &DBuf<f32>,
) -> LaunchResult {
    let func = format!("{}Saxpy", vendor.prefix());
    vendor.expect_ctx(ctx, &func);
    let n = x.len().min(y.len());
    let k = Kernel::new(func, {
        let (x, y) = (x.clone(), y.clone());
        move |tc: &mut ThreadCtx| {
            let i = tc.global_thread_id_x();
            if i < n {
                let xv = tc.read(&x, i);
                let yv = tc.read(&y, i);
                tc.flops(2);
                tc.write(&y, i, alpha * xv + yv);
            }
        }
    });
    ctx.launch_cfg(&k, LaunchConfig::linear(n, BLOCK)).expect("saxpy launch")
}

/// Dot product of two single-precision vectors.
///
/// Implemented the way the deterministic vendor libraries do it: each block
/// accumulates a partial sum in its own cell of a per-block scratch buffer,
/// and the host combines the partials in block-linear order. Float addition
/// is not associative, so a single-cell accumulator hit by concurrently
/// scheduled blocks would make the result depend on OS scheduling —
/// breaking the simulator's bit-identical-runs contract.
pub fn sdot(
    vendor: BlasVendor,
    ctx: &NativeCtx,
    x: &DBuf<f32>,
    y: &DBuf<f32>,
) -> (f64, LaunchResult) {
    let func = format!("{}Sdot", vendor.prefix());
    vendor.expect_ctx(ctx, &func);
    let n = x.len().min(y.len());
    let blocks = n.div_ceil(BLOCK as usize).clamp(1, 1024);
    let partials = ctx.malloc::<f64>(blocks);
    let k = Kernel::new(func, {
        let (x, y, partials) = (x.clone(), y.clone(), partials.clone());
        move |tc: &mut ThreadCtx| {
            // Grid-stride loop with a per-thread partial, one atomic each —
            // into this block's cell. Lanes of a block run in a fixed
            // order, so each cell's sum has a deterministic association.
            let mut partial = 0.0f64;
            let stride = tc.global_size();
            let mut i = tc.global_rank();
            while i < n {
                let xv = tc.read(&x, i);
                let yv = tc.read(&y, i);
                tc.flops(2);
                partial += (xv * yv) as f64;
                i += stride;
            }
            tc.atomic_add(&partials, tc.block_rank(), partial);
        }
    });
    let r = ctx
        .launch_cfg(&k, LaunchConfig::new(Dim3::x(blocks as u32), Dim3::x(BLOCK)))
        .expect("sdot launch");
    let result: f64 = partials.to_vec().iter().sum();
    ctx.free(&partials);
    (result, r)
}

/// `C = alpha * A x B + beta * C` for row-major `m x k` / `k x n` matrices
/// (single precision), tiled over a 2-D grid like the vendor kernels.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    vendor: BlasVendor,
    ctx: &NativeCtx,
    m: usize,
    n: usize,
    kk: usize,
    alpha: f32,
    a: &DBuf<f32>,
    b: &DBuf<f32>,
    beta: f32,
    c: &DBuf<f32>,
) -> LaunchResult {
    let func = format!("{}Sgemm", vendor.prefix());
    vendor.expect_ctx(ctx, &func);
    assert!(a.len() >= m * kk, "A is {} elements, need {}", a.len(), m * kk);
    assert!(b.len() >= kk * n, "B is {} elements, need {}", b.len(), kk * n);
    assert!(c.len() >= m * n, "C is {} elements, need {}", c.len(), m * n);
    const TILE: u32 = 16;
    let k = Kernel::new(func, {
        let (a, b, c) = (a.clone(), b.clone(), c.clone());
        move |tc: &mut ThreadCtx| {
            let col = tc.global_thread_id_x();
            let row = tc.global_thread_id_y();
            if row < m && col < n {
                let mut sum = 0.0f32;
                for p in 0..kk {
                    let av = tc.read(&a, row * kk + p);
                    let bv = tc.read(&b, p * n + col);
                    tc.flops(2);
                    sum += av * bv;
                }
                let cv = tc.read(&c, row * n + col);
                tc.flops(3);
                tc.write(&c, row * n + col, alpha * sum + beta * cv);
            }
        }
    });
    let grid = Dim3::xy((n as u32).div_ceil(TILE).max(1), (m as u32).div_ceil(TILE).max(1));
    ctx.launch_cfg(&k, LaunchConfig::new(grid, Dim3::xy(TILE, TILE))).expect("sgemm launch")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuda::cuda_context_clang;
    use crate::hip::hip_context_clang;

    #[test]
    fn saxpy_matches_reference() {
        let ctx = cuda_context_clang();
        let n = 1000;
        let x = ctx.malloc_from(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
        let y = ctx.malloc_from(&vec![1.0f32; n]);
        saxpy(BlasVendor::Cublas, &ctx, 2.0, &x, &y);
        let got = y.to_vec();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32 + 1.0);
        }
    }

    #[test]
    fn sdot_exact_for_integers() {
        let ctx = hip_context_clang();
        let n = 4096;
        let x = ctx.malloc_from(&vec![2.0f32; n]);
        let y = ctx.malloc_from(&vec![3.0f32; n]);
        let (dot, r) = sdot(BlasVendor::Rocblas, &ctx, &x, &y);
        assert_eq!(dot, 6.0 * n as f64);
        assert!(r.stats.atomic_ops > 0);
    }

    #[test]
    fn sgemm_small_reference() {
        let ctx = cuda_context_clang();
        // 2x3 * 3x2 with known result.
        let a = ctx.malloc_from(&[1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = ctx.malloc_from(&[7.0f32, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = ctx.malloc::<f32>(4);
        sgemm(BlasVendor::Cublas, &ctx, 2, 2, 3, 1.0, &a, &b, 0.0, &c);
        assert_eq!(c.to_vec(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn sgemm_beta_accumulates() {
        let ctx = cuda_context_clang();
        let a = ctx.malloc_from(&[1.0f32]);
        let b = ctx.malloc_from(&[2.0f32]);
        let c = ctx.malloc_from(&[10.0f32]);
        sgemm(BlasVendor::Cublas, &ctx, 1, 1, 1, 3.0, &a, &b, 0.5, &c);
        assert_eq!(c.to_vec(), vec![3.0 * 2.0 + 0.5 * 10.0]);
    }

    #[test]
    #[should_panic(expected = "undefined reference")]
    fn cublas_does_not_link_on_amd() {
        let ctx = hip_context_clang();
        let x = ctx.malloc_from(&[1.0f32]);
        let y = ctx.malloc_from(&[1.0f32]);
        saxpy(BlasVendor::Cublas, &ctx, 1.0, &x, &y);
    }

    #[test]
    #[should_panic(expected = "undefined reference")]
    fn rocblas_does_not_link_on_nvidia() {
        let ctx = cuda_context_clang();
        let x = ctx.malloc_from(&[1.0f32]);
        let y = ctx.malloc_from(&[1.0f32]);
        saxpy(BlasVendor::Rocblas, &ctx, 1.0, &x, &y);
    }
}
