//! CUDA-flavoured surface over [`crate::runtime::NativeCtx`].
//!
//! Mirrors the program structure of the paper's Figure 1 so the HeCBench
//! CUDA versions port almost mechanically:
//!
//! ```
//! use ompx_klang::cuda;
//! use ompx_sim::prelude::*;
//!
//! let ctx = cuda::cuda_context_clang();           // clang-compiled CUDA
//! let n = 1000usize;
//! let d_a = ctx.malloc_from(&vec![1.0f32; n]);    // cudaMalloc + cudaMemcpy
//! let d_b = ctx.malloc::<f32>(n);
//!
//! let kernel = Kernel::new("scale2", {
//!     let (a, b) = (d_a.clone(), d_b.clone());
//!     move |tc: &mut ThreadCtx| {
//!         let i = tc.global_thread_id_x();        // blockIdx.x*blockDim.x+threadIdx.x
//!         if i < n {
//!             let v = tc.read(&a, i);
//!             tc.flops(1);
//!             tc.write(&b, i, v * 2.0);
//!         }
//!     }
//! });
//!
//! let bsize = 128u32;
//! let gsize = (n as u32 + bsize - 1) / bsize;
//! ctx.launch(&kernel, gsize, bsize).unwrap();     // kernel<<<gsize, bsize>>>
//! assert_eq!(d_b.to_vec()[0], 2.0);
//! ```

use crate::runtime::NativeCtx;
use crate::toolchain::Toolchain;
use ompx_sim::device::{Device, DeviceProfile};

/// A CUDA context is a native context whose device is (by construction in
/// this crate's constructors) an NVIDIA profile.
pub type CudaCtx = NativeCtx;

/// CUDA on the paper's A100 system, compiled with LLVM/Clang
/// (the `cuda` bars of Figure 8).
pub fn cuda_context_clang() -> CudaCtx {
    NativeCtx::new(Device::new(DeviceProfile::a100()), Toolchain::Clang)
}

/// CUDA on the paper's A100 system, compiled with `nvcc`
/// (the `cuda-nvcc` bars of Figure 8).
pub fn cuda_context_nvcc() -> CudaCtx {
    NativeCtx::new(Device::new(DeviceProfile::a100()), Toolchain::Nvcc)
}

/// CUDA context on an explicit device/toolchain pair.
pub fn cuda_context_on(device: Device, toolchain: Toolchain) -> CudaCtx {
    NativeCtx::new(device, toolchain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::Vendor;

    #[test]
    fn cuda_contexts_are_nvidia() {
        assert_eq!(cuda_context_clang().device().profile().vendor, Vendor::Nvidia);
        assert_eq!(cuda_context_nvcc().device().profile().vendor, Vendor::Nvidia);
        assert_eq!(cuda_context_clang().toolchain(), Toolchain::Clang);
        assert_eq!(cuda_context_nvcc().toolchain(), Toolchain::Nvcc);
    }

    #[test]
    fn warp_width_is_32() {
        assert_eq!(cuda_context_clang().device().profile().warp_size, 32);
    }
}
