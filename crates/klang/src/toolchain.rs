//! The compiler model: toolchains and per-kernel codegen profiles.
//!
//! On the paper's testbeds, the *same source* compiled by different
//! compilers produces measurably different kernels, and those codegen
//! differences are exactly what the paper's profiling discussion uses to
//! explain its results:
//!
//! * SU3 (§4.2.3): CUDA/Clang allocates 24 registers vs 26 for the `ompx`
//!   prototype, and the prototype's inability to eliminate inlined functions
//!   yields a 29 KB device binary vs 3.9 KB — costing ~9 % on the A100.
//! * RSBench (§4.2.2): the `omp` version uses 162 registers but benefits
//!   from 2 KB of shared memory placed by the heap-to-shared optimization.
//! * AIDW (§4.2.4): `nvcc` fails to demote shared variables that
//!   LLVM/Clang demotes to registers, costing ~5 %.
//!
//! We cannot run real compilers, so these facts become *data*: a
//! [`CodegenDb`] maps `(kernel name, toolchain)` to a
//! [`CodegenInfo`]; kernels without an explicit entry get a default derived
//! from the toolchain's style (`nvcc` slightly tighter register allocation,
//! the `ompx` prototype slightly looser with larger binaries, etc.). The
//! benchmark crate registers the paper-reported values for the kernels the
//! paper profiles; everything downstream — occupancy, roofline efficiency,
//! i-cache penalties — is computed, not asserted.

use ompx_sim::timing::CodegenInfo;
use ompx_sim::Vendor;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The compiler that produced a kernel binary.
///
/// Matches the four program versions of the paper's §4.1 methodology:
/// `cuda`/`hip` (LLVM/Clang), `cuda-nvcc`/`hip-hipcc` (vendor compilers),
/// `omp` (LLVM/Clang OpenMP offloading), and `ompx` (the paper's LLVM 18
/// prototype).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Toolchain {
    /// LLVM/Clang compiling native CUDA or HIP.
    Clang,
    /// NVIDIA's `nvcc`.
    Nvcc,
    /// AMD's `hipcc` (amdclang, but with ROCm's pass pipeline defaults).
    Hipcc,
    /// LLVM/Clang compiling traditional OpenMP target offloading.
    ClangOpenmp,
    /// The paper's proof-of-concept prototype (LLVM 18 + ompx extensions).
    OmpxPrototype,
}

impl Toolchain {
    /// Short label used in plots and tables ("cuda-nvcc" style labels are
    /// assembled by the harness from toolchain + language).
    pub fn label(&self) -> &'static str {
        match self {
            Toolchain::Clang => "clang",
            Toolchain::Nvcc => "nvcc",
            Toolchain::Hipcc => "hipcc",
            Toolchain::ClangOpenmp => "clang-openmp",
            Toolchain::OmpxPrototype => "ompx-proto",
        }
    }

    /// Derive this toolchain's default codegen for a kernel that has no
    /// explicit profile entry, starting from a neutral baseline.
    ///
    /// The adjustments encode each compiler's systematic tendencies as
    /// observed in the paper (and in general experience with these
    /// toolchains); they are deliberately small — per-kernel paper-reported
    /// values override them wherever the paper provides numbers.
    pub fn derive(&self, base: CodegenInfo) -> CodegenInfo {
        let mut cg = base;
        match self {
            Toolchain::Clang => {}
            Toolchain::Nvcc => {
                // nvcc's ptxas tends to trade a register or two for
                // scheduling freedom and keeps binaries lean.
                cg.regs_per_thread = scale_regs(cg.regs_per_thread, 1.03);
                cg.binary_bytes = (cg.binary_bytes as f64 * 0.9) as usize;
            }
            Toolchain::Hipcc => {
                cg.regs_per_thread = scale_regs(cg.regs_per_thread, 1.05);
            }
            Toolchain::ClangOpenmp => {
                // The OpenMP device runtime links extra code into every
                // kernel and its abstractions cost registers.
                cg.regs_per_thread = scale_regs(cg.regs_per_thread, 1.25);
                cg.binary_bytes = cg.binary_bytes.saturating_add(24 * 1024);
            }
            Toolchain::OmpxPrototype => {
                // §4.2.3: inlined functions are not yet eliminated from the
                // module, inflating the device image; register allocation is
                // within a couple of registers of Clang's native path.
                cg.regs_per_thread = scale_regs(cg.regs_per_thread, 1.08);
                cg.binary_bytes = cg.binary_bytes.saturating_mul(3);
            }
        }
        cg
    }
}

fn scale_regs(regs: u32, factor: f64) -> u32 {
    ((regs as f64 * factor).round() as u32).clamp(16, 255)
}

/// Registration key for a per-backend codegen profile: `kernel@nvidia`.
pub fn vendor_key(kernel: &str, vendor: Vendor) -> String {
    let v = match vendor {
        Vendor::Nvidia => "nvidia",
        Vendor::Amd => "amd",
        Vendor::Generic => "generic",
    };
    format!("{kernel}@{v}")
}

/// A database of per-kernel, per-toolchain codegen profiles.
#[derive(Default)]
pub struct CodegenDb {
    entries: RwLock<HashMap<(String, Toolchain), CodegenInfo>>,
}

impl CodegenDb {
    /// An empty database (all lookups fall back to derived defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an explicit profile for `(kernel, toolchain)`.
    pub fn set(&self, kernel: &str, toolchain: Toolchain, info: CodegenInfo) {
        self.entries.write().insert((kernel.to_string(), toolchain), info);
    }

    /// Look up the profile for `(kernel, toolchain)`, deriving a toolchain
    /// default from `base` when no explicit entry exists.
    pub fn lookup(&self, kernel: &str, toolchain: Toolchain, base: CodegenInfo) -> CodegenInfo {
        self.entries
            .read()
            .get(&(kernel.to_string(), toolchain))
            .copied()
            .unwrap_or_else(|| toolchain.derive(base))
    }

    /// Vendor-aware lookup: the same source compiles to different machine
    /// code per GPU backend, so profiles may be registered under
    /// `kernel@nvidia` / `kernel@amd` (see [`vendor_key`]). Falls back to
    /// the vendor-neutral entry, then to the toolchain derivation.
    pub fn lookup_vendor(
        &self,
        kernel: &str,
        vendor: Vendor,
        toolchain: Toolchain,
        base: CodegenInfo,
    ) -> CodegenInfo {
        let entries = self.entries.read();
        if let Some(cg) = entries.get(&(vendor_key(kernel, vendor), toolchain)) {
            return *cg;
        }
        if let Some(cg) = entries.get(&(kernel.to_string(), toolchain)) {
            return *cg;
        }
        toolchain.derive(base)
    }

    /// True when an explicit entry exists.
    pub fn has(&self, kernel: &str, toolchain: Toolchain) -> bool {
        self.entries.read().contains_key(&(kernel.to_string(), toolchain))
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no explicit entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let all = [
            Toolchain::Clang,
            Toolchain::Nvcc,
            Toolchain::Hipcc,
            Toolchain::ClangOpenmp,
            Toolchain::OmpxPrototype,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn derived_defaults_order_register_pressure() {
        let base = CodegenInfo::default();
        let clang = Toolchain::Clang.derive(base);
        let omp = Toolchain::ClangOpenmp.derive(base);
        let ompx = Toolchain::OmpxPrototype.derive(base);
        assert!(omp.regs_per_thread > clang.regs_per_thread);
        assert!(ompx.regs_per_thread >= clang.regs_per_thread);
        assert!(ompx.regs_per_thread < omp.regs_per_thread);
        assert!(ompx.binary_bytes > clang.binary_bytes);
    }

    #[test]
    fn register_scaling_clamps() {
        assert_eq!(scale_regs(250, 1.25), 255);
        assert_eq!(scale_regs(16, 0.5), 16);
        assert_eq!(scale_regs(32, 1.0), 32);
    }

    #[test]
    fn db_explicit_entry_overrides_derivation() {
        let db = CodegenDb::new();
        let base = CodegenInfo::default();
        assert!(db.is_empty());
        let derived = db.lookup("k", Toolchain::Nvcc, base);
        assert_eq!(derived, Toolchain::Nvcc.derive(base));

        let explicit = CodegenInfo { regs_per_thread: 24, ..base };
        db.set("k", Toolchain::Nvcc, explicit);
        assert!(db.has("k", Toolchain::Nvcc));
        assert_eq!(db.lookup("k", Toolchain::Nvcc, base), explicit);
        // Other toolchains still derive.
        assert!(!db.has("k", Toolchain::Clang));
        assert_eq!(db.len(), 1);
    }
}
