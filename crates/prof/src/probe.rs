//! The stream-overlap probe.
//!
//! The HeCBench ports are single-stream programs, so a profile of them
//! alone would never exercise the multi-track timeline. The probe runs the
//! paper's §3.5 idiom — two `ompx_bare` kernels dispatched `nowait
//! depend(interopobj:)` into two independent interop objects — and
//! reports how much the modeled timelines overlapped. It serves two
//! purposes: every profile report carries a genuine multi-stream trace
//! (host track, two stream tracks, flow arrows), and the overlap/serial
//! ratio is a regression canary for the stream machinery itself (if
//! dispatch ever serializes, the speedup collapses to ~1).

use ompx::bare::{BareTarget, PreparedBare};
use ompx::interop_depend::{launch_nowait_interopobj, taskwait_interopobj};
use ompx::{InteropObj, OpenMp};
use ompx_sim::stream::StreamStats;

/// What the probe measured, all in modeled seconds.
#[derive(Debug, Clone)]
pub struct OverlapReport {
    /// Both kernels through ONE stream: busy time is the sum.
    pub serial_s: f64,
    /// One kernel per stream: makespan is the max of the two busy times.
    pub overlap_s: f64,
    /// `serial_s / overlap_s` — ~2 for two equal kernels on independent
    /// streams, ~1 if dispatch degenerates to serialization.
    pub speedup: f64,
    /// Per-stream counters of the two overlap streams.
    pub stream_stats: Vec<StreamStats>,
}

fn probe_kernel(omp: &OpenMp, name: &str) -> PreparedBare {
    let n = 1usize << 14;
    let buf = omp.device().alloc::<f32>(n);
    BareTarget::new(omp, name).num_teams([16u32]).thread_limit([128u32]).prepare(move |tc| {
        let i = tc.global_thread_id_x();
        if i < n {
            let x = i as f32;
            tc.write(&buf, i, x * 1.5 + 2.0);
        }
    })
}

/// Run the probe on `omp`'s device. Spans land in the ambient
/// [`ompx_sim::span::SpanLog`], if one is installed.
pub fn overlap_probe(omp: &OpenMp) -> OverlapReport {
    let k1 = probe_kernel(omp, "probe_k1");
    let k2 = probe_kernel(omp, "probe_k2");

    // Serial leg: both kernels through one stream.
    let serial = InteropObj::init_targetsync(omp);
    launch_nowait_interopobj(&k1, &serial);
    launch_nowait_interopobj(&k2, &serial);
    taskwait_interopobj(&serial);
    let serial_s = serial.modeled_busy_seconds();

    // Overlap leg: one kernel per stream.
    let a = InteropObj::init_targetsync(omp);
    let b = InteropObj::init_targetsync(omp);
    launch_nowait_interopobj(&k1, &a);
    launch_nowait_interopobj(&k2, &b);
    taskwait_interopobj(&a);
    taskwait_interopobj(&b);
    let overlap_s = a.modeled_busy_seconds().max(b.modeled_busy_seconds());

    OverlapReport {
        serial_s,
        overlap_s,
        speedup: serial_s / overlap_s.max(1e-30),
        stream_stats: vec![a.stream().stats(), b.stream().stats()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_hostrt::KnownIssues;
    use ompx_klang::toolchain::Toolchain;
    use ompx_sim::device::{Device, DeviceProfile};

    #[test]
    fn overlap_beats_serial_on_modeled_timelines() {
        let omp = OpenMp::with_device(
            Device::new(DeviceProfile::test_small()),
            Toolchain::OmpxPrototype,
            KnownIssues::new(),
        );
        let r = overlap_probe(&omp);
        assert!(r.serial_s > 0.0 && r.overlap_s > 0.0);
        // Two equal kernels: serial is the sum, overlap the max.
        assert!(r.speedup > 1.9 && r.speedup < 2.1, "speedup {}", r.speedup);
        assert_eq!(r.stream_stats.len(), 2);
        for s in &r.stream_stats {
            assert_eq!(s.submitted, s.completed);
            assert!(s.modeled_busy_s > 0.0);
        }
    }
}
