//! Minimal JSON reader for the profiler's baseline files.
//!
//! The workspace vendors `serde` as a no-op shim (no derive, no formats),
//! so the baseline gate parses its own input. This is a small
//! recursive-descent parser for the full JSON grammar — objects, arrays,
//! strings with escapes, numbers, booleans, null — returning an owned
//! [`Json`] tree. It accepts exactly what [`crate::report`] writes and
//! anything a human edits into a baseline by hand.

use std::collections::BTreeMap;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Ordered map — baselines are written and diffed deterministically.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Field lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { b: bytes, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unmodified).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        s.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

/// Escape a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_baseline_shaped_document() {
        let doc = r#"{
            "schema": "ompx-prof-baseline-v1",
            "cells": [
                {"app": "xsbench", "checksum": "0xdeadbeef", "reported_seconds": 1.25e-3,
                 "occupancy_pct": 50.0, "bottleneck": "memlat", "excluded": false}
            ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("ompx-prof-baseline-v1"));
        let cells = v.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(c.get("app").and_then(Json::as_str), Some("xsbench"));
        assert_eq!(c.get("reported_seconds").and_then(Json::as_f64), Some(1.25e-3));
        assert_eq!(c.get("excluded"), Some(&Json::Bool(false)));
    }

    #[test]
    fn escapes_and_nesting() {
        let v = parse(r#"{"a": ["x\n\"y\"", {"b": null}], "n": -2.5E2}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_str(), Some("x\n\"y\""));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-250.0));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nope").is_err());
    }
}
