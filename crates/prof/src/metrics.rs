//! Derived per-kernel metrics, Nsight Compute style.
//!
//! The simulator's timing model (`ompx_sim::timing`) already decomposes a
//! kernel's modeled time into bandwidth / latency / compute / barrier /
//! atomic / divergence / serialization terms. A profiler's job is to turn
//! that decomposition plus the raw event counters into the quantities a
//! performance engineer actually reads off `ncu` or `rocprof`:
//! achieved occupancy, % of peak DRAM throughput, arithmetic intensity and
//! roofline position, warp-execution efficiency, coalescing efficiency,
//! and stall fractions — capped with a bottleneck classification read
//! straight off the model's dominant term.

use ompx_sim::counters::StatsSnapshot;
use ompx_sim::device::DeviceProfile;
use ompx_sim::timing::ModeledTime;

/// What limits this kernel, per the timing model's dominant term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// DRAM bandwidth (`t_bandwidth` dominates the body).
    MemoryBandwidth,
    /// Memory latency / insufficient in-flight parallelism (`t_latency`).
    MemoryLatency,
    /// Floating-point or integer issue rate (`t_compute` / `t_int`).
    Compute,
    /// Shared-memory throughput (`t_shared`).
    SharedMemory,
    /// Block barriers (`t_barrier`).
    Barrier,
    /// Global atomics (`t_atomic`).
    Atomic,
    /// Warp divergence (`t_divergence`).
    Divergence,
    /// Serialized runtime sections / per-block mode overhead
    /// (`t_serial + t_mode`).
    Serialization,
    /// Launch latency — the kernel is too small to amortize it
    /// (`t_launch`).
    Launch,
}

impl Bottleneck {
    /// Stable label used in reports and baselines.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::MemoryBandwidth => "membw",
            Bottleneck::MemoryLatency => "memlat",
            Bottleneck::Compute => "compute",
            Bottleneck::SharedMemory => "shared",
            Bottleneck::Barrier => "barrier",
            Bottleneck::Atomic => "atomic",
            Bottleneck::Divergence => "divergence",
            Bottleneck::Serialization => "serialization",
            Bottleneck::Launch => "launch",
        }
    }

    /// Inverse of [`Bottleneck::label`] (baseline parsing).
    pub fn from_label(s: &str) -> Option<Bottleneck> {
        Some(match s {
            "membw" => Bottleneck::MemoryBandwidth,
            "memlat" => Bottleneck::MemoryLatency,
            "compute" => Bottleneck::Compute,
            "shared" => Bottleneck::SharedMemory,
            "barrier" => Bottleneck::Barrier,
            "atomic" => Bottleneck::Atomic,
            "divergence" => Bottleneck::Divergence,
            "serialization" => Bottleneck::Serialization,
            "launch" => Bottleneck::Launch,
            _ => return None,
        })
    }
}

/// Classify the kernel by the largest term of its modeled time. The body
/// terms compete by `max` in the model, the overhead terms add on top; the
/// profiler simply reports whichever single term is largest.
pub fn classify(m: &ModeledTime) -> Bottleneck {
    let candidates = [
        (m.t_bandwidth, Bottleneck::MemoryBandwidth),
        (m.t_latency, Bottleneck::MemoryLatency),
        (m.t_compute.max(m.t_int), Bottleneck::Compute),
        (m.t_shared, Bottleneck::SharedMemory),
        (m.t_barrier, Bottleneck::Barrier),
        (m.t_atomic, Bottleneck::Atomic),
        (m.t_divergence, Bottleneck::Divergence),
        (m.t_serial + m.t_mode, Bottleneck::Serialization),
        (m.t_launch, Bottleneck::Launch),
    ];
    // First-wins on ties, so the ordering above is the priority order.
    let mut best = candidates[0];
    for c in &candidates[1..] {
        if c.0 > best.0 {
            best = *c;
        }
    }
    best.1
}

/// The derived metric set for one kernel (one row of the profile table).
#[derive(Debug, Clone)]
pub struct KernelMetrics {
    /// Achieved occupancy, percent of the device's maximum residency.
    pub occupancy_pct: f64,
    /// Achieved DRAM throughput as a percent of device peak.
    pub mem_throughput_pct: f64,
    /// Arithmetic intensity: FLOP per byte of global traffic.
    pub arithmetic_intensity: f64,
    /// Achieved GFLOP/s over the modeled duration.
    pub gflops: f64,
    /// Effective memory-pipeline efficiency during the bandwidth phase:
    /// bytes moved over what the peak could have moved in `t_bandwidth`.
    /// Recovers the model's `coalescing × occupancy-efficiency` product.
    pub coalescing_eff_pct: f64,
    /// Warp execution efficiency: issue slots doing useful work versus
    /// slots wasted by divergent branches.
    pub warp_exec_eff_pct: f64,
    /// Fraction of the modeled time spent at block barriers.
    pub barrier_stall_pct: f64,
    /// Fraction of the modeled time spent in global atomics.
    pub atomic_stall_pct: f64,
    /// Fraction of the modeled time in serialized runtime sections and
    /// per-block mode overhead.
    pub serialization_stall_pct: f64,
    /// Fraction of the modeled time lost to divergence replay.
    pub divergence_stall_pct: f64,
    /// The classified limiter.
    pub bottleneck: Bottleneck,
}

fn pct(x: f64) -> f64 {
    if x.is_finite() {
        (x * 100.0).clamp(0.0, 100.0)
    } else {
        0.0
    }
}

/// Derive the full metric set from the device profile, the kernel's
/// counted events, and its modeled-time breakdown.
pub fn derive_metrics(
    dev: &DeviceProfile,
    stats: &StatsSnapshot,
    m: &ModeledTime,
) -> KernelMetrics {
    let secs = m.seconds.max(1e-30);
    let bytes = stats.global_bytes() as f64 + stats.uniform_load_bytes as f64;
    let flops = stats.flops as f64;

    let mem_throughput_pct = pct(bytes / secs / dev.mem_bw_bytes_per_s);
    let arithmetic_intensity = if bytes > 0.0 { flops / bytes } else { 0.0 };
    let gflops = flops / secs / 1e9;

    let coalescing_eff_pct = if m.t_bandwidth > 0.0 {
        pct(bytes / (m.t_bandwidth * dev.mem_bw_bytes_per_s))
    } else {
        100.0
    };

    // Each divergent branch replays both sides, wasting about half the
    // warp's issue slots for one instruction.
    let wasted_slots = stats.divergent_branches as f64 * dev.warp_size as f64 / 2.0;
    let useful_slots = stats.warp_ops as f64;
    let warp_exec_eff_pct = if useful_slots + wasted_slots > 0.0 {
        pct(useful_slots / (useful_slots + wasted_slots))
    } else {
        100.0
    };

    KernelMetrics {
        occupancy_pct: pct(m.occupancy),
        mem_throughput_pct,
        arithmetic_intensity,
        gflops,
        coalescing_eff_pct,
        warp_exec_eff_pct,
        barrier_stall_pct: pct(m.t_barrier / secs),
        atomic_stall_pct: pct(m.t_atomic / secs),
        serialization_stall_pct: pct((m.t_serial + m.t_mode) / secs),
        divergence_stall_pct: pct(m.t_divergence / secs),
        bottleneck: classify(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::timing::{model_kernel, CodegenInfo, ModeOverheads};

    fn streaming_stats(n: u64) -> StatsSnapshot {
        StatsSnapshot {
            flops: 2 * n,
            global_load_bytes: 8 * n,
            global_store_bytes: 4 * n,
            warp_ops: 4 * n,
            threads_executed: n,
            blocks_executed: n / 256,
            ..StatsSnapshot::default()
        }
    }

    #[test]
    fn streaming_kernel_is_bandwidth_bound_with_sane_percentages() {
        let dev = DeviceProfile::a100();
        let n = 1u64 << 22;
        let stats = streaming_stats(n);
        let m = model_kernel(
            &dev,
            256,
            n / 256,
            0,
            &stats,
            &CodegenInfo::default(),
            &ModeOverheads::none(),
        );
        let k = derive_metrics(&dev, &stats, &m);
        assert_eq!(k.bottleneck, Bottleneck::MemoryBandwidth);
        assert!(k.occupancy_pct > 0.0 && k.occupancy_pct <= 100.0);
        assert!(k.mem_throughput_pct > 0.0 && k.mem_throughput_pct <= 100.0);
        assert!(k.warp_exec_eff_pct == 100.0, "no divergent branches counted");
        assert!(k.arithmetic_intensity > 0.0 && k.arithmetic_intensity < 1.0);
    }

    #[test]
    fn tiny_kernel_is_launch_bound() {
        let dev = DeviceProfile::a100();
        let stats = StatsSnapshot { flops: 32, warp_ops: 32, ..StatsSnapshot::default() };
        let m =
            model_kernel(&dev, 32, 1, 0, &stats, &CodegenInfo::default(), &ModeOverheads::none());
        let k = derive_metrics(&dev, &stats, &m);
        assert_eq!(k.bottleneck, Bottleneck::Launch);
    }

    #[test]
    fn bottleneck_labels_round_trip() {
        for b in [
            Bottleneck::MemoryBandwidth,
            Bottleneck::MemoryLatency,
            Bottleneck::Compute,
            Bottleneck::SharedMemory,
            Bottleneck::Barrier,
            Bottleneck::Atomic,
            Bottleneck::Divergence,
            Bottleneck::Serialization,
            Bottleneck::Launch,
        ] {
            assert_eq!(Bottleneck::from_label(b.label()), Some(b));
        }
        assert_eq!(Bottleneck::from_label("nonsense"), None);
    }
}
