//! Roofline placement: arithmetic intensity vs. achieved throughput.
//!
//! The classic log-log roofline plots a kernel at
//! `(AI, achieved GFLOP/s)` under two ceilings: the memory roof
//! `AI × peak_bandwidth` and the compute roof `peak_flops`. The ridge
//! point `peak_flops / peak_bandwidth` separates memory-bound from
//! compute-bound territory. The profiler emits one CSV row per kernel so
//! any plotting tool (or a spreadsheet) can draw Figure-style rooflines
//! without re-running the simulator.

use crate::metrics::KernelMetrics;
use ompx_sim::device::DeviceProfile;

/// One kernel's position on a device's roofline.
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    /// Row label: `app/version/kernel`.
    pub label: String,
    /// Arithmetic intensity, FLOP/byte.
    pub ai: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// The roof at this AI (min of memory and compute roofs), GFLOP/s.
    pub roof_gflops: f64,
    /// Device ridge point, FLOP/byte.
    pub ridge_ai: f64,
    /// `"memory"` when `ai < ridge_ai`, else `"compute"`.
    pub bound: &'static str,
}

/// Place one kernel on `dev`'s (fp32) roofline.
pub fn place(dev: &DeviceProfile, label: &str, m: &KernelMetrics) -> RooflinePoint {
    let peak_gflops = dev.fp32_flops / 1e9;
    let peak_bw_gbs = dev.mem_bw_bytes_per_s / 1e9;
    let ridge_ai = peak_gflops / peak_bw_gbs;
    let roof_gflops = (m.arithmetic_intensity * peak_bw_gbs).min(peak_gflops);
    RooflinePoint {
        label: label.to_string(),
        ai: m.arithmetic_intensity,
        gflops: m.gflops,
        roof_gflops,
        ridge_ai,
        bound: if m.arithmetic_intensity < ridge_ai { "memory" } else { "compute" },
    }
}

/// Render points as CSV (header + one row per kernel).
pub fn to_csv(points: &[RooflinePoint]) -> String {
    let mut out =
        String::from("label,ai_flop_per_byte,achieved_gflops,roof_gflops,ridge_ai,bound\n");
    for p in points {
        out.push_str(&format!(
            "{},{:.6},{:.3},{:.3},{:.3},{}\n",
            p.label, p.ai, p.gflops, p.roof_gflops, p.ridge_ai, p.bound
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Bottleneck;

    fn metrics(ai: f64, gflops: f64) -> KernelMetrics {
        KernelMetrics {
            occupancy_pct: 50.0,
            mem_throughput_pct: 50.0,
            arithmetic_intensity: ai,
            gflops,
            coalescing_eff_pct: 100.0,
            warp_exec_eff_pct: 100.0,
            barrier_stall_pct: 0.0,
            atomic_stall_pct: 0.0,
            serialization_stall_pct: 0.0,
            divergence_stall_pct: 0.0,
            bottleneck: Bottleneck::MemoryBandwidth,
        }
    }

    #[test]
    fn low_ai_lands_under_the_memory_roof() {
        let dev = DeviceProfile::a100();
        let p = place(&dev, "x/ompx", &metrics(0.5, 700.0));
        assert_eq!(p.bound, "memory");
        // Memory roof at AI=0.5 on ~1.5TB/s is well under fp32 peak.
        assert!(p.roof_gflops < dev.fp32_flops / 1e9);
        // Achieved never exceeds the roof by construction of the model,
        // but the placement itself does not enforce it; only sanity here.
        assert!(p.ridge_ai > 1.0);
    }

    #[test]
    fn high_ai_lands_under_the_compute_roof() {
        let dev = DeviceProfile::a100();
        let p = place(&dev, "x/cuda", &metrics(1e3, 9000.0));
        assert_eq!(p.bound, "compute");
        assert!((p.roof_gflops - dev.fp32_flops / 1e9).abs() < 1e-6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let dev = DeviceProfile::a100();
        let pts =
            vec![place(&dev, "a", &metrics(0.1, 10.0)), place(&dev, "b", &metrics(100.0, 100.0))];
        let csv = to_csv(&pts);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("label,"));
        assert!(lines[1].starts_with("a,"));
        assert!(lines[2].contains("compute"));
    }
}
