//! Profile reports and perf-regression gating.
//!
//! One profiled cell is (app, program version, system): its checksum,
//! reported modeled seconds, and the representative kernel's derived
//! metrics. This module renders cell sets as an aligned text table, CSV,
//! or JSON, and implements the baseline gate: a committed JSON baseline is
//! diffed against the current run, and any drift beyond tolerance —
//! checksum change, modeled-time drift, occupancy drift, bottleneck
//! reclassification, or a cell appearing/disappearing — fails the gate
//! (CI exits non-zero).

use crate::jsonio::{self, Json};
use crate::metrics::{Bottleneck, KernelMetrics};

/// One profiled (app, version, system) cell.
#[derive(Debug, Clone)]
pub struct CellProfile {
    /// Application name (`xsbench`, …).
    pub app: String,
    /// Program-version bar label (`ompx`, `omp`, `cuda`, `cuda-nvcc`, …).
    pub version: String,
    /// System name (`nvidia` or `amd`).
    pub system: String,
    /// Order-independent result checksum (must agree across versions).
    pub checksum: u64,
    /// Modeled seconds at the paper workload.
    pub reported_seconds: f64,
    /// The paper excluded this series (kept in reports, exempt from the
    /// cross-version checksum agreement, still gated against drift).
    pub excluded: bool,
    /// Derived metrics of the representative kernel.
    pub metrics: KernelMetrics,
}

impl CellProfile {
    /// Stable cell key used in tables and baseline matching.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.app, self.version, self.system)
    }
}

// ---- rendering -------------------------------------------------------------

const COLUMNS: [&str; 12] = [
    "cell",
    "seconds",
    "checksum",
    "occ%",
    "membw%",
    "AI",
    "gflops",
    "coal%",
    "warp%",
    "barrier%",
    "serial%",
    "bottleneck",
];

fn row_fields(c: &CellProfile) -> Vec<String> {
    let m = &c.metrics;
    vec![
        c.key(),
        format!("{:.3e}", c.reported_seconds),
        format!("{:016x}", c.checksum),
        format!("{:.1}", m.occupancy_pct),
        format!("{:.1}", m.mem_throughput_pct),
        format!("{:.3}", m.arithmetic_intensity),
        format!("{:.1}", m.gflops),
        format!("{:.1}", m.coalescing_eff_pct),
        format!("{:.1}", m.warp_exec_eff_pct),
        format!("{:.1}", m.barrier_stall_pct),
        format!("{:.1}", m.serialization_stall_pct),
        m.bottleneck.label().to_string(),
    ]
}

/// Aligned plain-text metric table (the default CLI output).
pub fn table_text(cells: &[CellProfile]) -> String {
    let rows: Vec<Vec<String>> = cells.iter().map(row_fields).collect();
    let mut widths: Vec<usize> = COLUMNS.iter().map(|h| h.len()).collect();
    for r in &rows {
        for (i, f) in r.iter().enumerate() {
            widths[i] = widths[i].max(f.len());
        }
    }
    let fmt_row = |fields: &[String]| -> String {
        fields
            .iter()
            .enumerate()
            .map(|(i, f)| format!("{:<w$}", f, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header: Vec<String> = COLUMNS.iter().map(|s| s.to_string()).collect();
    let mut out = fmt_row(&header);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (COLUMNS.len() - 1)));
    out.push('\n');
    for r in &rows {
        out.push_str(&fmt_row(r));
        out.push('\n');
    }
    out
}

/// CSV rendering (same columns as the text table).
pub fn table_csv(cells: &[CellProfile]) -> String {
    let mut out = String::from(
        "app,version,system,seconds,checksum,occupancy_pct,mem_throughput_pct,arithmetic_intensity,gflops,coalescing_eff_pct,warp_exec_eff_pct,barrier_stall_pct,atomic_stall_pct,serialization_stall_pct,divergence_stall_pct,bottleneck,excluded\n",
    );
    for c in cells {
        let m = &c.metrics;
        out.push_str(&format!(
            "{},{},{},{:e},{:016x},{:.3},{:.3},{:.6},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{}\n",
            c.app,
            c.version,
            c.system,
            c.reported_seconds,
            c.checksum,
            m.occupancy_pct,
            m.mem_throughput_pct,
            m.arithmetic_intensity,
            m.gflops,
            m.coalescing_eff_pct,
            m.warp_exec_eff_pct,
            m.barrier_stall_pct,
            m.atomic_stall_pct,
            m.serialization_stall_pct,
            m.divergence_stall_pct,
            m.bottleneck.label(),
            c.excluded
        ));
    }
    out
}

fn cell_json(c: &CellProfile) -> String {
    let m = &c.metrics;
    format!(
        "{{\"app\":\"{}\",\"version\":\"{}\",\"system\":\"{}\",\"checksum\":\"{:016x}\",\"reported_seconds\":{:e},\"occupancy_pct\":{:.6},\"mem_throughput_pct\":{:.6},\"arithmetic_intensity\":{:.6e},\"gflops\":{:.6e},\"coalescing_eff_pct\":{:.6},\"warp_exec_eff_pct\":{:.6},\"barrier_stall_pct\":{:.6},\"atomic_stall_pct\":{:.6},\"serialization_stall_pct\":{:.6},\"divergence_stall_pct\":{:.6},\"bottleneck\":\"{}\",\"excluded\":{}}}",
        jsonio::escape(&c.app),
        jsonio::escape(&c.version),
        jsonio::escape(&c.system),
        c.checksum,
        c.reported_seconds,
        m.occupancy_pct,
        m.mem_throughput_pct,
        m.arithmetic_intensity,
        m.gflops,
        m.coalescing_eff_pct,
        m.warp_exec_eff_pct,
        m.barrier_stall_pct,
        m.atomic_stall_pct,
        m.serialization_stall_pct,
        m.divergence_stall_pct,
        m.bottleneck.label(),
        c.excluded
    )
}

/// Full JSON report (also the baseline file format).
pub fn to_json(cells: &[CellProfile]) -> String {
    let body: Vec<String> = cells.iter().map(|c| format!("    {}", cell_json(c))).collect();
    format!(
        "{{\n  \"schema\": \"ompx-prof-baseline-v1\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

// ---- baseline gate ---------------------------------------------------------

/// The gated subset of one baseline cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCell {
    pub app: String,
    pub version: String,
    pub system: String,
    pub checksum: u64,
    pub reported_seconds: f64,
    pub occupancy_pct: f64,
    pub bottleneck: Bottleneck,
    pub excluded: bool,
}

impl BaselineCell {
    /// Stable cell key, matching [`CellProfile::key`].
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.app, self.version, self.system)
    }
}

/// Parse a baseline document written by [`to_json`].
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineCell>, String> {
    let doc = jsonio::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("ompx-prof-baseline-v1") => {}
        other => return Err(format!("unsupported baseline schema {other:?}")),
    }
    let cells = doc.get("cells").and_then(Json::as_arr).ok_or("baseline has no cells array")?;
    let mut out = Vec::with_capacity(cells.len());
    for (i, c) in cells.iter().enumerate() {
        let str_field = |k: &str| -> Result<String, String> {
            c.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("cell {i}: missing string field {k:?}"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            c.get(k).and_then(Json::as_f64).ok_or(format!("cell {i}: missing number field {k:?}"))
        };
        let checksum_hex = str_field("checksum")?;
        let checksum = u64::from_str_radix(&checksum_hex, 16)
            .map_err(|e| format!("cell {i}: bad checksum {checksum_hex:?}: {e}"))?;
        let bl = str_field("bottleneck")?;
        let bottleneck =
            Bottleneck::from_label(&bl).ok_or(format!("cell {i}: unknown bottleneck {bl:?}"))?;
        out.push(BaselineCell {
            app: str_field("app")?,
            version: str_field("version")?,
            system: str_field("system")?,
            checksum,
            reported_seconds: num_field("reported_seconds")?,
            occupancy_pct: num_field("occupancy_pct")?,
            bottleneck,
            excluded: matches!(c.get("excluded"), Some(Json::Bool(true))),
        });
    }
    Ok(out)
}

/// Gate tolerances. Checksums and bottleneck classes must match exactly;
/// modeled time may drift within a relative band (the model is
/// deterministic, so the default band only absorbs intentional
/// re-calibrations smaller than a report-worthy regression), occupancy
/// within an absolute percentage-point band.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Allowed relative drift of `reported_seconds` (0.05 = ±5 %).
    pub rel_seconds: f64,
    /// Allowed absolute drift of occupancy, percentage points.
    pub occupancy_pts: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance { rel_seconds: 0.05, occupancy_pts: 1.0 }
    }
}

/// One gate violation.
#[derive(Debug, Clone)]
pub struct Drift {
    /// Cell key the violation is about.
    pub cell: String,
    /// Human-readable description of what moved.
    pub what: String,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.cell, self.what)
    }
}

/// Diff a current run against a baseline. Empty result ⇒ gate passes.
pub fn diff_baseline(
    current: &[CellProfile],
    baseline: &[BaselineCell],
    tol: Tolerance,
) -> Vec<Drift> {
    let mut drifts = Vec::new();
    for cur in current {
        let key = cur.key();
        let Some(base) = baseline.iter().find(|b| b.key() == key) else {
            drifts.push(Drift {
                cell: key,
                what: "cell not present in baseline (new cell? re-record the baseline)".into(),
            });
            continue;
        };
        if cur.checksum != base.checksum {
            drifts.push(Drift {
                cell: key.clone(),
                what: format!(
                    "checksum changed: {:016x} -> {:016x} (results differ!)",
                    base.checksum, cur.checksum
                ),
            });
        }
        let rel = (cur.reported_seconds - base.reported_seconds).abs()
            / base.reported_seconds.abs().max(1e-30);
        if rel > tol.rel_seconds {
            drifts.push(Drift {
                cell: key.clone(),
                what: format!(
                    "modeled time drifted {:+.1}%: {:.3e}s -> {:.3e}s (tolerance ±{:.0}%)",
                    100.0 * (cur.reported_seconds - base.reported_seconds)
                        / base.reported_seconds.abs().max(1e-30),
                    base.reported_seconds,
                    cur.reported_seconds,
                    100.0 * tol.rel_seconds
                ),
            });
        }
        if (cur.metrics.occupancy_pct - base.occupancy_pct).abs() > tol.occupancy_pts {
            drifts.push(Drift {
                cell: key.clone(),
                what: format!(
                    "occupancy drifted: {:.1}% -> {:.1}% (tolerance ±{:.1} pts)",
                    base.occupancy_pct, cur.metrics.occupancy_pct, tol.occupancy_pts
                ),
            });
        }
        if cur.metrics.bottleneck != base.bottleneck {
            drifts.push(Drift {
                cell: key.clone(),
                what: format!(
                    "bottleneck reclassified: {} -> {}",
                    base.bottleneck.label(),
                    cur.metrics.bottleneck.label()
                ),
            });
        }
        if cur.excluded != base.excluded {
            drifts.push(Drift {
                cell: key,
                what: format!("exclusion flag changed: {} -> {}", base.excluded, cur.excluded),
            });
        }
    }
    for base in baseline {
        if !current.iter().any(|c| c.key() == base.key()) {
            drifts.push(Drift {
                cell: base.key(),
                what: "cell present in baseline but missing from this run".into(),
            });
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> KernelMetrics {
        KernelMetrics {
            occupancy_pct: 50.0,
            mem_throughput_pct: 40.0,
            arithmetic_intensity: 0.25,
            gflops: 120.0,
            coalescing_eff_pct: 80.0,
            warp_exec_eff_pct: 100.0,
            barrier_stall_pct: 1.0,
            atomic_stall_pct: 0.0,
            serialization_stall_pct: 2.0,
            divergence_stall_pct: 0.0,
            bottleneck: Bottleneck::MemoryBandwidth,
        }
    }

    fn cell(app: &str, version: &str) -> CellProfile {
        CellProfile {
            app: app.into(),
            version: version.into(),
            system: "nvidia".into(),
            checksum: 0xdeadbeefu64,
            reported_seconds: 1.0e-3,
            excluded: false,
            metrics: metrics(),
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let cells = vec![cell("xsbench", "ompx"), cell("su3", "cuda-nvcc")];
        let parsed = parse_baseline(&to_json(&cells)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].key(), "xsbench/ompx/nvidia");
        assert_eq!(parsed[0].checksum, 0xdeadbeef);
        assert_eq!(parsed[1].bottleneck, Bottleneck::MemoryBandwidth);
        assert!(diff_baseline(&cells, &parsed, Tolerance::default()).is_empty());
    }

    #[test]
    fn drift_is_detected_and_described() {
        let cells = vec![cell("xsbench", "ompx")];
        let mut base = parse_baseline(&to_json(&cells)).unwrap();
        base[0].reported_seconds *= 1.5;
        base[0].checksum ^= 1;
        base[0].bottleneck = Bottleneck::Compute;
        let drifts = diff_baseline(&cells, &base, Tolerance::default());
        let all = drifts.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n");
        assert!(all.contains("checksum changed"), "{all}");
        assert!(all.contains("modeled time drifted"), "{all}");
        assert!(all.contains("bottleneck reclassified"), "{all}");
    }

    #[test]
    fn missing_and_extra_cells_both_fail_the_gate() {
        let current = vec![cell("xsbench", "ompx")];
        let recorded = vec![cell("xsbench", "ompx"), cell("xsbench", "omp")];
        let base = parse_baseline(&to_json(&recorded)).unwrap();
        let drifts = diff_baseline(&current, &base, Tolerance::default());
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].to_string().contains("missing from this run"));

        let drifts = diff_baseline(
            &recorded,
            &parse_baseline(&to_json(&current)).unwrap(),
            Tolerance::default(),
        );
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].to_string().contains("not present in baseline"));
    }

    #[test]
    fn tolerance_band_admits_small_drift() {
        let cells = vec![cell("adam", "omp")];
        let mut base = parse_baseline(&to_json(&cells)).unwrap();
        base[0].reported_seconds *= 1.02;
        base[0].occupancy_pct += 0.5;
        assert!(diff_baseline(&cells, &base, Tolerance::default()).is_empty());
        assert_eq!(
            diff_baseline(&cells, &base, Tolerance { rel_seconds: 0.01, occupancy_pts: 0.1 }).len(),
            2
        );
    }

    #[test]
    fn text_table_is_aligned_and_complete() {
        let t = table_text(&[cell("xsbench", "ompx"), cell("stencil", "hip-hipcc")]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bottleneck"));
        assert!(lines[2].starts_with("xsbench/ompx/nvidia"));
        assert!(lines[3].starts_with("stencil/hip-hipcc/nvidia"));
        let csv = table_csv(&[cell("xsbench", "ompx")]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("membw"));
    }
}
