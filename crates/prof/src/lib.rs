//! # ompx-prof — an Nsight/rocprof-style profiler for the simulator
//!
//! The paper evaluates its OpenMP kernel-language extensions by comparing
//! modeled kernel times across program versions and devices. This crate
//! adds the observability layer a real performance study leans on:
//!
//! * **Derived metrics** ([`metrics`]) — achieved occupancy, % of peak
//!   DRAM throughput, arithmetic intensity, warp-execution and coalescing
//!   efficiency, stall fractions, and a bottleneck classification read
//!   directly off the timing model's dominant term.
//! * **Timelines** ([`chrome`]) — the runtimes record [`Span`]s (kernel
//!   bars, H2D/D2H memcpy bars, `nowait` submissions with flow arrows)
//!   into an ambient [`SpanLog`]; the exporter renders them as a
//!   multi-track Chrome/Perfetto trace: one host track, one per stream,
//!   one for the hidden helper threads.
//! * **Rooflines** ([`roofline`]) — per-kernel `(AI, GFLOP/s)` placement
//!   against the device's memory and compute roofs, as CSV.
//! * **Regression gating** ([`report`]) — profile tables in text/CSV/JSON
//!   and a committed-baseline diff that fails CI on checksum changes,
//!   modeled-time drift, occupancy drift, or bottleneck reclassification.
//! * **Stream-overlap probe** ([`probe`]) — the §3.5
//!   `depend(interopobj:)` idiom run as a self-check, so every profile
//!   carries a genuine multi-stream timeline and a serialization canary.
//!
//! The `profile` binary in `ompx-bench` drives all of this over the
//! HeCBench app × version × device matrix.
//!
//! [`Span`]: ompx_sim::span::Span
//! [`SpanLog`]: ompx_sim::span::SpanLog

pub mod chrome;
pub mod jsonio;
pub mod metrics;
pub mod probe;
pub mod report;
pub mod roofline;

pub use chrome::to_chrome_trace;
pub use metrics::{classify, derive_metrics, Bottleneck, KernelMetrics};
pub use probe::{overlap_probe, OverlapReport};
pub use report::{
    diff_baseline, parse_baseline, table_csv, table_text, to_json, BaselineCell, CellProfile,
    Drift, Tolerance,
};
pub use roofline::{place, RooflinePoint};
