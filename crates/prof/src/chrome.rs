//! Multi-track Chrome/Perfetto trace export.
//!
//! Converts a [`Span`] list into the Trace Event JSON format that
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! render: one `pid 0` process with a named thread per track — `tid 0`
//! the host thread, `tid 1` the hidden helper threads, `tid 10 + k` the
//! k-th stream (in first-appearance order) — `ph:"X"` duration events for
//! spans (timestamps in microseconds of *modeled* time), and `ph:"s"` /
//! `ph:"f"` flow arrows from a `nowait` submission to the work it
//! enqueued. Byte counts ride in `args`, so memcpy bars show their sizes.
//!
//! This supersedes the flat launch-order export in
//! [`ompx_sim::trace::LaunchTrace::to_chrome_trace`], which has no notion
//! of time or concurrency.

use ompx_sim::span::{Span, Track};

const HOST_TID: u32 = 0;
const TASKS_TID: u32 = 1;
const STREAM_TID_BASE: u32 = 10;
/// Pool-device tracks (`ompx-serve`) sit above the stream range so a trace
/// with both keeps stable ids: `tid 1000 + member index`.
const DEVICE_TID_BASE: u32 = 1000;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable tid assignment: host and tasks are fixed, streams get
/// `STREAM_TID_BASE + k` by order of first appearance in the span list.
fn tid_of(track: &Track, stream_order: &[u64]) -> u32 {
    match track {
        Track::Host => HOST_TID,
        Track::Tasks => TASKS_TID,
        Track::Stream(id) => {
            let k = stream_order.iter().position(|s| s == id).unwrap_or(0);
            STREAM_TID_BASE + k as u32
        }
        Track::Device(member) => DEVICE_TID_BASE + *member as u32,
    }
}

/// Render `spans` as a Chrome trace-event JSON document.
pub fn to_chrome_trace(spans: &[Span]) -> String {
    let mut stream_order: Vec<u64> = Vec::new();
    let mut device_order: Vec<usize> = Vec::new();
    let mut saw_tasks = false;
    for s in spans {
        match s.track {
            Track::Stream(id) => {
                if !stream_order.contains(&id) {
                    stream_order.push(id);
                }
            }
            Track::Device(member) => {
                if !device_order.contains(&member) {
                    device_order.push(member);
                }
            }
            Track::Tasks => saw_tasks = true,
            Track::Host => {}
        }
    }
    device_order.sort_unstable();

    let mut events: Vec<String> = Vec::new();
    // Thread-name metadata first, so viewers label tracks before any event.
    events.push(meta_thread_name(HOST_TID, "host (modeled time)"));
    if saw_tasks {
        events.push(meta_thread_name(TASKS_TID, "hidden helper threads (nowait tasks)"));
    }
    for (k, id) in stream_order.iter().enumerate() {
        events.push(meta_thread_name(
            STREAM_TID_BASE + k as u32,
            &format!("stream {id} (interop obj)"),
        ));
    }
    for member in &device_order {
        events.push(meta_thread_name(
            DEVICE_TID_BASE + *member as u32,
            &format!("pool device {member}"),
        ));
    }

    for s in spans {
        let tid = tid_of(&s.track, &stream_order);
        let ts_us = s.start_s * 1e6;
        let dur_us = s.dur_s * 1e6;
        let trace_arg = match s.trace {
            Some(id) => format!(",\"trace\":{id}"),
            None => String::new(),
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.6},\"dur\":{:.6},\"args\":{{\"bytes\":{}{}}}}}",
            esc(&s.name),
            s.cat.label(),
            tid,
            ts_us,
            dur_us,
            s.bytes,
            trace_arg
        ));
        // Flow arrows: tail ("s") rides at the end of the emitting span,
        // head ("f", bp:"e") binds to the enclosing receiving slice.
        if let Some(id) = s.flow_out {
            events.push(format!(
                "{{\"name\":\"nowait\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\"pid\":0,\"tid\":{},\"ts\":{:.6}}}",
                id,
                tid,
                ts_us + dur_us
            ));
        }
        if let Some(id) = s.flow_in {
            events.push(format!(
                "{{\"name\":\"nowait\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":0,\"tid\":{},\"ts\":{:.6}}}",
                id,
                tid,
                ts_us + dur_us * 0.5
            ));
        }
    }

    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

fn meta_thread_name(tid: u32, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
        tid,
        esc(name)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::span::SpanCategory;

    fn span(track: Track, name: &str, flow_out: Option<u64>, flow_in: Option<u64>) -> Span {
        Span {
            track,
            name: name.to_string(),
            cat: SpanCategory::Kernel,
            start_s: 1e-6,
            dur_s: 2e-6,
            bytes: 64,
            flow_in,
            flow_out,
            trace: None,
        }
    }

    #[test]
    fn tracks_get_named_tids() {
        let spans = vec![
            span(Track::Host, "submit", Some(1), None),
            span(Track::Stream(42), "k", None, Some(1)),
            span(Track::Stream(7), "k2", None, None),
            span(Track::Tasks, "t", None, None),
        ];
        let json = to_chrome_trace(&spans);
        assert!(json.contains("\"name\":\"host (modeled time)\""));
        assert!(json.contains("\"name\":\"stream 42 (interop obj)\""));
        assert!(json.contains("\"name\":\"stream 7 (interop obj)\""));
        assert!(json.contains("hidden helper threads"));
        // First-seen stream gets tid 10, next tid 11.
        assert!(json.contains("\"tid\":10,\"args\":{\"name\":\"stream 42"));
        assert!(json.contains("\"tid\":11,\"args\":{\"name\":\"stream 7"));
    }

    #[test]
    fn flow_arrows_pair_s_and_f_on_the_same_id() {
        let spans = vec![
            span(Track::Host, "submit", Some(9), None),
            span(Track::Stream(1), "k", None, Some(9)),
        ];
        let json = to_chrome_trace(&spans);
        assert!(json.contains("\"ph\":\"s\",\"id\":9"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":9"));
    }

    #[test]
    fn names_are_escaped_and_bytes_carried() {
        let mut s = span(Track::Host, "memcpy \"H2D\"", None, None);
        s.bytes = 4096;
        let json = to_chrome_trace(&[s]);
        assert!(json.contains("memcpy \\\"H2D\\\""));
        assert!(json.contains("\"args\":{\"bytes\":4096}"));
    }

    #[test]
    fn trace_ids_ride_in_args() {
        let mut s = span(Track::Device(0), "batch", None, None);
        s.trace = Some(17);
        let json = to_chrome_trace(&[s]);
        assert!(json.contains("\"args\":{\"bytes\":64,\"trace\":17}"));
    }
}
