//! Property-based tests on the profiler's metric invariants.

use ompx_prof::metrics::{classify, derive_metrics, Bottleneck};
use ompx_sim::counters::StatsSnapshot;
use ompx_sim::device::DeviceProfile;
use ompx_sim::timing::{model_kernel, CodegenInfo, ModeOverheads};
use proptest::prelude::*;

fn profiles() -> [DeviceProfile; 3] {
    [DeviceProfile::a100(), DeviceProfile::mi250(), DeviceProfile::test_small()]
}

/// Build a random-but-plausible snapshot from raw draws.
#[allow(clippy::too_many_arguments)]
fn snapshot(
    flops: u64,
    int_ops: u64,
    loads: u64,
    stores: u64,
    shared: u64,
    barriers: u64,
    atomics: u64,
    divergent: u64,
    serial: u64,
) -> StatsSnapshot {
    StatsSnapshot {
        flops,
        int_ops,
        global_load_bytes: loads,
        global_store_bytes: stores,
        shared_accesses: shared,
        barriers,
        warp_ops: flops + int_ops + 1,
        atomic_ops: atomics,
        divergent_branches: divergent,
        serial_ops: serial,
        const_reads: 0,
        uniform_load_bytes: 0,
        threads_executed: 1 << 12,
        blocks_executed: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every percentage metric the profiler derives stays in [0, 100] and
    /// every scalar stays finite, for arbitrary counter mixes on all
    /// device profiles.
    #[test]
    fn percentages_stay_in_range(
        flops in 0u64..1_000_000_000,
        int_ops in 0u64..1_000_000_000,
        loads in 0u64..4_000_000_000,
        stores in 0u64..4_000_000_000,
        shared in 0u64..100_000_000,
        barriers in 0u64..1_000_000,
        atomics in 0u64..10_000_000,
        divergent in 0u64..10_000_000,
        serial in 0u64..100_000_000,
        threads_pow in 5u32..11,
        blocks in 1u64..4096,
        which_dev in 0usize..3,
    ) {
        let dev = &profiles()[which_dev];
        let stats = snapshot(flops, int_ops, loads, stores, shared, barriers, atomics, divergent, serial);
        let m = model_kernel(
            dev,
            1 << threads_pow,
            blocks,
            0,
            &stats,
            &CodegenInfo::default(),
            &ModeOverheads::none(),
        );
        let k = derive_metrics(dev, &stats, &m);
        for (name, v) in [
            ("occupancy", k.occupancy_pct),
            ("mem_throughput", k.mem_throughput_pct),
            ("coalescing_eff", k.coalescing_eff_pct),
            ("warp_exec_eff", k.warp_exec_eff_pct),
            ("barrier_stall", k.barrier_stall_pct),
            ("atomic_stall", k.atomic_stall_pct),
            ("serialization_stall", k.serialization_stall_pct),
            ("divergence_stall", k.divergence_stall_pct),
        ] {
            prop_assert!((0.0..=100.0).contains(&v), "{} = {} out of range", name, v);
        }
        prop_assert!(k.arithmetic_intensity.is_finite() && k.arithmetic_intensity >= 0.0);
        prop_assert!(k.gflops.is_finite() && k.gflops >= 0.0);
        // Stall fractions are disjoint additive shares of the total, so
        // their sum cannot exceed the whole.
        let stalls = k.barrier_stall_pct + k.atomic_stall_pct
            + k.serialization_stall_pct + k.divergence_stall_pct;
        prop_assert!(stalls <= 100.0 + 1e-9, "stall fractions sum to {}", stalls);
    }

    /// The bottleneck classification always names the modeled breakdown's
    /// largest term.
    #[test]
    fn bottleneck_matches_dominant_term(
        flops in 0u64..1_000_000_000,
        loads in 0u64..4_000_000_000,
        barriers in 0u64..10_000_000,
        atomics in 0u64..10_000_000,
        divergent in 0u64..10_000_000,
        serial in 0u64..1_000_000_000,
        which_dev in 0usize..3,
    ) {
        let dev = &profiles()[which_dev];
        let stats = snapshot(flops, flops / 2, loads, loads / 4, 0, barriers, atomics, divergent, serial);
        let m = model_kernel(dev, 256, 64, 0, &stats, &CodegenInfo::default(), &ModeOverheads::none());
        let b = classify(&m);
        let terms = [
            (m.t_bandwidth, Bottleneck::MemoryBandwidth),
            (m.t_latency, Bottleneck::MemoryLatency),
            (m.t_compute.max(m.t_int), Bottleneck::Compute),
            (m.t_shared, Bottleneck::SharedMemory),
            (m.t_barrier, Bottleneck::Barrier),
            (m.t_atomic, Bottleneck::Atomic),
            (m.t_divergence, Bottleneck::Divergence),
            (m.t_serial + m.t_mode, Bottleneck::Serialization),
            (m.t_launch, Bottleneck::Launch),
        ];
        let max_term = terms.iter().map(|t| t.0).fold(f64::NEG_INFINITY, f64::max);
        let winner = terms.iter().find(|t| t.1 == b).expect("classified term present");
        prop_assert!(
            winner.0 >= max_term,
            "classified {:?} at {} but max term is {}",
            b, winner.0, max_term
        );
    }

    /// Baselines written by the reporter always parse back losslessly and
    /// diff clean against themselves, whatever the cell contents.
    #[test]
    fn baseline_roundtrip_never_drifts(
        checksum in 0u64..u64::MAX,
        seconds_exp in -6i32..2,
        occupancy in 0u32..101,
        which_bottleneck in 0usize..9,
        excluded in proptest::bool::ANY,
    ) {
        let bottlenecks = [
            Bottleneck::MemoryBandwidth, Bottleneck::MemoryLatency, Bottleneck::Compute,
            Bottleneck::SharedMemory, Bottleneck::Barrier, Bottleneck::Atomic,
            Bottleneck::Divergence, Bottleneck::Serialization, Bottleneck::Launch,
        ];
        let cell = ompx_prof::CellProfile {
            app: "probe".into(),
            version: "ompx".into(),
            system: "nvidia".into(),
            checksum,
            reported_seconds: 10f64.powi(seconds_exp),
            excluded,
            metrics: ompx_prof::KernelMetrics {
                occupancy_pct: occupancy as f64,
                mem_throughput_pct: 50.0,
                arithmetic_intensity: 0.5,
                gflops: 10.0,
                coalescing_eff_pct: 75.0,
                warp_exec_eff_pct: 100.0,
                barrier_stall_pct: 0.0,
                atomic_stall_pct: 0.0,
                serialization_stall_pct: 0.0,
                divergence_stall_pct: 0.0,
                bottleneck: bottlenecks[which_bottleneck],
            },
        };
        let cells = vec![cell];
        let parsed = ompx_prof::parse_baseline(&ompx_prof::to_json(&cells)).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].checksum, checksum);
        prop_assert_eq!(parsed[0].bottleneck, bottlenecks[which_bottleneck]);
        let drifts = ompx_prof::diff_baseline(&cells, &parsed, ompx_prof::Tolerance::default());
        prop_assert!(drifts.is_empty(), "self-diff drifted: {:?}", drifts);
    }
}
