//! Offline shim for the `serde` API surface this workspace uses.
//!
//! The project derives `Serialize`/`Deserialize` on plain-old-data structs
//! as forward-looking metadata, but never serializes through serde at
//! runtime (trace JSON is hand-rolled). The traits are therefore empty
//! markers with blanket impls, and the derives (re-exported from the
//! sibling `serde_derive` shim) expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
