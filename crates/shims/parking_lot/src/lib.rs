//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of synchronization primitives it needs, backed by
//! `std::sync`. Semantics match parking_lot where the workspace relies on
//! them: `lock()`/`read()`/`write()` return guards directly (poisoning is
//! swallowed — a panicking lane must not wedge the whole simulator), and
//! `Condvar::wait` takes the guard by `&mut`.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive with parking_lot's non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership of it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard stolen during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard stolen during condvar wait")
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard stolen during condvar wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with parking_lot's non-poisoning `read()`/`write()`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut guard = m.lock();
            *guard = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut guard = m.lock();
        while !*guard {
            cv.wait(&mut guard);
        }
        drop(guard);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_mutex_still_locks() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
