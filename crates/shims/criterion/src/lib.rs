//! Offline shim for the `criterion` surface this workspace's benches use.
//!
//! Implements just enough of the Criterion API (`benchmark_group`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!`/
//! `criterion_main!` macros) to compile and run the `harness = false`
//! bench targets without crates.io access. Measurement is a simple
//! best-of-N wall-clock timer printed per benchmark; no statistics,
//! no HTML reports.

use std::time::{Duration, Instant};

/// Top-level handle passed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if id.is_empty() { self.name.clone() } else { format!("{}/{}", self.name, id) };
        let mut bencher = Bencher { best: Duration::MAX, iters: 0 };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        if bencher.iters > 0 {
            println!("bench: {label:<48} best {:>12.3?}", bencher.best);
        } else {
            println!("bench: {label:<48} (no iterations)");
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    best: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        let took = start.elapsed();
        self.best = self.best.min(took);
        self.iters += 1;
    }
}

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 3);
    }
}
