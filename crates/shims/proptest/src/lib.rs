//! Offline shim for the `proptest` surface this workspace uses.
//!
//! A deterministic mini property-testing runner: the `proptest!` macro runs
//! each property for `ProptestConfig::cases` inputs drawn from a fixed-seed
//! splitmix64 stream (seeded per test by the test's name), so failures
//! reproduce exactly across runs. Supported strategies are the ones the
//! workspace's tests actually draw from: integer/float ranges,
//! `proptest::bool::ANY`, and `proptest::collection::vec`.

// Let in-crate tests and macro expansions use `proptest::` paths.
extern crate self as proptest;

/// Deterministic splitmix64 generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Seed derived from a test name so each property gets its own stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seeded(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $ty;
                }
                start + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-property runner configuration. Only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Strategy, TestRng};
}

/// Assert inside a property; failure reports the failing case deterministically.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition. (The shim counts skipped cases as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The `proptest!` block macro: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` running the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let run = || {
                    $body
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case} of {} failed with inputs: {:?}",
                        stringify!($name),
                        ($(&$arg,)*)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..9, b in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in proptest::collection::vec(1usize..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (1..10).contains(&x)));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }
}
