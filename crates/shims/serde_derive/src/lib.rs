//! Offline shim for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` only as metadata
//! on plain-old-data structs (all JSON the project emits is hand-rolled in
//! `ompx_sim::trace`), so the derives expand to nothing. The marker traits
//! live in the sibling `serde` shim and carry blanket implementations.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
