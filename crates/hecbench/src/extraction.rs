//! Summary auto-extraction over the 24-cell registry: run each kernel
//! under the simulator's memory-trace hooks on two small *fit* grids,
//! let `ompx_analyzer::extract` fit affine access expressions (plus
//! guards and barrier phases) to the observed events, replay-validate
//! the draft on a larger grid the fit never saw, and diff the result
//! against the hand-written summary in [`crate::summaries`].
//!
//! The extraction spec reuses the registry's *geometry* — launch shape,
//! flags, domain, buffer/shared declarations — but none of its accesses,
//! guards, frees or barriers: those are exactly what extraction must
//! rediscover (or soundly give up on: data-dependent gathers degrade to
//! whole-buffer opaque accesses flagged `SummaryImprecise`).
//!
//! Grid choices are deliberate:
//! * every app has at least one multi-block fit grid, so thread-id,
//!   block-id and item terms are distinguishable (on a single block
//!   `tid == rank == item` and any of the three would fit);
//! * parameter values are pairwise distinct within each valuation and
//!   vary across the fit valuations, so fitted constants symbolize to
//!   the right parameter;
//! * stencil grids are multiples of its 256-thread block: the kernel's
//!   edge clamps still fire at the grid boundary, but no ragged-tail
//!   behavior is baked in that a larger exact-multiple grid would miss.

use crate::common::{with_mem_trace_full, ProgVersion, System, WorkScale};
use crate::summaries::{summary_for, version_str};
use ompx_analyzer::{
    analyze, diff_summaries, extract, validate_replay, warp_size_for, DiffClass, DiffEntry,
    ExtractSpec, Extraction, Trace, Valuation,
};
use ompx_sanitizer::{Finding, Severity};

// ---- per-app grid choices ----------------------------------------------

fn xsbench_val(name: &str, lookups: i64, ni: i64, ng: i64) -> Valuation {
    let sizes = crate::xsbench::material_sizes(ni as usize);
    let n_entries: usize = sizes.iter().sum();
    Valuation::new(
        name,
        &[
            ("lookups", lookups),
            ("n_isotopes", ni),
            ("n_gridpoints", ng),
            ("n_entries", n_entries as i64),
            ("n_mats", sizes.len() as i64),
        ],
    )
}

fn rsbench_val(name: &str, lookups: i64, ni: i64, nw: i64) -> Valuation {
    let sizes = crate::rsbench::material_sizes(ni as usize);
    let n_entries: usize = sizes.iter().sum();
    Valuation::new(
        name,
        &[
            ("lookups", lookups),
            ("n_isotopes", ni),
            ("n_windows", nw),
            ("n_entries", n_entries as i64),
            ("n_mats", sizes.len() as i64),
        ],
    )
}

fn aidw_val(name: &str, np: i64, nq: i64) -> Valuation {
    let tiles = (np as usize).div_ceil(crate::aidw::BLOCK) as i64;
    Valuation::new(name, &[("n_points", np), ("n_queries", nq), ("n_tiles", tiles)])
}

/// The small grids a cell is traced on for fitting. Panics on an unknown
/// app name (callers validate against [`crate::APP_NAMES`]).
pub fn fit_valuations(app: &str) -> Vec<Valuation> {
    match app {
        "xsbench" => vec![xsbench_val("fit-a", 96, 5, 16), xsbench_val("fit-b", 320, 7, 24)],
        "rsbench" => vec![rsbench_val("fit-a", 64, 5, 10), rsbench_val("fit-b", 320, 7, 20)],
        "su3" => vec![
            Valuation::new("fit-a", &[("sites", 96), ("iterations", 1)]),
            Valuation::new("fit-b", &[("sites", 320), ("iterations", 1)]),
        ],
        "aidw" => vec![aidw_val("fit-a", 100, 96), aidw_val("fit-b", 230, 160)],
        "adam" => vec![
            Valuation::new("fit-a", &[("n", 300), ("steps", 2)]),
            Valuation::new("fit-b", &[("n", 600), ("steps", 2)]),
        ],
        "stencil" => vec![
            Valuation::new("fit-a", &[("length", 512), ("iterations", 2)]),
            Valuation::new("fit-b", &[("length", 1024), ("iterations", 2)]),
        ],
        other => panic!("unknown app `{other}`"),
    }
}

/// The larger, unseen grids the draft summary must replay-validate on
/// before anything consumes it. Strictly bigger than every fit grid.
pub fn validate_valuations(app: &str) -> Vec<Valuation> {
    match app {
        "xsbench" => vec![xsbench_val("valid", 520, 9, 32)],
        "rsbench" => vec![rsbench_val("valid", 520, 9, 28)],
        "su3" => vec![Valuation::new("valid", &[("sites", 520), ("iterations", 1)])],
        "aidw" => vec![aidw_val("valid", 420, 288)],
        "adam" => vec![Valuation::new("valid", &[("n", 1000), ("steps", 2)])],
        "stencil" => vec![Valuation::new("valid", &[("length", 1536), ("iterations", 2)])],
        other => panic!("unknown app `{other}`"),
    }
}

/// A pseudo-random concrete grid for one app, honoring its structural
/// constraints (derived parameters, stencil's exact-multiple tiles) while
/// varying every independent workload dimension with `s`. Property tests
/// replay extracted summaries on these unseen grids to check the
/// `observed ⊆ predicted` invariant generalizes beyond the fit grids.
pub fn random_valuation(app: &str, s: u64) -> Valuation {
    let s = s as i64;
    match app {
        "xsbench" => xsbench_val("random", 64 + (s * 13) % 448, 4 + s % 7, 8 + (s * 5) % 40),
        "rsbench" => rsbench_val("random", 64 + (s * 17) % 448, 4 + s % 6, 6 + (s * 3) % 26),
        "su3" => {
            Valuation::new("random", &[("sites", 32 + (s * 11) % 600), ("iterations", 1 + s % 2)])
        }
        "aidw" => aidw_val("random", 64 + (s * 7) % 400, 32 + (s * 9) % 300),
        "adam" => Valuation::new("random", &[("n", 100 + (s * 19) % 1100), ("steps", 1 + s % 3)]),
        // The tiled stencil's clamp behavior is fit (and declared valid)
        // on exact block multiples; randomize the number of tiles.
        "stencil" => {
            Valuation::new("random", &[("length", 256 * (1 + s % 7)), ("iterations", 1 + s % 3)])
        }
        other => panic!("unknown app `{other}`"),
    }
}

/// The extraction spec for one cell: the hand-written summary's geometry
/// (launch, flags, domain, buffer/shared declarations) with all of its
/// *behavior* — accesses, guards, frees, barriers — stripped, plus the
/// fit and validation grids above.
pub fn extract_spec_for(app: &str, version: ProgVersion) -> ExtractSpec {
    let hand = summary_for(app, version);
    ExtractSpec {
        kernel: hand.kernel,
        app: hand.app,
        version: hand.version,
        launch: hand.launch,
        flags: hand.flags,
        warp_ops: hand.warp_ops,
        domain: hand.domain,
        buffers: hand.buffers,
        shared: hand.shared,
        fit: fit_valuations(app),
        validate: validate_valuations(app),
    }
}

/// Run one cell with the memory trace attached on the concrete grid the
/// valuation describes, returning both event streams (accesses and
/// barriers). Workload parameters not named by the valuation keep their
/// `Test`-scale values.
pub fn trace_cell(app: &str, sys: System, version: ProgVersion, val: &Valuation) -> Trace {
    let p = |k: &str| {
        val.get(k).unwrap_or_else(|| panic!("valuation `{}` missing `{k}`", val.name)) as usize
    };
    let ((), events, barriers) = with_mem_trace_full(|| match app {
        "xsbench" => {
            let mut q = crate::xsbench::Params::for_scale(WorkScale::Test);
            q.lookups = p("lookups");
            q.n_isotopes = p("n_isotopes");
            q.n_gridpoints = p("n_gridpoints");
            crate::xsbench::run_with_params(sys, version, q);
        }
        "rsbench" => {
            let mut q = crate::rsbench::Params::for_scale(WorkScale::Test);
            q.lookups = p("lookups");
            q.n_isotopes = p("n_isotopes");
            q.n_windows = p("n_windows");
            crate::rsbench::run_with_params(sys, version, q);
        }
        "su3" => {
            let mut q = crate::su3::Params::for_scale(WorkScale::Test);
            q.sites = p("sites");
            q.iterations = p("iterations");
            crate::su3::run_with_params(sys, version, q);
        }
        "aidw" => {
            let mut q = crate::aidw::Params::for_scale(WorkScale::Test);
            q.n_points = p("n_points");
            q.n_queries = p("n_queries");
            crate::aidw::run_with_params(sys, version, q);
        }
        "adam" => {
            let mut q = crate::adam::Params::for_scale(WorkScale::Test);
            q.n = p("n");
            q.steps = p("steps");
            crate::adam::run_with_params(sys, version, q);
        }
        "stencil" => {
            let mut q = crate::stencil::Params::for_scale(WorkScale::Test);
            q.length = p("length");
            q.iterations = p("iterations");
            crate::stencil::run_with_params(sys, version, q);
        }
        other => panic!("unknown app `{other}`"),
    });
    Trace { events, barriers }
}

// ---- per-cell orchestration --------------------------------------------

/// Everything one cell's extraction produced: the draft summary, its
/// static analysis, the replay validation on each unseen grid, and the
/// diff against the hand-written summary.
pub struct CellReport {
    pub app: String,
    pub version: String,
    pub system: String,
    pub warp_size: u32,
    pub extraction: Extraction,
    /// `analyze(extracted, warp)` — `SummaryImprecise` warnings expected
    /// for degraded gathers; errors are failures.
    pub analysis: Vec<Finding>,
    /// Replay findings per validation valuation, `(name, findings)`.
    pub validation: Vec<(String, Vec<Finding>)>,
    /// Predicted-set diff vs the hand-written summary, under the first
    /// (largest) validation valuation.
    pub diff: Vec<DiffEntry>,
}

impl CellReport {
    /// Every reason this cell fails acceptance: static-analysis errors on
    /// the draft, replay mismatches on the unseen grids, or predicted-set
    /// divergence from the hand-written summary that no opaque access
    /// explains. `SummaryImprecise` warnings and strictly-more-precise
    /// refinements are not failures.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in &self.analysis {
            if f.severity == Severity::Error {
                out.push(format!("analysis: [{}] {}", f.tool, f.message));
            }
        }
        for (name, findings) in &self.validation {
            for f in findings {
                if f.severity == Severity::Error {
                    out.push(format!("replay `{name}`: [{}] {}", f.tool, f.message));
                }
            }
        }
        for d in &self.diff {
            if d.class == DiffClass::Unexplained {
                out.push(format!("diff {} {:?}: {}", d.space, d.mode, d.detail));
            }
        }
        out
    }

    /// The grid shapes the draft replay-validated cleanly on, as
    /// `name: grid (gx,gy,gz) x block (bx,by,bz)` strings. Empty while any
    /// validation grid still has an error — a draft nobody may consume.
    pub fn validated_grids(&self) -> Vec<String> {
        if self.validation.iter().any(|(_, fs)| fs.iter().any(|f| f.severity == Severity::Error)) {
            return Vec::new();
        }
        let s = &self.extraction.summary;
        self.validation
            .iter()
            .filter_map(|(name, _)| {
                let val = s.valuations.iter().find(|v| &v.name == name)?;
                let g = s.ground(val).ok()?;
                Some(format!(
                    "{name}: grid ({},{},{}) x block ({},{},{})",
                    g.grid.0,
                    g.grid.1,
                    g.grid.2,
                    s.launch.block.0,
                    s.launch.block.1,
                    s.launch.block.2,
                ))
            })
            .collect()
    }
}

/// Trace, fit, replay-validate and diff one app x version cell on one
/// system. The system picks the warp size the static analysis runs at
/// (nvidia: 32, amd: 64).
pub fn extract_cell(app: &str, sys: System, version: ProgVersion) -> Result<CellReport, String> {
    let spec = extract_spec_for(app, version);
    let traces: Vec<Trace> = spec.fit.iter().map(|v| trace_cell(app, sys, version, v)).collect();
    let ext = extract(&spec, &traces)?;

    let warp = warp_size_for(sys.label());
    let analysis = analyze(&ext.summary, warp);
    let mut validation = Vec::new();
    for val in &spec.validate {
        let t = trace_cell(app, sys, version, val);
        validation
            .push((val.name.clone(), validate_replay(&ext.summary, val, &t.events, &t.barriers)));
    }

    let hand = summary_for(app, version);
    let dval = spec.validate.first().ok_or("no validation valuations")?;
    let diff = diff_summaries(&ext.summary, &hand, dval)?;

    Ok(CellReport {
        app: app.into(),
        version: version_str(version).into(),
        system: sys.label().into(),
        warp_size: warp,
        extraction: ext,
        analysis,
        validation,
        diff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Extract every version of one app on nvidia and require acceptance:
    /// analysis clean of errors, replay clean on the unseen grid, diff
    /// free of unexplained divergence.
    fn cell_extracts_clean(app: &str) {
        for version in ProgVersion::all() {
            let r = extract_cell(app, System::Nvidia, version)
                .unwrap_or_else(|e| panic!("{app}/{version:?} extraction failed: {e}"));
            let failures = r.failures();
            assert!(
                failures.is_empty(),
                "{app}/{} extraction not accepted:\n{}",
                r.version,
                failures.join("\n")
            );
            assert!(!r.validated_grids().is_empty(), "{app}/{} has no validated grids", r.version);
        }
    }

    #[test]
    fn xsbench_extracts_clean() {
        cell_extracts_clean("xsbench");
    }

    #[test]
    fn rsbench_extracts_clean() {
        cell_extracts_clean("rsbench");
    }

    #[test]
    fn su3_extracts_clean() {
        cell_extracts_clean("su3");
    }

    #[test]
    fn aidw_extracts_clean() {
        cell_extracts_clean("aidw");
    }

    #[test]
    fn adam_extracts_clean() {
        cell_extracts_clean("adam");
    }

    #[test]
    fn stencil_extracts_clean() {
        cell_extracts_clean("stencil");
    }

    /// XSBench's data-dependent table walks cannot be affine-fit: the
    /// draft must degrade them to opaque whole-buffer accesses that the
    /// checks surface as `SummaryImprecise`, never silently tighten.
    #[test]
    fn xsbench_gathers_degrade_to_imprecise() {
        let r = extract_cell("xsbench", System::Nvidia, ProgVersion::Ompx).unwrap();
        assert!(
            !r.extraction.imprecise.is_empty(),
            "expected opaque fallbacks for the gather buffers"
        );
        assert!(r.extraction.summary.accesses.iter().any(|a| a.imprecise));
        assert!(
            r.analysis
                .iter()
                .any(|f| f.severity == Severity::Warning && f.message.contains("SummaryImprecise")),
            "imprecise access should surface as a SummaryImprecise warning"
        );
    }

    /// SU3 is fully affine: extraction should reproduce it without any
    /// opaque fallback, and the fitted summary must be in-register with
    /// the hand-written one (equal or strictly more precise everywhere).
    #[test]
    fn su3_extraction_is_fully_affine() {
        let r = extract_cell("su3", System::Nvidia, ProgVersion::Ompx).unwrap();
        assert!(r.extraction.imprecise.is_empty(), "{:?}", r.extraction.imprecise);
        assert!(r.extraction.summary.accesses.iter().all(|a| !a.imprecise));
    }

    /// The staged aidw kernel's two barrier phases (tile load / scan) must
    /// be rediscovered from the trace, not copied from the registry.
    #[test]
    fn aidw_extraction_infers_two_phases() {
        let r = extract_cell("aidw", System::Nvidia, ProgVersion::Ompx).unwrap();
        assert_eq!(r.extraction.phases, 2, "{}", ompx_analyzer::describe(&r.extraction.summary));
        assert_eq!(r.extraction.summary.barriers.len(), 2);
    }
}
