//! Adam: the adaptive-moment-estimation optimizer step (Kingma & Ba),
//! iterated over a small parameter vector — **launch-bound** (§4.2.5).
//!
//! The paper's CLI (`10000 200 100`) updates 10,000 parameters for 200
//! steps: each kernel is tiny, so what Figure 8e/8k measures is dominated
//! by per-launch and per-block runtime costs. The paper's finding: the
//! `omp` version is **8× slower** because "an issue in LLVM OpenMP …
//! results in the launch of only 32 threads per thread block" — and the
//! region falls back to generic mode. Both behaviours are applied through
//! the [`ompx_hostrt::quirks`] registry (kernel name `adam`), so the 8×
//! emerges from the mode overheads and the crippled geometry rather than
//! being asserted.

use crate::common::*;
use ompx::BareTarget;
use ompx_klang::toolchain::{vendor_key, CodegenDb, Toolchain};
use ompx_sim::dim::LaunchConfig;
use ompx_sim::exec::Kernel;
use ompx_sim::mem::DBuf;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::timing::CodegenInfo;
use ompx_sim::{Device, Vendor};

/// Benchmark metadata (Figure 6 row).
pub fn info() -> BenchInfo {
    BenchInfo {
        name: "Adam",
        description: "Adaptive moment estimation optimizer step (machine learning)",
        paper_cmdline: "10000 200 100",
        reported_metric: "total milliseconds over 200 steps",
    }
}

pub(crate) const KERNEL: &str = "adam";
const SEED: u64 = 0x5eed45;
pub(crate) const BLOCK: u32 = 256;

const LR: f32 = 1e-3;
const BETA1: f32 = 0.9;
const BETA2: f32 = 0.999;
const EPS: f32 = 1e-8;

/// Workload parameters. The parameter count is small enough to simulate at
/// paper scale; only the step count is shortened.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub n: usize,
    pub steps: usize,
    pub paper_steps: u64,
}

impl Params {
    pub fn for_scale(scale: WorkScale) -> Self {
        match scale {
            WorkScale::Default => Params { n: 10_000, steps: 20, paper_steps: 200 },
            WorkScale::Test => Params { n: 1_000, steps: 4, paper_steps: 200 },
        }
    }

    /// Elements are at paper scale for `Default`; tests scale up.
    fn elem_factor(&self) -> f64 {
        10_000.0 / self.n as f64
    }
}

#[derive(Clone)]
struct AdamState {
    p: DBuf<f32>,
    m: DBuf<f32>,
    v: DBuf<f32>,
    g: DBuf<f32>,
}

fn generate(device: &Device, n: usize) -> AdamState {
    let mk = |tag: u64| -> Vec<f32> {
        (0..n).map(|i| (item_uniform(SEED ^ tag, i as u64) - 0.5) as f32).collect()
    };
    let state = AdamState {
        p: device.alloc_from(&mk(0x91)),
        m: device.alloc_from(&vec![0.0f32; n]),
        v: device.alloc_from(&vec![0.0f32; n]),
        g: device.alloc_from(&mk(0x92)),
    };
    state.p.set_label("p");
    state.m.set_label("m");
    state.v.set_label("v");
    state.g.set_label("g");
    state
}

/// One parameter's Adam update at time step `t` (1-based) — shared by all
/// versions.
#[inline]
fn adam_update(tc: &mut ThreadCtx<'_>, i: usize, t: u64, s: &AdamState) {
    let g = tc.read(&s.g, i);
    let m = tc.read(&s.m, i);
    let v = tc.read(&s.v, i);
    let p = tc.read(&s.p, i);
    let m_new = BETA1 * m + (1.0 - BETA1) * g;
    let v_new = BETA2 * v + (1.0 - BETA2) * g * g;
    let bc1 = 1.0 - BETA1.powi(t as i32);
    let bc2 = 1.0 - BETA2.powi(t as i32);
    let m_hat = m_new / bc1;
    let v_hat = v_new / bc2;
    let p_new = p - LR * m_hat / (v_hat.sqrt() + EPS);
    tc.flops(18);
    tc.write(&s.m, i, m_new);
    tc.write(&s.v, i, v_new);
    tc.write(&s.p, i, p_new);
}

fn register_profiles(db: &CodegenDb) {
    let base = CodegenInfo { fp64_fraction: 0.0, ..CodegenInfo::default() };
    db.set(KERNEL, Toolchain::Clang, CodegenInfo { regs_per_thread: 24, coalescing: 0.85, ..base });
    db.set(KERNEL, Toolchain::Nvcc, CodegenInfo { regs_per_thread: 24, coalescing: 0.85, ..base });
    db.set(
        KERNEL,
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 26, coalescing: 0.85, binary_bytes: 12 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 40, coalescing: 0.8, binary_bytes: 32 * 1024, ..base },
    );
    // §4.2.5 AMD: ompx is 16.6 % faster than HIP — the AMD backend's
    // native codegen for this tiny kernel is less efficient at issuing the
    // strided f32 accesses.
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 28, coalescing: 0.72, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Hipcc,
        CodegenInfo { regs_per_thread: 28, coalescing: 0.75, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 30, coalescing: 0.88, binary_bytes: 12 * 1024, ..base },
    );
}

/// Run one program version on one system.
pub fn run(sys: System, version: ProgVersion, scale: WorkScale) -> RunOutcome {
    run_with_params(sys, version, Params::for_scale(scale))
}

pub(crate) fn run_with_params(sys: System, version: ProgVersion, params: Params) -> RunOutcome {
    let n = params.n;
    let factor = params.elem_factor();

    let finish = |label: &str,
                  checksum: u64,
                  per_kernel: ompx_sim::timing::ModeledTime,
                  stats: ompx_sim::counters::StatsSnapshot,
                  pipelined: bool,
                  note: Option<String>| {
        let total = if pipelined {
            pipelined_total_at(&per_kernel, params.paper_steps, launch_issue_s(sys, version))
        } else {
            sync_total(&per_kernel, params.paper_steps)
        };
        RunOutcome {
            label: label.to_string(),
            checksum,
            reported_seconds: total,
            kernel_model: per_kernel,
            stats,
            excluded: false,
            note,
        }
    };

    match version {
        ProgVersion::Native | ProgVersion::NativeVendor => {
            let ctx = native_ctx(sys, version == ProgVersion::NativeVendor);
            register_profiles(ctx.codegen());
            let state = generate(ctx.device(), n);
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            for t in 1..=params.steps as u64 {
                let kernel = Kernel::new(KERNEL, {
                    let state = state.clone();
                    move |tc: &mut ThreadCtx<'_>| {
                        let i = tc.global_thread_id_x();
                        if i < n {
                            adam_update(tc, i, t, &state);
                        }
                    }
                });
                let r = ctx.launch_cfg(&kernel, LaunchConfig::linear(n, BLOCK)).expect("launch");
                agg = agg.merged(&r.stats);
            }
            let per_launch = agg.scaled(factor / params.steps as f64);
            let modeled = ctx.model(KERNEL, BLOCK, 0, &per_launch);
            finish(
                version.label(sys),
                checksum_f32_items(&state.p.to_vec()),
                modeled,
                per_launch,
                true,
                None,
            )
        }
        ProgVersion::Ompx => {
            let omp = ompx_runtime(sys);
            register_profiles(omp.codegen());
            let state = generate(omp.device(), n);
            let teams = (n as u32).div_ceil(BLOCK);
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            let mut last = None;
            for t in 1..=params.steps as u64 {
                let prepared = BareTarget::new(&omp, KERNEL)
                    .num_teams([teams])
                    .thread_limit([BLOCK])
                    .prepare({
                        let state = state.clone();
                        move |tc| {
                            let i = tc.global_thread_id_x();
                            if i < n {
                                adam_update(tc, i, t, &state);
                            }
                        }
                    });
                let r = prepared.execute().expect("bare launch");
                agg = agg.merged(&r.stats);
                last = Some(prepared);
            }
            let per_launch = agg.scaled(factor / params.steps as f64);
            let modeled = last.expect("at least one step").model(&per_launch).modeled;
            finish(
                version.label(sys),
                checksum_f32_items(&state.p.to_vec()),
                modeled,
                per_launch,
                true,
                None,
            )
        }
        ProgVersion::Omp => {
            let omp = omp_runtime(sys);
            register_profiles(omp.codegen());
            let state = generate(omp.device(), n);
            let teams = (n as u32).div_ceil(BLOCK);
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            let mut plan = None;
            let mut last = None;
            for t in 1..=params.steps as u64 {
                let prepared =
                    omp.target(KERNEL).num_teams(teams).thread_limit(BLOCK).prepare_dpf(n, {
                        let state = state.clone();
                        std::sync::Arc::new(
                            move |tc: &mut ThreadCtx<'_>,
                                  i: usize,
                                  _s: &ompx_hostrt::target::Scratch| {
                                adam_update(tc, i, t, &state);
                            },
                        )
                    });
                let r = prepared.execute().expect("omp launch");
                plan = Some(r.plan);
                agg = agg.merged(&r.stats);
                last = Some(prepared);
            }
            let per_launch = agg.scaled(factor / params.steps as f64);
            let modeled = last.expect("steps > 0").model(&per_launch).modeled;
            let plan = plan.expect("steps > 0");
            let note = (plan.threads < BLOCK).then(|| {
                format!(
                    "LLVM OpenMP launched only {} threads per team (generic mode) — the §4.2.5 issue",
                    plan.threads
                )
            });
            finish(
                version.label(sys),
                checksum_f32_items(&state.p.to_vec()),
                modeled,
                per_launch,
                false,
                note,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_versions_agree_on_the_checksum() {
        let reference = run(System::Nvidia, ProgVersion::Native, WorkScale::Test).checksum;
        for sys in [System::Nvidia, System::Amd] {
            for v in ProgVersion::all() {
                let r = run(sys, v, WorkScale::Test);
                assert_eq!(r.checksum, reference, "{} on {} diverged", r.label, sys.label());
            }
        }
    }

    #[test]
    fn optimizer_converges_toward_gradient_direction() {
        // After a few steps with a constant gradient, parameters must have
        // moved opposite the gradient sign.
        let params = Params::for_scale(WorkScale::Test);
        let ctx = native_ctx(System::Nvidia, false);
        let state = generate(ctx.device(), params.n);
        let p0 = state.p.to_vec();
        let g = state.g.to_vec();
        for t in 1..=4u64 {
            let n = params.n;
            let kernel = Kernel::new("adam_conv", {
                let state = state.clone();
                move |tc: &mut ThreadCtx<'_>| {
                    let i = tc.global_thread_id_x();
                    if i < n {
                        adam_update(tc, i, t, &state);
                    }
                }
            });
            ctx.launch_cfg(&kernel, LaunchConfig::linear(params.n, BLOCK)).unwrap();
        }
        let p1 = state.p.to_vec();
        let mut moved_correctly = 0usize;
        for i in 0..params.n {
            if g[i].abs() > 1e-3 && (p1[i] - p0[i]) * g[i] < 0.0 {
                moved_correctly += 1;
            }
        }
        assert!(moved_correctly as f64 > 0.95 * params.n as f64);
    }

    #[test]
    fn omp_is_many_times_slower_via_the_32_thread_bug() {
        // §4.2.5: omp ≈ 8× slower than the native/ompx versions.
        let omp = run(System::Nvidia, ProgVersion::Omp, WorkScale::Test);
        let cuda = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        let ratio = omp.reported_seconds / cuda.reported_seconds;
        assert!(ratio > 4.0, "omp/cuda ratio {ratio} too small for the 8x bug");
        assert!(ratio < 30.0, "omp/cuda ratio {ratio} implausibly large");
        assert!(omp.note.as_deref().unwrap_or("").contains("32 threads"));
    }

    #[test]
    fn nvidia_ompx_matches_cuda() {
        let ompx = run(System::Nvidia, ProgVersion::Ompx, WorkScale::Test).reported_seconds;
        let cuda = run(System::Nvidia, ProgVersion::Native, WorkScale::Test).reported_seconds;
        let ratio = ompx / cuda;
        assert!((0.9..1.1).contains(&ratio), "ompx should match cuda, ratio {ratio}");
    }

    #[test]
    fn amd_ompx_beats_hip() {
        // §4.2.5: 16.6 % faster on the MI250.
        let ompx = run(System::Amd, ProgVersion::Ompx, WorkScale::Test).reported_seconds;
        let hip = run(System::Amd, ProgVersion::Native, WorkScale::Test).reported_seconds;
        let gain = hip / ompx;
        assert!(gain > 1.05, "ompx should beat hip, got hip/ompx = {gain}");
    }
}
