//! Cross-app tests of the workload generators' invariants: the data every
//! program version consumes must be well-formed and identical across
//! devices (otherwise cross-version checksums would be meaningless).

#![cfg(test)]

use crate::common::*;
use ompx_sim::device::{Device, DeviceProfile};

fn dev() -> Device {
    Device::new(DeviceProfile::test_small())
}

#[test]
fn xsbench_energy_grids_are_strictly_sorted() {
    let params = crate::xsbench::Params::for_scale(WorkScale::Test);
    let data = crate::xsbench::generate(&dev(), params);
    let egrid = data_egrid(&data);
    for iso in 0..params.n_isotopes {
        for j in 1..params.n_gridpoints {
            let a = egrid[iso * params.n_gridpoints + j - 1];
            let b = egrid[iso * params.n_gridpoints + j];
            assert!(a < b, "isotope {iso} grid not sorted at {j}: {a} !< {b}");
        }
    }
}

// Test-only accessors: the app structs keep their fields private; these
// helpers expose what the invariants need.
fn data_egrid(d: &crate::xsbench::XsData) -> Vec<f64> {
    d.egrid_for_tests()
}

#[test]
fn xsbench_material_indices_are_in_range() {
    let params = crate::xsbench::Params::for_scale(WorkScale::Test);
    let data = crate::xsbench::generate(&dev(), params);
    let (nuclides, offsets) = data.materials_for_tests();
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be nondecreasing");
    assert_eq!(*offsets.last().unwrap() as usize, nuclides.len());
    for iso in nuclides {
        assert!((iso as usize) < params.n_isotopes);
    }
}

#[test]
fn generators_are_device_independent() {
    // The same params generate bitwise-identical data on any device —
    // the foundation of cross-system checksum equality.
    let params = crate::xsbench::Params::for_scale(WorkScale::Test);
    let a = crate::xsbench::generate(&Device::new(DeviceProfile::a100()), params);
    let b = crate::xsbench::generate(&Device::new(DeviceProfile::mi250()), params);
    assert_eq!(a.egrid_for_tests(), b.egrid_for_tests());
    assert_eq!(a.materials_for_tests(), b.materials_for_tests());
}

#[test]
fn params_default_is_larger_than_test() {
    use crate::WorkScale::{Default, Test};
    assert!(
        crate::xsbench::Params::for_scale(Default).lookups
            > crate::xsbench::Params::for_scale(Test).lookups
    );
    assert!(
        crate::rsbench::Params::for_scale(Default).lookups
            > crate::rsbench::Params::for_scale(Test).lookups
    );
    assert!(
        crate::su3::Params::for_scale(Default).sites > crate::su3::Params::for_scale(Test).sites
    );
    assert!(
        crate::aidw::Params::for_scale(Default).n_points
            > crate::aidw::Params::for_scale(Test).n_points
    );
    assert!(crate::adam::Params::for_scale(Default).n >= crate::adam::Params::for_scale(Test).n);
    assert!(
        crate::stencil::Params::for_scale(Default).length
            > crate::stencil::Params::for_scale(Test).length
    );
}

#[test]
fn benchmark_metadata_matches_figure6() {
    let infos = crate::all_benchmarks();
    assert_eq!(infos.len(), 6);
    let names: Vec<_> = infos.iter().map(|b| b.name).collect();
    assert_eq!(names, ["XSBench", "RSBench", "SU3", "AIDW", "Adam", "Stencil 1D"]);
    // Paper command lines carried verbatim.
    assert_eq!(infos[2].paper_cmdline, "-i 1000 -l 32 -t 128 -v 3 -w 1");
    assert_eq!(infos[4].paper_cmdline, "10000 200 100");
    assert_eq!(infos[5].paper_cmdline, "134217728 1000");
}

#[test]
fn item_uniform_streams_are_decorrelated_across_seeds() {
    // Weak statistical check: two seeds should differ on most items.
    let diffs = (0..1000).filter(|&i| item_uniform(1, i) != item_uniform(2, i)).count();
    assert!(diffs > 990);
    // And means should be near 0.5.
    let mean: f64 = (0..10_000).map(|i| item_uniform(7, i)).sum::<f64>() / 10_000.0;
    assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
}
