//! RSBench: multipole-representation cross-section lookup (Tramm et al.),
//! the **compute-bound** sibling of XSBench.
//!
//! Each lookup evaluates the resonance cross section of every nuclide in
//! the sampled material from its multipole data: find the energy window,
//! compute the `sigTfactors` phase terms (a small per-thread array!), and
//! accumulate complex pole contributions. The per-thread `sigTfactors`
//! array is the §4.2.2 protagonist:
//!
//! * in CUDA/HIP (and the ompx port) it is a dynamically indexed
//!   thread-local array → **local memory** → global-memory traffic;
//! * in the `omp` version LLVM globalizes it, and the heap-to-shared
//!   optimization moves it into **shared memory** (the paper measures 2 KB
//!   of shared memory and 162 registers) — which is why `omp` *beats* the
//!   CUDA version on the A100 despite its register pressure.
//!
//! `ompx` wins overall through occupancy (fewer registers → more lookups
//! in flight), matching Figures 8b/8h.

use crate::common::*;
use ompx::BareTarget;
use ompx_klang::toolchain::{vendor_key, CodegenDb, Toolchain};
use ompx_sim::dim::LaunchConfig;
use ompx_sim::exec::Kernel;
use ompx_sim::mem::DBuf;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::timing::CodegenInfo;
use ompx_sim::{Device, Vendor};

/// Benchmark metadata (Figure 6 row).
pub fn info() -> BenchInfo {
    BenchInfo {
        name: "RSBench",
        description: "Monte Carlo neutron transport multipole XS lookup (compute-bound)",
        paper_cmdline: "-m event",
        reported_metric: "total lookup-kernel seconds",
    }
}

pub(crate) const KERNEL: &str = "rsbench_lookup";
const SEED: u64 = 0x5eed15;
pub(crate) const BLOCK: u32 = 256;
/// Number of Legendre orders — sigTfactors is `NUM_L` complex values.
pub(crate) const NUM_L: usize = 4;
/// Poles per window (RSBench's large-problem windows hold dozens of poles;
/// the pole sweep dominates both traffic and flops).
pub(crate) const POLES_PER_WINDOW: usize = 16;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub n_isotopes: usize,
    pub n_windows: usize,
    pub lookups: usize,
    pub paper_lookups: u64,
}

impl Params {
    pub fn for_scale(scale: WorkScale) -> Self {
        match scale {
            WorkScale::Default => {
                Params { n_isotopes: 32, n_windows: 64, lookups: 4096, paper_lookups: 10_000_000 }
            }
            WorkScale::Test => {
                Params { n_isotopes: 6, n_windows: 16, lookups: 192, paper_lookups: 10_000_000 }
            }
        }
    }

    /// Geometry-only extrapolation: the launch grid grows with the lookup
    /// count but NOT with the per-lookup work-depth factor.
    fn geometry_factor(&self) -> f64 {
        self.paper_lookups as f64 / self.lookups as f64
    }

    fn scale_factor(&self) -> f64 {
        // Lookup-count extrapolation times a workload-reconstruction
        // factor: the paper's large problem averages ~100 poles per window
        // against our 16, so per-lookup work is ~6x ours.
        const POLE_DENSITY_RECONSTRUCTION: f64 = 6.0;
        self.paper_lookups as f64 / self.lookups as f64 * POLE_DENSITY_RECONSTRUCTION
    }
}

/// Correct the extrapolated launch geometry: traffic/flops scale with the
/// full work factor, but blocks/threads scale only with the lookup count.
fn fix_geometry(
    mut scaled: ompx_sim::counters::StatsSnapshot,
    raw: &ompx_sim::counters::StatsSnapshot,
    geometry_factor: f64,
) -> ompx_sim::counters::StatsSnapshot {
    scaled.blocks_executed = (raw.blocks_executed as f64 * geometry_factor).round() as u64;
    scaled.threads_executed = (raw.threads_executed as f64 * geometry_factor).round() as u64;
    scaled
}

/// Device-resident multipole data.
#[derive(Clone)]
pub struct RsData {
    params: Params,
    /// Pole data: 4 f64 per pole (MP_EA re/im, MP_RT, MP_RA), laid out
    /// `[iso][window][pole][4]`.
    poles: DBuf<f64>,
    /// Window curve-fit background: 3 f64 per window `[iso][window][3]`.
    windows: DBuf<f64>,
    /// Pseudo-K0RS factors per isotope and order `[iso][NUM_L]`.
    pseudo_k0rs: DBuf<f64>,
    mat_nuclides: DBuf<u32>,
    mat_offsets: DBuf<u32>,
}

pub(crate) fn material_sizes(n_isotopes: usize) -> Vec<usize> {
    [12usize, 8, 6, 5, 4, 3, 3, 2, 2, 1, 1, 1].iter().map(|&s| s.min(n_isotopes)).collect()
}

/// Generate the deterministic problem instance.
pub fn generate(device: &Device, params: Params) -> RsData {
    let ni = params.n_isotopes;
    let nw = params.n_windows;

    let mut poles = Vec::with_capacity(ni * nw * POLES_PER_WINDOW * 4);
    let mut windows = Vec::with_capacity(ni * nw * 3);
    let mut k0rs = Vec::with_capacity(ni * NUM_L);
    for iso in 0..ni {
        for w in 0..nw {
            for p in 0..POLES_PER_WINDOW {
                for c in 0..4 {
                    let idx = ((iso * nw + w) * POLES_PER_WINDOW + p) * 4 + c;
                    poles.push(0.1 + item_uniform(SEED ^ 0x61, idx as u64));
                }
            }
            for c in 0..3 {
                windows.push(item_uniform(SEED ^ 0x62, ((iso * nw + w) * 3 + c) as u64));
            }
        }
        for l in 0..NUM_L {
            k0rs.push(0.5 + item_uniform(SEED ^ 0x63, (iso * NUM_L + l) as u64));
        }
    }

    let sizes = material_sizes(ni);
    let mut mat_nuclides = Vec::new();
    let mut mat_offsets = vec![0u32];
    for (m, &sz) in sizes.iter().enumerate() {
        for s in 0..sz {
            mat_nuclides.push((splitmix64(SEED ^ ((m * 97 + s) as u64)) % ni as u64) as u32);
        }
        mat_offsets.push(mat_nuclides.len() as u32);
    }

    let data = RsData {
        params,
        poles: device.alloc_from(&poles),
        windows: device.alloc_from(&windows),
        pseudo_k0rs: device.alloc_from(&k0rs),
        mat_nuclides: device.alloc_from(&mat_nuclides),
        mat_offsets: device.alloc_from(&mat_offsets),
    };
    data.poles.set_label("poles");
    data.windows.set_label("windows");
    data.pseudo_k0rs.set_label("pseudo_k0rs");
    data.mat_nuclides.set_label("mat_nuclides");
    data.mat_offsets.set_label("mat_offsets");
    data
}

#[inline]
fn lookup_inputs(i: usize, n_mats: usize) -> (f64, usize) {
    let e = 1e-4 + item_uniform(SEED ^ 0x64, i as u64) * 0.999;
    let pick = item_uniform(SEED ^ 0x65, i as u64);
    let mat =
        if pick < 0.5 { 0 } else { 1 + (splitmix64(i as u64 ^ 7) % (n_mats as u64 - 1)) as usize };
    (e, mat)
}

/// One multipole lookup. `scratch` is the per-thread `sigTfactors` array
/// (2 f64 per order) — the placement-dependent storage.
#[inline]
fn lookup_one<S: F64Scratch>(tc: &mut ThreadCtx<'_>, i: usize, d: &RsData, scratch: &mut S) -> f64 {
    let nw = d.params.n_windows;
    let n_mats = material_sizes(d.params.n_isotopes).len();
    let (e, mat) = lookup_inputs(i, n_mats);

    let lo_off = tc.read(&d.mat_offsets, mat) as usize;
    let hi_off = tc.read(&d.mat_offsets, mat + 1) as usize;

    let mut macro_sig_t = 0.0f64;
    let mut macro_sig_a = 0.0f64;
    for entry in lo_off..hi_off {
        let iso = tc.read(&d.mat_nuclides, entry) as usize;

        // sigTfactors: phase terms per Legendre order, computed once per
        // nuclide and stored in the per-thread scratch array.
        let sqrt_e = e.sqrt();
        tc.flops(2);
        for l in 0..NUM_L {
            let k = tc.read(&d.pseudo_k0rs, iso * NUM_L + l);
            let phi = k * sqrt_e * (1.0 + 0.1 * l as f64);
            let (s, c) = phi.sin_cos();
            tc.flops(12); // mul/add + sincos cost
            scratch.put(tc, 2 * l, c);
            scratch.put(tc, 2 * l + 1, -s);
        }

        // Window selection is a direct index (no search — compute-bound).
        let w = ((e * nw as f64) as usize).min(nw - 1);
        tc.int_ops(2);
        let wbase = (iso * nw + w) * 3;
        let c0 = tc.read(&d.windows, wbase);
        let c1 = tc.read(&d.windows, wbase + 1);
        let c2 = tc.read(&d.windows, wbase + 2);
        let mut sig_t = c0 + c1 * e + c2 * e * e;
        let mut sig_a = 0.5 * sig_t;
        tc.flops(6);

        // Accumulate pole contributions (complex arithmetic).
        let pbase = (iso * nw + w) * POLES_PER_WINDOW * 4;
        for p in 0..POLES_PER_WINDOW {
            let ea_re = tc.read(&d.poles, pbase + p * 4);
            let ea_im = tc.read(&d.poles, pbase + p * 4 + 1);
            let rt = tc.read(&d.poles, pbase + p * 4 + 2);
            let ra = tc.read(&d.poles, pbase + p * 4 + 3);
            // psi = 1 / (ea - sqrt_e)  (complex reciprocal)
            let dr = ea_re - sqrt_e;
            let di = ea_im;
            let denom = dr * dr + di * di;
            let inv_re = dr / denom;
            let inv_im = -di / denom;
            // Phase factor from sigTfactors (order p % NUM_L).
            let l = p % NUM_L;
            let ph_re = scratch.at(tc, 2 * l);
            let ph_im = scratch.at(tc, 2 * l + 1);
            let z_re = inv_re * ph_re - inv_im * ph_im;
            sig_t += rt * z_re;
            sig_a += ra * (inv_re * ph_im + inv_im * ph_re);
            tc.flops(20);
        }
        macro_sig_t += sig_t;
        macro_sig_a += sig_a;
        tc.flops(2);
    }
    macro_sig_t + macro_sig_a
}

/// Paper-derived + calibrated codegen profiles.
///
/// Paper-reported facts: the `omp` version uses 162 registers and 2 KB of
/// shared memory (§4.2.2). Native register counts are calibrated to
/// reproduce the figure's ordering through occupancy.
fn register_profiles(db: &CodegenDb) {
    let base = CodegenInfo { coalescing: 0.40, fp64_fraction: 1.0, ..CodegenInfo::default() };
    db.set(
        KERNEL,
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 88, binary_bytes: 18 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::Nvcc,
        CodegenInfo { regs_per_thread: 86, binary_bytes: 16 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 68, binary_bytes: 24 * 1024, ..base },
    );
    // §4.2.2: 162 registers, 2 KB shared (the shared bytes come from the
    // heap-to-shared scratch, accounted via the launch config).
    db.set(
        KERNEL,
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 162, binary_bytes: 48 * 1024, ..base },
    );
    // AMD backend: higher VGPR pressure across the board.
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 100, binary_bytes: 18 * 1024, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Hipcc,
        CodegenInfo { regs_per_thread: 96, binary_bytes: 17 * 1024, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 80, binary_bytes: 24 * 1024, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 200, binary_bytes: 48 * 1024, ..base },
    );
}

fn outcome(
    label: &str,
    checksum: u64,
    modeled: ompx_sim::timing::ModeledTime,
    stats: ompx_sim::counters::StatsSnapshot,
    note: Option<String>,
) -> RunOutcome {
    RunOutcome {
        label: label.to_string(),
        checksum,
        reported_seconds: modeled.seconds,
        kernel_model: modeled,
        stats,
        excluded: false,
        note,
    }
}

/// Run one program version on one system.
pub fn run(sys: System, version: ProgVersion, scale: WorkScale) -> RunOutcome {
    run_with_params(sys, version, Params::for_scale(scale))
}

/// Run with explicit workload parameters (the analyzer's replay entry).
pub(crate) fn run_with_params(sys: System, version: ProgVersion, params: Params) -> RunOutcome {
    let n = params.lookups;
    let factor = params.scale_factor();

    match version {
        ProgVersion::Native | ProgVersion::NativeVendor => {
            let ctx = native_ctx(sys, version == ProgVersion::NativeVendor);
            register_profiles(ctx.codegen());
            let data = generate(ctx.device(), params);
            let out = ctx.malloc::<f64>(n);
            out.set_label("out");
            let kernel = Kernel::new(KERNEL, {
                let (data, out) = (data.clone(), out.clone());
                move |tc: &mut ThreadCtx<'_>| {
                    let i = tc.global_thread_id_x();
                    if i < n {
                        let mut scratch = LocalScratch(tc.local_array::<f64>(2 * NUM_L));
                        let v = lookup_one(tc, i, &data, &mut scratch);
                        tc.write(&out, i, v);
                    }
                }
            });
            let r = ctx.launch_cfg(&kernel, LaunchConfig::linear(n, BLOCK)).expect("launch");
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats, params.geometry_factor());
            let modeled = ctx.model(KERNEL, BLOCK, 0, &scaled);
            outcome(version.label(sys), checksum_f64_items(&out.to_vec()), modeled, scaled, None)
        }
        ProgVersion::Ompx => {
            let omp = ompx_runtime(sys);
            register_profiles(omp.codegen());
            let data = generate(omp.device(), params);
            let out = omp.device().alloc::<f64>(n);
            out.set_label("out");
            let teams = (n as u32).div_ceil(BLOCK);
            let prepared =
                BareTarget::new(&omp, KERNEL).num_teams([teams]).thread_limit([BLOCK]).prepare({
                    let (data, out) = (data.clone(), out.clone());
                    move |tc| {
                        let i = tc.global_thread_id_x();
                        if i < n {
                            // Ported from CUDA: same thread-local array.
                            let mut scratch = LocalScratch(tc.local_array::<f64>(2 * NUM_L));
                            let v = lookup_one(tc, i, &data, &mut scratch);
                            tc.write(&out, i, v);
                        }
                    }
                });
            let r = prepared.execute().expect("bare launch");
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats, params.geometry_factor());
            let modeled = prepared.model(&scaled).modeled;
            outcome(version.label(sys), checksum_f64_items(&out.to_vec()), modeled, scaled, None)
        }
        ProgVersion::Omp => {
            let omp = omp_runtime(sys);
            register_profiles(omp.codegen());
            let data = generate(omp.device(), params);
            let out = omp.device().alloc::<f64>(n);
            out.set_label("out");
            // The HeCBench omp source leaves the launch geometry to the
            // runtime; LLVM defaults to 128 threads per team (this is part
            // of why its occupancy story differs from the CUDA version).
            let omp_threads = 128u32;
            let teams = (n as u32).div_ceil(omp_threads);
            let prepared = omp
                .target(KERNEL)
                .num_teams(teams)
                .thread_limit(omp_threads)
                .scratch_f64(2 * NUM_L) // sigTfactors, globalized
                .prepare_dpf(n, {
                    let (data, out) = (data.clone(), out.clone());
                    std::sync::Arc::new(
                        move |tc: &mut ThreadCtx<'_>,
                              i: usize,
                              s: &ompx_hostrt::target::Scratch| {
                            let mut scratch = OmpScratch(s);
                            let v = lookup_one(tc, i, &data, &mut scratch);
                            tc.write(&out, i, v);
                        },
                    )
                });
            let r = prepared.execute().expect("omp launch");
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats, params.geometry_factor());
            let modeled = prepared.model(&scaled).modeled;
            let note = r.plan.heap_to_shared.then(|| {
                "heap-to-shared optimization active (sigTfactors in shared memory)".to_string()
            });
            outcome(version.label(sys), checksum_f64_items(&out.to_vec()), modeled, scaled, note)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_versions_agree_on_the_checksum() {
        let reference = run(System::Nvidia, ProgVersion::Native, WorkScale::Test).checksum;
        for sys in [System::Nvidia, System::Amd] {
            for v in ProgVersion::all() {
                let r = run(sys, v, WorkScale::Test);
                assert_eq!(r.checksum, reference, "{} on {} diverged", r.label, sys.label());
            }
        }
    }

    #[test]
    fn nvidia_ordering_matches_figure_8b() {
        // ompx < omp < cuda, and notably omp beats cuda (heap-to-shared).
        let ompx = run(System::Nvidia, ProgVersion::Ompx, WorkScale::Test);
        let omp = run(System::Nvidia, ProgVersion::Omp, WorkScale::Test);
        let cuda = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        assert!(
            ompx.reported_seconds < cuda.reported_seconds,
            "ompx {} !< cuda {}",
            ompx.reported_seconds,
            cuda.reported_seconds
        );
        assert!(
            omp.reported_seconds < cuda.reported_seconds,
            "omp {} !< cuda {}",
            omp.reported_seconds,
            cuda.reported_seconds
        );
        assert!(ompx.reported_seconds < omp.reported_seconds);
    }

    #[test]
    fn amd_ompx_beats_hip() {
        let ompx = run(System::Amd, ProgVersion::Ompx, WorkScale::Test);
        let hip = run(System::Amd, ProgVersion::Native, WorkScale::Test);
        assert!(
            ompx.reported_seconds < hip.reported_seconds,
            "ompx {} !< hip {}",
            ompx.reported_seconds,
            hip.reported_seconds
        );
    }

    #[test]
    fn omp_scratch_moved_to_shared_memory() {
        let r = run(System::Nvidia, ProgVersion::Omp, WorkScale::Test);
        assert!(r.note.as_deref().unwrap_or("").contains("heap-to-shared"));
        // The shared placement eliminates the local-memory traffic the
        // native version pays, so omp moves strictly fewer DRAM bytes and
        // instead performs shared-memory accesses.
        let cuda = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        assert!(cuda.stats.global_bytes() > r.stats.global_bytes());
        assert!(r.stats.shared_accesses > cuda.stats.shared_accesses);
    }
}
