//! XSBench: the continuous-energy macroscopic cross-section lookup kernel
//! (Tramm et al.), proxy for OpenMC — **memory-latency-bound**.
//!
//! Event-based mode (`-m event`, the paper's CLI): every lookup draws a
//! (particle energy, material) pair, then for each nuclide in the material
//! binary-searches that nuclide's energy grid and interpolates five cross
//! sections, accumulating the concentration-weighted macroscopic XS. The
//! access pattern is random across grids — the classic latency-bound
//! workload, which is why register pressure (occupancy → in-flight loads)
//! decides the Figure 8a/8g ordering.
//!
//! Paper observations reproduced here (§4.2.1): the `ompx` version
//! outperforms the native versions under both compilers on both systems;
//! the `omp` results are excluded because the benchmark reported an
//! invalid checksum (our port computes correct results — the exclusion is
//! carried as a flag).

use crate::common::*;
use ompx::BareTarget;
use ompx_klang::toolchain::{vendor_key, CodegenDb, Toolchain};
use ompx_sim::dim::LaunchConfig;
use ompx_sim::exec::Kernel;
use ompx_sim::mem::DBuf;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::timing::CodegenInfo;
use ompx_sim::{Device, Vendor};

/// Benchmark metadata (Figure 6 row).
pub fn info() -> BenchInfo {
    BenchInfo {
        name: "XSBench",
        description: "Monte Carlo neutron transport macroscopic XS lookup (memory-bound)",
        paper_cmdline: "-m event",
        reported_metric: "total lookup-kernel seconds",
    }
}

pub(crate) const KERNEL: &str = "xsbench_lookup";
const SEED: u64 = 0x5eed05;
pub(crate) const BLOCK: u32 = 256;
pub(crate) const N_XS: usize = 5;

/// Workload parameters. `paper_lookups` is fixed (XSBench event mode's
/// default of 17M lookups); the `lookups`/`n_gridpoints` pair is what we
/// functionally simulate before extrapolation.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub n_isotopes: usize,
    pub n_gridpoints: usize,
    pub lookups: usize,
    pub paper_lookups: u64,
}

impl Params {
    pub fn for_scale(scale: WorkScale) -> Self {
        match scale {
            WorkScale::Default => Params {
                n_isotopes: 68,
                n_gridpoints: 512,
                lookups: 8192,
                paper_lookups: 17_000_000,
            },
            WorkScale::Test => {
                Params { n_isotopes: 8, n_gridpoints: 64, lookups: 256, paper_lookups: 17_000_000 }
            }
        }
    }

    /// Geometry-only extrapolation: the launch grid grows with the lookup
    /// count but NOT with the per-lookup work-depth factor.
    fn geometry_factor(&self) -> f64 {
        self.paper_lookups as f64 / self.lookups as f64
    }

    fn scale_factor(&self) -> f64 {
        // Lookup-count extrapolation times a workload-reconstruction factor:
        // the paper's grids have 11303 gridpoints/isotope (a deeper binary
        // search) and its default problem touches more nuclides per lookup
        // than our shrunk instance — per-lookup work is ~2.7x ours.
        const GRID_DEPTH_RECONSTRUCTION: f64 = 2.7;
        self.paper_lookups as f64 / self.lookups as f64 * GRID_DEPTH_RECONSTRUCTION
    }
}

/// Correct the extrapolated launch geometry: traffic/flops scale with the
/// full work factor, but blocks/threads scale only with the lookup count.
fn fix_geometry(
    mut scaled: ompx_sim::counters::StatsSnapshot,
    raw: &ompx_sim::counters::StatsSnapshot,
    geometry_factor: f64,
) -> ompx_sim::counters::StatsSnapshot {
    scaled.blocks_executed = (raw.blocks_executed as f64 * geometry_factor).round() as u64;
    scaled.threads_executed = (raw.threads_executed as f64 * geometry_factor).round() as u64;
    scaled
}

/// Device-resident problem data, shared by every program version.
#[derive(Clone)]
pub struct XsData {
    params: Params,
    /// Sorted energy grid per isotope: `egrid[iso * n_gridpoints + j]`.
    egrid: DBuf<f64>,
    /// Five cross sections per gridpoint.
    xs: DBuf<f64>,
    /// Concatenated material composition: isotope indices.
    mat_nuclides: DBuf<u32>,
    /// Concentrations parallel to `mat_nuclides`.
    mat_conc: DBuf<f64>,
    /// Offsets into the two arrays above, one per material (+ end).
    mat_offsets: DBuf<u32>,
}

impl XsData {
    /// Test-only: host copy of the energy grids.
    pub fn egrid_for_tests(&self) -> Vec<f64> {
        self.egrid.to_vec()
    }

    /// Test-only: host copy of the material tables.
    pub fn materials_for_tests(&self) -> (Vec<u32>, Vec<u32>) {
        (self.mat_nuclides.to_vec(), self.mat_offsets.to_vec())
    }
}

/// HeCBench/XSBench material mix: material 0 is fuel with the most
/// nuclides; lookups are biased toward it like the real distribution.
pub(crate) fn material_sizes(n_isotopes: usize) -> Vec<usize> {
    [34usize, 12, 8, 6, 5, 4, 4, 3, 2, 2, 1, 1].iter().map(|&s| s.min(n_isotopes)).collect()
}

/// Generate the deterministic problem instance on `device`.
pub fn generate(device: &Device, params: Params) -> XsData {
    let ng = params.n_gridpoints;
    let ni = params.n_isotopes;

    let mut egrid = Vec::with_capacity(ni * ng);
    let mut xs = Vec::with_capacity(ni * ng * N_XS);
    for iso in 0..ni {
        for j in 0..ng {
            // Strictly increasing per isotope: (j + u_j) / ng.
            let u = item_uniform(SEED ^ 0x11, (iso * ng + j) as u64);
            egrid.push((j as f64 + u) / ng as f64);
            for k in 0..N_XS {
                xs.push(item_uniform(SEED ^ 0x22, ((iso * ng + j) * N_XS + k) as u64));
            }
        }
    }

    let sizes = material_sizes(ni);
    let mut mat_nuclides = Vec::new();
    let mut mat_conc = Vec::new();
    let mut mat_offsets = vec![0u32];
    for (m, &sz) in sizes.iter().enumerate() {
        for s in 0..sz {
            let iso = (splitmix64(SEED ^ ((m * 131 + s) as u64)) % ni as u64) as u32;
            mat_nuclides.push(iso);
            mat_conc.push(0.1 + item_uniform(SEED ^ 0x33, (m * 131 + s) as u64));
        }
        mat_offsets.push(mat_nuclides.len() as u32);
    }

    let data = XsData {
        params,
        egrid: device.alloc_from(&egrid),
        xs: device.alloc_from(&xs),
        mat_nuclides: device.alloc_from(&mat_nuclides),
        mat_conc: device.alloc_from(&mat_conc),
        mat_offsets: device.alloc_from(&mat_offsets),
    };
    data.egrid.set_label("egrid");
    data.xs.set_label("xs");
    data.mat_nuclides.set_label("mat_nuclides");
    data.mat_conc.set_label("mat_conc");
    data.mat_offsets.set_label("mat_offsets");
    data
}

/// Pick the (energy, material) pair of lookup `i` — identical in every
/// program version (the event-based RNG of XSBench).
#[inline]
fn lookup_inputs(i: usize, n_mats: usize) -> (f64, usize) {
    let e = item_uniform(SEED ^ 0x44, i as u64);
    // Bias toward fuel (material 0) like XSBench's distribution.
    let pick = item_uniform(SEED ^ 0x55, i as u64);
    let mat =
        if pick < 0.45 { 0 } else { 1 + (splitmix64(i as u64) % (n_mats as u64 - 1)) as usize };
    (e, mat)
}

/// One macroscopic XS lookup — the shared inner kernel used verbatim by
/// all four program versions.
#[inline]
fn lookup_one(tc: &mut ThreadCtx<'_>, i: usize, d: &XsData) -> f64 {
    let ng = d.params.n_gridpoints;
    let n_mats = material_sizes(d.params.n_isotopes).len();
    let (e, mat) = lookup_inputs(i, n_mats);

    let lo_off = tc.read(&d.mat_offsets, mat) as usize;
    let hi_off = tc.read(&d.mat_offsets, mat + 1) as usize;

    let mut macro_xs = [0.0f64; N_XS];
    for entry in lo_off..hi_off {
        let iso = tc.read(&d.mat_nuclides, entry) as usize;
        let conc = tc.read(&d.mat_conc, entry);
        let base = iso * ng;

        // Binary search the isotope's energy grid for `e`.
        let mut lo = 0usize;
        let mut hi = ng - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let ev = tc.read(&d.egrid, base + mid);
            tc.int_ops(3);
            if e < ev {
                hi = mid;
            } else {
                lo = mid;
            }
        }

        // Linear interpolation of the five cross sections.
        let e_lo = tc.read(&d.egrid, base + lo);
        let e_hi = tc.read(&d.egrid, base + lo + 1);
        let f = (e - e_lo) / (e_hi - e_lo);
        tc.flops(2);
        for (k, acc) in macro_xs.iter_mut().enumerate() {
            let x_lo = tc.read(&d.xs, (base + lo) * N_XS + k);
            let x_hi = tc.read(&d.xs, (base + lo + 1) * N_XS + k);
            let xs_v = x_lo + f * (x_hi - x_lo);
            tc.flops(4); // interp (2) + concentration multiply-add (2)
            *acc += conc * xs_v;
        }
    }
    macro_xs.iter().sum::<f64>()
}

/// Paper-derived + calibrated codegen profiles for the lookup kernel.
///
/// XSBench is latency-bound, so the decisive quantity is registers →
/// resident threads → loads in flight. The prototype's tighter register
/// allocation on this kernel is what makes `ompx` the fastest series in
/// Figures 8a/8g; the native compilers are near-identical to each other.
fn register_profiles(db: &CodegenDb) {
    let base = CodegenInfo {
        coalescing: 0.22, // random grid walks barely coalesce
        fp64_fraction: 1.0,
        ..CodegenInfo::default()
    };
    db.set(
        KERNEL,
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 52, binary_bytes: 12 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::Nvcc,
        CodegenInfo { regs_per_thread: 52, binary_bytes: 11 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::Hipcc,
        CodegenInfo { regs_per_thread: 54, binary_bytes: 13 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 40, binary_bytes: 14 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 96, binary_bytes: 40 * 1024, ..base },
    );
    // The AMD backend allocates noticeably more VGPRs (fp64 pairs).
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 74, binary_bytes: 12 * 1024, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Hipcc,
        CodegenInfo { regs_per_thread: 76, binary_bytes: 13 * 1024, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 48, binary_bytes: 14 * 1024, ..base },
    );
}

/// Run one program version on one system.
pub fn run(sys: System, version: ProgVersion, scale: WorkScale) -> RunOutcome {
    run_with_params(sys, version, Params::for_scale(scale))
}

/// Run with explicit workload parameters (the analyzer's replay entry).
pub(crate) fn run_with_params(sys: System, version: ProgVersion, params: Params) -> RunOutcome {
    let n = params.lookups;
    let factor = params.scale_factor();

    match version {
        ProgVersion::Native | ProgVersion::NativeVendor => {
            let ctx = native_ctx(sys, version == ProgVersion::NativeVendor);
            register_profiles(ctx.codegen());
            let data = generate(ctx.device(), params);
            let out = ctx.malloc::<f64>(n);
            out.set_label("out");
            let kernel = Kernel::new(KERNEL, {
                let (data, out) = (data.clone(), out.clone());
                move |tc: &mut ThreadCtx<'_>| {
                    let i = tc.global_thread_id_x();
                    if i < n {
                        let v = lookup_one(tc, i, &data);
                        tc.write(&out, i, v);
                    }
                }
            });
            let r = ctx.launch_cfg(&kernel, LaunchConfig::linear(n, BLOCK)).expect("launch");
            // Extrapolate to the paper's 17M lookups; the grid also grows
            // with the lookup count in event mode.
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats, params.geometry_factor());
            let modeled = ctx.model(KERNEL, BLOCK, 0, &scaled);
            RunOutcome {
                label: version.label(sys).to_string(),
                checksum: checksum_f64_items(&out.to_vec()),
                reported_seconds: modeled.seconds,
                kernel_model: modeled,
                stats: scaled,
                excluded: false,
                note: None,
            }
        }
        ProgVersion::Ompx => {
            let omp = ompx_runtime(sys);
            register_profiles(omp.codegen());
            let data = generate(omp.device(), params);
            let out = omp.device().alloc::<f64>(n);
            out.set_label("out");
            let teams = (n as u32).div_ceil(BLOCK);
            let prepared =
                BareTarget::new(&omp, KERNEL).num_teams([teams]).thread_limit([BLOCK]).prepare({
                    let (data, out) = (data.clone(), out.clone());
                    move |tc| {
                        let i = tc.global_thread_id_x();
                        if i < n {
                            let v = lookup_one(tc, i, &data);
                            tc.write(&out, i, v);
                        }
                    }
                });
            let r = prepared.execute().expect("bare launch");
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats, params.geometry_factor());
            let modeled = prepared.model(&scaled).modeled;
            RunOutcome {
                label: version.label(sys).to_string(),
                checksum: checksum_f64_items(&out.to_vec()),
                reported_seconds: modeled.seconds,
                kernel_model: modeled,
                stats: scaled,
                excluded: false,
                note: None,
            }
        }
        ProgVersion::Omp => {
            let omp = omp_runtime(sys);
            register_profiles(omp.codegen());
            let data = generate(omp.device(), params);
            let out = omp.device().alloc::<f64>(n);
            out.set_label("out");
            let teams = (n as u32).div_ceil(BLOCK);
            let prepared =
                omp.target(KERNEL).num_teams(teams).thread_limit(BLOCK).prepare_dpf(n, {
                    let (data, out) = (data.clone(), out.clone());
                    std::sync::Arc::new(
                        move |tc: &mut ThreadCtx<'_>,
                              i: usize,
                              _s: &ompx_hostrt::target::Scratch| {
                            let v = lookup_one(tc, i, &data);
                            tc.write(&out, i, v);
                        },
                    )
                });
            let r = prepared.execute().expect("omp launch");
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats, params.geometry_factor());
            let modeled = prepared.model(&scaled).modeled;
            RunOutcome {
                label: version.label(sys).to_string(),
                checksum: checksum_f64_items(&out.to_vec()),
                reported_seconds: modeled.seconds,
                kernel_model: modeled,
                stats: scaled,
                excluded: r.plan.invalid_result,
                note: r.plan.invalid_result.then(|| {
                    "excluded in the paper: LLVM OpenMP version reported an invalid checksum"
                        .to_string()
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_versions_agree_on_the_checksum() {
        let mut sums = Vec::new();
        for sys in [System::Nvidia, System::Amd] {
            for v in ProgVersion::all() {
                let r = run(sys, v, WorkScale::Test);
                sums.push((r.label.clone(), r.checksum));
            }
        }
        let first = sums[0].1;
        for (label, sum) in &sums {
            assert_eq!(*sum, first, "version {label} diverged");
        }
    }

    #[test]
    fn omp_series_is_flagged_excluded() {
        let r = run(System::Nvidia, ProgVersion::Omp, WorkScale::Test);
        assert!(r.excluded);
        assert!(r.note.is_some());
        let r = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        assert!(!r.excluded);
    }

    #[test]
    fn ompx_beats_native_on_both_systems() {
        for sys in [System::Nvidia, System::Amd] {
            let ompx = run(sys, ProgVersion::Ompx, WorkScale::Test);
            let native = run(sys, ProgVersion::Native, WorkScale::Test);
            let vendor = run(sys, ProgVersion::NativeVendor, WorkScale::Test);
            assert!(
                ompx.reported_seconds < native.reported_seconds,
                "{}: ompx {} !< native {}",
                sys.label(),
                ompx.reported_seconds,
                native.reported_seconds
            );
            assert!(ompx.reported_seconds < vendor.reported_seconds);
        }
    }

    #[test]
    fn device_checksum_matches_independent_host_reference() {
        // A from-scratch host implementation of the macroscopic XS lookup
        // (no ThreadCtx, no simulator) must produce the same per-lookup
        // values — and therefore the same checksum — as every device
        // version.
        let params = Params::for_scale(WorkScale::Test);
        let ctx = native_ctx(System::Nvidia, false);
        let d = generate(ctx.device(), params);
        let egrid = d.egrid.to_vec();
        let xs = d.xs.to_vec();
        let nuclides = d.mat_nuclides.to_vec();
        let conc = d.mat_conc.to_vec();
        let offsets = d.mat_offsets.to_vec();
        let ng = params.n_gridpoints;
        let n_mats = material_sizes(params.n_isotopes).len();

        let mut expected = Vec::with_capacity(params.lookups);
        for i in 0..params.lookups {
            let (e, mat) = lookup_inputs(i, n_mats);
            let mut macro_xs = [0.0f64; N_XS];
            for entry in offsets[mat] as usize..offsets[mat + 1] as usize {
                let iso = nuclides[entry] as usize;
                let base = iso * ng;
                let (mut lo, mut hi) = (0usize, ng - 1);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if e < egrid[base + mid] {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                let f = (e - egrid[base + lo]) / (egrid[base + lo + 1] - egrid[base + lo]);
                for (k, acc) in macro_xs.iter_mut().enumerate() {
                    let x_lo = xs[(base + lo) * N_XS + k];
                    let x_hi = xs[(base + lo + 1) * N_XS + k];
                    *acc += conc[entry] * (x_lo + f * (x_hi - x_lo));
                }
            }
            expected.push(macro_xs.iter().sum::<f64>());
        }
        let host_checksum = checksum_f64_items(&expected);
        let device = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        assert_eq!(device.checksum, host_checksum, "device diverges from host reference");
    }

    #[test]
    fn lookups_are_deterministic() {
        let a = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        let b = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.reported_seconds, b.reported_seconds);
    }
}
