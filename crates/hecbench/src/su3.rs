//! SU3: SU(3) 3×3 complex matrix–matrix multiplication per lattice site,
//! the core compute pattern of MILC lattice QCD (§4.2.3).
//!
//! Streaming and bandwidth-bound: every site loads two 3×3 complex `f32`
//! matrices and stores one. The paper's profiling explains the Figure 8c/8i
//! results entirely through codegen:
//!
//! * **A100**: CUDA/Clang allocates 24 registers and emits a 3.9 KB binary;
//!   the ompx prototype needs 26 registers and — because inlined functions
//!   are not eliminated from the module — a **29 KB** binary, whose i-cache
//!   cost makes `ompx` ~9 % slower than `cuda`.
//! * **MI250**: the AMD backend's codegen for the HIP version produces a
//!   noticeably worse access pattern; `ompx` is ~28 % faster than `hip`.

use crate::common::*;
use ompx::BareTarget;
use ompx_klang::toolchain::{vendor_key, CodegenDb, Toolchain};
use ompx_sim::dim::LaunchConfig;
use ompx_sim::exec::Kernel;
use ompx_sim::mem::DBuf;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::timing::CodegenInfo;
use ompx_sim::{Device, Vendor};

/// Benchmark metadata (Figure 6 row).
pub fn info() -> BenchInfo {
    BenchInfo {
        name: "SU3",
        description: "Lattice QCD SU(3) complex matrix-matrix multiply per site",
        paper_cmdline: "-i 1000 -l 32 -t 128 -v 3 -w 1",
        reported_metric: "total seconds over 1000 iterations",
    }
}

pub(crate) const KERNEL: &str = "su3_mm";
const SEED: u64 = 0x5eed25;
pub(crate) const BLOCK: u32 = 128;
/// 3x3 complex matrices: 18 f32 per site per matrix.
pub(crate) const MAT: usize = 18;

/// Workload parameters. The paper's lattice is 32³ × 128 sites, 1000
/// iterations.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub sites: usize,
    pub iterations: usize,
    pub paper_sites: u64,
    pub paper_iterations: u64,
}

impl Params {
    pub fn for_scale(scale: WorkScale) -> Self {
        match scale {
            WorkScale::Default => Params {
                sites: 8 * 8 * 8 * 16,
                iterations: 4,
                paper_sites: 32 * 32 * 32 * 128,
                paper_iterations: 1000,
            },
            WorkScale::Test => Params {
                sites: 4 * 4 * 4 * 4,
                iterations: 2,
                paper_sites: 32 * 32 * 32 * 128,
                paper_iterations: 1000,
            },
        }
    }

    fn site_factor(&self) -> f64 {
        self.paper_sites as f64 / self.sites as f64
    }
}

/// The shared per-site computation: `C[site] = A[site] × B[site]` over
/// SU(3) complex matrices stored re/im interleaved row-major.
#[inline]
fn site_mm(tc: &mut ThreadCtx<'_>, site: usize, a: &DBuf<f32>, b: &DBuf<f32>, c: &DBuf<f32>) {
    let base = site * MAT;
    // Like the MILC CUDA kernel: both matrices are loaded into registers
    // once (36 loads), then the 3x3 complex product runs entirely out of
    // registers — the memory traffic is 36 loads + 18 stores per site.
    let mut av = [0.0f32; MAT];
    let mut bv = [0.0f32; MAT];
    for (idx, slot) in av.iter_mut().enumerate() {
        *slot = tc.read(a, base + idx);
    }
    for (idx, slot) in bv.iter_mut().enumerate() {
        *slot = tc.read(b, base + idx);
    }
    for i in 0..3 {
        for j in 0..3 {
            let mut re = 0.0f32;
            let mut im = 0.0f32;
            for k in 0..3 {
                let are = av[(i * 3 + k) * 2];
                let aim = av[(i * 3 + k) * 2 + 1];
                let bre = bv[(k * 3 + j) * 2];
                let bim = bv[(k * 3 + j) * 2 + 1];
                re += are * bre - aim * bim;
                im += are * bim + aim * bre;
                tc.flops(8);
            }
            tc.write(c, base + (i * 3 + j) * 2, re);
            tc.write(c, base + (i * 3 + j) * 2 + 1, im);
        }
    }
}

fn generate(device: &Device, sites: usize) -> (DBuf<f32>, DBuf<f32>, DBuf<f32>) {
    let mut a = Vec::with_capacity(sites * MAT);
    let mut b = Vec::with_capacity(sites * MAT);
    for idx in 0..sites * MAT {
        a.push((item_uniform(SEED ^ 0x71, idx as u64) - 0.5) as f32);
        b.push((item_uniform(SEED ^ 0x72, idx as u64) - 0.5) as f32);
    }
    let (a, b, c) =
        (device.alloc_from(&a), device.alloc_from(&b), device.alloc::<f32>(sites * MAT));
    a.set_label("a");
    b.set_label("b");
    c.set_label("c");
    (a, b, c)
}

/// Paper-derived codegen profiles (§4.2.3 gives the NVIDIA numbers
/// verbatim; the AMD coalescing spread is calibrated to the 28 % gap).
fn register_profiles(db: &CodegenDb) {
    let base = CodegenInfo { coalescing: 0.90, fp64_fraction: 0.0, ..CodegenInfo::default() };
    // NVIDIA: paper-reported registers and binary sizes.
    db.set(
        KERNEL,
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 24, binary_bytes: 3_900, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::Nvcc,
        CodegenInfo { regs_per_thread: 25, binary_bytes: 4_300, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 26, binary_bytes: 29 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 40, binary_bytes: 44 * 1024, coalescing: 0.78, ..base },
    );
    // AMD: the backend's addressing of the interleaved complex loads.
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 42, binary_bytes: 5 * 1024, coalescing: 0.55, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Hipcc,
        CodegenInfo { regs_per_thread: 40, binary_bytes: 5 * 1024, coalescing: 0.60, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 44, binary_bytes: 29 * 1024, coalescing: 0.75, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 56, binary_bytes: 44 * 1024, coalescing: 0.50, ..base },
    );
}

/// Run one program version on one system.
pub fn run(sys: System, version: ProgVersion, scale: WorkScale) -> RunOutcome {
    run_with_params(sys, version, Params::for_scale(scale))
}

/// Run with explicit workload parameters (the analyzer's replay entry).
pub(crate) fn run_with_params(sys: System, version: ProgVersion, params: Params) -> RunOutcome {
    let n = params.sites;
    let iters = params.iterations;
    let factor = params.site_factor();

    let finish = |label: &str,
                  checksum: u64,
                  per_kernel: ompx_sim::timing::ModeledTime,
                  stats: ompx_sim::counters::StatsSnapshot,
                  pipelined: bool| {
        let total = if pipelined {
            pipelined_total_at(&per_kernel, params.paper_iterations, launch_issue_s(sys, version))
        } else {
            sync_total(&per_kernel, params.paper_iterations)
        };
        RunOutcome {
            label: label.to_string(),
            checksum,
            reported_seconds: total,
            kernel_model: per_kernel,
            stats,
            excluded: false,
            note: None,
        }
    };

    match version {
        ProgVersion::Native | ProgVersion::NativeVendor => {
            let ctx = native_ctx(sys, version == ProgVersion::NativeVendor);
            register_profiles(ctx.codegen());
            let (a, b, c) = generate(ctx.device(), n);
            let kernel = Kernel::new(KERNEL, {
                let (a, b, c) = (a.clone(), b.clone(), c.clone());
                move |tc: &mut ThreadCtx<'_>| {
                    let i = tc.global_thread_id_x();
                    if i < n {
                        site_mm(tc, i, &a, &b, &c);
                    }
                }
            });
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            for _ in 0..iters {
                let r = ctx.launch_cfg(&kernel, LaunchConfig::linear(n, BLOCK)).expect("launch");
                agg = agg.merged(&r.stats);
            }
            // Average one launch, extrapolate sites.
            let per_launch = agg.scaled(factor / iters as f64);
            let modeled = ctx.model(KERNEL, BLOCK, 0, &per_launch);
            finish(version.label(sys), checksum_f32_items(&c.to_vec()), modeled, per_launch, true)
        }
        ProgVersion::Ompx => {
            let omp = ompx_runtime(sys);
            register_profiles(omp.codegen());
            let (a, b, c) = generate(omp.device(), n);
            let teams = (n as u32).div_ceil(BLOCK);
            let prepared =
                BareTarget::new(&omp, KERNEL).num_teams([teams]).thread_limit([BLOCK]).prepare({
                    let (a, b, c) = (a.clone(), b.clone(), c.clone());
                    move |tc| {
                        let i = tc.global_thread_id_x();
                        if i < n {
                            site_mm(tc, i, &a, &b, &c);
                        }
                    }
                });
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            for _ in 0..iters {
                agg = agg.merged(&prepared.execute().expect("bare launch").stats);
            }
            let per_launch = agg.scaled(factor / iters as f64);
            let modeled = prepared.model(&per_launch).modeled;
            finish(version.label(sys), checksum_f32_items(&c.to_vec()), modeled, per_launch, true)
        }
        ProgVersion::Omp => {
            let omp = omp_runtime(sys);
            register_profiles(omp.codegen());
            let (a, b, c) = generate(omp.device(), n);
            let teams = (n as u32).div_ceil(BLOCK);
            let prepared =
                omp.target(KERNEL).num_teams(teams).thread_limit(BLOCK).prepare_dpf(n, {
                    let (a, b, c) = (a.clone(), b.clone(), c.clone());
                    std::sync::Arc::new(
                        move |tc: &mut ThreadCtx<'_>,
                              i: usize,
                              _s: &ompx_hostrt::target::Scratch| {
                            site_mm(tc, i, &a, &b, &c);
                        },
                    )
                });
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            for _ in 0..iters {
                agg = agg.merged(&prepared.execute().expect("omp launch").stats);
            }
            let per_launch = agg.scaled(factor / iters as f64);
            let modeled = prepared.model(&per_launch).modeled;
            finish(version.label(sys), checksum_f32_items(&c.to_vec()), modeled, per_launch, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_versions_agree_on_the_checksum() {
        let reference = run(System::Nvidia, ProgVersion::Native, WorkScale::Test).checksum;
        for sys in [System::Nvidia, System::Amd] {
            for v in ProgVersion::all() {
                let r = run(sys, v, WorkScale::Test);
                assert_eq!(r.checksum, reference, "{} on {} diverged", r.label, sys.label());
            }
        }
    }

    #[test]
    fn matrix_multiply_is_correct() {
        // Independent host-side reference for a few sites.
        let params = Params::for_scale(WorkScale::Test);
        let ctx = native_ctx(System::Nvidia, false);
        let (a, b, c) = generate(ctx.device(), params.sites);
        let kernel = Kernel::new("ref_check", {
            let (a, b, c) = (a.clone(), b.clone(), c.clone());
            let n = params.sites;
            move |tc: &mut ThreadCtx<'_>| {
                let i = tc.global_thread_id_x();
                if i < n {
                    site_mm(tc, i, &a, &b, &c);
                }
            }
        });
        ctx.launch_cfg(&kernel, LaunchConfig::linear(params.sites, BLOCK)).unwrap();
        let (ha, hb, hc) = (a.to_vec(), b.to_vec(), c.to_vec());
        for site in 0..3usize {
            for i in 0..3 {
                for j in 0..3 {
                    let mut re = 0.0f32;
                    let mut im = 0.0f32;
                    for k in 0..3 {
                        let (are, aim) = (
                            ha[site * MAT + (i * 3 + k) * 2],
                            ha[site * MAT + (i * 3 + k) * 2 + 1],
                        );
                        let (bre, bim) = (
                            hb[site * MAT + (k * 3 + j) * 2],
                            hb[site * MAT + (k * 3 + j) * 2 + 1],
                        );
                        re += are * bre - aim * bim;
                        im += are * bim + aim * bre;
                    }
                    assert_eq!(hc[site * MAT + (i * 3 + j) * 2], re);
                    assert_eq!(hc[site * MAT + (i * 3 + j) * 2 + 1], im);
                }
            }
        }
    }

    #[test]
    fn nvidia_ompx_is_slightly_slower_than_cuda() {
        // §4.2.3: ~9 % from the i-cache cost of the 29 KB binary.
        let ompx = run(System::Nvidia, ProgVersion::Ompx, WorkScale::Test);
        let cuda = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        let ratio = ompx.reported_seconds / cuda.reported_seconds;
        assert!(
            (1.03..1.20).contains(&ratio),
            "ompx/cuda ratio {ratio} outside the paper's ~9 % band"
        );
    }

    #[test]
    fn amd_ompx_is_much_faster_than_hip() {
        // §4.2.3: ompx outperforms HIP by ~28 %.
        let ompx = run(System::Amd, ProgVersion::Ompx, WorkScale::Test);
        let hip = run(System::Amd, ProgVersion::Native, WorkScale::Test);
        let ratio = hip.reported_seconds / ompx.reported_seconds;
        assert!((1.15..1.50).contains(&ratio), "hip/ompx ratio {ratio} outside the ~28 % band");
    }

    #[test]
    fn ompx_beats_omp_on_both_systems() {
        for sys in [System::Nvidia, System::Amd] {
            let ompx = run(sys, ProgVersion::Ompx, WorkScale::Test);
            let omp = run(sys, ProgVersion::Omp, WorkScale::Test);
            assert!(
                ompx.reported_seconds < omp.reported_seconds,
                "{}: ompx {} !< omp {}",
                sys.label(),
                ompx.reported_seconds,
                omp.reported_seconds
            );
        }
    }
}
