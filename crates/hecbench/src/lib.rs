//! # ompx-hecbench — the paper's six benchmark applications
//!
//! The evaluation (§4) ports six HeCBench applications from CUDA to the
//! proposed OpenMP kernel language and compares four program versions per
//! system (Figure 8):
//!
//! | label | program version | this crate |
//! |---|---|---|
//! | `ompx` | OpenMP kernel language, prototype compiler | `run_ompx` paths via [`ompx::BareTarget`] |
//! | `omp` | traditional OpenMP target offloading, LLVM/Clang | `run_omp` paths via `ompx_hostrt` (with the paper's LLVM quirks) |
//! | `cuda` / `hip` | native kernel language, LLVM/Clang | `run_native` via `ompx_klang` |
//! | `cuda-nvcc` / `hip-hipcc` | native, vendor compiler | `run_native` with the vendor toolchain |
//!
//! Every version of an app executes the *same* per-item arithmetic (shared
//! inner functions), so their checksums must agree bit-for-bit — the
//! versions differ only in launch mechanism, runtime mode, and storage
//! placement, exactly like the paper's ports. Each app simulates a
//! scaled-down workload (a functional simulator is ~10⁵× slower than
//! silicon) and extrapolates the counted events to the paper's command-line
//! workload before running the timing model; the scaling factors are
//! documented per app and in DESIGN.md.

pub mod adam;
pub mod aidw;
pub mod common;
pub mod extraction;
#[cfg(test)]
mod generators_test;
pub mod rsbench;
pub mod stencil;
pub mod su3;
pub mod summaries;
pub mod xsbench;

pub use common::{
    run_app_chaos, run_app_sanitized, with_mem_trace, with_mem_trace_full, with_span_log,
    BenchInfo, ChaosSession, FaultReport, ProgVersion, RunOutcome, System, WorkScale,
};

/// All six applications' metadata in the paper's Figure 6 order.
pub fn all_benchmarks() -> Vec<BenchInfo> {
    vec![xsbench::info(), rsbench::info(), su3::info(), aidw::info(), adam::info(), stencil::info()]
}

/// Run one (app, system, version) cell of Figure 8.
pub fn run_app(app: &str, sys: System, version: ProgVersion, scale: WorkScale) -> RunOutcome {
    match app {
        "xsbench" => xsbench::run(sys, version, scale),
        "rsbench" => rsbench::run(sys, version, scale),
        "su3" => su3::run(sys, version, scale),
        "aidw" => aidw::run(sys, version, scale),
        "adam" => adam::run(sys, version, scale),
        "stencil" => stencil::run(sys, version, scale),
        other => panic!("unknown benchmark {other:?}"),
    }
}

/// The app names in Figure 8 order.
pub const APP_NAMES: [&str; 6] = ["xsbench", "rsbench", "su3", "aidw", "adam", "stencil"];
