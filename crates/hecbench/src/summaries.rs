//! Symbolic access summaries for every app × program version, written
//! next to the kernels they describe (ISSUE: the analyzer's 24-cell
//! registry). Each summary is checked statically by `ompx_analyzer::analyze`
//! and validated dynamically by replaying the real kernel on the simulator
//! with memory-trace hooks attached ([`replay_events`]) under each of the
//! summary's valuations.
//!
//! The three launch shapes mirror the runtime's lowering:
//! * native / native-vendor / ompx: SIMT, one item per thread
//!   ([`Domain::OnePerThread`]), bodies guarded by `item < n`;
//! * omp on SPMD-eligible kernels (xsbench, rsbench, su3, aidw):
//!   grid-strided `distribute parallel for` ([`Domain::GridStride`]);
//! * omp on generic-mode kernels (adam, stencil — `force_generic`
//!   quirks): one master per team over a contiguous chunk
//!   ([`Domain::BlockChunked`]), simulated block size 1.

use crate::common::{ProgVersion, System};
use ompx_analyzer::expr::{c, free, item, lt, max_e, min_e, param, tid_x, Expr, Pred};
use ompx_analyzer::{
    Access, Barrier, BufferDecl, Domain, FreeDecl, KernelSummary, LaunchShape, Mode, SharedDecl,
    Space, SummaryFlags, Valuation,
};
use ompx_sim::memtrace::MemEvent;

/// The program-version string the analyzer's reports use.
pub fn version_str(v: ProgVersion) -> &'static str {
    match v {
        ProgVersion::Native => "native-clang",
        ProgVersion::NativeVendor => "native-vendor",
        ProgVersion::Ompx => "ompx",
        ProgVersion::Omp => "omp",
    }
}

/// The summary for one app × version cell. Panics on an unknown app name
/// (the caller validates against [`crate::APP_NAMES`]).
pub fn summary_for(app: &str, version: ProgVersion) -> KernelSummary {
    match app {
        "xsbench" => xsbench(version),
        "rsbench" => rsbench(version),
        "su3" => su3(version),
        "aidw" => aidw(version),
        "adam" => adam(version),
        "stencil" => stencil(version),
        other => panic!("unknown app `{other}`"),
    }
}

/// The write-set of the cell's summarized kernel: its simulator kernel
/// name plus the labels of every global buffer it writes (plain or
/// atomically). The chaos harness installs this as the device's
/// checkpoint hint, so a watchdog snapshot covers exactly the buffers a
/// killed kernel could have dirtied. Returns `None` for apps outside the
/// 24-cell registry; kernels without a hint keep the whole-buffer
/// snapshot fallback inside the simulator.
pub fn write_set(app: &str, version: ProgVersion) -> Option<(String, Vec<String>)> {
    if !matches!(app, "xsbench" | "rsbench" | "su3" | "aidw" | "adam" | "stencil") {
        return None;
    }
    let s = summary_for(app, version);
    let mut labels: Vec<String> = s
        .accesses
        .iter()
        .filter(|a| a.mode != Mode::Read)
        .filter_map(|a| match &a.space {
            Space::Global(label) => Some(label.clone()),
            Space::Shared(_) => None,
        })
        .collect();
    labels.sort();
    labels.dedup();
    Some((s.kernel, labels))
}

/// Run the cell's kernel(s) with the memory trace attached on the concrete
/// grid the valuation describes, returning the observed events. Workload
/// parameters not named by the valuation keep their `Test`-scale values.
pub fn replay_events(
    app: &str,
    sys: System,
    version: ProgVersion,
    val: &Valuation,
) -> Vec<MemEvent> {
    crate::extraction::trace_cell(app, sys, version, val).events
}

// ---- small constructors ------------------------------------------------

fn gread(buf: &str, index: Expr, guard: Pred, phase: &str) -> Access {
    Access {
        space: Space::Global(buf.into()),
        mode: Mode::Read,
        index,
        guard,
        imprecise: false,
        phase: phase.into(),
    }
}

fn gwrite(buf: &str, index: Expr, guard: Pred, phase: &str) -> Access {
    Access {
        space: Space::Global(buf.into()),
        mode: Mode::Write,
        index,
        guard,
        imprecise: false,
        phase: phase.into(),
    }
}

fn sread(slot: usize, index: Expr, guard: Pred, phase: &str) -> Access {
    Access {
        space: Space::Shared(slot),
        mode: Mode::Read,
        index,
        guard,
        imprecise: false,
        phase: phase.into(),
    }
}

fn swrite(slot: usize, index: Expr, guard: Pred, phase: &str) -> Access {
    Access {
        space: Space::Shared(slot),
        mode: Mode::Write,
        index,
        guard,
        imprecise: false,
        phase: phase.into(),
    }
}

fn gbuf(name: &str, len: Expr) -> BufferDecl {
    BufferDecl { name: name.into(), len }
}

fn fdecl(name: &str, lo: Expr, hi: Expr) -> FreeDecl {
    FreeDecl { name: name.into(), lo, hi }
}

fn grid1(x: Expr) -> [Expr; 3] {
    [x, c(1), c(1)]
}

fn ceil_div_e(a: Expr, k: u32) -> Expr {
    ompx_analyzer::expr::ceil_div(a, i64::from(k))
}

// ---- XSBench -----------------------------------------------------------

/// Macroscopic XS lookup: per-lookup it walks one material's nuclide list
/// and binary-searches each isotope's energy grid. All the data-dependent
/// indices (material, entry, isotope, gridpoint) are modeled as range-bound
/// free variables.
fn xsbench(version: ProgVersion) -> KernelSummary {
    let omp = matches!(version, ProgVersion::Omp);
    let n = param("lookups");
    let ni = param("n_isotopes");
    let ng = param("n_gridpoints");
    let block = crate::xsbench::BLOCK;
    let guard = if omp { Pred::True } else { lt(item(), n.clone()) };
    // Flattened grid coordinate `iso * n_gridpoints + j`.
    let iso_j = free("iso") * ng.clone() + free("j");

    KernelSummary {
        kernel: crate::xsbench::KERNEL.into(),
        app: "xsbench".into(),
        version: version_str(version).into(),
        launch: LaunchShape { block: (block, 1, 1), grid: grid1(ceil_div_e(n.clone(), block)) },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain: if omp { Domain::GridStride(n.clone()) } else { Domain::OnePerThread },
        frees: vec![
            fdecl("m", c(0), param("n_mats")),
            fdecl("entry", c(0), param("n_entries") - c(1)),
            fdecl("iso", c(0), ni.clone() - c(1)),
            fdecl("j", c(0), ng.clone() - c(1)),
            fdecl("k", c(0), c(4)),
        ],
        buffers: vec![
            gbuf("egrid", ni.clone() * ng.clone()),
            gbuf("xs", ni * ng * c(5)),
            gbuf("mat_nuclides", param("n_entries")),
            gbuf("mat_conc", param("n_entries")),
            gbuf("mat_offsets", param("n_mats") + c(1)),
            gbuf("out", n),
        ],
        shared: vec![],
        accesses: vec![
            gread("mat_offsets", free("m"), Pred::True, "main"),
            gread("mat_nuclides", free("entry"), Pred::True, "main"),
            gread("mat_conc", free("entry"), Pred::True, "main"),
            gread("egrid", iso_j.clone(), Pred::True, "main"),
            gread("xs", iso_j * c(5) + free("k"), Pred::True, "main"),
            gwrite("out", item(), guard, "main"),
        ],
        barriers: vec![],
        valuations: xsbench_valuations(),
    }
}

fn xsbench_valuations() -> Vec<Valuation> {
    let mk = |name: &str, lookups: i64, ni: i64, ng: i64| {
        let sizes = crate::xsbench::material_sizes(ni as usize);
        let n_entries: usize = sizes.iter().sum();
        Valuation::new(
            name,
            &[
                ("lookups", lookups),
                ("n_isotopes", ni),
                ("n_gridpoints", ng),
                ("n_entries", n_entries as i64),
                ("n_mats", sizes.len() as i64),
            ],
        )
    };
    vec![mk("test", 256, 8, 64), mk("ragged", 100, 5, 16)]
}

// ---- RSBench -----------------------------------------------------------

/// Multipole lookup. Compute-bound; the omp version additionally stages the
/// per-thread `sigTfactors` scratch in shared memory (heap-to-shared,
/// §4.2.2): slot 0, 8 f64 per thread, indexed `tid.x * 8 + j`.
fn rsbench(version: ProgVersion) -> KernelSummary {
    let omp = matches!(version, ProgVersion::Omp);
    let n = param("lookups");
    let ni = param("n_isotopes");
    let nw = param("n_windows");
    // The HeCBench omp source leaves geometry to the runtime (128/team).
    let block: u32 = if omp { 128 } else { crate::rsbench::BLOCK };
    let guard = if omp { Pred::True } else { lt(item(), n.clone()) };
    let iso_w = free("iso") * nw.clone() + free("w");
    let scratch_idx = tid_x() * c(2 * crate::rsbench::NUM_L as i64) + free("sj");

    let mut frees = vec![
        fdecl("m", c(0), param("n_mats")),
        fdecl("entry", c(0), param("n_entries") - c(1)),
        fdecl("iso", c(0), ni.clone() - c(1)),
        fdecl("l", c(0), c(crate::rsbench::NUM_L as i64 - 1)),
        fdecl("w", c(0), nw.clone() - c(1)),
        fdecl("cw", c(0), c(2)),
        fdecl("p", c(0), c(crate::rsbench::POLES_PER_WINDOW as i64 - 1)),
        fdecl("cp", c(0), c(3)),
    ];
    let mut accesses = vec![
        gread("mat_offsets", free("m"), Pred::True, "main"),
        gread("mat_nuclides", free("entry"), Pred::True, "main"),
        gread("pseudo_k0rs", free("iso") * c(4) + free("l"), Pred::True, "main"),
        gread("windows", iso_w.clone() * c(3) + free("cw"), Pred::True, "main"),
        gread("poles", iso_w * c(64) + free("p") * c(4) + free("cp"), Pred::True, "main"),
        gwrite("out", item(), guard, "main"),
    ];
    let mut shared = vec![];
    if omp {
        let per = 2 * crate::rsbench::NUM_L;
        frees.push(fdecl("sj", c(0), c(per as i64 - 1)));
        shared.push(SharedDecl { slot: 0, len: c((per * block as usize) as i64) });
        accesses.push(swrite(0, scratch_idx.clone(), Pred::True, "main"));
        accesses.push(sread(0, scratch_idx, Pred::True, "main"));
    }

    KernelSummary {
        kernel: crate::rsbench::KERNEL.into(),
        app: "rsbench".into(),
        version: version_str(version).into(),
        launch: LaunchShape { block: (block, 1, 1), grid: grid1(ceil_div_e(n.clone(), block)) },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain: if omp { Domain::GridStride(n.clone()) } else { Domain::OnePerThread },
        frees,
        buffers: vec![
            gbuf("poles", ni.clone() * nw.clone() * c(64)),
            gbuf("windows", ni.clone() * nw * c(3)),
            gbuf("pseudo_k0rs", ni * c(4)),
            gbuf("mat_nuclides", param("n_entries")),
            gbuf("mat_offsets", param("n_mats") + c(1)),
            gbuf("out", n),
        ],
        shared,
        accesses,
        barriers: vec![],
        valuations: rsbench_valuations(),
    }
}

fn rsbench_valuations() -> Vec<Valuation> {
    let mk = |name: &str, lookups: i64, ni: i64, nw: i64| {
        let sizes = crate::rsbench::material_sizes(ni as usize);
        let n_entries: usize = sizes.iter().sum();
        Valuation::new(
            name,
            &[
                ("lookups", lookups),
                ("n_isotopes", ni),
                ("n_windows", nw),
                ("n_entries", n_entries as i64),
                ("n_mats", sizes.len() as i64),
            ],
        )
    };
    vec![mk("test", 192, 6, 16), mk("ragged", 100, 4, 8)]
}

// ---- SU3 ---------------------------------------------------------------

/// Per-site 3×3 complex matrix multiply: 18 reads from each operand, 18
/// writes to the product, all at `site * 18 + m`.
fn su3(version: ProgVersion) -> KernelSummary {
    let omp = matches!(version, ProgVersion::Omp);
    let n = param("sites");
    let block = crate::su3::BLOCK;
    let guard = if omp { Pred::True } else { lt(item(), n.clone()) };
    let idx = item() * c(crate::su3::MAT as i64) + free("m");

    KernelSummary {
        kernel: crate::su3::KERNEL.into(),
        app: "su3".into(),
        version: version_str(version).into(),
        launch: LaunchShape { block: (block, 1, 1), grid: grid1(ceil_div_e(n.clone(), block)) },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain: if omp { Domain::GridStride(n.clone()) } else { Domain::OnePerThread },
        frees: vec![fdecl("m", c(0), c(crate::su3::MAT as i64 - 1))],
        buffers: vec![
            gbuf("a", n.clone() * c(18)),
            gbuf("b", n.clone() * c(18)),
            gbuf("c", n * c(18)),
        ],
        shared: vec![],
        accesses: vec![
            gread("a", idx.clone(), guard.clone(), "main"),
            gread("b", idx.clone(), guard.clone(), "main"),
            gwrite("c", idx, guard, "main"),
        ],
        barriers: vec![],
        valuations: vec![
            Valuation::new("test", &[("sites", 256), ("iterations", 2)]),
            Valuation::new("ragged", &[("sites", 100), ("iterations", 1)]),
        ],
    }
}

// ---- AIDW --------------------------------------------------------------

/// Tiled inverse-distance-weighting scan (the Figure 4 groupprivate
/// pattern): tiles of 64 points staged into three shared arrays between
/// barriers, then every query accumulates over the tile.
fn aidw(version: ProgVersion) -> KernelSummary {
    let np = param("n_points");
    let nq = param("n_queries");
    let block = crate::aidw::BLOCK as u32;
    let launch = LaunchShape { block: (block, 1, 1), grid: grid1(ceil_div_e(nq.clone(), block)) };

    if matches!(version, ProgVersion::Omp) {
        // Traditional OpenMP cannot express the tile barrier: every thread
        // scans all points straight from global memory.
        return KernelSummary {
            kernel: crate::aidw::KERNEL.into(),
            app: "aidw".into(),
            version: version_str(version).into(),
            launch,
            flags: SummaryFlags::default(),
            warp_ops: false,
            domain: Domain::GridStride(nq.clone()),
            frees: vec![fdecl("p", c(0), np.clone() - c(1))],
            buffers: vec![
                gbuf("px", np.clone()),
                gbuf("py", np.clone()),
                gbuf("pv", np),
                gbuf("qx", nq.clone()),
                gbuf("qy", nq.clone()),
                gbuf("out", nq),
            ],
            shared: vec![],
            accesses: vec![
                gread("qx", item(), Pred::True, "main"),
                gread("qy", item(), Pred::True, "main"),
                gread("px", free("p"), Pred::True, "main"),
                gread("py", free("p"), Pred::True, "main"),
                gread("pv", free("p"), Pred::True, "main"),
                gwrite("out", item(), Pred::True, "main"),
            ],
            barriers: vec![],
            valuations: aidw_valuations(),
        };
    }

    let b = i64::from(block);
    // Point index of tile trip `t`, lane `tid.x`.
    let pt = free("t") * c(b) + tid_x();
    let load_guard = lt(pt.clone(), np.clone());
    let scan_guard = lt(item(), nq.clone());
    KernelSummary {
        kernel: crate::aidw::KERNEL.into(),
        app: "aidw".into(),
        version: version_str(version).into(),
        launch,
        flags: SummaryFlags { uses_block_sync: true, uses_warp_ops: false },
        warp_ops: false,
        domain: Domain::OnePerThread,
        frees: vec![fdecl("t", c(0), param("n_tiles") - c(1)), fdecl("s", c(0), c(b - 1))],
        buffers: vec![
            gbuf("px", np.clone()),
            gbuf("py", np.clone()),
            gbuf("pv", np),
            gbuf("qx", nq.clone()),
            gbuf("qy", nq.clone()),
            gbuf("out", nq),
        ],
        shared: vec![
            SharedDecl { slot: 0, len: c(b) },
            SharedDecl { slot: 1, len: c(b) },
            SharedDecl { slot: 2, len: c(b) },
        ],
        accesses: vec![
            gread("qx", item(), scan_guard.clone(), "load"),
            gread("qy", item(), scan_guard.clone(), "load"),
            gread("px", pt.clone(), load_guard.clone(), "load"),
            gread("py", pt.clone(), load_guard.clone(), "load"),
            gread("pv", pt, load_guard.clone(), "load"),
            swrite(0, tid_x(), load_guard.clone(), "load"),
            swrite(1, tid_x(), load_guard.clone(), "load"),
            swrite(2, tid_x(), load_guard, "load"),
            sread(0, free("s"), scan_guard.clone(), "scan"),
            sread(1, free("s"), scan_guard.clone(), "scan"),
            sread(2, free("s"), scan_guard.clone(), "scan"),
            gwrite("out", item(), scan_guard, "scan"),
        ],
        barriers: vec![
            Barrier { guard: Pred::True, phase: "load".into() },
            Barrier { guard: Pred::True, phase: "scan".into() },
        ],
        valuations: aidw_valuations(),
    }
}

fn aidw_valuations() -> Vec<Valuation> {
    let mk = |name: &str, np: i64, nq: i64| {
        let tiles = (np as usize).div_ceil(crate::aidw::BLOCK) as i64;
        Valuation::new(name, &[("n_points", np), ("n_queries", nq), ("n_tiles", tiles)])
    };
    vec![mk("test", 256, 256), mk("ragged", 100, 96)]
}

// ---- Adam --------------------------------------------------------------

/// Elementwise optimizer step. The omp version hits the §4.2.5 quirk
/// (`force_generic` + 32-thread cap): the analyzer models the simulated
/// shape — one master per team over a contiguous chunk.
fn adam(version: ProgVersion) -> KernelSummary {
    let omp = matches!(version, ProgVersion::Omp);
    let n = param("n");
    let block = crate::adam::BLOCK;
    let (launch, domain, guard) = if omp {
        (
            LaunchShape { block: (1, 1, 1), grid: grid1(ceil_div_e(n.clone(), block)) },
            Domain::BlockChunked(n.clone()),
            Pred::True,
        )
    } else {
        (
            LaunchShape { block: (block, 1, 1), grid: grid1(ceil_div_e(n.clone(), block)) },
            Domain::OnePerThread,
            lt(item(), n.clone()),
        )
    };

    KernelSummary {
        kernel: crate::adam::KERNEL.into(),
        app: "adam".into(),
        version: version_str(version).into(),
        launch,
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain,
        frees: vec![],
        buffers: vec![
            gbuf("p", n.clone()),
            gbuf("m", n.clone()),
            gbuf("v", n.clone()),
            gbuf("g", n),
        ],
        shared: vec![],
        accesses: vec![
            gread("g", item(), guard.clone(), "main"),
            gread("m", item(), guard.clone(), "main"),
            gread("v", item(), guard.clone(), "main"),
            gread("p", item(), guard.clone(), "main"),
            gwrite("m", item(), guard.clone(), "main"),
            gwrite("v", item(), guard.clone(), "main"),
            gwrite("p", item(), guard, "main"),
        ],
        barriers: vec![],
        valuations: vec![
            Valuation::new("test", &[("n", 1000), ("steps", 4)]),
            Valuation::new("ragged", &[("n", 100), ("steps", 2)]),
        ],
    }
}

// ---- Stencil-1D --------------------------------------------------------

/// 7-point tiled stencil, ping-ponging between `a` and `b`. Even
/// iterations read `a` / write `b`; odd iterations swap — the per-parity
/// phase labels keep the two launch directions from being race-paired.
fn stencil(version: ProgVersion) -> KernelSummary {
    let n = param("length");
    let block = crate::stencil::BLOCK as u32;
    let radius = crate::stencil::RADIUS as i64;
    let b = i64::from(block);
    let grid = grid1(ceil_div_e(n.clone(), block));

    if matches!(version, ProgVersion::Omp) {
        // Generic-mode fallback (§4.2.6): one master per team, global
        // clamped reads instead of the shared tile.
        let mut accesses = Vec::new();
        for (input, output, phase) in [("a", "b", "main_even"), ("b", "a", "main_odd")] {
            let clamped = min_e(max_e(item() + free("o") - c(radius), c(0)), n.clone() - c(1));
            accesses.push(gread(input, clamped, Pred::True, phase));
            accesses.push(gwrite(output, item(), Pred::True, phase));
        }
        return KernelSummary {
            kernel: crate::stencil::KERNEL.into(),
            app: "stencil".into(),
            version: version_str(version).into(),
            launch: LaunchShape { block: (1, 1, 1), grid },
            flags: SummaryFlags::default(),
            warp_ops: false,
            domain: Domain::BlockChunked(n.clone()),
            frees: vec![fdecl("o", c(0), c(2 * radius))],
            buffers: vec![gbuf("a", n.clone()), gbuf("b", n)],
            shared: vec![],
            accesses,
            barriers: vec![],
            valuations: stencil_valuations(),
        };
    }

    let mut accesses = Vec::new();
    let mut barriers = Vec::new();
    for (input, output, parity) in [("a", "b", "even"), ("b", "a", "odd")] {
        let load = format!("load_{parity}");
        let compute = format!("compute_{parity}");
        let halo_guard = lt(tid_x(), c(radius));
        // Interior element (lanes past the end stage the clamped boundary).
        accesses.push(gread(input, min_e(item(), n.clone() - c(1)), Pred::True, &load));
        accesses.push(swrite(0, tid_x() + c(radius), Pred::True, &load));
        // Left halo: `(bid.x * BLOCK).saturating_sub(RADIUS - tid.x)`.
        accesses.push(gread(
            input,
            min_e(
                max_e(ompx_analyzer::expr::bid_x() * c(b) + tid_x() - c(radius), c(0)),
                n.clone() - c(1),
            ),
            halo_guard.clone(),
            &load,
        ));
        accesses.push(swrite(0, tid_x(), halo_guard.clone(), &load));
        // Right halo.
        accesses.push(gread(
            input,
            min_e(ompx_analyzer::expr::bid_x() * c(b) + c(b) + tid_x(), n.clone() - c(1)),
            halo_guard.clone(),
            &load,
        ));
        accesses.push(swrite(0, tid_x() + c(radius + b), halo_guard, &load));
        barriers.push(Barrier { guard: Pred::True, phase: load });
        // Compute from the tile.
        let guard = lt(item(), n.clone());
        accesses.push(sread(0, tid_x() + free("o"), guard.clone(), &compute));
        accesses.push(gwrite(output, item(), guard, &compute));
    }

    KernelSummary {
        kernel: crate::stencil::KERNEL.into(),
        app: "stencil".into(),
        version: version_str(version).into(),
        launch: LaunchShape { block: (block, 1, 1), grid },
        flags: SummaryFlags { uses_block_sync: true, uses_warp_ops: false },
        warp_ops: false,
        domain: Domain::OnePerThread,
        frees: vec![fdecl("o", c(0), c(2 * radius))],
        buffers: vec![gbuf("a", n.clone()), gbuf("b", n)],
        shared: vec![SharedDecl { slot: 0, len: c(b + 2 * radius) }],
        accesses,
        barriers,
        valuations: stencil_valuations(),
    }
}

fn stencil_valuations() -> Vec<Valuation> {
    vec![
        Valuation::new("test", &[("length", 2048), ("iterations", 2)]),
        Valuation::new("ragged", &[("length", 500), ("iterations", 1)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_analyzer::{analyze, validate_events};
    use ompx_sanitizer::Severity;

    /// Statically analyze and replay-validate every version of one app.
    fn cell_is_clean(app: &str) {
        for version in ProgVersion::all() {
            let s = summary_for(app, version);
            assert!(s.valuations.len() >= 2, "{app}/{version:?} needs >= 2 valuations");
            for warp in [32u32, 64] {
                let findings = analyze(&s, warp);
                let errors: Vec<_> =
                    findings.iter().filter(|f| f.severity == Severity::Error).collect();
                assert!(
                    errors.is_empty(),
                    "{app}/{} should analyze clean at warp {warp}: {errors:#?}",
                    s.version
                );
            }
            for val in &s.valuations {
                let events = replay_events(app, System::Nvidia, version, val);
                assert!(
                    !events.is_empty(),
                    "{app}/{}/{} produced no trace events",
                    s.version,
                    val.name
                );
                let findings = validate_events(&s, val, &events);
                let errors: Vec<_> =
                    findings.iter().filter(|f| f.severity == Severity::Error).collect();
                assert!(
                    errors.is_empty(),
                    "{app}/{}/{} replay mismatch: {errors:#?}",
                    s.version,
                    val.name
                );
            }
        }
    }

    #[test]
    fn xsbench_cells_are_clean() {
        cell_is_clean("xsbench");
    }

    #[test]
    fn rsbench_cells_are_clean() {
        cell_is_clean("rsbench");
    }

    #[test]
    fn su3_cells_are_clean() {
        cell_is_clean("su3");
    }

    #[test]
    fn aidw_cells_are_clean() {
        cell_is_clean("aidw");
    }

    #[test]
    fn adam_cells_are_clean() {
        cell_is_clean("adam");
    }

    #[test]
    fn stencil_cells_are_clean() {
        cell_is_clean("stencil");
    }

    #[test]
    fn every_cell_has_a_summary() {
        for app in crate::APP_NAMES {
            for version in ProgVersion::all() {
                let s = summary_for(app, version);
                assert_eq!(s.app, app);
                assert_eq!(s.version, version_str(version));
            }
        }
    }
}
