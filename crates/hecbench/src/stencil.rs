//! Stencil-1D: the classic shared-memory 1-D stencil from the CUDA
//! tutorials (§4.2.6) — **bandwidth-bound**, iterated many times.
//!
//! The CUDA version stages a block-sized tile plus halos in shared memory
//! with two `__syncthreads()` per launch; `ompx_bare` ports it verbatim.
//! Traditional OpenMP cannot express the tile, and worse, LLVM fails to
//! rewrite the region's state machine, leaving the `omp` version in
//! generic mode — with 1000 launches of half a million teams each, the
//! per-team state-machine setup dominates: the paper measures **145.6 ms**
//! per kernel vs ~1 ms native on the A100 (60.87 ms on the MI250). The
//! `force_generic` quirk on kernel `stencil1d` reproduces the mechanism.

use crate::common::*;
use ompx::BareTarget;
use ompx_klang::toolchain::{vendor_key, CodegenDb, Toolchain};
use ompx_sim::dim::LaunchConfig;
use ompx_sim::exec::{Kernel, KernelFlags};
use ompx_sim::mem::DBuf;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::timing::CodegenInfo;
use ompx_sim::{Device, Vendor};

/// Benchmark metadata (Figure 6 row).
pub fn info() -> BenchInfo {
    BenchInfo {
        name: "Stencil 1D",
        description: "1-D shared-memory stencil (radius 3), iterated",
        paper_cmdline: "134217728 1000",
        reported_metric: "average kernel milliseconds",
    }
}

pub(crate) const KERNEL: &str = "stencil1d";
const SEED: u64 = 0x5eed55;
pub(crate) const BLOCK: usize = 256;
pub(crate) const RADIUS: usize = 3;

/// Workload parameters. The paper runs 2²⁷ elements for 1000 iterations
/// and reports the average kernel time.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub length: usize,
    pub iterations: usize,
    pub paper_length: u64,
}

impl Params {
    pub fn for_scale(scale: WorkScale) -> Self {
        match scale {
            WorkScale::Default => {
                Params { length: 32_768, iterations: 4, paper_length: 134_217_728 }
            }
            WorkScale::Test => Params { length: 2_048, iterations: 2, paper_length: 134_217_728 },
        }
    }

    fn elem_factor(&self) -> f64 {
        self.paper_length as f64 / self.length as f64
    }
}

fn generate(device: &Device, length: usize) -> (DBuf<f32>, DBuf<f32>) {
    let init: Vec<f32> =
        (0..length).map(|i| (item_uniform(SEED, i as u64) * 10.0) as f32).collect();
    let a = device.alloc_from(&init);
    let b = device.alloc::<f32>(length);
    a.set_label("a");
    b.set_label("b");
    (a, b)
}

/// The stencil sum at element `i`, reading through `load` — identical
/// arithmetic whether the neighbours come from the shared tile (native,
/// ompx) or straight from global memory (omp).
#[inline]
fn stencil_sum<'a>(
    tc: &mut ThreadCtx<'a>,
    mut load: impl FnMut(&mut ThreadCtx<'a>, isize) -> f32,
) -> f32 {
    let mut acc = 0.0f32;
    for off in -(RADIUS as isize)..=(RADIUS as isize) {
        acc += load(tc, off);
        tc.flops(1);
    }
    acc / (2 * RADIUS + 1) as f32
}

/// Tiled kernel body (CUDA original and the ompx port): stage
/// `BLOCK + 2*RADIUS` elements, barrier, compute from the tile.
fn tiled_body(
    tc: &mut ThreadCtx<'_>,
    input: &DBuf<f32>,
    output: &DBuf<f32>,
    slot: usize,
    n: usize,
) {
    let tile = tc.shared::<f32>(slot);
    let tid = tc.thread_rank();
    let gid = tc.global_thread_id_x();

    // Interior element (lanes past the end stage the clamped boundary so
    // partial blocks read consistent halos).
    let v = tc.read(input, gid.min(n - 1));
    tc.swrite(&tile, tid + RADIUS, v);
    // Halos: the first 2*RADIUS threads fetch the block's edges
    // (clamped boundary).
    if tid < RADIUS {
        let left = (tc.block_id_x() * BLOCK).saturating_sub(RADIUS - tid).min(n - 1);
        let v = tc.read(input, left);
        tc.swrite(&tile, tid, v);
        let right = (tc.block_id_x() * BLOCK + BLOCK + tid).min(n - 1);
        let v = tc.read(input, right);
        tc.swrite(&tile, tid + RADIUS + BLOCK, v);
    }
    tc.sync_threads();

    if gid < n {
        let r = stencil_sum(tc, |tc, off| {
            let idx = (tid + RADIUS) as isize + off;
            tc.sread(&tile, idx as usize)
        });
        tc.write(output, gid, r);
    }
}

/// Clamped global index for the non-tiled (omp) version — must match the
/// tile's clamping exactly for checksum equality.
#[inline]
fn clamped(n: usize, i: usize, off: isize) -> usize {
    let idx = i as isize + off;
    if idx < 0 {
        // The tile clamps left halos to the block's left edge fetch; with
        // the global formulation the same clamp is index 0 … n-1.
        0
    } else {
        (idx as usize).min(n - 1)
    }
}

fn register_profiles(db: &CodegenDb) {
    let base = CodegenInfo { fp64_fraction: 0.0, ..CodegenInfo::default() };
    // The prototype's generated addressing for the tile is slightly
    // better-coalesced than Clang's native path on this kernel — the small
    // but consistent ompx win in Figures 8f/8l.
    db.set(KERNEL, Toolchain::Clang, CodegenInfo { regs_per_thread: 22, coalescing: 0.80, ..base });
    db.set(KERNEL, Toolchain::Nvcc, CodegenInfo { regs_per_thread: 22, coalescing: 0.78, ..base });
    db.set(
        KERNEL,
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 24, coalescing: 0.95, binary_bytes: 14 * 1024, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 36, coalescing: 0.70, binary_bytes: 36 * 1024, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 26, coalescing: 0.82, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::Hipcc,
        CodegenInfo { regs_per_thread: 26, coalescing: 0.80, ..base },
    );
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 28, coalescing: 0.94, binary_bytes: 14 * 1024, ..base },
    );
}

/// Run one program version on one system. All versions ping-pong between
/// two buffers for `iterations` kernels and report the average kernel time
/// (extrapolated to the paper's 2²⁷ elements).
pub fn run(sys: System, version: ProgVersion, scale: WorkScale) -> RunOutcome {
    run_with_params(sys, version, Params::for_scale(scale))
}

pub(crate) fn run_with_params(sys: System, version: ProgVersion, params: Params) -> RunOutcome {
    let n = params.length;
    let iters = params.iterations;
    let factor = params.elem_factor();

    let finish = |label: &str,
                  checksum: u64,
                  per_kernel: ompx_sim::timing::ModeledTime,
                  stats: ompx_sim::counters::StatsSnapshot,
                  note: Option<String>| RunOutcome {
        label: label.to_string(),
        checksum,
        // Average *kernel* time, like the benchmark's event-based timer.
        reported_seconds: kernel_only(&per_kernel),
        kernel_model: per_kernel,
        stats,
        excluded: false,
        note,
    };

    match version {
        ProgVersion::Native | ProgVersion::NativeVendor => {
            let ctx = native_ctx(sys, version == ProgVersion::NativeVendor);
            register_profiles(ctx.codegen());
            let (a, b) = generate(ctx.device(), n);
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            let mut smem = 0usize;
            for it in 0..iters {
                let (input, output) = if it % 2 == 0 { (&a, &b) } else { (&b, &a) };
                let mut cfg = LaunchConfig::linear(n, BLOCK as u32);
                let slot = cfg.shared_array::<f32>(BLOCK + 2 * RADIUS);
                smem = cfg.shared_bytes_per_block();
                let kernel = Kernel::with_flags(
                    KERNEL,
                    KernelFlags { uses_block_sync: true, uses_warp_ops: false },
                    {
                        let (input, output) = (input.clone(), output.clone());
                        move |tc: &mut ThreadCtx<'_>| tiled_body(tc, &input, &output, slot, n)
                    },
                );
                let r = ctx.launch_cfg(&kernel, cfg).expect("launch");
                agg = agg.merged(&r.stats);
            }
            let per_launch = agg.scaled(factor / iters as f64);
            let modeled = ctx.model(KERNEL, BLOCK as u32, smem, &per_launch);
            let final_buf = if iters.is_multiple_of(2) { &a } else { &b };
            finish(
                version.label(sys),
                checksum_f32_items(&final_buf.to_vec()),
                modeled,
                per_launch,
                None,
            )
        }
        ProgVersion::Ompx => {
            let omp = ompx_runtime(sys);
            register_profiles(omp.codegen());
            let (a, b) = generate(omp.device(), n);
            let teams = (n as u32).div_ceil(BLOCK as u32);
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            let mut last = None;
            for it in 0..iters {
                let (input, output) = if it % 2 == 0 { (&a, &b) } else { (&b, &a) };
                let mut target = BareTarget::new(&omp, KERNEL)
                    .num_teams([teams])
                    .thread_limit([BLOCK as u32])
                    .uses_block_sync();
                let slot = target.shared_array::<f32>(BLOCK + 2 * RADIUS);
                let prepared = target.prepare({
                    let (input, output) = (input.clone(), output.clone());
                    move |tc| tiled_body(tc, &input, &output, slot, n)
                });
                let r = prepared.execute().expect("bare launch");
                agg = agg.merged(&r.stats);
                last = Some(prepared);
            }
            let per_launch = agg.scaled(factor / iters as f64);
            let modeled = last.expect("iters > 0").model(&per_launch).modeled;
            let final_buf = if iters.is_multiple_of(2) { &a } else { &b };
            finish(
                version.label(sys),
                checksum_f32_items(&final_buf.to_vec()),
                modeled,
                per_launch,
                None,
            )
        }
        ProgVersion::Omp => {
            let omp = omp_runtime(sys);
            register_profiles(omp.codegen());
            let (a, b) = generate(omp.device(), n);
            let teams = (n as u32).div_ceil(BLOCK as u32);
            let mut agg = ompx_sim::counters::StatsSnapshot::default();
            let mut last = None;
            let mut plan = None;
            for it in 0..iters {
                let (input, output) = if it % 2 == 0 { (&a, &b) } else { (&b, &a) };
                let prepared = omp
                    .target(KERNEL)
                    .num_teams(teams)
                    .thread_limit(BLOCK as u32)
                    .prepare_dpf(n, {
                        let (input, output) = (input.clone(), output.clone());
                        std::sync::Arc::new(
                            move |tc: &mut ThreadCtx<'_>,
                                  i: usize,
                                  _s: &ompx_hostrt::target::Scratch| {
                                let r =
                                    stencil_sum(tc, |tc, off| tc.read(&input, clamped(n, i, off)));
                                tc.write(&output, i, r);
                            },
                        )
                    });
                let r = prepared.execute().expect("omp launch");
                plan = Some(r.plan);
                agg = agg.merged(&r.stats);
                last = Some(prepared);
            }
            let per_launch = agg.scaled(factor / iters as f64);
            let modeled = last.expect("iters > 0").model(&per_launch).modeled;
            let final_buf = if iters.is_multiple_of(2) { &a } else { &b };
            let note =
                matches!(plan, Some(p) if p.mode == ompx_devicert::ExecMode::Generic).then(|| {
                    "generic-mode fallback: the state machine could not be rewritten (§4.2.6)"
                        .to_string()
                });
            finish(
                version.label(sys),
                checksum_f32_items(&final_buf.to_vec()),
                modeled,
                per_launch,
                note,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_and_global_formulations_agree() {
        // The halo clamping must produce bit-identical results.
        let reference = run(System::Nvidia, ProgVersion::Native, WorkScale::Test).checksum;
        for sys in [System::Nvidia, System::Amd] {
            for v in ProgVersion::all() {
                let r = run(sys, v, WorkScale::Test);
                assert_eq!(r.checksum, reference, "{} on {} diverged", r.label, sys.label());
            }
        }
    }

    #[test]
    fn stencil_smooths_the_signal() {
        // After iterations of averaging, variance must strictly decrease.
        let params = Params::for_scale(WorkScale::Test);
        let ctx = native_ctx(System::Nvidia, false);
        let (a, _b) = generate(ctx.device(), params.length);
        let init = a.to_vec();
        let var = |v: &[f32]| {
            let mean = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32
        };
        let r = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        let _ = r;
        // Direct functional check with a fresh pair.
        let (a, b) = generate(ctx.device(), params.length);
        let n = params.length;
        let mut cfg = LaunchConfig::linear(n, BLOCK as u32);
        let slot = cfg.shared_array::<f32>(BLOCK + 2 * RADIUS);
        let kernel = Kernel::with_flags(
            "stencil_var",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let (a, b) = (a.clone(), b.clone());
                move |tc: &mut ThreadCtx<'_>| tiled_body(tc, &a, &b, slot, n)
            },
        );
        ctx.launch_cfg(&kernel, cfg).unwrap();
        assert!(var(&b.to_vec()) < var(&init));
    }

    #[test]
    fn device_checksum_matches_independent_host_reference() {
        // Plain host implementation of the iterated clamped stencil.
        let params = Params::for_scale(WorkScale::Test);
        let ctx = native_ctx(System::Nvidia, false);
        let (a, _b) = generate(ctx.device(), params.length);
        let mut cur = a.to_vec();
        let n = params.length;
        for _ in 0..params.iterations {
            let mut next = vec![0.0f32; n];
            for (i, slot) in next.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for off in -(RADIUS as isize)..=(RADIUS as isize) {
                    acc += cur[clamped(n, i, off)];
                }
                *slot = acc / (2 * RADIUS + 1) as f32;
            }
            cur = next;
        }
        let host_checksum = checksum_f32_items(&cur);
        let device = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        assert_eq!(device.checksum, host_checksum, "device diverges from host reference");
    }

    #[test]
    fn omp_is_orders_of_magnitude_slower() {
        // §4.2.6: generic-mode state machine → ~2 orders of magnitude.
        for sys in [System::Nvidia, System::Amd] {
            let omp = run(sys, ProgVersion::Omp, WorkScale::Test);
            let ompx = run(sys, ProgVersion::Ompx, WorkScale::Test);
            let ratio = omp.reported_seconds / ompx.reported_seconds;
            assert!(
                ratio > 50.0,
                "{}: omp/ompx ratio {ratio} too small for the generic-mode pathology",
                sys.label()
            );
            assert!(omp.note.as_deref().unwrap_or("").contains("generic"));
        }
    }

    #[test]
    fn ompx_beats_native_on_both_systems() {
        for sys in [System::Nvidia, System::Amd] {
            let ompx = run(sys, ProgVersion::Ompx, WorkScale::Test).reported_seconds;
            let native = run(sys, ProgVersion::Native, WorkScale::Test).reported_seconds;
            assert!(ompx < native, "{}: ompx {ompx} !< native {native}", sys.label());
        }
    }
}
