//! Shared benchmark infrastructure: systems, versions, checksums, scaling.

use ompx_hostrt::OpenMp;
use ompx_klang::cuda::{cuda_context_clang, cuda_context_nvcc};
use ompx_klang::hip::{hip_context_clang, hip_context_hipcc};
use ompx_klang::runtime::NativeCtx;
use ompx_sim::memtrace::{BarrierEvent, MemEvent, MemTrace};
use ompx_sim::san::{Diagnostic, SanState, ToolMask};
use ompx_sim::timing::ModeledTime;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, MutexGuard};

/// The two evaluation systems of the paper's Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum System {
    /// NVIDIA A100 (40 GB), CUDA 11.8.
    Nvidia,
    /// AMD MI250, ROCm 5.5.
    Amd,
}

impl System {
    /// Human label ("nvidia"/"amd").
    pub fn label(&self) -> &'static str {
        match self {
            System::Nvidia => "nvidia",
            System::Amd => "amd",
        }
    }
}

/// The four program versions compared per system (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgVersion {
    /// OpenMP kernel language, compiled with the prototype ("ompx").
    Ompx,
    /// Traditional OpenMP target offloading, LLVM/Clang ("omp").
    Omp,
    /// Native kernel language compiled with LLVM/Clang ("cuda"/"hip").
    Native,
    /// Native kernel language compiled with the vendor compiler
    /// ("cuda-nvcc"/"hip-hipcc").
    NativeVendor,
}

impl ProgVersion {
    /// The bar label used in Figure 8 for this version on `sys`.
    pub fn label(&self, sys: System) -> &'static str {
        match (self, sys) {
            (ProgVersion::Ompx, _) => "ompx",
            (ProgVersion::Omp, _) => "omp",
            (ProgVersion::Native, System::Nvidia) => "cuda",
            (ProgVersion::Native, System::Amd) => "hip",
            (ProgVersion::NativeVendor, System::Nvidia) => "cuda-nvcc",
            (ProgVersion::NativeVendor, System::Amd) => "hip-hipcc",
        }
    }

    /// All four versions in the figure's bar order.
    pub fn all() -> [ProgVersion; 4] {
        [ProgVersion::Ompx, ProgVersion::Omp, ProgVersion::Native, ProgVersion::NativeVendor]
    }
}

/// Simulated workload size selector. The *paper* workload is fixed; this
/// only chooses how much of it is functionally simulated before counters
/// are extrapolated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkScale {
    /// Tiny inputs for unit tests (sub-second in debug builds).
    Test,
    /// The harness default (seconds in release builds).
    Default,
}

/// Benchmark metadata — one row of the paper's Figure 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchInfo {
    pub name: &'static str,
    pub description: &'static str,
    /// The command line the paper ran (Figure 6).
    pub paper_cmdline: &'static str,
    /// How Figure 8 reports time for this app.
    pub reported_metric: &'static str,
}

/// The outcome of running one program version of one app on one system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Bar label ("ompx", "cuda-nvcc", …).
    pub label: String,
    /// Order-independent checksum over the program's results; must agree
    /// across versions of the same app.
    pub checksum: u64,
    /// Modeled time, extrapolated to the paper's workload, in the unit the
    /// benchmark reports (seconds).
    pub reported_seconds: f64,
    /// Per-kernel modeled breakdown (of the last/representative kernel).
    pub kernel_model: ModeledTime,
    /// Counted events of the representative kernel, extrapolated to the
    /// paper workload.
    pub stats: ompx_sim::counters::StatsSnapshot,
    /// The paper excluded this series (XSBench `omp`'s invalid checksum).
    pub excluded: bool,
    /// Free-form note shown by the harness.
    pub note: Option<String>,
}

// ---- contexts -------------------------------------------------------------

/// Native context for (system, vendor-compiler?) — the `cuda`/`hip` and
/// `cuda-nvcc`/`hip-hipcc` bars.
pub fn native_ctx(sys: System, vendor_cc: bool) -> NativeCtx {
    let ctx = match (sys, vendor_cc) {
        (System::Nvidia, false) => cuda_context_clang(),
        (System::Nvidia, true) => cuda_context_nvcc(),
        (System::Amd, false) => hip_context_clang(),
        (System::Amd, true) => hip_context_hipcc(),
    };
    if let Some(state) = active_sanitizer() {
        ctx.sanitizer_attach(state);
    }
    if let Some(trace) = active_mem_trace() {
        ctx.device().attach_mem_trace(trace);
    }
    if let Some(faults) = active_faults() {
        ctx.device().attach_faults(faults);
        install_write_set_hints(ctx.device());
    }
    ctx
}

/// Traditional OpenMP runtime for a system (ClangOpenmp + the paper's
/// observed LLVM quirks).
pub fn omp_runtime(sys: System) -> OpenMp {
    let omp = match sys {
        System::Nvidia => OpenMp::nvidia_system(),
        System::Amd => OpenMp::amd_system(),
    };
    if let Some(state) = active_sanitizer() {
        ompx_hostrt::ompx_sanitizer_attach(&omp, &state);
    }
    if let Some(trace) = active_mem_trace() {
        omp.device().attach_mem_trace(trace);
    }
    if let Some(faults) = active_faults() {
        omp.device().attach_faults(faults);
        install_write_set_hints(omp.device());
    }
    omp
}

/// Prototype (`ompx`) runtime for a system.
pub fn ompx_runtime(sys: System) -> OpenMp {
    let omp = match sys {
        System::Nvidia => ompx::runtime_nvidia(),
        System::Amd => ompx::runtime_amd(),
    };
    if let Some(state) = active_sanitizer() {
        ompx_hostrt::ompx_sanitizer_attach(&omp, &state);
    }
    if let Some(trace) = active_mem_trace() {
        omp.device().attach_mem_trace(trace);
    }
    if let Some(faults) = active_faults() {
        omp.device().attach_faults(faults);
        install_write_set_hints(omp.device());
    }
    omp
}

// ---- sanitizer integration ------------------------------------------------

/// The sanitizer session installed by [`run_app_sanitized`], if one is
/// active. Apps build their contexts *inside* `run`, so the session rides
/// along ambiently: the constructors above attach it to every device they
/// hand out.
static ACTIVE_SANITIZER: Mutex<Option<Arc<SanState>>> = Mutex::new(None);

/// Serialises sanitized runs so parallel tests cannot leak findings into
/// each other's reports through the ambient session.
static SANITIZED_RUN_GATE: Mutex<()> = Mutex::new(());

fn active_sanitizer() -> Option<Arc<SanState>> {
    ACTIVE_SANITIZER.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clears the ambient session even if the benchmark panics.
struct SanitizerInstall(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for SanitizerInstall {
    fn drop(&mut self) {
        *ACTIVE_SANITIZER.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Run one (app, system, version) cell under a fresh sanitizer session with
/// the tools in `mask`, returning the benchmark outcome plus everything the
/// enabled tools found. This is what `sanitize` (ompx-bench) runs per cell.
pub fn run_app_sanitized(
    app: &str,
    sys: System,
    version: ProgVersion,
    scale: WorkScale,
    mask: ToolMask,
) -> (RunOutcome, Vec<Diagnostic>) {
    let gate = SANITIZED_RUN_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let state = SanState::new(mask);
    *ACTIVE_SANITIZER.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&state));
    let _uninstall = SanitizerInstall(gate);
    let outcome = crate::run_app(app, sys, version, scale);
    (outcome, state.diagnostics())
}

// ---- memory-trace integration (analyzer replay) ----------------------------

/// The memory trace installed by [`with_mem_trace`], if one is active.
/// Rides along ambiently exactly like the sanitizer session: the context
/// constructors attach it to every device they hand out.
static ACTIVE_MEM_TRACE: Mutex<Option<Arc<MemTrace>>> = Mutex::new(None);

fn active_mem_trace() -> Option<Arc<MemTrace>> {
    ACTIVE_MEM_TRACE.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clears the ambient trace even if the benchmark panics.
struct TraceInstall(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for TraceInstall {
    fn drop(&mut self) {
        *ACTIVE_MEM_TRACE.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Run a benchmark closure with a fresh ambient memory trace installed,
/// returning its result plus every recorded access event. Shares the
/// sanitized-run gate so traced and sanitized runs cannot cross-pollute
/// through the ambient statics. This is the analyzer's replay data plane.
pub fn with_mem_trace<R>(f: impl FnOnce() -> R) -> (R, Vec<MemEvent>) {
    let (result, events, _) = with_mem_trace_full(f);
    (result, events)
}

/// Like [`with_mem_trace`], but also returns the recorded barrier events.
/// Summary extraction needs both streams: accesses to fit index
/// expressions, barriers to delimit and order phases.
pub fn with_mem_trace_full<R>(f: impl FnOnce() -> R) -> (R, Vec<MemEvent>, Vec<BarrierEvent>) {
    let gate = SANITIZED_RUN_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let trace = MemTrace::new();
    *ACTIVE_MEM_TRACE.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&trace));
    let _uninstall = TraceInstall(gate);
    let result = f();
    (result, trace.events(), trace.barrier_events())
}

// ---- span-log integration (profiler timelines) -----------------------------

/// Run a benchmark closure with a fresh ambient profiler [`SpanLog`]
/// installed, returning its result plus every recorded timeline span.
/// Shares the sanitized-run gate so profiled, traced and sanitized runs
/// cannot cross-pollute through the process-wide statics. This is
/// `ompx-prof`'s timeline data plane.
///
/// [`SpanLog`]: ompx_sim::span::SpanLog
pub fn with_span_log<R>(f: impl FnOnce() -> R) -> (R, Vec<ompx_sim::span::Span>) {
    let _gate = SANITIZED_RUN_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let log = ompx_sim::span::SpanLog::new();
    ompx_sim::span::SpanLog::install(Arc::clone(&log));
    /// Uninstalls the ambient log even if the benchmark panics.
    struct SpanInstall;
    impl Drop for SpanInstall {
        fn drop(&mut self) {
            ompx_sim::span::SpanLog::uninstall();
        }
    }
    let _uninstall = SpanInstall;
    let result = f();
    (result, log.spans())
}

// ---- fault-injection integration (chaos harness) ----------------------------

/// The fault state installed by [`run_app_chaos`], if one is active. Rides
/// along ambiently exactly like the sanitizer session: the context
/// constructors attach it to every device they hand out.
static ACTIVE_FAULTS: Mutex<Option<Arc<ompx_sim::fault::FaultState>>> = Mutex::new(None);

fn active_faults() -> Option<Arc<ompx_sim::fault::FaultState>> {
    ACTIVE_FAULTS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Kernel write-set hints installed by [`run_app_chaos`]: `(kernel name,
/// written global-buffer labels)` pairs from the cell's analyzer summary.
/// The constructors above copy them onto every device they hand out, so a
/// watchdog checkpoint snapshots only the buffers the killed kernel could
/// have dirtied. Kernels without a hint (e.g. `adam`'s native convergence
/// kernel, which the 24-cell registry does not summarize) fall back to a
/// whole-buffer snapshot inside the simulator.
static ACTIVE_WRITE_SETS: Mutex<Option<Arc<WriteSets>>> = Mutex::new(None);

/// `(kernel name, written global-buffer labels)` hint pairs.
type WriteSets = Vec<(String, Vec<String>)>;

fn install_write_set_hints(device: &ompx_sim::device::Device) {
    let hints = ACTIVE_WRITE_SETS.lock().unwrap_or_else(|e| e.into_inner()).clone();
    if let Some(hints) = hints {
        for (kernel, labels) in hints.iter() {
            device.set_kernel_write_set(kernel, labels);
        }
    }
}

/// What fault injection did to one chaos run, alongside the outcome.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Everything the fault state recorded: injections, recoveries,
    /// fallbacks, degradations, sticky errors, device loss.
    pub snapshot: ompx_sim::fault::FaultSnapshot,
    /// Retry spans on the profiler timeline (retries + recoveries).
    pub retry_spans: usize,
    /// Fallback spans on the profiler timeline.
    pub fallback_spans: usize,
}

/// A held chaos-run scope: the sanitized-run gate acquired once, one
/// ambient [`SpanLog`] installed for the whole scope, and per-cell swapping
/// of the ambient fault state + write-set hints.
///
/// [`run_app_chaos`] uses one session per cell; `ompx-serve` holds a single
/// session across thousands of requests so each pool member's persistent
/// [`FaultState`] (with its sticky device-loss flag) can be attached for
/// exactly the requests routed to it, while every request's spans land on
/// one timeline. The gate is **not** reentrant: constructing a second
/// session on the same thread (or inside `run_app_sanitized` /
/// `with_mem_trace` / `with_span_log`) deadlocks.
///
/// [`SpanLog`]: ompx_sim::span::SpanLog
/// [`FaultState`]: ompx_sim::fault::FaultState
pub struct ChaosSession {
    _gate: MutexGuard<'static, ()>,
    log: Arc<ompx_sim::span::SpanLog>,
    metrics: Arc<ompx_telemetry::MetricRegistry>,
}

impl ChaosSession {
    /// Acquire the gate and install a fresh ambient span log and metric
    /// registry (with the base families pre-declared), so every chaos and
    /// serve run is metered without further wiring.
    pub fn begin() -> ChaosSession {
        let gate = SANITIZED_RUN_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let log = ompx_sim::span::SpanLog::new();
        ompx_sim::span::SpanLog::install(Arc::clone(&log));
        let metrics = ompx_telemetry::MetricRegistry::new();
        ompx_telemetry::describe_base_families(&metrics);
        ompx_telemetry::install(Arc::clone(&metrics));
        ChaosSession { _gate: gate, log, metrics }
    }

    /// The session's metric registry (shared with the ambient install).
    pub fn metrics(&self) -> Arc<ompx_telemetry::MetricRegistry> {
        Arc::clone(&self.metrics)
    }

    /// The session's span log (shared with the ambient install), e.g. for
    /// recording per-device pool timeline spans alongside the run spans.
    pub fn span_log(&self) -> Arc<ompx_sim::span::SpanLog> {
        Arc::clone(&self.log)
    }

    /// Everything recorded on the session timeline so far.
    pub fn spans(&self) -> Vec<ompx_sim::span::Span> {
        self.log.spans()
    }

    /// Run one (app, system, version) cell with `faults` attached
    /// ambiently (plus the cell's analyzer write-set hints), catching
    /// panics so callers can assert the chaos trichotomy. With
    /// `faults: None` the cell runs fault-free (e.g. to establish expected
    /// checksums). The fault state is the *caller's*: sticky errors and
    /// the device-loss flag persist across calls that reuse it, which is
    /// how a serving pool models a lost member.
    pub fn run_cell(
        &self,
        app: &str,
        sys: System,
        version: ProgVersion,
        scale: WorkScale,
        faults: Option<&Arc<ompx_sim::fault::FaultState>>,
    ) -> Result<RunOutcome, String> {
        *ACTIVE_FAULTS.lock().unwrap_or_else(|e| e.into_inner()) = faults.map(Arc::clone);
        let write_sets: Vec<_> = crate::summaries::write_set(app, version).into_iter().collect();
        *ACTIVE_WRITE_SETS.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(write_sets));
        /// Clears the per-cell ambient state even if the cell panics in a
        /// way `catch_unwind` cannot contain (e.g. panic-in-drop aborts
        /// excluded, a resumed unwind still runs this).
        struct CellInstall;
        impl Drop for CellInstall {
            fn drop(&mut self) {
                *ACTIVE_FAULTS.lock().unwrap_or_else(|e| e.into_inner()) = None;
                *ACTIVE_WRITE_SETS.lock().unwrap_or_else(|e| e.into_inner()) = None;
            }
        }
        let _uninstall = CellInstall;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_app(app, sys, version, scale)
        }))
        .map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            }
        })
    }
}

impl Drop for ChaosSession {
    fn drop(&mut self) {
        ompx_telemetry::uninstall();
        ompx_sim::span::SpanLog::uninstall();
    }
}

/// Run one (app, system, version) cell under a seeded [`FaultPlan`],
/// catching panics so the chaos harness can assert the trichotomy —
/// success, clean typed error, or validated fallback — and returning what
/// the injection did plus the full span timeline (where retries and
/// fallbacks are visible). Shares the sanitized-run gate so chaos runs
/// cannot cross-pollute sanitized/traced/profiled runs through the ambient
/// statics. One-shot wrapper over [`ChaosSession`].
///
/// [`FaultPlan`]: ompx_sim::fault::FaultPlan
pub fn run_app_chaos(
    app: &str,
    sys: System,
    version: ProgVersion,
    scale: WorkScale,
    plan: ompx_sim::fault::FaultPlan,
) -> (Result<RunOutcome, String>, FaultReport, Vec<ompx_sim::span::Span>) {
    let session = ChaosSession::begin();
    let faults = ompx_sim::fault::FaultState::new(plan);
    let result = session.run_cell(app, sys, version, scale, Some(&faults));
    let spans = session.spans();
    let report = FaultReport {
        snapshot: faults.snapshot(),
        retry_spans: spans.iter().filter(|s| s.cat == ompx_sim::span::SpanCategory::Retry).count(),
        fallback_spans: spans
            .iter()
            .filter(|s| s.cat == ompx_sim::span::SpanCategory::Fallback)
            .count(),
    };
    (result, report, spans)
}

// ---- checksums ------------------------------------------------------------

/// splitmix64 — the standard 64-bit finalizer, used to decorrelate items.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Order-independent checksum over per-item f64 results: versions that
/// compute identical per-item values produce identical checksums no matter
/// which thread computed which item.
pub fn checksum_f64_items(items: &[f64]) -> u64 {
    items
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, v)| acc.wrapping_add(splitmix64(v.to_bits() ^ (i as u64))))
}

/// Same, single precision.
pub fn checksum_f32_items(items: &[f32]) -> u64 {
    items
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, v)| acc.wrapping_add(splitmix64(v.to_bits() as u64 ^ (i as u64))))
}

/// Deterministic per-item "random" f64 in [0, 1): all program versions
/// derive identical inputs for item `i` without sharing generator state
/// (the event-based RNG trick XSBench itself uses).
#[inline]
pub fn item_uniform(seed: u64, i: u64) -> f64 {
    (splitmix64(seed ^ splitmix64(i)) >> 11) as f64 / (1u64 << 53) as f64
}

// ---- launch-accounting conventions ----------------------------------------

/// Host-side cost of *issuing* one asynchronous kernel launch (the rate at
/// which back-to-back launches can be pushed into a stream). A kernel whose
/// body is shorter than this is issue-bound.
pub const LAUNCH_ISSUE_S: f64 = 1.2e-6;

/// Per-runtime launch-issue cost. The prototype's bare-launch path skips
/// the OpenMP kernel-state setup and is measurably leaner than ROCm's HIP
/// dispatch (cf. the near-zero-overhead launch work in the paper's ref
/// \[5\]) — the residual difference behind Adam's 16.6 % on the MI250, where
/// every kernel is shorter than the issue cost itself.
pub fn launch_issue_s(sys: System, version: ProgVersion) -> f64 {
    match (sys, version) {
        (System::Amd, ProgVersion::Ompx) => 1.0e-6,
        _ => LAUNCH_ISSUE_S,
    }
}

/// Total wall seconds of `launches` identical kernels issued
/// asynchronously back-to-back (native/ompx style): launch latencies
/// pipeline behind execution, so only one is exposed — but the host cannot
/// issue faster than `issue_s` per launch.
pub fn pipelined_total_at(per_kernel: &ModeledTime, launches: u64, issue_s: f64) -> f64 {
    (per_kernel.seconds - per_kernel.t_launch).max(issue_s) * launches as f64 + per_kernel.t_launch
}

/// Total wall seconds of `launches` synchronous kernels (traditional
/// `target` semantics: the host blocks after each region).
pub fn sync_total(per_kernel: &ModeledTime, launches: u64) -> f64 {
    per_kernel.seconds * launches as f64
}

/// Kernel-only seconds (what event-based timers report): no launch latency.
pub fn kernel_only(per_kernel: &ModeledTime) -> f64 {
    per_kernel.seconds - per_kernel.t_launch
}

// ---- per-thread scratch, version-dependent placement -----------------------

/// Per-thread f64 scratch whose *placement* differs between program
/// versions while the arithmetic stays identical — the storage class
/// behind the RSBench §4.2.2 result:
///
/// * CUDA/HIP/ompx versions: a dynamically indexed thread-local array →
///   **local memory** (global-memory traffic), via
///   [`ompx_sim::thread::LocalArray`];
/// * `omp` version: globalized storage, heap (global traffic) or shared
///   memory when LLVM's heap-to-shared optimization fires, via
///   [`ompx_hostrt::target::Scratch`].
pub trait F64Scratch {
    fn put(&mut self, tc: &mut ompx_sim::thread::ThreadCtx<'_>, j: usize, v: f64);
    fn at(&mut self, tc: &mut ompx_sim::thread::ThreadCtx<'_>, j: usize) -> f64;
}

/// Local-memory scratch (native and ompx program versions).
pub struct LocalScratch(pub ompx_sim::thread::LocalArray<f64>);

impl F64Scratch for LocalScratch {
    #[inline]
    fn put(&mut self, tc: &mut ompx_sim::thread::ThreadCtx<'_>, j: usize, v: f64) {
        tc.lwrite(&mut self.0, j, v);
    }
    #[inline]
    fn at(&mut self, tc: &mut ompx_sim::thread::ThreadCtx<'_>, j: usize) -> f64 {
        tc.lread(&self.0, j)
    }
}

/// Globalized scratch (`omp` program version).
pub struct OmpScratch<'a>(pub &'a ompx_hostrt::target::Scratch);

impl F64Scratch for OmpScratch<'_> {
    #[inline]
    fn put(&mut self, tc: &mut ompx_sim::thread::ThreadCtx<'_>, j: usize, v: f64) {
        self.0.set(tc, j, v);
    }
    #[inline]
    fn at(&mut self, tc: &mut ompx_sim::thread::ThreadCtx<'_>, j: usize) -> f64 {
        self.0.get(tc, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure8() {
        assert_eq!(ProgVersion::Native.label(System::Nvidia), "cuda");
        assert_eq!(ProgVersion::Native.label(System::Amd), "hip");
        assert_eq!(ProgVersion::NativeVendor.label(System::Nvidia), "cuda-nvcc");
        assert_eq!(ProgVersion::NativeVendor.label(System::Amd), "hip-hipcc");
        assert_eq!(ProgVersion::Ompx.label(System::Amd), "ompx");
        assert_eq!(ProgVersion::Omp.label(System::Nvidia), "omp");
    }

    #[test]
    fn checksum_is_order_sensitive_by_index_not_position() {
        let a = checksum_f64_items(&[1.0, 2.0]);
        let b = checksum_f64_items(&[2.0, 1.0]);
        assert_ne!(a, b, "items are bound to their index");
        // But identical content gives identical sums.
        assert_eq!(a, checksum_f64_items(&[1.0, 2.0]));
    }

    #[test]
    fn item_uniform_is_deterministic_and_in_range() {
        for i in 0..1000 {
            let v = item_uniform(42, i);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, item_uniform(42, i));
        }
        assert_ne!(item_uniform(1, 7), item_uniform(2, 7));
    }

    #[test]
    fn launch_accounting_conventions() {
        let m = ModeledTime { seconds: 10e-6, t_launch: 2e-6, ..Default::default() };
        assert!((pipelined_total_at(&m, 100, LAUNCH_ISSUE_S) - (8e-4 + 2e-6)).abs() < 1e-12);
        // Issue-bound: a 0.1 us body cannot launch faster than the issue
        // rate.
        let tiny = ModeledTime { seconds: 2.1e-6, t_launch: 2.0e-6, ..Default::default() };
        assert!(
            (pipelined_total_at(&tiny, 100, LAUNCH_ISSUE_S) - (100.0 * LAUNCH_ISSUE_S + 2e-6))
                .abs()
                < 1e-12
        );
        assert!(launch_issue_s(System::Amd, ProgVersion::Ompx) < LAUNCH_ISSUE_S);
        assert_eq!(launch_issue_s(System::Nvidia, ProgVersion::Ompx), LAUNCH_ISSUE_S);
        assert!((sync_total(&m, 100) - 1e-3).abs() < 1e-12);
        assert!((kernel_only(&m) - 8e-6).abs() < 1e-15);
    }

    #[test]
    fn contexts_bind_expected_vendors() {
        use ompx_sim::Vendor;
        assert_eq!(native_ctx(System::Nvidia, false).device().profile().vendor, Vendor::Nvidia);
        assert_eq!(native_ctx(System::Amd, true).device().profile().vendor, Vendor::Amd);
        assert_eq!(omp_runtime(System::Amd).device().profile().vendor, Vendor::Amd);
        assert_eq!(ompx_runtime(System::Nvidia).device().profile().vendor, Vendor::Nvidia);
    }
}
