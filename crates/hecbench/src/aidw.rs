//! AIDW: adaptive inverse-distance-weighted interpolation with tiled
//! kNN-style point scans (Mei et al. — §4.2.4).
//!
//! One thread per query point; the data points are swept in block-sized
//! tiles staged through shared memory (`__shared__` arrays + two
//! `__syncthreads()` per tile in the CUDA original — exactly the pattern
//! `ompx_bare` + `groupprivate` + `ompx_sync_thread_block` exists for).
//!
//! Figure 8d/8j observations reproduced: on the MI250 every version is
//! within a few percent; on the A100 the ompx version matches `cuda-nvcc`
//! but trails `cuda` (LLVM/Clang) by ~5 % because Clang *demotes the
//! shared variables to registers* in its native CUDA path while `nvcc` and
//! the prototype keep them in shared memory.
//!
//! The `omp` version (no granular synchronization available) scans the
//! points straight from global memory; broadcast loads cache well, so it
//! stays competitive — as the figure shows.

use crate::common::*;
use ompx::BareTarget;
use ompx_klang::toolchain::{vendor_key, CodegenDb, Toolchain};
use ompx_sim::dim::LaunchConfig;
use ompx_sim::exec::{Kernel, KernelFlags};
use ompx_sim::mem::DBuf;
use ompx_sim::thread::ThreadCtx;
use ompx_sim::timing::CodegenInfo;
use ompx_sim::{Device, Vendor};

/// Benchmark metadata (Figure 6 row).
pub fn info() -> BenchInfo {
    BenchInfo {
        name: "AIDW",
        description: "Adaptive inverse distance weighting interpolation (tiled shared-memory scan)",
        paper_cmdline: "100 0 100",
        reported_metric: "kernel milliseconds",
    }
}

pub(crate) const KERNEL: &str = "aidw_interp";
const SEED: u64 = 0x5eed35;
pub(crate) const BLOCK: usize = 64;
const EPS: f32 = 1e-6;

/// Workload parameters: `n` data points and `n` query points (the paper's
/// CLI scales both together).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub n_points: usize,
    pub n_queries: usize,
    pub paper_points: u64,
}

impl Params {
    pub fn for_scale(scale: WorkScale) -> Self {
        match scale {
            WorkScale::Default => Params { n_points: 2048, n_queries: 2048, paper_points: 409_600 },
            WorkScale::Test => Params { n_points: 256, n_queries: 256, paper_points: 409_600 },
        }
    }

    /// Work grows with points × queries.
    fn pair_factor(&self) -> f64 {
        let paper = self.paper_points as f64 * self.paper_points as f64;
        paper / (self.n_points as f64 * self.n_queries as f64)
    }
}

#[derive(Clone)]
struct AidwData {
    px: DBuf<f32>,
    py: DBuf<f32>,
    pv: DBuf<f32>,
    qx: DBuf<f32>,
    qy: DBuf<f32>,
}

fn generate(device: &Device, params: Params) -> AidwData {
    let mk = |tag: u64, n: usize| -> Vec<f32> {
        (0..n).map(|i| item_uniform(SEED ^ tag, i as u64) as f32 * 100.0).collect()
    };
    let data = AidwData {
        px: device.alloc_from(&mk(0x81, params.n_points)),
        py: device.alloc_from(&mk(0x82, params.n_points)),
        pv: device.alloc_from(&mk(0x83, params.n_points)),
        qx: device.alloc_from(&mk(0x84, params.n_queries)),
        qy: device.alloc_from(&mk(0x85, params.n_queries)),
    };
    data.px.set_label("px");
    data.py.set_label("py");
    data.pv.set_label("pv");
    data.qx.set_label("qx");
    data.qy.set_label("qy");
    data
}

/// The shared per-(query, point) accumulation — identical arithmetic in
/// every version regardless of where the point coordinates were staged.
#[inline]
#[allow(clippy::too_many_arguments)]
fn accumulate(
    tc: &mut ThreadCtx<'_>,
    qx: f32,
    qy: f32,
    px: f32,
    py: f32,
    pv: f32,
    wsum: &mut f32,
    vsum: &mut f32,
) {
    let dx = qx - px;
    let dy = qy - py;
    let d2 = dx * dx + dy * dy + EPS;
    // Adaptive power: the 1/d² weight of the benchmark's alpha=2 setting.
    let w = 1.0 / d2;
    *wsum += w;
    *vsum += w * pv;
    tc.flops(12); // subs, fmas, and the reciprocal (~4 flop-equivalents)
}

/// Tiled (shared-memory) kernel body: CUDA original and the ompx port.
#[allow(clippy::too_many_arguments)]
fn tiled_kernel_body(
    tc: &mut ThreadCtx<'_>,
    d: &AidwData,
    out: &DBuf<f32>,
    slot_x: usize,
    slot_y: usize,
    slot_v: usize,
    n_points: usize,
    n_queries: usize,
) {
    let tile_x = tc.shared::<f32>(slot_x);
    let tile_y = tc.shared::<f32>(slot_y);
    let tile_v = tc.shared::<f32>(slot_v);
    let tid = tc.thread_rank();
    let q = tc.global_thread_id_x();
    let (qx, qy) = if q < n_queries { (tc.read(&d.qx, q), tc.read(&d.qy, q)) } else { (0.0, 0.0) };

    let mut wsum = 0.0f32;
    let mut vsum = 0.0f32;
    let tiles = n_points.div_ceil(BLOCK);
    for t in 0..tiles {
        let p = t * BLOCK + tid;
        if p < n_points {
            let x = tc.read(&d.px, p);
            let y = tc.read(&d.py, p);
            let v = tc.read(&d.pv, p);
            tc.swrite(&tile_x, tid, x);
            tc.swrite(&tile_y, tid, y);
            tc.swrite(&tile_v, tid, v);
        }
        tc.sync_threads();
        if q < n_queries {
            let in_tile = BLOCK.min(n_points - t * BLOCK);
            for s in 0..in_tile {
                let px = tc.sread(&tile_x, s);
                let py = tc.sread(&tile_y, s);
                let pv = tc.sread(&tile_v, s);
                accumulate(tc, qx, qy, px, py, pv, &mut wsum, &mut vsum);
            }
        }
        tc.sync_threads();
    }
    if q < n_queries {
        tc.flops(1);
        tc.write(out, q, vsum / wsum);
    }
}

/// Codegen profiles. §4.2.4: Clang's native CUDA path demotes the shared
/// tile variables (modeled as `shared_demotion`); `nvcc` and the ompx
/// prototype do not.
fn register_profiles(db: &CodegenDb) {
    let base = CodegenInfo { coalescing: 0.92, fp64_fraction: 0.0, ..CodegenInfo::default() };
    db.set(
        KERNEL,
        Toolchain::Clang,
        CodegenInfo { regs_per_thread: 30, shared_demotion: 0.55, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::Nvcc,
        CodegenInfo { regs_per_thread: 32, shared_demotion: 0.0, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::OmpxPrototype,
        CodegenInfo { regs_per_thread: 32, binary_bytes: 20 * 1024, shared_demotion: 0.0, ..base },
    );
    db.set(
        KERNEL,
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 44, binary_bytes: 36 * 1024, coalescing: 0.95, ..base },
    );
    // MI250: every compiler keeps the tiles in LDS and the figure shows the
    // four versions aligned; profiles are deliberately uniform.
    for t in [Toolchain::Clang, Toolchain::Hipcc, Toolchain::OmpxPrototype] {
        db.set(
            &vendor_key(KERNEL, Vendor::Amd),
            t,
            CodegenInfo { regs_per_thread: 36, shared_demotion: 0.0, ..base },
        );
    }
    db.set(
        &vendor_key(KERNEL, Vendor::Amd),
        Toolchain::ClangOpenmp,
        CodegenInfo { regs_per_thread: 48, binary_bytes: 36 * 1024, coalescing: 0.95, ..base },
    );
}

/// Run one program version on one system.
pub fn run(sys: System, version: ProgVersion, scale: WorkScale) -> RunOutcome {
    run_with_params(sys, version, Params::for_scale(scale))
}

pub(crate) fn run_with_params(sys: System, version: ProgVersion, params: Params) -> RunOutcome {
    let nq = params.n_queries;
    let np = params.n_points;
    let factor = params.pair_factor();
    // Traffic, flops and barriers grow with points x queries (the `factor`),
    // but the launch *geometry* grows only linearly with the query count —
    // correct the extrapolated block/thread counts accordingly.
    let linear = params.paper_points as f64 / params.n_queries as f64;
    let fix_geometry = move |mut s: ompx_sim::counters::StatsSnapshot,
                             raw: &ompx_sim::counters::StatsSnapshot| {
        s.blocks_executed = (raw.blocks_executed as f64 * linear).round() as u64;
        s.threads_executed = (raw.threads_executed as f64 * linear).round() as u64;
        s
    };

    let finish = |label: &str,
                  checksum: u64,
                  modeled: ompx_sim::timing::ModeledTime,
                  stats: ompx_sim::counters::StatsSnapshot| RunOutcome {
        label: label.to_string(),
        checksum,
        reported_seconds: kernel_only(&modeled),
        kernel_model: modeled,
        stats,
        excluded: false,
        note: None,
    };

    match version {
        ProgVersion::Native | ProgVersion::NativeVendor => {
            let ctx = native_ctx(sys, version == ProgVersion::NativeVendor);
            register_profiles(ctx.codegen());
            let data = generate(ctx.device(), params);
            let out = ctx.malloc::<f32>(nq);
            out.set_label("out");
            let mut cfg = LaunchConfig::linear(nq, BLOCK as u32);
            let sx = cfg.shared_array::<f32>(BLOCK);
            let sy = cfg.shared_array::<f32>(BLOCK);
            let sv = cfg.shared_array::<f32>(BLOCK);
            let kernel = Kernel::with_flags(
                KERNEL,
                KernelFlags { uses_block_sync: true, uses_warp_ops: false },
                {
                    let (data, out) = (data.clone(), out.clone());
                    move |tc: &mut ThreadCtx<'_>| {
                        tiled_kernel_body(tc, &data, &out, sx, sy, sv, np, nq);
                    }
                },
            );
            let smem = cfg.shared_bytes_per_block();
            let r = ctx.launch_cfg(&kernel, cfg).expect("launch");
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats);
            let modeled = ctx.model(KERNEL, BLOCK as u32, smem, &scaled);
            finish(version.label(sys), checksum_f32_items(&out.to_vec()), modeled, scaled)
        }
        ProgVersion::Ompx => {
            let omp = ompx_runtime(sys);
            register_profiles(omp.codegen());
            let data = generate(omp.device(), params);
            let out = omp.device().alloc::<f32>(nq);
            out.set_label("out");
            let teams = (nq as u32).div_ceil(BLOCK as u32);
            let mut target = BareTarget::new(&omp, KERNEL)
                .num_teams([teams])
                .thread_limit([BLOCK as u32])
                .uses_block_sync();
            // groupprivate(team:) tiles — the Figure 4 pattern.
            let sx = target.shared_array::<f32>(BLOCK);
            let sy = target.shared_array::<f32>(BLOCK);
            let sv = target.shared_array::<f32>(BLOCK);
            let prepared = target.prepare({
                let (data, out) = (data.clone(), out.clone());
                move |tc| {
                    tiled_kernel_body(tc, &data, &out, sx, sy, sv, np, nq);
                }
            });
            let r = prepared.execute().expect("bare launch");
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats);
            let modeled = prepared.model(&scaled).modeled;
            finish(version.label(sys), checksum_f32_items(&out.to_vec()), modeled, scaled)
        }
        ProgVersion::Omp => {
            // Traditional OpenMP cannot express the tile barrier, so the
            // omp version scans points directly from global memory — the
            // arithmetic (and thus the checksum) is identical.
            let omp = omp_runtime(sys);
            register_profiles(omp.codegen());
            let data = generate(omp.device(), params);
            let out = omp.device().alloc::<f32>(nq);
            out.set_label("out");
            let teams = (nq as u32).div_ceil(BLOCK as u32);
            let prepared =
                omp.target(KERNEL).num_teams(teams).thread_limit(BLOCK as u32).prepare_dpf(nq, {
                    let (data, out) = (data.clone(), out.clone());
                    std::sync::Arc::new(
                        move |tc: &mut ThreadCtx<'_>,
                              q: usize,
                              _s: &ompx_hostrt::target::Scratch| {
                            let qx = tc.read(&data.qx, q);
                            let qy = tc.read(&data.qy, q);
                            let mut wsum = 0.0f32;
                            let mut vsum = 0.0f32;
                            // Same point order as the tiled scan. Every
                            // thread reads the same point at the same trip
                            // — a warp-uniform broadcast, one transaction
                            // per warp.
                            for p in 0..np {
                                let px = tc.read_uniform(&data.px, p);
                                let py = tc.read_uniform(&data.py, p);
                                let pv = tc.read_uniform(&data.pv, p);
                                accumulate(tc, qx, qy, px, py, pv, &mut wsum, &mut vsum);
                            }
                            tc.flops(1);
                            tc.write(&out, q, vsum / wsum);
                        },
                    )
                });
            let r = prepared.execute().expect("omp launch");
            let scaled = fix_geometry(r.stats.scaled(factor), &r.stats);
            let modeled = prepared.model(&scaled).modeled;
            finish(version.label(sys), checksum_f32_items(&out.to_vec()), modeled, scaled)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_versions_agree_on_the_checksum() {
        let reference = run(System::Nvidia, ProgVersion::Native, WorkScale::Test).checksum;
        for sys in [System::Nvidia, System::Amd] {
            for v in ProgVersion::all() {
                let r = run(sys, v, WorkScale::Test);
                assert_eq!(r.checksum, reference, "{} on {} diverged", r.label, sys.label());
            }
        }
    }

    #[test]
    fn interpolation_matches_host_reference() {
        let params = Params::for_scale(WorkScale::Test);
        let ctx = native_ctx(System::Nvidia, false);
        let data = generate(ctx.device(), params);
        let (px, py, pv) = (data.px.to_vec(), data.py.to_vec(), data.pv.to_vec());
        let (qx, qy) = (data.qx.to_vec(), data.qy.to_vec());
        let r = run(System::Nvidia, ProgVersion::Native, WorkScale::Test);
        // Recompute query 0 on the host.
        let mut wsum = 0.0f32;
        let mut vsum = 0.0f32;
        for p in 0..params.n_points {
            let dx = qx[0] - px[p];
            let dy = qy[0] - py[p];
            let d2 = dx * dx + dy * dy + EPS;
            let w = 1.0 / d2;
            wsum += w;
            vsum += w * pv[p];
        }
        let expect = vsum / wsum;
        // The checksum covers all queries; spot-check via a fresh run.
        let ctx2 = native_ctx(System::Nvidia, false);
        register_profiles(ctx2.codegen());
        let data2 = generate(ctx2.device(), params);
        let out = ctx2.malloc::<f32>(params.n_queries);
        let mut cfg = LaunchConfig::linear(params.n_queries, BLOCK as u32);
        let sx = cfg.shared_array::<f32>(BLOCK);
        let sy = cfg.shared_array::<f32>(BLOCK);
        let sv = cfg.shared_array::<f32>(BLOCK);
        let np = params.n_points;
        let nq = params.n_queries;
        let kernel = Kernel::with_flags(
            "aidw_ref",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            {
                let (d, out) = (data2.clone(), out.clone());
                move |tc: &mut ThreadCtx<'_>| tiled_kernel_body(tc, &d, &out, sx, sy, sv, np, nq)
            },
        );
        ctx2.launch_cfg(&kernel, cfg).unwrap();
        assert_eq!(out.get(0), expect);
        let _ = r;
    }

    #[test]
    fn amd_versions_are_close() {
        // Figure 8j: on the MI250 all four versions align.
        let times: Vec<f64> = ProgVersion::all()
            .iter()
            .map(|v| run(System::Amd, *v, WorkScale::Test).reported_seconds)
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min < 1.25, "AMD spread too wide: {times:?}");
    }

    #[test]
    fn nvidia_ompx_matches_nvcc_trails_clang() {
        // Figure 8d: ompx ≈ cuda-nvcc, ~5 % behind cuda (clang demotes the
        // shared tiles).
        let ompx = run(System::Nvidia, ProgVersion::Ompx, WorkScale::Test).reported_seconds;
        let cuda = run(System::Nvidia, ProgVersion::Native, WorkScale::Test).reported_seconds;
        let nvcc = run(System::Nvidia, ProgVersion::NativeVendor, WorkScale::Test).reported_seconds;
        assert!(ompx > cuda, "ompx {ompx} should trail clang-cuda {cuda}");
        let ratio = ompx / cuda;
        assert!((1.01..1.20).contains(&ratio), "ompx/cuda ratio {ratio} outside the ~5 % band");
        let vs_nvcc = ompx / nvcc;
        assert!((0.9..1.1).contains(&vs_nvcc), "ompx should match nvcc, got ratio {vs_nvcc}");
    }
}
