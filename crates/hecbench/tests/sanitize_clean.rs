//! Clean-run suite: every HeCBench app × program-version cell must produce
//! zero sanitizer findings with every tool enabled. The apps are the
//! correctness baseline of the evaluation — a finding here is either a bug
//! in an app port or a false positive in a tool, and both block CI.

use ompx_hecbench::{run_app_sanitized, ProgVersion, System, WorkScale, APP_NAMES};
use ompx_sim::san::ToolMask;

fn assert_clean(app: &str, sys: System, version: ProgVersion) {
    let (outcome, findings) =
        ompx_hecbench::common::run_app_sanitized(app, sys, version, WorkScale::Test, ToolMask::ALL);
    assert!(
        findings.is_empty(),
        "{app}/{} on {}: {} finding(s), first: {}",
        outcome.label,
        sys.label(),
        findings.len(),
        findings[0]
    );
}

#[test]
fn all_24_app_version_cells_are_clean_under_every_tool() {
    for app in APP_NAMES {
        for version in ProgVersion::all() {
            assert_clean(app, System::Nvidia, version);
        }
    }
}

#[test]
fn amd_spot_check_cells_are_clean_under_every_tool() {
    for app in ["stencil", "rsbench"] {
        for version in [ProgVersion::Ompx, ProgVersion::Omp] {
            assert_clean(app, System::Amd, version);
        }
    }
}

#[test]
fn sanitized_run_reproduces_the_unsanitized_checksum() {
    let plain = ompx_hecbench::run_app("adam", System::Nvidia, ProgVersion::Ompx, WorkScale::Test);
    let (sanitized, findings) = run_app_sanitized(
        "adam",
        System::Nvidia,
        ProgVersion::Ompx,
        WorkScale::Test,
        ToolMask::ALL,
    );
    assert!(findings.is_empty());
    assert_eq!(plain.checksum, sanitized.checksum, "observation must not perturb results");
}
