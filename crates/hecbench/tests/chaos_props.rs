//! Property tests for the chaos harness: arbitrary seeded fault plans over
//! the benchmark matrix must uphold the trichotomy — success, clean typed
//! error, or validated fallback — and a fault-free plan must reproduce the
//! baseline bit-for-bit.

use ompx_hecbench::{run_app_chaos, ProgVersion, System, WorkScale, APP_NAMES};
use ompx_sim::fault::{FaultKind, FaultPlan, FaultSite};
use proptest::prelude::*;

const SYSTEMS: [System; 2] = [System::Nvidia, System::Amd];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded rate-based plan (optionally with whole-device loss) over
    /// any cell of the matrix ends in the trichotomy; a panic fails the
    /// test via the Err arm below.
    #[test]
    fn seeded_fault_plans_uphold_the_trichotomy(
        app_i in 0usize..6,
        sys_i in 0usize..2,
        ver_i in 0usize..4,
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.15,
        lose_sel in 0u64..400,
    ) {
        let app = APP_NAMES[app_i];
        let sys = SYSTEMS[sys_i];
        let version = ProgVersion::all()[ver_i];
        let mut plan = FaultPlan::seeded(seed, rate);
        // The upper half of `lose_sel` means "no device loss".
        if lose_sel < 200 {
            plan = plan.with_device_loss_at(lose_sel);
        }
        let (result, report, _spans) = run_app_chaos(app, sys, version, WorkScale::Test, plan);
        match result {
            Ok(outcome) => {
                // Success or validated fallback: either way the results
                // must match the fault-free baseline exactly.
                let (baseline, _, _) =
                    run_app_chaos(app, sys, version, WorkScale::Test, FaultPlan::none());
                let baseline = baseline.expect("fault-free baseline must succeed");
                prop_assert_eq!(
                    outcome.checksum, baseline.checksum,
                    "chaos run diverged from the fault-free baseline (app={}, recovered={}, \
                     fallbacks={:?}, degraded={:?})",
                    app, report.snapshot.recovered, report.snapshot.fallbacks,
                    report.snapshot.degraded
                );
            }
            Err(msg) => {
                // The only legal failure is a clean *typed* error recorded
                // by the fault layer — never a stray panic. Everything the
                // runtimes deliberately panic on (simulated-program bugs)
                // is fault-free by construction in these apps.
                prop_assert!(
                    !report.snapshot.sticky.is_empty() || report.snapshot.device_lost,
                    "run failed without a recorded typed error: {}", msg
                );
            }
        }
    }

    /// Watchdog-heavy plans — rate-based episodes restricted to watchdog
    /// timeouts plus one explicit kill at an arbitrary launch — uphold the
    /// same trichotomy. This is the hostile case for partial side effects:
    /// every injected failure commits a deterministic block prefix before
    /// erroring, so a completed run proves the checkpoint restore rewound
    /// the partial writes (a stale prefix would diverge the checksum, not
    /// just fail).
    #[test]
    fn watchdog_heavy_plans_uphold_the_trichotomy(
        app_i in 0usize..6,
        sys_i in 0usize..2,
        ver_i in 0usize..4,
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.5,
        kill_op in 0u64..6,
    ) {
        let app = APP_NAMES[app_i];
        let sys = SYSTEMS[sys_i];
        let version = ProgVersion::all()[ver_i];
        let plan = FaultPlan::seeded(seed, rate)
            .with_only_kind(FaultKind::Watchdog)
            .with_injection(FaultSite::Launch, kill_op, FaultKind::Watchdog);
        let (result, report, _spans) = run_app_chaos(app, sys, version, WorkScale::Test, plan);
        match result {
            Ok(outcome) => {
                let (baseline, _, _) =
                    run_app_chaos(app, sys, version, WorkScale::Test, FaultPlan::none());
                let baseline = baseline.expect("fault-free baseline must succeed");
                prop_assert_eq!(
                    outcome.checksum, baseline.checksum,
                    "watchdog-partial run diverged from the fault-free baseline (app={}, \
                     injected={}, fallbacks={:?}, degraded={:?})",
                    app, report.snapshot.injected.len(), report.snapshot.fallbacks,
                    report.snapshot.degraded
                );
            }
            Err(msg) => {
                prop_assert!(
                    !report.snapshot.sticky.is_empty() || report.snapshot.device_lost,
                    "run failed without a recorded typed error: {}", msg
                );
            }
        }
        // Everything the plan injected really was a watchdog timeout.
        prop_assert!(
            report.snapshot.injected.iter().all(|e| e.kind == FaultKind::Watchdog),
            "watchdog-only plan injected {:?}", report.snapshot.injected
        );
    }

    /// The quiet plan is indistinguishable from no fault state at all.
    #[test]
    fn fault_free_plan_reproduces_the_baseline_bit_for_bit(
        app_i in 0usize..6,
        sys_i in 0usize..2,
        ver_i in 0usize..4,
    ) {
        let app = APP_NAMES[app_i];
        let sys = SYSTEMS[sys_i];
        let version = ProgVersion::all()[ver_i];
        let (chaos, report, _spans) =
            run_app_chaos(app, sys, version, WorkScale::Test, FaultPlan::none());
        let chaos = chaos.expect("quiet plan must not fail");
        prop_assert_eq!(report.snapshot.injected.len(), 0);
        prop_assert_eq!(report.snapshot.recovered, 0);
        let baseline = ompx_hecbench::run_app(app, sys, version, WorkScale::Test);
        prop_assert_eq!(chaos.checksum, baseline.checksum);
        prop_assert_eq!(chaos.stats.global_bytes(), baseline.stats.global_bytes());
    }
}
