//! Property tests for summary auto-extraction: whatever grid a cell later
//! runs on, every access the kernel actually performs must be inside the
//! extracted summary's predicted set (`observed ⊆ predicted`). The fit
//! grids are fixed and small; the replay grid here is randomized per case,
//! so the invariant exercises generalization, not memorization.

use ompx_analyzer::validate_replay;
use ompx_hecbench::extraction::{extract_cell, random_valuation, trace_cell};
use ompx_hecbench::{ProgVersion, System, APP_NAMES};
use ompx_sanitizer::Severity;
use proptest::prelude::*;

const SYSTEMS: [System; 2] = [System::Nvidia, System::Amd];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Extract a random cell on its fixed fit grids, then replay it on a
    /// random unseen grid: every observed access (and the barrier phase
    /// walk) must be predicted by the extracted summary.
    #[test]
    fn observed_trace_is_within_extracted_prediction(
        app_i in 0usize..6,
        sys_i in 0usize..2,
        ver_i in 0usize..4,
        scale in 0u64..10_000,
    ) {
        let app = APP_NAMES[app_i];
        let sys = SYSTEMS[sys_i];
        let version = ProgVersion::all()[ver_i];

        let report = extract_cell(app, sys, version)
            .unwrap_or_else(|e| panic!("{app}/{version:?} extraction: {e}"));
        prop_assert!(
            report.failures().is_empty(),
            "{app}/{version:?} not accepted: {:?}",
            report.failures()
        );

        let val = random_valuation(app, scale);
        let trace = trace_cell(app, sys, version, &val);
        let findings =
            validate_replay(&report.extraction.summary, &val, &trace.events, &trace.barriers);
        let errors: Vec<_> =
            findings.iter().filter(|f| f.severity == Severity::Error).collect();
        prop_assert!(
            errors.is_empty(),
            "{app}/{version:?} observed access outside prediction on {:?}: {errors:#?}",
            val
        );
    }
}

/// Extraction over a real cell is a pure function of the spec and traces:
/// two runs must produce byte-identical summaries. (The analyzer's own
/// unit test covers a synthetic kernel; this covers the full harness.)
#[test]
fn real_cell_extraction_is_deterministic() {
    let a = extract_cell("su3", System::Nvidia, ProgVersion::Ompx).unwrap();
    let b = extract_cell("su3", System::Nvidia, ProgVersion::Ompx).unwrap();
    assert_eq!(
        ompx_analyzer::to_rust_literal(&a.extraction.summary),
        ompx_analyzer::to_rust_literal(&b.extraction.summary),
    );
}
