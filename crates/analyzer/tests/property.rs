//! Property tests: on random small grids, the simulator's memory trace is
//! always a subset of the symbolic evaluator's predicted access set — the
//! core soundness contract replay validation rests on. Each property
//! builds a real kernel, runs it on the simulator with the trace hooks
//! attached, and asserts `validate_events` reports nothing.

use proptest::proptest;
use std::sync::Arc;

use ompx_analyzer::expr::{c, free, item, lt, param, Pred};
use ompx_analyzer::summary::{
    Access, BufferDecl, Domain, FreeDecl, KernelSummary, LaunchShape, Mode, Space, SummaryFlags,
    Valuation,
};
use ompx_analyzer::validate_events;
use ompx_sanitizer::Severity;
use ompx_sim::memtrace::MemTrace;
use ompx_sim::prelude::*;

/// A 1-D summary over one input and one output buffer of length `n`.
fn summary(
    kernel: &str,
    teams: u32,
    threads: u32,
    n: usize,
    domain: Domain,
    accesses: Vec<Access>,
    frees: Vec<FreeDecl>,
) -> KernelSummary {
    KernelSummary {
        kernel: kernel.into(),
        app: "prop".into(),
        version: "ompx".into(),
        launch: LaunchShape { block: (threads, 1, 1), grid: [c(i64::from(teams)), c(1), c(1)] },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain,
        frees,
        buffers: vec![
            BufferDecl { name: "inp".into(), len: param("n") },
            BufferDecl { name: "out".into(), len: param("n") },
        ],
        shared: vec![],
        accesses,
        barriers: vec![],
        valuations: vec![Valuation::new("prop", &[("n", n as i64)])],
    }
}

/// Run `kernel` on a `teams x threads` grid with the trace attached.
fn traced_run(
    kernel: Kernel,
    teams: u32,
    threads: u32,
    dev: &Device,
) -> Vec<ompx_sim::memtrace::MemEvent> {
    let trace = MemTrace::new();
    dev.attach_mem_trace(Arc::clone(&trace));
    dev.launch(&kernel, LaunchConfig::new(teams, threads)).expect("launch");
    dev.detach_mem_trace();
    trace.events()
}

fn assert_clean(s: &KernelSummary, events: &[ompx_sim::memtrace::MemEvent]) {
    let findings = validate_events(s, &s.valuations[0], events);
    let errors: Vec<_> = findings.iter().filter(|f| f.severity == Severity::Error).collect();
    assert!(errors.is_empty(), "trace escaped the summary: {errors:#?}");
}

proptest! {
    /// SIMT one-item-per-thread kernels stay inside their summary on any
    /// small grid, including grids larger or smaller than `n`.
    #[test]
    fn one_per_thread_trace_is_predicted(teams in 1u32..5, threads in 1u32..17, n in 1usize..80) {
        let dev = Device::new(DeviceProfile::test_small());
        let inp = dev.alloc_from(&vec![1.0f32; n]);
        inp.set_label("inp");
        let out = dev.alloc::<f32>(n);
        out.set_label("out");
        let kernel = Kernel::new("prop_simt", {
            let (inp, out) = (inp.clone(), out.clone());
            move |tc: &mut ThreadCtx| {
                let i = tc.global_thread_id_x();
                if i < n {
                    let v = tc.read(&inp, i);
                    tc.write(&out, i, v + 1.0);
                }
            }
        });
        let events = traced_run(kernel, teams, threads, &dev);
        let guard = lt(item(), param("n"));
        let s = summary(
            "prop_simt",
            teams,
            threads,
            n,
            Domain::OnePerThread,
            vec![
                Access {
                    space: Space::Global("inp".into()),
                    mode: Mode::Read,
                    index: item(),
                    guard: guard.clone(),
                    imprecise: false, phase: "main".into(),
                },
                Access {
                    space: Space::Global("out".into()),
                    mode: Mode::Write,
                    index: item(),
                    guard,
                    imprecise: false, phase: "main".into(),
                },
            ],
            vec![],
        );
        assert_clean(&s, &events);
    }

    /// Grid-stride kernels cover exactly the items the GridStride domain
    /// enumerates, whatever the grid/size ratio.
    #[test]
    fn grid_stride_trace_is_predicted(teams in 1u32..5, threads in 1u32..17, n in 1usize..80) {
        let dev = Device::new(DeviceProfile::test_small());
        let inp = dev.alloc_from(&vec![2.0f32; n]);
        inp.set_label("inp");
        let out = dev.alloc::<f32>(n);
        out.set_label("out");
        let total = (teams * threads) as usize;
        let kernel = Kernel::new("prop_stride", {
            let (inp, out) = (inp.clone(), out.clone());
            move |tc: &mut ThreadCtx| {
                let mut i = tc.global_thread_id_x();
                while i < n {
                    let v = tc.read(&inp, i);
                    tc.write(&out, i, v * 2.0);
                    i += total;
                }
            }
        });
        let events = traced_run(kernel, teams, threads, &dev);
        let s = summary(
            "prop_stride",
            teams,
            threads,
            n,
            Domain::GridStride(param("n")),
            vec![
                Access {
                    space: Space::Global("inp".into()),
                    mode: Mode::Read,
                    index: item(),
                    guard: Pred::True,
                    imprecise: false, phase: "main".into(),
                },
                Access {
                    space: Space::Global("out".into()),
                    mode: Mode::Write,
                    index: item(),
                    guard: Pred::True,
                    imprecise: false, phase: "main".into(),
                },
            ],
            vec![],
        );
        assert_clean(&s, &events);
    }

    /// Free-variable indices: each thread reads a data-dependent cell
    /// within a declared range; the summary's range covers every draw.
    #[test]
    fn free_variable_reads_are_predicted(teams in 1u32..4, threads in 1u32..9, n in 2usize..40) {
        let dev = Device::new(DeviceProfile::test_small());
        let inp = dev.alloc_from(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
        inp.set_label("inp");
        let out = dev.alloc::<f32>(n);
        out.set_label("out");
        let kernel = Kernel::new("prop_free", {
            let (inp, out) = (inp.clone(), out.clone());
            move |tc: &mut ThreadCtx| {
                let i = tc.global_thread_id_x();
                if i < n {
                    // Data-dependent gather: a pseudo-random in-range cell.
                    let j = (i * 7 + 3) % n;
                    let v = tc.read(&inp, j);
                    tc.write(&out, i, v);
                }
            }
        });
        let events = traced_run(kernel, teams, threads, &dev);
        let guard = lt(item(), param("n"));
        let s = summary(
            "prop_free",
            teams,
            threads,
            n,
            Domain::OnePerThread,
            vec![
                Access {
                    space: Space::Global("inp".into()),
                    mode: Mode::Read,
                    index: free("j"),
                    guard: Pred::True,
                    imprecise: false, phase: "main".into(),
                },
                Access {
                    space: Space::Global("out".into()),
                    mode: Mode::Write,
                    index: item(),
                    guard,
                    imprecise: false, phase: "main".into(),
                },
            ],
            vec![FreeDecl { name: "j".into(), lo: c(0), hi: param("n") - c(1) }],
        );
        assert_clean(&s, &events);
    }
}

/// A deliberately wrong summary must NOT validate: the kernel writes the
/// whole buffer, the summary only admits the first half. (Replay compares
/// access-key *sets*, so the lie has to be about coverage, not about which
/// thread performed an access.)
#[test]
fn lying_summary_is_caught() {
    let n = 16usize;
    let dev = Device::new(DeviceProfile::test_small());
    let out = dev.alloc::<f32>(n);
    out.set_label("out");
    let kernel = Kernel::new("prop_lie", {
        let out = out.clone();
        move |tc: &mut ThreadCtx| {
            let i = tc.global_thread_id_x();
            if i < n {
                tc.write(&out, i, 1.0);
            }
        }
    });
    let events = traced_run(kernel, 4, 4, &dev);
    let s = summary(
        "prop_lie",
        4,
        4,
        n,
        Domain::OnePerThread,
        vec![Access {
            space: Space::Global("out".into()),
            mode: Mode::Write,
            index: item(),
            guard: lt(item(), c(n as i64 / 2)),
            imprecise: false,
            phase: "main".into(),
        }],
        vec![],
    );
    let findings = validate_events(&s, &s.valuations[0], &events);
    assert!(
        findings.iter().any(|f| f.tool == "summarycheck" && f.severity == Severity::Error),
        "writes past the claimed guard should be unpredicted: {findings:?}"
    );
}
