//! The static checks: race freedom (two-thread reduction), barrier
//! uniformity, index bounds, and launch-shape lints.
//!
//! ## Race engine
//!
//! Following GPUVerify's two-thread reduction, a race query quantifies
//! over an arbitrary *pair* of distinct executing threads. Each side's
//! index expression is lowered to affine form with tagged symbols
//! (tag 1 / tag 2; symbols shared by both threads — the block id for a
//! same-block shared-memory pair — stay tag 0), and the pair is proven
//! disjoint by either rule:
//!
//! - **Rule B (interval):** the interval of `idx₁ − idx₂` under the
//!   guard-tightened symbol bounds excludes zero.
//! - **Rule A (driver):** both sides have the same nonzero coefficient
//!   `α` on a *driver* symbol `D` known to differ between distinct
//!   threads (`item` globally; `tid.x` or `item` for same-block shared
//!   pairs), and the residual `idx₁ − idx₂ − α(D₁ − D₂)` has interval
//!   within `[-(|α|-1), |α|-1]`. Since `|α(D₁ − D₂)| ≥ |α|`, the
//!   difference cannot be zero.
//!
//! A pair that neither rule discharges is reported. Accesses in different
//! phases are never compared: distinct phase labels assert barrier (or
//! launch-boundary) ordering, which the analyzer trusts — replay mode
//! validates the access *sets* but cannot refute phase placement.

use crate::affine::{to_affine, Sym};
use crate::expr::{Expr, Pred, Var};
use crate::interval::{expr_interval, Interval};
use crate::summary::{Access, Ground, KernelSummary, Mode, Space};
use ompx_sanitizer::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// CUDA/HIP hard limit on threads per block.
const MAX_BLOCK: i64 = 1024;

/// Run every static check on a summary, once per valuation, deduplicating
/// identical findings (launch lints usually repeat across valuations).
pub fn analyze(summary: &KernelSummary, warp_size: u32) -> Vec<Finding> {
    let mut out = Vec::new();
    if summary.valuations.is_empty() {
        out.push(finding(
            "summarycheck",
            &summary.kernel,
            "valuations",
            Severity::Error,
            "summary declares no valuations; every check needs at least one concrete \
             parameter assignment"
                .into(),
        ));
        return out;
    }
    if summary.valuations.len() < 2 {
        out.push(finding(
            "summarycheck",
            &summary.kernel,
            "valuations",
            Severity::Warning,
            "summary declares fewer than two valuations; replay cross-checking needs at \
             least two grid shapes"
                .into(),
        ));
    }
    for val in &summary.valuations {
        match summary.ground(val) {
            Err(e) => out.push(finding(
                "summarycheck",
                &summary.kernel,
                format!("valuation `{}`", val.name),
                Severity::Error,
                e,
            )),
            Ok(g) => check_ground(&g, warp_size, &mut out),
        }
    }
    dedup(out)
}

/// All checks on one grounded summary.
pub fn check_ground(g: &Ground, warp_size: u32, out: &mut Vec<Finding>) {
    check_launch(g, warp_size, out);
    check_barriers(g, out);
    let valid = validate_accesses(g, out);
    check_bounds(g, &valid, out);
    check_races(g, &valid, out);
}

fn finding(
    tool: &str,
    kernel: &str,
    location: impl Into<String>,
    severity: Severity,
    message: String,
) -> Finding {
    Finding {
        tool: tool.to_string(),
        kernel: kernel.to_string(),
        location: location.into(),
        severity,
        message,
    }
}

fn dedup(findings: Vec<Finding>) -> Vec<Finding> {
    let mut seen = BTreeSet::new();
    findings
        .into_iter()
        .filter(|f| seen.insert((f.tool.clone(), f.location.clone(), f.message.clone())))
        .collect()
}

// ---------------------------------------------------------------- launch

fn check_launch(g: &Ground, warp_size: u32, out: &mut Vec<Finding>) {
    let loc = format!(
        "launch block ({},{},{}) grid ({},{},{})",
        g.block.0, g.block.1, g.block.2, g.grid.0, g.grid.1, g.grid.2
    );
    let bsize = g.block_size();
    if g.block.0 == 0 || g.block.1 == 0 || g.block.2 == 0 {
        out.push(finding(
            "launchcheck",
            &g.kernel,
            loc.clone(),
            Severity::Error,
            format!("block dimension is zero under valuation `{}`", g.valuation),
        ));
        return;
    }
    if g.grid.0 == 0 || g.grid.1 == 0 || g.grid.2 == 0 {
        out.push(finding(
            "launchcheck",
            &g.kernel,
            loc.clone(),
            Severity::Error,
            format!("grid dimension is zero under valuation `{}`", g.valuation),
        ));
    }
    if bsize > MAX_BLOCK {
        out.push(finding(
            "launchcheck",
            &g.kernel,
            loc.clone(),
            Severity::Error,
            format!("{bsize} threads per block exceeds the device limit of {MAX_BLOCK}"),
        ));
    }
    if bsize > 1 && bsize % i64::from(warp_size) != 0 {
        out.push(finding(
            "launchcheck",
            &g.kernel,
            loc.clone(),
            Severity::Warning,
            format!(
                "{bsize} threads per block is not a multiple of the warp size {warp_size}; \
                 partial warps waste lanes"
            ),
        ));
    }
    if g.version == "omp" && (g.grid.1 > 1 || g.grid.2 > 1) {
        out.push(finding(
            "launchcheck",
            &g.kernel,
            loc.clone(),
            Severity::Error,
            "traditional OpenMP offload cannot express a multi-dimensional team grid \
             (paper §3.2); flatten to num_teams(x*y*z)"
                .into(),
        ));
    }
    // KernelFlags drift: the executor silently runs the serial/no-sync
    // path when a kernel synchronizes without declaring the capability.
    if !g.barriers.is_empty() && bsize > 1 && !g.flags.uses_block_sync {
        out.push(finding(
            "synccheck",
            &g.kernel,
            loc.clone(),
            Severity::Error,
            "KernelFlags drift: kernel executes barriers but the launch does not declare \
             uses_block_sync; the runtime degrades sync_threads to a no-op"
                .into(),
        ));
    }
    if g.warp_ops && !g.flags.uses_warp_ops {
        out.push(finding(
            "synccheck",
            &g.kernel,
            loc.clone(),
            Severity::Error,
            "KernelFlags drift: kernel executes warp collectives but the launch does not \
             declare uses_warp_ops"
                .into(),
        ));
    }
    if g.flags.uses_block_sync && g.barriers.is_empty() && bsize > 1 {
        out.push(finding(
            "launchcheck",
            &g.kernel,
            loc,
            Severity::Warning,
            "launch declares uses_block_sync but the kernel has no barriers; the flag \
             forfeits serial-path eligibility (paper §3.5) for nothing"
                .into(),
        ));
    }
}

// --------------------------------------------------------------- barriers

fn check_barriers(g: &Ground, out: &mut Vec<Finding>) {
    for b in &g.barriers {
        let mut vars = BTreeSet::new();
        b.guard.vars(&mut vars);
        let divergent: Vec<&Var> = vars
            .iter()
            .filter(|v| matches!(v, Var::TidX | Var::TidY | Var::TidZ | Var::Item | Var::Free(_)))
            .collect();
        if !divergent.is_empty() {
            let names: Vec<String> = divergent.iter().map(|v| v.to_string()).collect();
            out.push(finding(
                "synccheck",
                &g.kernel,
                format!("barrier in phase `{}`", b.phase),
                Severity::Error,
                format!(
                    "barrier executes under the thread-dependent predicate `{}` \
                     (mentions {}); divergent threads deadlock at the barrier",
                    b.guard,
                    names.join(", ")
                ),
            ));
        }
    }
}

// ------------------------------------------------------------- validation

/// Filter accesses down to those whose buffers and variables are declared,
/// reporting malformed ones as `summarycheck` errors.
fn validate_accesses<'a>(g: &'a Ground, out: &mut Vec<Finding>) -> Vec<&'a Access> {
    let mut valid = Vec::new();
    'acc: for a in &g.accesses {
        let loc = access_loc(a);
        match &a.space {
            Space::Global(label) => {
                if g.buffer_len(label).is_none() {
                    out.push(finding(
                        "summarycheck",
                        &g.kernel,
                        loc,
                        Severity::Error,
                        format!("access names undeclared buffer `{label}`"),
                    ));
                    continue;
                }
            }
            Space::Shared(slot) => {
                if g.shared_len(*slot).is_none() {
                    out.push(finding(
                        "summarycheck",
                        &g.kernel,
                        loc,
                        Severity::Error,
                        format!("access names undeclared shared slot {slot}"),
                    ));
                    continue;
                }
            }
        }
        let mut vars = BTreeSet::new();
        a.index.vars(&mut vars);
        a.guard.vars(&mut vars);
        for v in vars {
            match v {
                Var::Param(p) => {
                    out.push(finding(
                        "summarycheck",
                        &g.kernel,
                        access_loc(a),
                        Severity::Error,
                        format!(
                            "parameter `{p}` survives grounding under valuation `{}`; \
                             add it to the valuation",
                            g.valuation
                        ),
                    ));
                    continue 'acc;
                }
                Var::Free(n) if g.free_range(&n).is_none() => {
                    out.push(finding(
                        "summarycheck",
                        &g.kernel,
                        access_loc(a),
                        Severity::Error,
                        format!("free variable `${n}` has no declared range"),
                    ));
                    continue 'acc;
                }
                _ => {}
            }
        }
        valid.push(a);
    }
    valid
}

fn access_loc(a: &Access) -> String {
    format!("{} {}[{}]", a.mode.label(), a.space, a.index)
}

// ----------------------------------------------------------- symbol bounds

/// Base interval of one symbol for one thread of a pair (or tag 0 for the
/// single-thread bounds check).
fn base_interval(g: &Ground, var: &Var) -> Interval {
    let dim = |v: u32| Interval::new(0, i128::from(v) - 1);
    match var {
        Var::TidX => dim(g.block.0),
        Var::TidY => dim(g.block.1),
        Var::TidZ => dim(g.block.2),
        Var::BidX => dim(g.grid.0),
        Var::BidY => dim(g.grid.1),
        Var::BidZ => dim(g.grid.2),
        Var::BDimX => Interval::point(i128::from(g.block.0)),
        Var::BDimY => Interval::point(i128::from(g.block.1)),
        Var::BDimZ => Interval::point(i128::from(g.block.2)),
        Var::GDimX => Interval::point(i128::from(g.grid.0)),
        Var::GDimY => Interval::point(i128::from(g.grid.1)),
        Var::GDimZ => Interval::point(i128::from(g.grid.2)),
        Var::Item => {
            let (lo, hi) = g.item_range();
            Interval::new(i128::from(lo), i128::from(hi))
        }
        Var::Free(n) => match g.free_range(n) {
            Some((lo, hi)) => Interval::new(i128::from(lo), i128::from(hi)),
            // Validation rejects undeclared frees; stay conservative if
            // one slips through so nothing passes vacuously.
            None => Interval::new(i128::from(i64::MIN), i128::from(i64::MAX)),
        },
        // Parameters are rejected during validation.
        Var::Param(_) => Interval::new(i128::from(i64::MIN), i128::from(i64::MAX)),
    }
}

type SymBounds = BTreeMap<Sym, Interval>;

fn insert_thread_syms(g: &Ground, tag: u8, shared_bid: bool, m: &mut SymBounds) {
    let tid_vars = [Var::TidX, Var::TidY, Var::TidZ, Var::Item];
    for v in tid_vars {
        m.insert(Sym { var: v.clone(), tag }, base_interval(g, &v));
    }
    let bid_tag = if shared_bid { 0 } else { tag };
    for v in [Var::BidX, Var::BidY, Var::BidZ] {
        m.insert(Sym { var: v.clone(), tag: bid_tag }, base_interval(g, &v));
    }
    for (name, lo, hi) in &g.frees {
        m.insert(
            Sym { var: Var::Free(name.clone()), tag },
            Interval::new(i128::from(*lo), i128::from(*hi)),
        );
    }
}

/// Tighten symbol bounds using single-symbol affine guard conjuncts.
/// Returns false when some symbol's interval empties (guard unreachable).
fn tighten(m: &mut SymBounds, guard: &Pred, sym_of: &dyn Fn(&Var) -> Sym) -> bool {
    for conj in guard.conjuncts() {
        let cons: Vec<(&Expr, &Expr, bool)> = match conj {
            Pred::Lt(a, b) => vec![(a, b, true)],
            Pred::Le(a, b) => vec![(a, b, false)],
            Pred::Eq(a, b) => vec![(a, b, false), (b, a, false)],
            _ => continue, // Or/Not conjuncts don't tighten (sound: wider)
        };
        for (a, b, strict) in cons {
            let (Some(fa), Some(fb)) = (to_affine(a, sym_of), to_affine(b, sym_of)) else {
                continue;
            };
            let d = fa.sub(&fb);
            if d.terms.len() != 1 {
                continue;
            }
            let (s, alpha) = d.terms.iter().next().map(|(s, c)| (s.clone(), *c)).unwrap();
            // alpha*s + k <= -strict  =>  alpha*s <= r
            let r = -d.k - i128::from(strict);
            let bound = r.div_euclid(alpha);
            if let Some(iv) = m.get_mut(&s) {
                if alpha > 0 {
                    iv.hi = iv.hi.min(bound);
                } else {
                    iv.lo = iv.lo.max(bound);
                }
            }
        }
    }
    !m.values().any(Interval::is_empty)
}

fn lookup_in<'a>(
    m: &'a SymBounds,
    sym_of: &'a dyn Fn(&Var) -> Sym,
) -> impl Fn(&Var) -> Interval + 'a {
    move |v: &Var| {
        m.get(&sym_of(v))
            .copied()
            .unwrap_or(Interval::new(i128::from(i64::MIN), i128::from(i64::MAX)))
    }
}

// ----------------------------------------------------------------- bounds

fn check_bounds(g: &Ground, valid: &[&Access], out: &mut Vec<Finding>) {
    let sym0 = |v: &Var| Sym { var: v.clone(), tag: 0 };
    for a in valid {
        if a.imprecise {
            out.push(finding(
                "boundscheck",
                &g.kernel,
                access_loc(a),
                Severity::Warning,
                "SummaryImprecise: access is a conservative whole-buffer over-approximation \
                 (non-affine index degraded during extraction); bounds hold by construction \
                 but nothing tighter is proven"
                    .into(),
            ));
            continue;
        }
        let len = match &a.space {
            Space::Global(l) => g.buffer_len(l).unwrap(),
            Space::Shared(s) => g.shared_len(*s).unwrap(),
        };
        let mut m = SymBounds::new();
        insert_thread_syms(g, 0, true, &mut m);
        if !tighten(&mut m, &a.guard, &sym0) {
            continue; // guard unsatisfiable: access unreachable
        }
        let mut iv = expr_interval(&a.index, &lookup_in(&m, &sym0));
        if iv.is_empty() {
            continue;
        }
        refine_by_guard(&mut iv, &a.index, &a.guard, &m, &sym0);
        if iv.lo < 0 || iv.hi >= i128::from(len) {
            out.push(finding(
                "boundscheck",
                &g.kernel,
                access_loc(a),
                Severity::Error,
                format!(
                    "index interval {iv} is not contained in [0, {}] (len {len}) under \
                     valuation `{}`",
                    len - 1,
                    g.valuation
                ),
            ));
        }
    }
}

/// Refine an index interval using guard conjuncts that bound an expression
/// affinely equal to the index (up to a constant). Catches multi-symbol
/// guards like `t*64 + tid.x < n` protecting the very same index, which
/// single-symbol tightening cannot express.
fn refine_by_guard(
    iv: &mut Interval,
    index: &Expr,
    guard: &Pred,
    m: &SymBounds,
    sym_of: &dyn Fn(&Var) -> Sym,
) {
    let Some(aidx) = to_affine(index, sym_of) else { return };
    let sym_lookup = |s: &Sym| {
        m.get(s).copied().unwrap_or(Interval::new(i128::from(i64::MIN), i128::from(i64::MAX)))
    };
    for conj in guard.conjuncts() {
        let cons: Vec<(&Expr, &Expr, bool)> = match conj {
            Pred::Lt(a, b) => vec![(a, b, true)],
            Pred::Le(a, b) => vec![(a, b, false)],
            Pred::Eq(a, b) => vec![(a, b, false), (b, a, false)],
            _ => continue,
        };
        for (a, b, strict) in cons {
            let (Some(fa), Some(fb)) = (to_affine(a, sym_of), to_affine(b, sym_of)) else {
                continue;
            };
            // lhs == index + k  =>  index <= hi(rhs) - k - strict
            let da = fa.sub(&aidx);
            if da.terms.is_empty() {
                let rhs = fb.interval(&sym_lookup);
                if !rhs.is_empty() {
                    iv.hi = iv.hi.min(rhs.hi - da.k - i128::from(strict));
                }
            }
            // rhs == index + k  =>  index >= lo(lhs) - k + strict
            let db = fb.sub(&aidx);
            if db.terms.is_empty() {
                let lhs = fa.interval(&sym_lookup);
                if !lhs.is_empty() {
                    iv.lo = iv.lo.max(lhs.lo - db.k + i128::from(strict));
                }
            }
        }
    }
}

// ------------------------------------------------------------------ races

fn check_races(g: &Ground, valid: &[&Access], out: &mut Vec<Finding>) {
    for i in 0..valid.len() {
        for j in i..valid.len() {
            check_pair(g, valid[i], valid[j], out);
        }
    }
}

fn check_pair(g: &Ground, a1: &Access, a2: &Access, out: &mut Vec<Finding>) {
    if a1.space != a2.space || a1.phase != a2.phase {
        return;
    }
    if a1.mode != Mode::Write && a2.mode != Mode::Write {
        return; // read/read and atomic/atomic (and atomic/read) never race
    }
    let shared = matches!(a1.space, Space::Shared(_));
    if shared && g.block_size() == 1 {
        return; // single-thread blocks cannot have same-block pairs
    }
    if a1.imprecise || a2.imprecise {
        // An opaque over-approximated access can neither be proven disjoint
        // nor shown to collide; surface the imprecision instead of a
        // definite race verdict.
        out.push(finding(
            "racecheck",
            &g.kernel,
            format!("{} vs {} in phase `{}`", access_loc(a1), access_loc(a2), a1.phase),
            Severity::Warning,
            "SummaryImprecise: pair involves a conservative over-approximated access; \
             disjointness can be neither proven nor refuted"
                .into(),
        ));
        return;
    }
    let sym_of = |tag: u8| {
        move |v: &Var| {
            let t = if shared && matches!(v, Var::BidX | Var::BidY | Var::BidZ) { 0 } else { tag };
            Sym { var: v.clone(), tag: t }
        }
    };
    let s1 = sym_of(1);
    let s2 = sym_of(2);
    let mut m = SymBounds::new();
    insert_thread_syms(g, 1, shared, &mut m);
    insert_thread_syms(g, 2, shared, &mut m);
    if !tighten(&mut m, &a1.guard, &s1) || !tighten(&mut m, &a2.guard, &s2) {
        return; // pair unreachable together
    }
    let sym_lookup = |s: &Sym| {
        m.get(s).copied().unwrap_or(Interval::new(i128::from(i64::MIN), i128::from(i64::MAX)))
    };
    let f1 = to_affine(&a1.index, &s1);
    let f2 = to_affine(&a2.index, &s2);
    if let (Some(f1), Some(f2)) = (&f1, &f2) {
        let d = f1.sub(f2);
        // Rule B: the difference can never be zero.
        if !d.interval(&sym_lookup).contains_zero() {
            return;
        }
        // Rule A: a driver symbol known distinct between the two threads.
        let mut drivers = vec![Var::Item];
        if shared && g.block.1 == 1 && g.block.2 == 1 {
            drivers.push(Var::TidX);
        }
        for drv in drivers {
            let d1 = Sym { var: drv.clone(), tag: 1 };
            let d2 = Sym { var: drv.clone(), tag: 2 };
            let alpha = f1.coeff(&d1);
            if alpha != 0 && alpha == f2.coeff(&d2) {
                let mut r = d.clone();
                r.remove(&d1);
                r.remove(&d2);
                let iv = r.interval(&sym_lookup);
                if !iv.is_empty() && iv.lo > -alpha.abs() && iv.hi < alpha.abs() {
                    return; // |alpha·(D1-D2)| >= |alpha| dominates the residual
                }
            }
        }
    } else {
        // Non-affine fallback: disjoint index ranges cannot collide.
        let iv1 = expr_interval(&a1.index, &lookup_in(&m, &s1));
        let iv2 = expr_interval(&a2.index, &lookup_in(&m, &s2));
        if iv1.is_empty() || iv2.is_empty() || iv1.intersect(&iv2).is_empty() {
            return;
        }
    }
    out.push(finding(
        "racecheck",
        &g.kernel,
        format!("{} vs {} in phase `{}`", access_loc(a1), access_loc(a2), a1.phase),
        Severity::Error,
        format!(
            "two distinct threads may touch the same {} element with at least one write; \
             no disjointness proof found under valuation `{}`",
            a1.space, g.valuation
        ),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::summary::*;

    fn base(accesses: Vec<Access>) -> KernelSummary {
        KernelSummary {
            kernel: "k".into(),
            app: "t".into(),
            version: "ompx".into(),
            launch: LaunchShape { block: (64, 1, 1), grid: [c(4), c(1), c(1)] },
            flags: SummaryFlags::default(),
            warp_ops: false,
            domain: Domain::OnePerThread,
            frees: vec![],
            buffers: vec![BufferDecl { name: "buf".into(), len: param("n") }],
            shared: vec![],
            accesses,
            barriers: vec![],
            valuations: vec![
                Valuation::new("a", &[("n", 256)]),
                Valuation::new("b", &[("n", 100)]),
            ],
        }
    }

    fn acc(mode: Mode, index: Expr, guard: Pred) -> Access {
        Access {
            space: Space::Global("buf".into()),
            mode,
            index,
            guard,
            imprecise: false,
            phase: "main".into(),
        }
    }

    fn errors(f: &[Finding]) -> usize {
        f.iter().filter(|f| f.severity == Severity::Error).count()
    }

    #[test]
    fn distinct_items_do_not_race() {
        let s = base(vec![acc(Mode::Write, item(), lt(item(), param("n")))]);
        let f = analyze(&s, 32);
        assert_eq!(errors(&f), 0, "{f:?}");
    }

    #[test]
    fn all_threads_writing_one_cell_races() {
        let s = base(vec![acc(Mode::Write, c(0), Pred::True)]);
        let f = analyze(&s, 32);
        assert!(f.iter().any(|f| f.tool == "racecheck"), "{f:?}");
    }

    #[test]
    fn rule_a_handles_strided_writes_with_offsets() {
        // su3 shape: write buf[item*18 + m], m in [0,17], len n*18.
        let mut s = base(vec![Access {
            space: Space::Global("buf".into()),
            mode: Mode::Write,
            index: item() * c(18) + free("m"),
            guard: lt(item(), param("n")),
            imprecise: false,
            phase: "main".into(),
        }]);
        s.frees = vec![FreeDecl { name: "m".into(), lo: c(0), hi: c(17) }];
        s.buffers = vec![BufferDecl { name: "buf".into(), len: param("n") * c(18) }];
        let f = analyze(&s, 32);
        assert_eq!(errors(&f), 0, "{f:?}");
    }

    #[test]
    fn unguarded_index_past_len_is_out_of_bounds() {
        // Grid covers 256 threads; n=100 in the second valuation, and the
        // write is unguarded.
        let s = base(vec![acc(Mode::Write, item(), Pred::True)]);
        let f = analyze(&s, 32);
        assert!(f.iter().any(|f| f.tool == "boundscheck"), "{f:?}");
        // Race-free though: distinct items.
        assert!(!f.iter().any(|f| f.tool == "racecheck"), "{f:?}");
    }

    #[test]
    fn multi_symbol_guard_protects_the_index_it_mentions() {
        // aidw shape: read buf[t*64 + tid.x] guarded by t*64 + tid.x < n.
        let mut s = base(vec![Access {
            space: Space::Global("buf".into()),
            mode: Mode::Read,
            index: free("t") * c(64) + tid_x(),
            guard: lt(free("t") * c(64) + tid_x(), param("n")),
            imprecise: false,
            phase: "main".into(),
        }]);
        s.frees =
            vec![FreeDecl { name: "t".into(), lo: c(0), hi: ceil_div(param("n"), 64) - c(1) }];
        let f = analyze(&s, 32);
        assert_eq!(errors(&f), 0, "{f:?}");
    }

    #[test]
    fn divergent_barrier_guard_is_reported() {
        let mut s = base(vec![]);
        s.flags.uses_block_sync = true;
        s.barriers = vec![Barrier { guard: lt(tid_x(), c(1)), phase: "p".into() }];
        let f = analyze(&s, 32);
        assert!(
            f.iter().any(|f| f.tool == "synccheck" && f.message.contains("thread-dependent")),
            "{f:?}"
        );
    }

    #[test]
    fn launch_lints_fire() {
        // Oversized block.
        let mut s = base(vec![]);
        s.launch.block = (2048, 1, 1);
        let f = analyze(&s, 32);
        assert!(f.iter().any(|f| f.tool == "launchcheck" && f.message.contains("1024")), "{f:?}");
        // Non-warp-multiple block is a warning, not an error.
        let mut s = base(vec![]);
        s.launch.block = (48, 1, 1);
        let f = analyze(&s, 32);
        assert!(
            f.iter().any(|f| f.tool == "launchcheck" && f.severity == Severity::Warning),
            "{f:?}"
        );
        assert_eq!(errors(&f), 0);
        // Multi-dim grid under traditional omp.
        let mut s = base(vec![]);
        s.version = "omp".into();
        s.launch.grid = [c(2), c(2), c(1)];
        let f = analyze(&s, 32);
        assert!(f.iter().any(|f| f.message.contains("§3.2")), "{f:?}");
    }

    #[test]
    fn flags_drift_lint_fires() {
        let mut s = base(vec![]);
        s.barriers = vec![Barrier { guard: Pred::True, phase: "p".into() }];
        s.flags.uses_block_sync = false;
        let f = analyze(&s, 32);
        assert!(
            f.iter().any(|f| f.tool == "synccheck" && f.message.contains("KernelFlags drift")),
            "{f:?}"
        );
    }

    #[test]
    fn shared_tile_halo_is_race_free() {
        // stencil load phase, slot 0 of len 262: three writes at disjoint
        // shifted ranges.
        let mut s = base(vec![]);
        s.launch.block = (256, 1, 1);
        s.shared = vec![SharedDecl { slot: 0, len: c(262) }];
        s.accesses = vec![
            Access {
                space: Space::Shared(0),
                mode: Mode::Write,
                index: tid_x() + c(3),
                guard: Pred::True,
                imprecise: false,
                phase: "load".into(),
            },
            Access {
                space: Space::Shared(0),
                mode: Mode::Write,
                index: tid_x(),
                guard: lt(tid_x(), c(3)),
                imprecise: false,
                phase: "load".into(),
            },
            Access {
                space: Space::Shared(0),
                mode: Mode::Write,
                index: tid_x() + c(259),
                guard: lt(tid_x(), c(3)),
                imprecise: false,
                phase: "load".into(),
            },
        ];
        s.flags.uses_block_sync = true;
        s.barriers = vec![Barrier { guard: Pred::True, phase: "load".into() }];
        let f = analyze(&s, 32);
        assert_eq!(errors(&f), 0, "{f:?}");
    }

    #[test]
    fn shared_write_same_cell_races_across_threads() {
        let mut s = base(vec![]);
        s.shared = vec![SharedDecl { slot: 0, len: c(8) }];
        s.flags.uses_block_sync = true;
        s.barriers = vec![Barrier { guard: Pred::True, phase: "load".into() }];
        s.accesses = vec![Access {
            space: Space::Shared(0),
            mode: Mode::Write,
            index: mod_e(tid_x(), c(8)),
            guard: Pred::True,
            imprecise: false,
            phase: "load".into(),
        }];
        let f = analyze(&s, 32);
        assert!(f.iter().any(|f| f.tool == "racecheck"), "{f:?}");
    }

    #[test]
    fn undeclared_buffer_is_a_summary_error() {
        let mut s = base(vec![]);
        s.accesses = vec![Access {
            space: Space::Global("ghost".into()),
            mode: Mode::Read,
            index: c(0),
            guard: Pred::True,
            imprecise: false,
            phase: "main".into(),
        }];
        let f = analyze(&s, 32);
        assert!(f.iter().any(|f| f.tool == "summarycheck" && f.message.contains("ghost")), "{f:?}");
    }

    #[test]
    fn imprecise_access_warns_instead_of_erroring() {
        // An opaque whole-buffer read (extraction's non-affine fallback)
        // overlapping a precise write: no Error, but SummaryImprecise
        // warnings from both boundscheck and racecheck.
        let mut s = base(vec![]);
        s.frees = vec![FreeDecl { name: "o".into(), lo: c(0), hi: param("n") - c(1) }];
        s.accesses = vec![
            Access {
                space: Space::Global("buf".into()),
                mode: Mode::Read,
                index: free("o"),
                guard: Pred::True,
                imprecise: true,
                phase: "main".into(),
            },
            acc(Mode::Write, item(), lt(item(), param("n"))),
        ];
        let f = analyze(&s, 32);
        assert_eq!(errors(&f), 0, "{f:?}");
        assert!(
            f.iter().any(|f| f.tool == "boundscheck" && f.message.contains("SummaryImprecise")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|f| f.tool == "racecheck" && f.message.contains("SummaryImprecise")),
            "{f:?}"
        );
    }

    #[test]
    fn grid_stride_domain_is_race_free_and_bounded() {
        let mut s = base(vec![acc(Mode::Write, item(), Pred::True)]);
        s.domain = Domain::GridStride(param("n"));
        let f = analyze(&s, 32);
        assert_eq!(errors(&f), 0, "{f:?}");
    }
}
