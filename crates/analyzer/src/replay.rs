//! Replay validation: summaries are checked against reality, not trusted.
//!
//! A replay run executes the real kernel on the simulator with the
//! memory-trace hooks attached (`ompx_sim::memtrace`) on the small
//! concrete grid a valuation describes, then checks that every observed
//! access event is *predicted* by the summary: the predicted set is the
//! union, over all executing threads, their assigned items, and all
//! assignments of the mentioned free variables, of the guarded accesses'
//! `(space, index, mode)` triples. An unpredicted event means the summary
//! under-approximates the kernel — exactly the failure mode that would
//! make a "race-free" verdict worthless — and is reported as a
//! `summarycheck` error.
//!
//! The enumeration prunes loops an access cannot depend on (an access
//! whose index and guard never mention `tid`/`item` is evaluated for one
//! representative thread) and refuses to run past [`ENUM_CAP`]
//! combinations rather than silently sampling.

use crate::expr::Env;
use crate::summary::{Access, Ground, GroundDomain, KernelSummary, Mode, Space, Valuation};
use ompx_sanitizer::{Finding, Severity};
use ompx_sim::memtrace::{BarrierEvent, MemAccessKind, MemEvent, MemSpace};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Upper bound on (thread × item × free) combinations enumerated per
/// access. Hitting it is a finding, never a silent truncation.
const ENUM_CAP: u64 = 8_000_000;

/// How many unpredicted events are itemized before the rest collapse into
/// one count.
const MAX_REPORTED: usize = 5;

/// One predicted (or observed) access in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum EvKey {
    Global {
        label: String,
        index: i64,
        kind: Mode,
    },
    /// Shared memory is per-block, so the block coordinate is part of the
    /// cell's identity.
    Shared {
        block: (u32, u32, u32),
        slot: usize,
        index: i64,
        kind: Mode,
    },
}

impl EvKey {
    /// Canonical key for an observed trace event.
    pub(crate) fn of(e: &MemEvent) -> EvKey {
        match &e.space {
            MemSpace::Global { label, .. } => {
                EvKey::Global { label: label.clone(), index: e.index as i64, kind: kind_of(e.kind) }
            }
            MemSpace::Shared { slot } => EvKey::Shared {
                block: e.block,
                slot: *slot,
                index: e.index as i64,
                kind: kind_of(e.kind),
            },
        }
    }
}

fn kind_of(k: MemAccessKind) -> Mode {
    match k {
        MemAccessKind::Read => Mode::Read,
        MemAccessKind::Write => Mode::Write,
        MemAccessKind::Atomic => Mode::Atomic,
    }
}

/// Validate observed trace events against a summary under one valuation:
/// access-set coverage only (see [`validate_replay`] for the full check
/// including barrier ordering).
pub fn validate_events(
    summary: &KernelSummary,
    val: &Valuation,
    events: &[MemEvent],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let g = match summary.ground(val) {
        Ok(g) => g,
        Err(e) => {
            out.push(mismatch(&summary.kernel, "valuation", e));
            return out;
        }
    };
    validate_coverage(&g, events, &mut out);
    out
}

/// Validate a full replay trace — access-set coverage *and* barrier
/// ordering — against a summary under one valuation.
///
/// The ordering check reconstructs, per (launch, block, thread), the
/// barrier-delimited segments the thread executed (from each event's
/// barrier counter) and requires the segment sequence to walk the
/// summary's barrier list in order: there must be a start offset `s` such
/// that the segment ended by the thread's `c`-th barrier only contains
/// accesses of the phase `barriers[(s + c) mod L]` delimits. Coverage
/// alone cannot see a kernel that reads before the barrier and writes
/// after while the summary claims the reverse; this check can.
pub fn validate_replay(
    summary: &KernelSummary,
    val: &Valuation,
    events: &[MemEvent],
    barriers: &[BarrierEvent],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let g = match summary.ground(val) {
        Ok(g) => g,
        Err(e) => {
            out.push(mismatch(&summary.kernel, "valuation", e));
            return out;
        }
    };
    let phases = validate_coverage(&g, events, &mut out);
    if let Some(phases) = phases {
        validate_barrier_order(&g, events, barriers, &phases, &mut out);
    }
    out
}

/// Shared coverage pass: every observed event must be in the predicted
/// set. Returns the key → predicting-phases map for the ordering pass.
fn validate_coverage(
    g: &Ground,
    events: &[MemEvent],
    out: &mut Vec<Finding>,
) -> Option<HashMap<EvKey, BTreeSet<String>>> {
    let predicted = predicted_set(g, out)?;
    let mut unpredicted = Vec::new();
    let mut observed = 0usize;
    for e in events {
        if e.kernel != g.kernel {
            continue;
        }
        observed += 1;
        if !predicted.contains_key(&EvKey::of(e)) {
            unpredicted.push(e);
        }
    }
    if observed == 0 && !g.accesses.is_empty() {
        out.push(Finding {
            tool: "summarycheck".into(),
            kernel: g.kernel.clone(),
            location: format!("valuation `{}`", g.valuation),
            severity: Severity::Warning,
            message: "replay observed no events for this kernel; trace not attached or \
                      kernel name mismatch"
                .into(),
        });
        return Some(predicted);
    }
    for e in unpredicted.iter().take(MAX_REPORTED) {
        let (what, idx) = match &e.space {
            MemSpace::Global { label, .. } => (label.clone(), e.index),
            MemSpace::Shared { slot } => (format!("shared[{slot}]"), e.index),
        };
        out.push(mismatch(
            &g.kernel,
            format!(
                "block ({},{},{}) thread ({},{},{}) {} {what}[{idx}]",
                e.block.0,
                e.block.1,
                e.block.2,
                e.thread.0,
                e.thread.1,
                e.thread.2,
                kind_of(e.kind).label(),
            ),
            format!(
                "observed access is not predicted by the summary under valuation `{}`",
                g.valuation
            ),
        ));
    }
    if unpredicted.len() > MAX_REPORTED {
        out.push(mismatch(
            &g.kernel,
            format!("valuation `{}`", g.valuation),
            format!(
                "{} further unpredicted events suppressed (of {} observed)",
                unpredicted.len() - MAX_REPORTED,
                observed
            ),
        ));
    }
    Some(predicted)
}

/// Barrier-ordering pass (see [`validate_replay`]).
fn validate_barrier_order(
    g: &Ground,
    events: &[MemEvent],
    barriers: &[BarrierEvent],
    phases: &HashMap<EvKey, BTreeSet<String>>,
    out: &mut Vec<Finding>,
) {
    // The summary's barrier list, filtered to barriers whose guard holds.
    // Barrier guards must be thread-uniform (check_barriers errors
    // otherwise); evaluate with a representative thread. A guard that
    // cannot be evaluated (free variables) disables the ordering check —
    // check_barriers already reports it.
    let bdim = (i64::from(g.block.0), i64::from(g.block.1), i64::from(g.block.2));
    let gdim = (i64::from(g.grid.0), i64::from(g.grid.1), i64::from(g.grid.2));
    let env = Env { tid: (0, 0, 0), bid: (0, 0, 0), bdim, gdim, item: 0, frees: &[] };
    let mut blist: Vec<&str> = Vec::new();
    for b in &g.barriers {
        match b.guard.eval(&env) {
            Some(true) => blist.push(&b.phase),
            Some(false) => {}
            None => return,
        }
    }
    type ThreadKey = (u64, (u32, u32, u32), (u32, u32, u32));
    // Observed barrier count per (launch, block, thread).
    let mut bcount: BTreeMap<ThreadKey, u32> = BTreeMap::new();
    for b in barriers {
        if b.kernel != g.kernel {
            continue;
        }
        let c = bcount.entry((b.launch, b.block, b.thread)).or_insert(0);
        *c = (*c).max(b.ordinal + 1);
    }
    if blist.is_empty() {
        if let Some(((launch, block, thread), n)) = bcount.iter().next() {
            out.push(mismatch(
                &g.kernel,
                format!(
                    "launch {launch} block ({},{},{}) thread ({},{},{})",
                    block.0, block.1, block.2, thread.0, thread.1, thread.2
                ),
                format!(
                    "barrier ordering mismatch: thread executed {n} barrier(s) but the \
                     summary declares none (valuation `{}`)",
                    g.valuation
                ),
            ));
        }
        return;
    }
    // Candidate phases per (thread, segment): the intersection of the
    // phases predicting each event in the segment.
    let mut segs: BTreeMap<(ThreadKey, u32), Option<BTreeSet<String>>> = BTreeMap::new();
    for e in events {
        if e.kernel != g.kernel {
            continue;
        }
        let Some(cand) = phases.get(&EvKey::of(e)) else { continue };
        let key = ((e.launch, e.block, e.thread), e.phase);
        let entry = segs.entry(key).or_insert(None);
        match entry {
            None => *entry = Some(cand.clone()),
            Some(cur) => {
                cur.retain(|p| cand.contains(p));
            }
        }
    }
    let l = blist.len() as u32;
    let mut reported = BTreeSet::new();
    for ((tkey, seg), cand) in &segs {
        let total = bcount.get(tkey).copied().unwrap_or(0);
        if *seg >= total {
            // Trailing segment: not ended by a barrier, so the barrier
            // list does not constrain it.
            continue;
        }
        let Some(cand) = cand else { continue };
        if cand.is_empty() {
            let msg = format!(
                "barrier ordering mismatch: accesses in one barrier-delimited segment \
                 are predicted by no single phase (valuation `{}`)",
                g.valuation
            );
            if reported.insert(msg.clone()) && reported.len() <= MAX_REPORTED {
                out.push(mismatch(&g.kernel, format!("segment {seg}"), msg));
            }
            continue;
        }
        // The segment ended by barrier `seg` must match position
        // (s + seg) mod L of the barrier list for a start offset `s`
        // consistent with the thread's other segments. Per-segment the
        // requirement is: some list position's phase is a candidate.
        let fits = (0..l).any(|s| cand.contains(blist[((s + seg) % l) as usize]));
        if !fits {
            let ph: Vec<&str> = cand.iter().map(String::as_str).collect();
            let msg = format!(
                "barrier ordering mismatch: the segment ended by barrier {seg} executed \
                 phase(s) [{}], but the summary's barrier list [{}] delimits none of \
                 them at that position (valuation `{}`)",
                ph.join(", "),
                blist.join(", "),
                g.valuation
            );
            if reported.insert(msg.clone()) && reported.len() <= MAX_REPORTED {
                out.push(mismatch(&g.kernel, format!("segment {seg}"), msg));
            }
        }
    }
    // Cross-segment consistency: within one thread the start offset must
    // be the same for every segment.
    let mut by_thread: BTreeMap<ThreadKey, Vec<(u32, &BTreeSet<String>)>> = BTreeMap::new();
    for ((tkey, seg), cand) in &segs {
        let total = bcount.get(tkey).copied().unwrap_or(0);
        if *seg >= total {
            continue;
        }
        if let Some(cand) = cand {
            if !cand.is_empty() {
                by_thread.entry(*tkey).or_default().push((*seg, cand));
            }
        }
    }
    for (tkey, list) in &by_thread {
        let ok = (0..l)
            .any(|s| list.iter().all(|(seg, cand)| cand.contains(blist[((s + seg) % l) as usize])));
        if !ok {
            let (launch, block, thread) = tkey;
            let msg = format!(
                "barrier ordering mismatch: launch {launch} block ({},{},{}) thread \
                 ({},{},{}) interleaves phases in an order inconsistent with the \
                 summary's barrier list [{}] (valuation `{}`)",
                block.0,
                block.1,
                block.2,
                thread.0,
                thread.1,
                thread.2,
                blist.join(", "),
                g.valuation
            );
            if reported.insert(msg.clone()) && reported.len() <= MAX_REPORTED {
                out.push(mismatch(&g.kernel, "barrier order", msg));
            }
        }
    }
}

fn mismatch(kernel: &str, location: impl Into<String>, message: String) -> Finding {
    Finding {
        tool: "summarycheck".into(),
        kernel: kernel.to_string(),
        location: location.into(),
        severity: Severity::Error,
        message,
    }
}

/// The items one thread executes under the grounded domain.
pub(crate) fn items_for(g: &Ground, rank: i64, is_master: bool) -> Vec<i64> {
    match g.domain {
        GroundDomain::OnePerThread => vec![rank],
        GroundDomain::GridStride { n } => {
            let total = g.block_size() * g.grid_size();
            let mut items = Vec::new();
            let mut i = rank;
            while i < n {
                items.push(i);
                i += total;
            }
            items
        }
        GroundDomain::BlockChunked { n, chunk } => {
            if !is_master {
                return Vec::new();
            }
            let block_rank = rank / g.block_size();
            let lo = block_rank * chunk;
            let hi = n.min(lo + chunk);
            (lo..hi).collect()
        }
    }
}

/// Build the predicted `(space, index, mode)` set for every access under
/// every (thread, item, free-assignment) combination that passes its
/// guard, mapping each predicted key to the phase labels that predict it.
/// Returns `None` (with findings) if the enumeration cannot run.
pub(crate) fn predicted_set(
    g: &Ground,
    out: &mut Vec<Finding>,
) -> Option<HashMap<EvKey, BTreeSet<String>>> {
    use crate::expr::Var;
    let mut predicted = HashMap::new();
    let bdim = (i64::from(g.block.0), i64::from(g.block.1), i64::from(g.block.2));
    let gdim = (i64::from(g.grid.0), i64::from(g.grid.1), i64::from(g.grid.2));
    for a in &g.accesses {
        let mut vars = BTreeSet::new();
        a.index.vars(&mut vars);
        a.guard.vars(&mut vars);
        let needs_threads =
            vars.iter().any(|v| matches!(v, Var::TidX | Var::TidY | Var::TidZ | Var::Item))
                || matches!(g.domain, GroundDomain::BlockChunked { .. });
        let needs_blocks = needs_threads
            || vars.iter().any(|v| matches!(v, Var::BidX | Var::BidY | Var::BidZ))
            || matches!(a.space, Space::Shared(_));
        let frees: Vec<(String, i64, i64)> = g
            .frees
            .iter()
            .filter(|(n, _, _)| vars.contains(&Var::Free(n.clone())))
            .cloned()
            .collect();
        // Cost estimate before enumerating.
        let free_combos: u64 = frees
            .iter()
            .map(|(_, lo, hi)| u64::try_from((hi - lo + 1).max(0)).unwrap_or(u64::MAX))
            .product();
        let nthreads = if needs_threads { g.block_size().max(1) as u64 } else { 1 };
        let nblocks = if needs_blocks { g.grid_size().max(1) as u64 } else { 1 };
        let per_item: u64 = match g.domain {
            GroundDomain::OnePerThread => 1,
            GroundDomain::GridStride { n } | GroundDomain::BlockChunked { n, .. } => {
                let total = (g.block_size() * g.grid_size()).max(1) as u64;
                (n.max(0) as u64).div_ceil(total).max(1)
            }
        };
        let cost = nblocks
            .saturating_mul(nthreads)
            .saturating_mul(per_item)
            .saturating_mul(free_combos.max(1));
        if cost > ENUM_CAP {
            out.push(mismatch(
                &g.kernel,
                access_desc(a),
                format!(
                    "replay enumeration needs ~{cost} combinations (cap {ENUM_CAP}); \
                     use a smaller valuation"
                ),
            ));
            return None;
        }
        let mut eval_failure = false;
        for bz in 0..gdim.2.max(1) {
            for by in 0..gdim.1.max(1) {
                for bx in 0..gdim.0.max(1) {
                    if !needs_blocks && (bx, by, bz) != (0, 0, 0) {
                        continue;
                    }
                    for tz in 0..bdim.2 {
                        for ty in 0..bdim.1 {
                            for tx in 0..bdim.0 {
                                if !needs_threads && (tx, ty, tz) != (0, 0, 0) {
                                    continue;
                                }
                                let block_rank = (bz * gdim.1 + by) * gdim.0 + bx;
                                let thread_rank = (tz * bdim.1 + ty) * bdim.0 + tx;
                                let rank = block_rank * g.block_size() + thread_rank;
                                let is_master = thread_rank == 0;
                                let items = if vars.contains(&Var::Item)
                                    || matches!(g.domain, GroundDomain::BlockChunked { .. })
                                {
                                    items_for(g, rank, is_master)
                                } else {
                                    vec![0]
                                };
                                for item in items {
                                    predict_one(
                                        a,
                                        &frees,
                                        Env {
                                            tid: (tx, ty, tz),
                                            bid: (bx, by, bz),
                                            bdim,
                                            gdim,
                                            item,
                                            frees: &[],
                                        },
                                        (bx as u32, by as u32, bz as u32),
                                        needs_blocks,
                                        &mut predicted,
                                        &mut eval_failure,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        if eval_failure {
            out.push(mismatch(
                &g.kernel,
                access_desc(a),
                "summary expression failed to evaluate (division by zero?) during replay \
                 enumeration"
                    .into(),
            ));
            return None;
        }
    }
    Some(predicted)
}

/// Enumerate the access's free-variable assignments for one (thread, item)
/// and insert the passing combinations.
#[allow(clippy::too_many_arguments)]
fn predict_one(
    a: &Access,
    frees: &[(String, i64, i64)],
    env: Env<'_>,
    block: (u32, u32, u32),
    per_block: bool,
    predicted: &mut HashMap<EvKey, BTreeSet<String>>,
    eval_failure: &mut bool,
) {
    if frees.iter().any(|(_, lo, hi)| hi < lo) {
        return; // an empty free range means zero assignments exist
    }
    let mut assignment: Vec<(String, i64)> =
        frees.iter().map(|(n, lo, _)| (n.clone(), *lo)).collect();
    loop {
        let env = Env { frees: &assignment, ..env.clone() };
        match a.guard.eval(&env) {
            Some(true) => match a.index.eval(&env) {
                Some(idx) => {
                    let idx = idx.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
                    let key = match &a.space {
                        Space::Global(label) => {
                            EvKey::Global { label: label.clone(), index: idx, kind: a.mode }
                        }
                        Space::Shared(slot) => {
                            // Without block enumeration the prediction is
                            // block-independent; replicate across blocks.
                            debug_assert!(per_block);
                            EvKey::Shared { block, slot: *slot, index: idx, kind: a.mode }
                        }
                    };
                    predicted.entry(key).or_default().insert(a.phase.clone());
                }
                None => *eval_failure = true,
            },
            Some(false) => {}
            None => *eval_failure = true,
        }
        // Odometer over the free ranges.
        let mut pos = 0;
        loop {
            if pos == assignment.len() {
                return;
            }
            let (_, lo, hi) = &frees[pos];
            if assignment[pos].1 < *hi {
                assignment[pos].1 += 1;
                break;
            }
            assignment[pos].1 = *lo;
            pos += 1;
        }
    }
}

fn access_desc(a: &Access) -> String {
    format!("{} {}[{}]", a.mode.label(), a.space, a.index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::summary::*;

    fn toy(n: i64) -> KernelSummary {
        KernelSummary {
            kernel: "copy".into(),
            app: "toy".into(),
            version: "ompx".into(),
            launch: LaunchShape { block: (4, 1, 1), grid: [ceil_div(param("n"), 4), c(1), c(1)] },
            flags: SummaryFlags::default(),
            warp_ops: false,
            domain: Domain::OnePerThread,
            frees: vec![],
            buffers: vec![
                BufferDecl { name: "a".into(), len: param("n") },
                BufferDecl { name: "b".into(), len: param("n") },
            ],
            shared: vec![],
            accesses: vec![
                Access {
                    space: Space::Global("a".into()),
                    mode: Mode::Read,
                    index: item(),
                    guard: lt(item(), param("n")),
                    imprecise: false,
                    phase: "main".into(),
                },
                Access {
                    space: Space::Global("b".into()),
                    mode: Mode::Write,
                    index: item(),
                    guard: lt(item(), param("n")),
                    imprecise: false,
                    phase: "main".into(),
                },
            ],
            barriers: vec![],
            valuations: vec![Valuation::new("test", &[("n", n)])],
        }
    }

    fn ev(label: &str, index: usize, kind: MemAccessKind) -> MemEvent {
        MemEvent {
            kernel: "copy".into(),
            launch: 0,
            block: (0, 0, 0),
            thread: (index as u32 % 4, 0, 0),
            space: MemSpace::Global { alloc_id: 0, label: label.into() },
            index,
            kind,
            phase: 0,
        }
    }

    #[test]
    fn predicted_events_validate_cleanly() {
        let s = toy(7);
        let events: Vec<MemEvent> = (0..7)
            .flat_map(|i| [ev("a", i, MemAccessKind::Read), ev("b", i, MemAccessKind::Write)])
            .collect();
        let f = validate_events(&s, &s.valuations[0], &events);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unpredicted_event_is_reported() {
        let s = toy(7);
        // A write to `a` is not in the summary (only reads are).
        let f = validate_events(&s, &s.valuations[0], &[ev("a", 0, MemAccessKind::Write)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].tool, "summarycheck");
        assert!(f[0].message.contains("not predicted"), "{}", f[0].message);
    }

    #[test]
    fn out_of_range_index_is_unpredicted() {
        let s = toy(7);
        let f = validate_events(&s, &s.valuations[0], &[ev("b", 7, MemAccessKind::Write)]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn foreign_kernel_events_are_ignored() {
        let s = toy(7);
        let mut e = ev("b", 100, MemAccessKind::Write);
        e.kernel = "other".into();
        // Only foreign events: triggers the "no events observed" warning.
        let f = validate_events(&s, &s.valuations[0], &[e]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn shared_predictions_are_per_block() {
        let mut s = toy(8);
        s.shared = vec![SharedDecl { slot: 0, len: c(4) }];
        s.accesses = vec![Access {
            space: Space::Shared(0),
            mode: Mode::Write,
            index: tid_x(),
            guard: Pred::True,
            phase: "main".into(),
            imprecise: false,
        }];
        let mk = |block: u32, index: usize| MemEvent {
            kernel: "copy".into(),
            launch: 0,
            block: (block, 0, 0),
            thread: (index as u32, 0, 0),
            space: MemSpace::Shared { slot: 0 },
            index,
            kind: MemAccessKind::Write,
            phase: 0,
        };
        // Both blocks of the 2-block grid are predicted.
        let f = validate_events(&s, &s.valuations[0], &[mk(0, 3), mk(1, 0)]);
        assert!(f.is_empty(), "{f:?}");
        // A block beyond the grid is not.
        let f = validate_events(&s, &s.valuations[0], &[mk(2, 0)]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn grid_stride_items_cover_the_tail() {
        let mut s = toy(11);
        s.domain = Domain::GridStride(param("n"));
        s.launch.grid = [c(1), c(1), c(1)]; // 4 threads, 11 items
        let events: Vec<MemEvent> = (0..11).map(|i| ev("b", i, MemAccessKind::Write)).collect();
        let f = validate_events(&s, &s.valuations[0], &events);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn block_chunked_items_stay_in_their_chunk() {
        let mut s = toy(10);
        s.domain = Domain::BlockChunked(param("n"));
        s.launch = LaunchShape { block: (1, 1, 1), grid: [c(3), c(1), c(1)] };
        // chunk = ceil(10/3) = 4: block 0 -> 0..4, block 1 -> 4..8, block 2 -> 8..10.
        let mk = |block: u32, index: usize| MemEvent {
            kernel: "copy".into(),
            launch: 0,
            block: (block, 0, 0),
            thread: (0, 0, 0),
            space: MemSpace::Global { alloc_id: 0, label: "b".into() },
            index,
            kind: MemAccessKind::Write,
            phase: 0,
        };
        let f = validate_events(&s, &s.valuations[0], &[mk(0, 3), mk(1, 7), mk(2, 9)]);
        assert!(f.is_empty(), "{f:?}");
    }

    /// A two-phase summary: write shared before the barrier ("load"),
    /// read it after ("compute").
    fn two_phase() -> KernelSummary {
        let mut s = toy(4);
        s.launch.grid = [c(1), c(1), c(1)];
        s.shared = vec![SharedDecl { slot: 0, len: c(4) }];
        s.frees = vec![FreeDecl { name: "s".into(), lo: c(0), hi: c(3) }];
        s.accesses = vec![
            Access {
                space: Space::Shared(0),
                mode: Mode::Write,
                index: tid_x(),
                guard: Pred::True,
                phase: "load".into(),
                imprecise: false,
            },
            Access {
                space: Space::Shared(0),
                mode: Mode::Read,
                index: free("s"),
                guard: Pred::True,
                phase: "compute".into(),
                imprecise: false,
            },
        ];
        s.barriers = vec![Barrier { guard: Pred::True, phase: "load".into() }];
        s
    }

    fn sev(index: usize, kind: MemAccessKind, phase: u32) -> MemEvent {
        MemEvent {
            kernel: "copy".into(),
            launch: 0,
            block: (0, 0, 0),
            thread: (index as u32 % 4, 0, 0),
            space: MemSpace::Shared { slot: 0 },
            index,
            kind,
            phase,
        }
    }

    fn bev(thread: u32, ordinal: u32) -> BarrierEvent {
        BarrierEvent {
            kernel: "copy".into(),
            launch: 0,
            block: (0, 0, 0),
            thread: (thread, 0, 0),
            ordinal,
        }
    }

    #[test]
    fn correct_barrier_order_validates_cleanly() {
        let s = two_phase();
        let mut events = Vec::new();
        let mut barriers = Vec::new();
        for t in 0..4usize {
            events.push(sev(t, MemAccessKind::Write, 0));
            barriers.push(bev(t as u32, 0));
            events.push(sev((t + 1) % 4, MemAccessKind::Read, 1));
        }
        let f = validate_replay(&s, &s.valuations[0], &events, &barriers);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn swapped_phase_order_fails_with_distinct_diagnostic() {
        // Same coverage — every key is predicted — but the kernel read the
        // tile *before* the barrier and wrote it after.
        let s = two_phase();
        let mut events = Vec::new();
        let mut barriers = Vec::new();
        for t in 0..4usize {
            events.push(sev((t + 1) % 4, MemAccessKind::Read, 0));
            barriers.push(bev(t as u32, 0));
            events.push(sev(t, MemAccessKind::Write, 1));
        }
        // Coverage alone stays clean…
        let cov = validate_events(&s, &s.valuations[0], &events);
        assert!(cov.is_empty(), "{cov:?}");
        // …but the ordering check fires with its own diagnostic.
        let f = validate_replay(&s, &s.valuations[0], &events, &barriers);
        assert!(!f.is_empty());
        assert!(f.iter().any(|x| x.message.contains("barrier ordering mismatch")), "{f:?}");
        assert!(f.iter().all(|x| x.severity == Severity::Error));
    }

    #[test]
    fn undeclared_barriers_are_reported() {
        let mut s = two_phase();
        s.barriers.clear();
        s.accesses[1].phase = "load".into(); // single phase, no barriers
        let events: Vec<MemEvent> = (0..4).map(|t| sev(t, MemAccessKind::Write, 0)).collect();
        let barriers: Vec<BarrierEvent> = (0..4).map(|t| bev(t, 0)).collect();
        let f = validate_replay(&s, &s.valuations[0], &events, &barriers);
        assert!(f.iter().any(|x| x.message.contains("summary declares none")), "{f:?}");
    }
}
