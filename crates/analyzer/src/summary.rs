//! Per-kernel access summaries: the analyzer's input language.
//!
//! A [`KernelSummary`] describes a kernel the way GPUVerify-style tools
//! describe theirs: the launch shape, a work-distribution [`Domain`], the
//! declared buffers (global, by label; shared, by slot), a set of guarded
//! symbolic [`Access`]es partitioned into barrier-delimited *phases*, and
//! the barriers themselves. Summaries are written by hand next to the
//! kernels they describe (`ompx-hecbench/src/summaries.rs`) and are *not*
//! trusted: replay mode re-runs the kernel on the simulator with the
//! memory-trace hooks attached and checks every observed access against
//! the summary's predicted set.
//!
//! Each summary carries at least two [`Valuation`]s — named assignments of
//! concrete values to every launch parameter. All checks run once per
//! valuation after substituting parameters (and the resulting block/grid
//! dimensions) to constants, so the symbolic core stays affine.

use crate::expr::{Expr, Pred, Var};

/// How the kernel maps executing threads to logical work items.
///
/// All shipped kernels are one-dimensional in their work distribution;
/// the domains mirror the three lowering shapes in the runtime:
#[derive(Debug, Clone)]
pub enum Domain {
    /// SIMT style: `item = bid.x * bdim.x + tid.x`, one item per thread.
    OnePerThread,
    /// SPMD `distribute parallel for` lowering: thread with global rank
    /// `r` executes items `r, r + total, r + 2·total, …` below `n`.
    GridStride(Expr),
    /// Generic-mode lowering: one master thread per team; team `b` covers
    /// items `[b·chunk, min((b+1)·chunk, n))` with
    /// `chunk = ceil(n / teams)`.
    BlockChunked(Expr),
}

/// Launch geometry. Block dimensions are literal (the runtime always
/// launches compile-time block shapes); grid dimensions may depend on
/// parameters.
#[derive(Debug, Clone)]
pub struct LaunchShape {
    pub block: (u32, u32, u32),
    pub grid: [Expr; 3],
}

/// A named free variable with an inclusive symbolic range; models
/// data-dependent indices (e.g. a material id read from memory).
#[derive(Debug, Clone)]
pub struct FreeDecl {
    pub name: String,
    pub lo: Expr,
    pub hi: Expr,
}

/// A global buffer the kernel may touch, identified by its allocation
/// label, with its symbolic element count.
#[derive(Debug, Clone)]
pub struct BufferDecl {
    pub name: String,
    pub len: Expr,
}

/// A shared-memory array, identified by its per-launch slot index.
#[derive(Debug, Clone)]
pub struct SharedDecl {
    pub slot: usize,
    pub len: Expr,
}

/// Which memory an access touches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Space {
    /// Global buffer, by allocation label.
    Global(String),
    /// Shared array, by slot.
    Shared(usize),
}

impl std::fmt::Display for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Space::Global(l) => write!(f, "{l}"),
            Space::Shared(s) => write!(f, "shared[{s}]"),
        }
    }
}

/// Access mode. Atomic updates never conflict with each other (the
/// hardware serializes them), matching the dynamic racecheck's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    Read,
    Write,
    Atomic,
}

impl Mode {
    pub fn label(self) -> &'static str {
        match self {
            Mode::Read => "read",
            Mode::Write => "write",
            Mode::Atomic => "atomic",
        }
    }
}

/// One guarded symbolic access.
#[derive(Debug, Clone)]
pub struct Access {
    pub space: Space,
    pub mode: Mode,
    pub index: Expr,
    pub guard: Pred,
    /// Barrier-delimited phase label. The race check only compares
    /// accesses with *identical* labels: distinct labels assert a barrier
    /// (or launch boundary) orders them, which replay cannot refute — a
    /// documented soundness caveat.
    pub phase: String,
    /// Conservative over-approximation marker. Summary extraction sets
    /// this when a non-affine residual degraded to a whole-buffer interval
    /// access: boundscheck and racecheck treat the access as opaque and
    /// report `SummaryImprecise` warnings instead of proving anything
    /// about it. Hand-written summaries leave it `false`.
    pub imprecise: bool,
}

/// A barrier the kernel executes, with the predicate it executes under.
#[derive(Debug, Clone)]
pub struct Barrier {
    pub guard: Pred,
    pub phase: String,
}

/// The `KernelFlags` the launch site declares, mirrored here so the
/// analyzer can lint drift between declared capabilities and actual use.
#[derive(Debug, Clone, Copy, Default)]
pub struct SummaryFlags {
    pub uses_block_sync: bool,
    pub uses_warp_ops: bool,
}

/// A named assignment of concrete values to launch parameters.
#[derive(Debug, Clone)]
pub struct Valuation {
    pub name: String,
    vals: Vec<(String, i64)>,
}

impl Valuation {
    pub fn new(name: &str, vals: &[(&str, i64)]) -> Valuation {
        Valuation {
            name: name.to_string(),
            vals: vals.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    pub fn get(&self, name: &str) -> Option<i64> {
        self.vals.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// All `(parameter, value)` pairs, in declaration order. Summary
    /// extraction iterates these to symbolize fitted constants back into
    /// parameter expressions.
    pub fn entries(&self) -> &[(String, i64)] {
        &self.vals
    }
}

/// The full static description of one kernel version.
#[derive(Debug, Clone)]
pub struct KernelSummary {
    /// Kernel name as the simulator sees it (trace events filter on this).
    pub kernel: String,
    /// Benchmark app the kernel belongs to.
    pub app: String,
    /// Program version: `ompx`, `omp`, `native-clang`, or `native-vendor`.
    pub version: String,
    pub launch: LaunchShape,
    pub flags: SummaryFlags,
    /// Whether the kernel body actually executes warp collectives.
    pub warp_ops: bool,
    pub domain: Domain,
    pub frees: Vec<FreeDecl>,
    pub buffers: Vec<BufferDecl>,
    pub shared: Vec<SharedDecl>,
    pub accesses: Vec<Access>,
    pub barriers: Vec<Barrier>,
    /// Concrete parameter assignments to analyze under; at least two, so
    /// replay exercises more than one grid shape.
    pub valuations: Vec<Valuation>,
}

/// A summary grounded under one valuation: parameters and dimensions are
/// gone, geometry is concrete, and every expression mentions only thread
/// coordinates, the item, and free variables.
#[derive(Debug, Clone)]
pub struct Ground {
    pub kernel: String,
    pub app: String,
    pub version: String,
    pub valuation: String,
    pub block: (u32, u32, u32),
    pub grid: (u32, u32, u32),
    pub flags: SummaryFlags,
    pub warp_ops: bool,
    pub domain: GroundDomain,
    /// `(name, lo, hi)` inclusive.
    pub frees: Vec<(String, i64, i64)>,
    pub buffers: Vec<(String, i64)>,
    pub shared: Vec<(usize, i64)>,
    pub accesses: Vec<Access>,
    pub barriers: Vec<Barrier>,
}

/// [`Domain`] with concrete sizes; `chunk` is derived from the grounded
/// grid for the generic-mode shape.
#[derive(Debug, Clone, Copy)]
pub enum GroundDomain {
    OnePerThread,
    GridStride { n: i64 },
    BlockChunked { n: i64, chunk: i64 },
}

impl Ground {
    /// Threads per block.
    pub fn block_size(&self) -> i64 {
        i64::from(self.block.0) * i64::from(self.block.1) * i64::from(self.block.2)
    }

    /// Blocks in the grid.
    pub fn grid_size(&self) -> i64 {
        i64::from(self.grid.0) * i64::from(self.grid.1) * i64::from(self.grid.2)
    }

    /// Inclusive range of the `Item` variable (empty kernels get `[0,-1]`).
    pub fn item_range(&self) -> (i64, i64) {
        match self.domain {
            GroundDomain::OnePerThread => (0, self.block_size() * self.grid_size() - 1),
            GroundDomain::GridStride { n } | GroundDomain::BlockChunked { n, .. } => (0, n - 1),
        }
    }

    pub fn free_range(&self, name: &str) -> Option<(i64, i64)> {
        self.frees.iter().find(|(n, _, _)| n == name).map(|(_, lo, hi)| (*lo, *hi))
    }

    pub fn buffer_len(&self, label: &str) -> Option<i64> {
        self.buffers.iter().find(|(n, _)| n == label).map(|(_, l)| *l)
    }

    pub fn shared_len(&self, slot: usize) -> Option<i64> {
        self.shared.iter().find(|(s, _)| *s == slot).map(|(_, l)| *l)
    }
}

impl KernelSummary {
    /// Ground the summary under one valuation. Errors name the first
    /// problem found (missing parameter, non-constant grid, …) and surface
    /// as `summarycheck` findings.
    pub fn ground(&self, val: &Valuation) -> Result<Ground, String> {
        let subst = |v: &Var| -> Option<i64> {
            match v {
                Var::Param(p) => val.get(p),
                Var::BDimX => Some(i64::from(self.launch.block.0)),
                Var::BDimY => Some(i64::from(self.launch.block.1)),
                Var::BDimZ => Some(i64::from(self.launch.block.2)),
                _ => None,
            }
        };
        // Grid dims first (they may reference params but nothing else).
        let mut grid = [0u32; 3];
        for (i, g) in self.launch.grid.iter().enumerate() {
            match g.subst(&subst) {
                Expr::Const(k) if (0..=i64::from(u32::MAX)).contains(&k) => grid[i] = k as u32,
                other => {
                    return Err(format!(
                        "grid dim {i} of `{}` does not ground to a constant under valuation \
                         `{}`: {other}",
                        self.kernel, val.name
                    ))
                }
            }
        }
        let subst_full = |v: &Var| -> Option<i64> {
            match v {
                Var::GDimX => Some(i64::from(grid[0])),
                Var::GDimY => Some(i64::from(grid[1])),
                Var::GDimZ => Some(i64::from(grid[2])),
                other => subst(other),
            }
        };
        let ground_expr = |e: &Expr, what: &str| -> Result<i64, String> {
            match e.subst(&subst_full) {
                Expr::Const(k) => Ok(k),
                other => Err(format!(
                    "{what} of `{}` does not ground to a constant under valuation `{}`: \
                     {other} (missing parameter?)",
                    self.kernel, val.name
                )),
            }
        };
        let teams = i64::from(grid[0]) * i64::from(grid[1]) * i64::from(grid[2]);
        let domain = match &self.domain {
            Domain::OnePerThread => GroundDomain::OnePerThread,
            Domain::GridStride(n) => GroundDomain::GridStride { n: ground_expr(n, "domain size")? },
            Domain::BlockChunked(n) => {
                let n = ground_expr(n, "domain size")?;
                if teams <= 0 {
                    return Err(format!(
                        "`{}` grounds to an empty grid under valuation `{}`",
                        self.kernel, val.name
                    ));
                }
                GroundDomain::BlockChunked {
                    n,
                    chunk: n.div_euclid(teams) + i64::from(n % teams != 0),
                }
            }
        };
        let mut frees = Vec::new();
        for f in &self.frees {
            frees.push((
                f.name.clone(),
                ground_expr(&f.lo, "free-variable bound")?,
                ground_expr(&f.hi, "free-variable bound")?,
            ));
        }
        let mut buffers = Vec::new();
        for b in &self.buffers {
            buffers.push((b.name.clone(), ground_expr(&b.len, "buffer length")?));
        }
        let mut shared = Vec::new();
        for s in &self.shared {
            shared.push((s.slot, ground_expr(&s.len, "shared length")?));
        }
        let accesses = self
            .accesses
            .iter()
            .map(|a| Access {
                space: a.space.clone(),
                mode: a.mode,
                index: a.index.subst(&subst_full),
                guard: a.guard.subst(&subst_full),
                phase: a.phase.clone(),
                imprecise: a.imprecise,
            })
            .collect();
        let barriers = self
            .barriers
            .iter()
            .map(|b| Barrier { guard: b.guard.subst(&subst_full), phase: b.phase.clone() })
            .collect();
        Ok(Ground {
            kernel: self.kernel.clone(),
            app: self.app.clone(),
            version: self.version.clone(),
            valuation: val.name.clone(),
            block: self.launch.block,
            grid: (grid[0], grid[1], grid[2]),
            flags: self.flags,
            warp_ops: self.warp_ops,
            domain,
            frees,
            buffers,
            shared,
            accesses,
            barriers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;

    fn toy() -> KernelSummary {
        KernelSummary {
            kernel: "toy".into(),
            app: "toy".into(),
            version: "ompx".into(),
            launch: LaunchShape { block: (64, 1, 1), grid: [ceil_div(param("n"), 64), c(1), c(1)] },
            flags: SummaryFlags::default(),
            warp_ops: false,
            domain: Domain::OnePerThread,
            frees: vec![FreeDecl { name: "j".into(), lo: c(0), hi: param("n") - c(1) }],
            buffers: vec![BufferDecl { name: "buf".into(), len: param("n") }],
            shared: vec![],
            accesses: vec![Access {
                space: Space::Global("buf".into()),
                mode: Mode::Write,
                index: item(),
                guard: lt(item(), param("n")),
                phase: "main".into(),
                imprecise: false,
            }],
            barriers: vec![],
            valuations: vec![Valuation::new("test", &[("n", 100)])],
        }
    }

    #[test]
    fn grounding_substitutes_params_and_dims() {
        let s = toy();
        let g = s.ground(&s.valuations[0]).unwrap();
        assert_eq!(g.grid, (2, 1, 1));
        assert_eq!(g.block_size(), 64);
        assert_eq!(g.item_range(), (0, 127));
        assert_eq!(g.buffer_len("buf"), Some(99 + 1));
        assert_eq!(g.free_range("j"), Some((0, 99)));
        // The access guard is now parameter-free.
        let mut vars = std::collections::BTreeSet::new();
        g.accesses[0].guard.vars(&mut vars);
        assert!(!vars.iter().any(|v| matches!(v, Var::Param(_))));
    }

    #[test]
    fn grounding_reports_missing_parameters() {
        let s = toy();
        let err = s.ground(&Valuation::new("empty", &[])).unwrap_err();
        assert!(err.contains("grid dim"), "{err}");
    }

    #[test]
    fn block_chunked_chunk_is_ceil() {
        let mut s = toy();
        s.launch = LaunchShape { block: (1, 1, 1), grid: [ceil_div(param("n"), 256), c(1), c(1)] };
        s.domain = Domain::BlockChunked(param("n"));
        let g = s.ground(&Valuation::new("t", &[("n", 1000)])).unwrap();
        match g.domain {
            GroundDomain::BlockChunked { n, chunk } => {
                assert_eq!(n, 1000);
                assert_eq!(chunk, 250);
            }
            _ => panic!("wrong domain"),
        }
    }
}
