//! The symbolic expression language access summaries are written in.
//!
//! Expressions are integer-valued terms over a small set of variables:
//! thread/block coordinates, block/grid dimensions, the kernel's logical
//! *item* (the loop index a domain assigns to each executing thread),
//! named launch parameters, and named *free* variables (data-dependent
//! indices abstracted by a declared range). Guards are boolean predicates
//! over the same terms.
//!
//! The analyzer never reasons about fully symbolic launch parameters:
//! before any check runs, every `Param`/`BDim`/`GDim` variable is
//! substituted with a concrete value from a [`crate::summary::Valuation`],
//! leaving only thread coordinates, the item, and free variables symbolic.
//! That keeps every index affine (or an interval-analyzable tree of
//! `min`/`max`/`div`/`mod` over affine parts) without a general nonlinear
//! solver.

use std::collections::BTreeSet;
use std::fmt;

/// A symbolic variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Var {
    /// Thread coordinate within the block.
    TidX,
    TidY,
    TidZ,
    /// Block coordinate within the grid.
    BidX,
    BidY,
    BidZ,
    /// Block dimensions (substituted to constants before analysis).
    BDimX,
    BDimY,
    BDimZ,
    /// Grid dimensions (substituted to constants before analysis).
    GDimX,
    GDimY,
    GDimZ,
    /// The logical work item the executing thread is processing, as
    /// assigned by the kernel's [`crate::summary::Domain`].
    Item,
    /// A named launch parameter (substituted to a constant before
    /// analysis).
    Param(String),
    /// A named free variable with a declared inclusive range
    /// ([`crate::summary::FreeDecl`]); models data-dependent indices.
    Free(String),
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::TidX => write!(f, "tid.x"),
            Var::TidY => write!(f, "tid.y"),
            Var::TidZ => write!(f, "tid.z"),
            Var::BidX => write!(f, "bid.x"),
            Var::BidY => write!(f, "bid.y"),
            Var::BidZ => write!(f, "bid.z"),
            Var::BDimX => write!(f, "bdim.x"),
            Var::BDimY => write!(f, "bdim.y"),
            Var::BDimZ => write!(f, "bdim.z"),
            Var::GDimX => write!(f, "gdim.x"),
            Var::GDimY => write!(f, "gdim.y"),
            Var::GDimZ => write!(f, "gdim.z"),
            Var::Item => write!(f, "item"),
            Var::Param(p) => write!(f, "{p}"),
            Var::Free(n) => write!(f, "${n}"),
        }
    }
}

/// A symbolic integer expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    Const(i64),
    Var(Var),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean-style non-negative division as used by index math
    /// (`div_euclid` semantics; operands in summaries are non-negative).
    Div(Box<Expr>, Box<Expr>),
    /// Remainder paired with [`Expr::Div`] (`rem_euclid` semantics).
    Mod(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
}

// Convenience builders, so summaries read close to the kernel source.
pub fn c(v: i64) -> Expr {
    Expr::Const(v)
}
pub fn v(var: Var) -> Expr {
    Expr::Var(var)
}
pub fn tid_x() -> Expr {
    v(Var::TidX)
}
pub fn bid_x() -> Expr {
    v(Var::BidX)
}
pub fn item() -> Expr {
    v(Var::Item)
}
pub fn param(name: &str) -> Expr {
    v(Var::Param(name.to_string()))
}
pub fn free(name: &str) -> Expr {
    v(Var::Free(name.to_string()))
}
pub fn min_e(a: Expr, b: Expr) -> Expr {
    Expr::Min(Box::new(a), Box::new(b))
}
pub fn max_e(a: Expr, b: Expr) -> Expr {
    Expr::Max(Box::new(a), Box::new(b))
}
pub fn div_e(a: Expr, b: Expr) -> Expr {
    Expr::Div(Box::new(a), Box::new(b))
}
pub fn mod_e(a: Expr, b: Expr) -> Expr {
    Expr::Mod(Box::new(a), Box::new(b))
}
/// `ceil(a / k)` for a positive literal divisor, as grid-size math writes it.
pub fn ceil_div(a: Expr, k: i64) -> Expr {
    div_e(a + c(k - 1), c(k))
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(Expr::Mul(Box::new(c(-1)), Box::new(rhs))))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Expr {
    /// Substitute variables via `f` (returning `None` keeps the variable),
    /// folding constants where both operands become literals.
    pub fn subst(&self, f: &dyn Fn(&Var) -> Option<i64>) -> Expr {
        match self {
            Expr::Const(k) => Expr::Const(*k),
            Expr::Var(var) => match f(var) {
                Some(k) => Expr::Const(k),
                None => Expr::Var(var.clone()),
            },
            Expr::Add(a, b) => fold2(a.subst(f), b.subst(f), Expr::Add, |x, y| x + y),
            Expr::Mul(a, b) => fold2(a.subst(f), b.subst(f), Expr::Mul, |x, y| x * y),
            Expr::Div(a, b) => {
                fold2(
                    a.subst(f),
                    b.subst(f),
                    Expr::Div,
                    |x, y| {
                        if y == 0 {
                            0
                        } else {
                            x.div_euclid(y)
                        }
                    },
                )
            }
            Expr::Mod(a, b) => {
                fold2(
                    a.subst(f),
                    b.subst(f),
                    Expr::Mod,
                    |x, y| {
                        if y == 0 {
                            0
                        } else {
                            x.rem_euclid(y)
                        }
                    },
                )
            }
            Expr::Min(a, b) => fold2(a.subst(f), b.subst(f), Expr::Min, i64::min),
            Expr::Max(a, b) => fold2(a.subst(f), b.subst(f), Expr::Max, i64::max),
        }
    }

    /// Evaluate under a concrete environment. `None` on division by zero.
    pub fn eval(&self, env: &Env<'_>) -> Option<i128> {
        Some(match self {
            Expr::Const(k) => i128::from(*k),
            Expr::Var(var) => env.lookup(var)?,
            Expr::Add(a, b) => a.eval(env)? + b.eval(env)?,
            Expr::Mul(a, b) => a.eval(env)? * b.eval(env)?,
            Expr::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return None;
                }
                a.eval(env)?.div_euclid(d)
            }
            Expr::Mod(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return None;
                }
                a.eval(env)?.rem_euclid(d)
            }
            Expr::Min(a, b) => a.eval(env)?.min(b.eval(env)?),
            Expr::Max(a, b) => a.eval(env)?.max(b.eval(env)?),
        })
    }

    /// Collect every variable mentioned.
    pub fn vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(var) => {
                out.insert(var.clone());
            }
            Expr::Add(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

fn fold2(a: Expr, b: Expr, mk: fn(Box<Expr>, Box<Expr>) -> Expr, op: fn(i64, i64) -> i64) -> Expr {
    if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
        return Expr::Const(op(*x, *y));
    }
    mk(Box::new(a), Box::new(b))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(k) => write!(f, "{k}"),
            Expr::Var(var) => write!(f, "{var}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Mod(a, b) => write!(f, "({a} % {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

/// A boolean predicate over [`Expr`] terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    True,
    Lt(Expr, Expr),
    Le(Expr, Expr),
    Eq(Expr, Expr),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

pub fn lt(a: Expr, b: Expr) -> Pred {
    Pred::Lt(a, b)
}
pub fn le(a: Expr, b: Expr) -> Pred {
    Pred::Le(a, b)
}
pub fn eq(a: Expr, b: Expr) -> Pred {
    Pred::Eq(a, b)
}
pub fn and(a: Pred, b: Pred) -> Pred {
    Pred::And(Box::new(a), Box::new(b))
}

impl Pred {
    /// Substitute variables (see [`Expr::subst`]).
    pub fn subst(&self, f: &dyn Fn(&Var) -> Option<i64>) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::Lt(a, b) => Pred::Lt(a.subst(f), b.subst(f)),
            Pred::Le(a, b) => Pred::Le(a.subst(f), b.subst(f)),
            Pred::Eq(a, b) => Pred::Eq(a.subst(f), b.subst(f)),
            Pred::And(a, b) => and(a.subst(f), b.subst(f)),
            Pred::Or(a, b) => Pred::Or(Box::new(a.subst(f)), Box::new(b.subst(f))),
            Pred::Not(a) => Pred::Not(Box::new(a.subst(f))),
        }
    }

    /// Evaluate under a concrete environment. `None` on division by zero.
    pub fn eval(&self, env: &Env<'_>) -> Option<bool> {
        Some(match self {
            Pred::True => true,
            Pred::Lt(a, b) => a.eval(env)? < b.eval(env)?,
            Pred::Le(a, b) => a.eval(env)? <= b.eval(env)?,
            Pred::Eq(a, b) => a.eval(env)? == b.eval(env)?,
            Pred::And(a, b) => a.eval(env)? && b.eval(env)?,
            Pred::Or(a, b) => a.eval(env)? || b.eval(env)?,
            Pred::Not(a) => !a.eval(env)?,
        })
    }

    /// Collect every variable mentioned.
    pub fn vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Pred::True => {}
            Pred::Lt(a, b) | Pred::Le(a, b) | Pred::Eq(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Pred::Not(a) => a.vars(out),
        }
    }

    /// Flatten nested conjunctions into a conjunct list. `Or`/`Not`
    /// subtrees stay whole (the tightening pass skips them).
    pub fn conjuncts(&self) -> Vec<&Pred> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a Pred, out: &mut Vec<&'a Pred>) {
            match p {
                Pred::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Pred::True => {}
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Lt(a, b) => write!(f, "{a} < {b}"),
            Pred::Le(a, b) => write!(f, "{a} <= {b}"),
            Pred::Eq(a, b) => write!(f, "{a} == {b}"),
            Pred::And(a, b) => write!(f, "({a} && {b})"),
            Pred::Or(a, b) => write!(f, "({a} || {b})"),
            Pred::Not(a) => write!(f, "!({a})"),
        }
    }
}

/// A concrete environment for [`Expr::eval`]: one executing thread plus an
/// assignment of free variables. Dimension variables come from the grounded
/// launch shape; `Param` must already be substituted away (looking one up
/// here is a bug and maps to `None`).
#[derive(Debug, Clone)]
pub struct Env<'a> {
    pub tid: (i64, i64, i64),
    pub bid: (i64, i64, i64),
    pub bdim: (i64, i64, i64),
    pub gdim: (i64, i64, i64),
    pub item: i64,
    /// Free-variable assignment, small enough for linear lookup.
    pub frees: &'a [(String, i64)],
}

impl Env<'_> {
    fn lookup(&self, var: &Var) -> Option<i128> {
        let v = match var {
            Var::TidX => self.tid.0,
            Var::TidY => self.tid.1,
            Var::TidZ => self.tid.2,
            Var::BidX => self.bid.0,
            Var::BidY => self.bid.1,
            Var::BidZ => self.bid.2,
            Var::BDimX => self.bdim.0,
            Var::BDimY => self.bdim.1,
            Var::BDimZ => self.bdim.2,
            Var::GDimX => self.gdim.0,
            Var::GDimY => self.gdim.1,
            Var::GDimZ => self.gdim.2,
            Var::Item => self.item,
            Var::Param(_) => return None,
            Var::Free(name) => self.frees.iter().find(|(n, _)| n == name).map(|(_, v)| *v)?,
        };
        Some(i128::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(frees: &[(String, i64)]) -> Env<'_> {
        Env { tid: (3, 0, 0), bid: (2, 0, 0), bdim: (8, 1, 1), gdim: (4, 1, 1), item: 19, frees }
    }

    #[test]
    fn eval_covers_every_operator() {
        let frees = vec![("k".to_string(), 5)];
        let e = env(&frees);
        assert_eq!((tid_x() + bid_x() * c(8)).eval(&e), Some(19));
        assert_eq!(min_e(item(), c(10)).eval(&e), Some(10));
        assert_eq!(max_e(item(), c(100)).eval(&e), Some(100));
        assert_eq!(div_e(item(), c(4)).eval(&e), Some(4));
        assert_eq!(mod_e(item(), c(4)).eval(&e), Some(3));
        assert_eq!(free("k").eval(&e), Some(5));
        assert_eq!(free("missing").eval(&e), None);
        assert_eq!(div_e(c(1), c(0)).eval(&e), None);
        assert_eq!((c(7) - c(3)).eval(&e), Some(4));
    }

    #[test]
    fn subst_folds_constants() {
        let e = ceil_div(param("n"), 64);
        let g = e.subst(&|v| match v {
            Var::Param(p) if p == "n" => Some(100),
            _ => None,
        });
        assert_eq!(g, Expr::Const(2));
        // Unsubstituted variables survive.
        let h = (tid_x() + param("n")).subst(&|v| match v {
            Var::Param(p) if p == "n" => Some(7),
            _ => None,
        });
        let mut vars = BTreeSet::new();
        h.vars(&mut vars);
        assert!(vars.contains(&Var::TidX));
        assert_eq!(h.eval(&env(&[])), Some(10));
    }

    #[test]
    fn pred_eval_and_conjuncts() {
        let frees = vec![];
        let e = env(&frees);
        let p = and(lt(tid_x(), c(4)), and(le(item(), c(19)), Pred::True));
        assert_eq!(p.eval(&e), Some(true));
        assert_eq!(p.conjuncts().len(), 2);
        assert_eq!(Pred::Not(Box::new(eq(tid_x(), c(3)))).eval(&e), Some(false));
    }
}
