//! Deliberately unsound summaries (and a few deliberately lying ones)
//! proving that every analyzer diagnostic actually fires. CI runs each
//! fixture through the `analyze` binary and requires a non-zero exit for
//! error-severity fixtures (warning fixtures are grepped for their
//! expected message instead).

use crate::check::analyze;
use crate::expr::*;
use crate::replay::{validate_events, validate_replay};
use crate::summary::*;
use ompx_sanitizer::{Finding, Severity};

/// One named fixture and the diagnostic expected to flag it.
pub struct Fixture {
    pub name: &'static str,
    /// The tool whose diagnostic the fixture demonstrates.
    pub tool: &'static str,
    /// The severity the expected diagnostic carries.
    pub severity: Severity,
    /// A substring the expected diagnostic's message must contain
    /// (empty = any message), keeping same-tool fixtures distinct.
    pub expect: &'static str,
    run: fn() -> Vec<Finding>,
}

impl Fixture {
    pub fn run(&self) -> Vec<Finding> {
        (self.run)()
    }
}

/// Every fixture, one per diagnostic family.
pub const ALL: [Fixture; 10] = [
    Fixture {
        name: "race-global",
        tool: "racecheck",
        severity: Severity::Error,
        expect: "",
        run: race_global,
    },
    Fixture {
        name: "race-shared",
        tool: "racecheck",
        severity: Severity::Error,
        expect: "",
        run: race_shared,
    },
    Fixture {
        name: "barrier-divergence",
        tool: "synccheck",
        severity: Severity::Error,
        expect: "",
        run: barrier_divergence,
    },
    Fixture {
        name: "oob-read",
        tool: "boundscheck",
        severity: Severity::Error,
        expect: "",
        run: oob_read,
    },
    Fixture {
        name: "launch-oversized-block",
        tool: "launchcheck",
        severity: Severity::Error,
        expect: "",
        run: oversized_block,
    },
    Fixture {
        name: "omp-multidim-grid",
        tool: "launchcheck",
        severity: Severity::Error,
        expect: "",
        run: omp_multidim_grid,
    },
    Fixture {
        name: "flags-drift",
        tool: "synccheck",
        severity: Severity::Error,
        expect: "",
        run: flags_drift,
    },
    Fixture {
        name: "summary-mismatch",
        tool: "summarycheck",
        severity: Severity::Error,
        expect: "not predicted",
        run: summary_mismatch,
    },
    Fixture {
        name: "barrier-wrong-order",
        tool: "summarycheck",
        severity: Severity::Error,
        expect: "barrier ordering mismatch",
        run: barrier_wrong_order,
    },
    Fixture {
        name: "gather-nonaffine",
        tool: "boundscheck",
        severity: Severity::Warning,
        expect: "SummaryImprecise",
        run: gather_nonaffine,
    },
];

pub fn by_name(name: &str) -> Option<&'static Fixture> {
    ALL.iter().find(|f| f.name == name)
}

/// A well-formed 1-D SIMT skeleton the fixtures then break.
fn skeleton() -> KernelSummary {
    KernelSummary {
        kernel: "fixture".into(),
        app: "fixture".into(),
        version: "ompx".into(),
        launch: LaunchShape { block: (64, 1, 1), grid: [ceil_div(param("n"), 64), c(1), c(1)] },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain: Domain::OnePerThread,
        frees: vec![],
        buffers: vec![BufferDecl { name: "buf".into(), len: param("n") }],
        shared: vec![],
        accesses: vec![],
        barriers: vec![],
        valuations: vec![
            Valuation::new("test", &[("n", 200)]),
            Valuation::new("ragged", &[("n", 70)]),
        ],
    }
}

fn global_write(index: Expr, guard: Pred) -> Access {
    Access {
        space: Space::Global("buf".into()),
        mode: Mode::Write,
        index,
        guard,
        imprecise: false,
        phase: "main".into(),
    }
}

/// Every thread writes element 0 of a global buffer.
fn race_global() -> Vec<Finding> {
    let mut s = skeleton();
    s.accesses = vec![global_write(c(0), Pred::True)];
    analyze(&s, 32)
}

/// Threads collide on a shared cell (`tile[tid % 8]`).
fn race_shared() -> Vec<Finding> {
    let mut s = skeleton();
    s.flags.uses_block_sync = true;
    s.shared = vec![SharedDecl { slot: 0, len: c(8) }];
    s.barriers = vec![Barrier { guard: Pred::True, phase: "load".into() }];
    s.accesses = vec![Access {
        space: Space::Shared(0),
        mode: Mode::Write,
        index: mod_e(tid_x(), c(8)),
        guard: Pred::True,
        imprecise: false,
        phase: "load".into(),
    }];
    analyze(&s, 32)
}

/// A barrier guarded by `tid.x < 1`: only thread 0 arrives.
fn barrier_divergence() -> Vec<Finding> {
    let mut s = skeleton();
    s.flags.uses_block_sync = true;
    s.barriers = vec![Barrier { guard: lt(tid_x(), c(1)), phase: "p".into() }];
    analyze(&s, 32)
}

/// A guarded read that still runs one element past the end.
fn oob_read() -> Vec<Finding> {
    let mut s = skeleton();
    s.accesses = vec![Access {
        space: Space::Global("buf".into()),
        mode: Mode::Read,
        index: item() + c(1),
        guard: lt(item(), param("n")),
        imprecise: false,
        phase: "main".into(),
    }];
    analyze(&s, 32)
}

/// 2048 threads per block exceeds the device limit.
fn oversized_block() -> Vec<Finding> {
    let mut s = skeleton();
    s.launch.block = (2048, 1, 1);
    analyze(&s, 32)
}

/// A multi-dimensional team grid under traditional OpenMP offload (§3.2).
fn omp_multidim_grid() -> Vec<Finding> {
    let mut s = skeleton();
    s.version = "omp".into();
    s.launch.grid = [c(2), c(2), c(1)];
    analyze(&s, 32)
}

/// The kernel synchronizes but the launch never declared
/// `uses_block_sync`: the runtime silently degrades its barriers.
fn flags_drift() -> Vec<Finding> {
    let mut s = skeleton();
    s.flags.uses_block_sync = false;
    s.barriers = vec![Barrier { guard: Pred::True, phase: "p".into() }];
    analyze(&s, 32)
}

/// A summary that *lies*: the real kernel (run on the simulator with the
/// memory trace attached) reads `a`, but the summary only admits the
/// write to `b`. Replay validation catches the omission.
fn summary_mismatch() -> Vec<Finding> {
    use ompx_sim::memtrace::MemTrace;
    use ompx_sim::prelude::*;
    use std::sync::Arc;

    let n = 8usize;
    let dev = Device::new(DeviceProfile::test_small());
    let a = dev.alloc_from(&vec![1.0f32; n]);
    a.set_label("a");
    let b = dev.alloc::<f32>(n);
    b.set_label("b");
    let trace = MemTrace::new();
    dev.attach_mem_trace(Arc::clone(&trace));
    let k = Kernel::new("mismatch", {
        let (a, b) = (a.clone(), b.clone());
        move |tc: &mut ThreadCtx| {
            let i = tc.global_thread_id_x();
            if i < 8 {
                let v = tc.read(&a, i); // not in the summary
                tc.write(&b, i, v);
            }
        }
    });
    dev.launch(&k, LaunchConfig::linear(n, 4)).unwrap();
    dev.detach_mem_trace();

    let s = KernelSummary {
        kernel: "mismatch".into(),
        app: "fixture".into(),
        version: "ompx".into(),
        launch: LaunchShape { block: (4, 1, 1), grid: [ceil_div(param("n"), 4), c(1), c(1)] },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain: Domain::OnePerThread,
        frees: vec![],
        buffers: vec![BufferDecl { name: "b".into(), len: param("n") }],
        shared: vec![],
        accesses: vec![Access {
            space: Space::Global("b".into()),
            mode: Mode::Write,
            index: item(),
            guard: lt(item(), param("n")),
            imprecise: false,
            phase: "main".into(),
        }],
        barriers: vec![],
        valuations: vec![Valuation::new("test", &[("n", n as i64)])],
    };
    validate_events(&s, &s.valuations[0], &trace.events())
}

/// A summary with *correct access coverage* but the wrong barrier
/// ordering: the real kernel writes the tile before the barrier and reads
/// it after, while the summary claims the reverse. Set-coverage replay
/// cannot see the lie; the barrier-ordering pass must.
fn barrier_wrong_order() -> Vec<Finding> {
    use ompx_sim::memtrace::MemTrace;
    use ompx_sim::prelude::*;
    use std::sync::Arc;

    let dev = Device::new(DeviceProfile::test_small());
    let trace = MemTrace::new();
    dev.attach_mem_trace(Arc::clone(&trace));
    let mut cfg = LaunchConfig::new(1u32, 4u32);
    let slot = cfg.shared_array::<u32>(4);
    let k = Kernel::with_flags(
        "wrong-order",
        ompx_sim::exec::KernelFlags { uses_block_sync: true, uses_warp_ops: false },
        move |tc: &mut ThreadCtx| {
            let tile = tc.shared::<u32>(slot);
            let t = tc.thread_rank();
            tc.swrite(&tile, t, t as u32);
            tc.sync_threads();
            let _ = tc.sread(&tile, t);
        },
    );
    dev.launch(&k, cfg).unwrap();
    dev.detach_mem_trace();

    let s = KernelSummary {
        kernel: "wrong-order".into(),
        app: "fixture".into(),
        version: "ompx".into(),
        launch: LaunchShape { block: (4, 1, 1), grid: [c(1), c(1), c(1)] },
        flags: SummaryFlags { uses_block_sync: true, uses_warp_ops: false },
        warp_ops: false,
        domain: Domain::OnePerThread,
        frees: vec![],
        buffers: vec![],
        shared: vec![SharedDecl { slot: 0, len: c(4) }],
        // Coverage-identical to the kernel, but phases are swapped: the
        // summary claims the read happens before the barrier.
        accesses: vec![
            Access {
                space: Space::Shared(0),
                mode: Mode::Read,
                index: tid_x(),
                guard: Pred::True,
                phase: "before".into(),
                imprecise: false,
            },
            Access {
                space: Space::Shared(0),
                mode: Mode::Write,
                index: tid_x(),
                guard: Pred::True,
                phase: "after".into(),
                imprecise: false,
            },
        ],
        barriers: vec![Barrier { guard: Pred::True, phase: "before".into() }],
        valuations: vec![Valuation::new("test", &[])],
    };
    validate_replay(&s, &s.valuations[0], &trace.events(), &trace.barrier_events())
}

/// A data-dependent gather (`tbl[idx[i]]`) traced on the simulator and run
/// through summary *extraction*: the non-affine read has no fit, so the
/// draft degrades it to a conservative whole-buffer access that `analyze`
/// surfaces as a `SummaryImprecise` warning — never a bogus proof.
fn gather_nonaffine() -> Vec<Finding> {
    use crate::extract::{extract, ExtractSpec, Trace};
    use ompx_sim::memtrace::MemTrace;
    use ompx_sim::prelude::*;
    use std::sync::Arc;

    let run = |n: usize| -> Trace {
        let dev = Device::new(DeviceProfile::test_small());
        let idx_host: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % n) as u32).collect();
        let idx = dev.alloc_from(&idx_host);
        idx.set_label("idx");
        let tbl = dev.alloc_from(&vec![1.0f32; n]);
        tbl.set_label("tbl");
        let out = dev.alloc::<f32>(n);
        out.set_label("out");
        let trace = MemTrace::new();
        dev.attach_mem_trace(Arc::clone(&trace));
        let k = Kernel::new("gather", {
            let (idx, tbl, out) = (idx.clone(), tbl.clone(), out.clone());
            move |tc: &mut ThreadCtx| {
                let i = tc.global_thread_id_x();
                if i < n {
                    let j = tc.read(&idx, i) as usize;
                    let v = tc.read(&tbl, j);
                    tc.write(&out, i, v);
                }
            }
        });
        dev.launch(&k, LaunchConfig::linear(n, 4)).unwrap();
        dev.detach_mem_trace();
        Trace { events: trace.events(), barriers: trace.barrier_events() }
    };

    let spec = ExtractSpec {
        kernel: "gather".into(),
        app: "fixture".into(),
        version: "ompx".into(),
        launch: LaunchShape { block: (4, 1, 1), grid: [ceil_div(param("n"), 4), c(1), c(1)] },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain: Domain::OnePerThread,
        buffers: vec![
            BufferDecl { name: "idx".into(), len: param("n") },
            BufferDecl { name: "tbl".into(), len: param("n") },
            BufferDecl { name: "out".into(), len: param("n") },
        ],
        shared: vec![],
        fit: vec![Valuation::new("fit-a", &[("n", 12)]), Valuation::new("fit-b", &[("n", 20)])],
        validate: vec![Valuation::new("big", &[("n", 33)])],
    };
    let ext = extract(&spec, &[run(12), run(20)]).expect("gather extraction");
    assert!(
        ext.summary.accesses.iter().any(|a| a.imprecise),
        "gather fixture must degrade to an opaque access"
    );
    analyze(&ext.summary, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_fires_its_diagnostic() {
        for fx in &ALL {
            let findings = fx.run();
            assert!(
                findings.iter().any(|f| f.tool == fx.tool
                    && f.severity == fx.severity
                    && f.message.contains(fx.expect)),
                "fixture `{}` expected a {} {:?} containing {:?}, got {findings:?}",
                fx.name,
                fx.tool,
                fx.severity,
                fx.expect
            );
        }
    }

    #[test]
    fn fixture_names_resolve() {
        for fx in &ALL {
            assert!(by_name(fx.name).is_some());
        }
        assert!(by_name("no-such-fixture").is_none());
    }

    #[test]
    fn the_skeleton_itself_is_clean() {
        let mut s = skeleton();
        s.accesses = vec![global_write(crate::expr::item(), lt(crate::expr::item(), param("n")))];
        let f = analyze(&s, 32);
        assert!(
            !f.iter().any(|f| f.severity == Severity::Error),
            "unbroken skeleton should be clean: {f:?}"
        );
    }
}
