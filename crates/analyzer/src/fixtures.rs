//! Deliberately unsound summaries (and one deliberately lying summary)
//! proving that every analyzer diagnostic actually fires. CI runs each
//! fixture through the `analyze` binary and requires a non-zero exit.

use crate::check::analyze;
use crate::expr::*;
use crate::replay::validate_events;
use crate::summary::*;
use ompx_sanitizer::Finding;

/// One named fixture and the tool expected to flag it.
pub struct Fixture {
    pub name: &'static str,
    /// The tool whose diagnostic the fixture demonstrates.
    pub tool: &'static str,
    run: fn() -> Vec<Finding>,
}

impl Fixture {
    pub fn run(&self) -> Vec<Finding> {
        (self.run)()
    }
}

/// Every fixture, one per diagnostic family.
pub const ALL: [Fixture; 8] = [
    Fixture { name: "race-global", tool: "racecheck", run: race_global },
    Fixture { name: "race-shared", tool: "racecheck", run: race_shared },
    Fixture { name: "barrier-divergence", tool: "synccheck", run: barrier_divergence },
    Fixture { name: "oob-read", tool: "boundscheck", run: oob_read },
    Fixture { name: "launch-oversized-block", tool: "launchcheck", run: oversized_block },
    Fixture { name: "omp-multidim-grid", tool: "launchcheck", run: omp_multidim_grid },
    Fixture { name: "flags-drift", tool: "synccheck", run: flags_drift },
    Fixture { name: "summary-mismatch", tool: "summarycheck", run: summary_mismatch },
];

pub fn by_name(name: &str) -> Option<&'static Fixture> {
    ALL.iter().find(|f| f.name == name)
}

/// A well-formed 1-D SIMT skeleton the fixtures then break.
fn skeleton() -> KernelSummary {
    KernelSummary {
        kernel: "fixture".into(),
        app: "fixture".into(),
        version: "ompx".into(),
        launch: LaunchShape { block: (64, 1, 1), grid: [ceil_div(param("n"), 64), c(1), c(1)] },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain: Domain::OnePerThread,
        frees: vec![],
        buffers: vec![BufferDecl { name: "buf".into(), len: param("n") }],
        shared: vec![],
        accesses: vec![],
        barriers: vec![],
        valuations: vec![
            Valuation::new("test", &[("n", 200)]),
            Valuation::new("ragged", &[("n", 70)]),
        ],
    }
}

fn global_write(index: Expr, guard: Pred) -> Access {
    Access {
        space: Space::Global("buf".into()),
        mode: Mode::Write,
        index,
        guard,
        phase: "main".into(),
    }
}

/// Every thread writes element 0 of a global buffer.
fn race_global() -> Vec<Finding> {
    let mut s = skeleton();
    s.accesses = vec![global_write(c(0), Pred::True)];
    analyze(&s, 32)
}

/// Threads collide on a shared cell (`tile[tid % 8]`).
fn race_shared() -> Vec<Finding> {
    let mut s = skeleton();
    s.flags.uses_block_sync = true;
    s.shared = vec![SharedDecl { slot: 0, len: c(8) }];
    s.barriers = vec![Barrier { guard: Pred::True, phase: "load".into() }];
    s.accesses = vec![Access {
        space: Space::Shared(0),
        mode: Mode::Write,
        index: mod_e(tid_x(), c(8)),
        guard: Pred::True,
        phase: "load".into(),
    }];
    analyze(&s, 32)
}

/// A barrier guarded by `tid.x < 1`: only thread 0 arrives.
fn barrier_divergence() -> Vec<Finding> {
    let mut s = skeleton();
    s.flags.uses_block_sync = true;
    s.barriers = vec![Barrier { guard: lt(tid_x(), c(1)), phase: "p".into() }];
    analyze(&s, 32)
}

/// A guarded read that still runs one element past the end.
fn oob_read() -> Vec<Finding> {
    let mut s = skeleton();
    s.accesses = vec![Access {
        space: Space::Global("buf".into()),
        mode: Mode::Read,
        index: item() + c(1),
        guard: lt(item(), param("n")),
        phase: "main".into(),
    }];
    analyze(&s, 32)
}

/// 2048 threads per block exceeds the device limit.
fn oversized_block() -> Vec<Finding> {
    let mut s = skeleton();
    s.launch.block = (2048, 1, 1);
    analyze(&s, 32)
}

/// A multi-dimensional team grid under traditional OpenMP offload (§3.2).
fn omp_multidim_grid() -> Vec<Finding> {
    let mut s = skeleton();
    s.version = "omp".into();
    s.launch.grid = [c(2), c(2), c(1)];
    analyze(&s, 32)
}

/// The kernel synchronizes but the launch never declared
/// `uses_block_sync`: the runtime silently degrades its barriers.
fn flags_drift() -> Vec<Finding> {
    let mut s = skeleton();
    s.flags.uses_block_sync = false;
    s.barriers = vec![Barrier { guard: Pred::True, phase: "p".into() }];
    analyze(&s, 32)
}

/// A summary that *lies*: the real kernel (run on the simulator with the
/// memory trace attached) reads `a`, but the summary only admits the
/// write to `b`. Replay validation catches the omission.
fn summary_mismatch() -> Vec<Finding> {
    use ompx_sim::memtrace::MemTrace;
    use ompx_sim::prelude::*;
    use std::sync::Arc;

    let n = 8usize;
    let dev = Device::new(DeviceProfile::test_small());
    let a = dev.alloc_from(&vec![1.0f32; n]);
    a.set_label("a");
    let b = dev.alloc::<f32>(n);
    b.set_label("b");
    let trace = MemTrace::new();
    dev.attach_mem_trace(Arc::clone(&trace));
    let k = Kernel::new("mismatch", {
        let (a, b) = (a.clone(), b.clone());
        move |tc: &mut ThreadCtx| {
            let i = tc.global_thread_id_x();
            if i < 8 {
                let v = tc.read(&a, i); // not in the summary
                tc.write(&b, i, v);
            }
        }
    });
    dev.launch(&k, LaunchConfig::linear(n, 4)).unwrap();
    dev.detach_mem_trace();

    let s = KernelSummary {
        kernel: "mismatch".into(),
        app: "fixture".into(),
        version: "ompx".into(),
        launch: LaunchShape { block: (4, 1, 1), grid: [ceil_div(param("n"), 4), c(1), c(1)] },
        flags: SummaryFlags::default(),
        warp_ops: false,
        domain: Domain::OnePerThread,
        frees: vec![],
        buffers: vec![BufferDecl { name: "b".into(), len: param("n") }],
        shared: vec![],
        accesses: vec![Access {
            space: Space::Global("b".into()),
            mode: Mode::Write,
            index: item(),
            guard: lt(item(), param("n")),
            phase: "main".into(),
        }],
        barriers: vec![],
        valuations: vec![Valuation::new("test", &[("n", n as i64)])],
    };
    validate_events(&s, &s.valuations[0], &trace.events())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sanitizer::Severity;

    #[test]
    fn every_fixture_fires_its_diagnostic() {
        for fx in &ALL {
            let findings = fx.run();
            assert!(
                findings.iter().any(|f| f.tool == fx.tool && f.severity == Severity::Error),
                "fixture `{}` expected a {} error, got {findings:?}",
                fx.name,
                fx.tool
            );
        }
    }

    #[test]
    fn fixture_names_resolve() {
        for fx in &ALL {
            assert!(by_name(fx.name).is_some());
        }
        assert!(by_name("no-such-fixture").is_none());
    }

    #[test]
    fn the_skeleton_itself_is_clean() {
        let mut s = skeleton();
        s.accesses = vec![global_write(crate::expr::item(), lt(crate::expr::item(), param("n")))];
        let f = analyze(&s, 32);
        assert!(
            !f.iter().any(|f| f.severity == Severity::Error),
            "unbroken skeleton should be clean: {f:?}"
        );
    }
}
