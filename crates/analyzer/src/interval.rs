//! Interval arithmetic over the symbolic expression language.
//!
//! Intervals are inclusive `[lo, hi]` ranges in `i128` (indices are `i64`,
//! so products of two in-range values cannot overflow). An interval with
//! `lo > hi` is empty and denotes an unreachable access; emptiness
//! propagates through every operator.

use crate::expr::{Expr, Var};

/// An inclusive integer interval; `lo > hi` means empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: i128,
    pub hi: i128,
}

impl Interval {
    pub fn new(lo: i128, hi: i128) -> Interval {
        Interval { lo, hi }
    }

    pub fn point(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    pub const EMPTY: Interval = Interval { lo: 1, hi: 0 };

    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    pub fn contains_zero(&self) -> bool {
        self.lo <= 0 && 0 <= self.hi
    }

    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.max(other.lo), hi: self.hi.min(other.hi) }
    }

    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval { lo: self.lo + other.lo, hi: self.hi + other.hi }
    }

    pub fn neg(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval { lo: -self.hi, hi: -self.lo }
    }

    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let ps = [self.lo * other.lo, self.lo * other.hi, self.hi * other.lo, self.hi * other.hi];
        Interval { lo: *ps.iter().min().unwrap(), hi: *ps.iter().max().unwrap() }
    }

    /// `div_euclid` image. For a fixed denominator the quotient is monotone
    /// in the numerator, so numerator corners suffice; over a denominator
    /// range the extremes occur at the endpoints or at `±1`.
    pub fn div(&self, den: &Interval) -> Interval {
        if self.is_empty() || den.is_empty() {
            return Interval::EMPTY;
        }
        let mut dens = vec![den.lo, den.hi];
        for unit in [-1i128, 1] {
            if den.lo <= unit && unit <= den.hi {
                dens.push(unit);
            }
        }
        dens.retain(|d| *d != 0);
        if dens.is_empty() {
            // Division by a provably-zero denominator: unreachable in
            // well-formed summaries; treat as empty (the bounds check on
            // the denominator expression reports it separately).
            return Interval::EMPTY;
        }
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for d in dens {
            for n in [self.lo, self.hi] {
                let q = n.div_euclid(d);
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval { lo, hi }
    }

    /// `rem_euclid` image: always within `[0, max|d| - 1]`, refined to the
    /// exact range when the numerator interval fits one residue window of a
    /// constant positive modulus.
    pub fn modulo(&self, den: &Interval) -> Interval {
        if self.is_empty() || den.is_empty() {
            return Interval::EMPTY;
        }
        let m = den.lo.abs().max(den.hi.abs());
        if m == 0 {
            return Interval::EMPTY;
        }
        if den.lo == den.hi && den.lo > 0 {
            let k = den.lo;
            if self.hi - self.lo < k {
                let (rl, rh) = (self.lo.rem_euclid(k), self.hi.rem_euclid(k));
                if rl <= rh {
                    return Interval { lo: rl, hi: rh };
                }
            }
        }
        Interval { lo: 0, hi: m - 1 }
    }

    pub fn min(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval { lo: self.lo.min(other.lo), hi: self.hi.min(other.hi) }
    }

    pub fn max(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval { lo: self.lo.max(other.lo), hi: self.hi.max(other.hi) }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "[]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Interval of an expression under a per-variable bound lookup. The lookup
/// closure owns the tag policy (which side of a two-thread pair a variable
/// belongs to); unknown variables should map to a conservative wide range
/// or `EMPTY` per the caller's policy.
pub fn expr_interval(e: &Expr, lookup: &dyn Fn(&Var) -> Interval) -> Interval {
    match e {
        Expr::Const(k) => Interval::point(i128::from(*k)),
        Expr::Var(var) => lookup(var),
        Expr::Add(a, b) => expr_interval(a, lookup).add(&expr_interval(b, lookup)),
        Expr::Mul(a, b) => expr_interval(a, lookup).mul(&expr_interval(b, lookup)),
        Expr::Div(a, b) => expr_interval(a, lookup).div(&expr_interval(b, lookup)),
        Expr::Mod(a, b) => expr_interval(a, lookup).modulo(&expr_interval(b, lookup)),
        Expr::Min(a, b) => expr_interval(a, lookup).min(&expr_interval(b, lookup)),
        Expr::Max(a, b) => expr_interval(a, lookup).max(&expr_interval(b, lookup)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;

    fn wide(_: &Var) -> Interval {
        Interval::new(-1000, 1000)
    }

    #[test]
    fn operator_images() {
        let a = Interval::new(2, 5);
        let b = Interval::new(-3, 4);
        assert_eq!(a.add(&b), Interval::new(-1, 9));
        assert_eq!(a.sub(&b), Interval::new(-2, 8));
        assert_eq!(a.mul(&b), Interval::new(-15, 20));
        assert_eq!(Interval::new(0, 17).div(&Interval::point(4)), Interval::new(0, 4));
        assert_eq!(Interval::new(-5, 5).div(&Interval::point(2)), Interval::new(-3, 2));
        assert_eq!(Interval::new(0, 9).modulo(&Interval::point(4)), Interval::new(0, 3));
        // One residue window refines exactly.
        assert_eq!(Interval::new(5, 7).modulo(&Interval::point(10)), Interval::new(5, 7));
        assert_eq!(a.min(&b), Interval::new(-3, 4));
        assert_eq!(a.max(&b), Interval::new(2, 5));
    }

    #[test]
    fn emptiness_propagates() {
        assert!(Interval::EMPTY.add(&Interval::point(1)).is_empty());
        assert!(Interval::point(1).mul(&Interval::EMPTY).is_empty());
        assert!(Interval::new(3, 2).is_empty());
        assert!(Interval::new(1, 4).div(&Interval::point(0)).is_empty());
    }

    #[test]
    fn expr_interval_walks_the_tree() {
        // min(tid + 3, 10) with tid in [0, 255] via a custom lookup.
        let lookup = |v: &Var| match v {
            Var::TidX => Interval::new(0, 255),
            _ => wide(v),
        };
        let e = min_e(tid_x() + c(3), c(10));
        assert_eq!(expr_interval(&e, &lookup), Interval::new(3, 10));
    }
}
