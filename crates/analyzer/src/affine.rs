//! Affine normal form for the race engine's two-thread reduction.
//!
//! A race query compares one index expression per thread; symbols carry a
//! *tag* (1 or 2) naming the thread they belong to, while symbols shared by
//! both threads (e.g. the block id for a same-block shared-memory pair)
//! stay tag 0. The difference of two tagged affine forms is again affine,
//! and the disjointness rules in `check` reason about its coefficients.

use crate::expr::{Expr, Var};
use crate::interval::Interval;
use std::collections::BTreeMap;

/// A tagged symbol: `tag` 0 = shared between both threads of a pair,
/// 1/2 = private to that thread.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Sym {
    pub var: Var,
    pub tag: u8,
}

/// `k + Σ coeff · sym`, coefficients in `i128`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Aff {
    pub k: i128,
    pub terms: BTreeMap<Sym, i128>,
}

impl Aff {
    pub fn constant(k: i128) -> Aff {
        Aff { k, terms: BTreeMap::new() }
    }

    pub fn sym(s: Sym) -> Aff {
        let mut terms = BTreeMap::new();
        terms.insert(s, 1);
        Aff { k: 0, terms }
    }

    pub fn add(&self, other: &Aff) -> Aff {
        let mut out = self.clone();
        out.k += other.k;
        for (s, c) in &other.terms {
            *out.terms.entry(s.clone()).or_insert(0) += c;
        }
        out.prune();
        out
    }

    pub fn scale(&self, f: i128) -> Aff {
        let mut out = Aff { k: self.k * f, terms: BTreeMap::new() };
        for (s, c) in &self.terms {
            out.terms.insert(s.clone(), c * f);
        }
        out.prune();
        out
    }

    pub fn sub(&self, other: &Aff) -> Aff {
        self.add(&other.scale(-1))
    }

    pub fn coeff(&self, s: &Sym) -> i128 {
        self.terms.get(s).copied().unwrap_or(0)
    }

    pub fn remove(&mut self, s: &Sym) {
        self.terms.remove(s);
    }

    fn prune(&mut self) {
        self.terms.retain(|_, c| *c != 0);
    }

    /// Interval of the form under per-symbol bounds.
    pub fn interval(&self, lookup: &dyn Fn(&Sym) -> Interval) -> Interval {
        let mut iv = Interval::point(self.k);
        for (s, c) in &self.terms {
            iv = iv.add(&lookup(s).mul(&Interval::point(*c)));
            if iv.is_empty() {
                return Interval::EMPTY;
            }
        }
        iv
    }
}

/// Lower an expression to affine normal form. `sym_of` applies the tag
/// policy. Returns `None` for non-affine trees (symbolic `Div`/`Mod`/
/// `Min`/`Max`, or a product of two symbolic terms) — callers fall back to
/// pure interval reasoning.
pub fn to_affine(e: &Expr, sym_of: &dyn Fn(&Var) -> Sym) -> Option<Aff> {
    match e {
        Expr::Const(k) => Some(Aff::constant(i128::from(*k))),
        Expr::Var(v) => Some(Aff::sym(sym_of(v))),
        Expr::Add(a, b) => Some(to_affine(a, sym_of)?.add(&to_affine(b, sym_of)?)),
        Expr::Mul(a, b) => {
            let fa = to_affine(a, sym_of)?;
            let fb = to_affine(b, sym_of)?;
            if fa.terms.is_empty() {
                Some(fb.scale(fa.k))
            } else if fb.terms.is_empty() {
                Some(fa.scale(fb.k))
            } else {
                None
            }
        }
        Expr::Div(_, _) | Expr::Mod(_, _) | Expr::Min(_, _) | Expr::Max(_, _) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;

    fn tag1(v: &Var) -> Sym {
        Sym { var: v.clone(), tag: 1 }
    }

    #[test]
    fn lowering_and_difference() {
        // idx = item * 18 + m  (su3's write pattern)
        let idx = item() * c(18) + free("m");
        let a1 = to_affine(&idx, &tag1).unwrap();
        let a2 = to_affine(&idx, &|v| Sym { var: v.clone(), tag: 2 }).unwrap();
        let d = a1.sub(&a2);
        assert_eq!(d.coeff(&Sym { var: Var::Item, tag: 1 }), 18);
        assert_eq!(d.coeff(&Sym { var: Var::Item, tag: 2 }), -18);
        assert_eq!(d.k, 0);

        // Residual after removing the driver is just the free-var terms.
        let mut r = d.clone();
        r.remove(&Sym { var: Var::Item, tag: 1 });
        r.remove(&Sym { var: Var::Item, tag: 2 });
        let iv = r.interval(&|s| match &s.var {
            Var::Free(n) if n == "m" => Interval::new(0, 17),
            _ => Interval::point(0),
        });
        assert_eq!(iv, Interval::new(-17, 17));
    }

    #[test]
    fn non_affine_returns_none() {
        assert!(to_affine(&min_e(item(), c(4)), &tag1).is_none());
        assert!(to_affine(&(item() * tid_x()), &tag1).is_none());
        assert!(to_affine(&div_e(item(), c(2)), &tag1).is_none());
        // Constant * symbol stays affine even nested.
        assert!(to_affine(&(c(3) * (item() + c(1))), &tag1).is_some());
    }
}
