//! Summary auto-extraction: fit affine access summaries from memory traces.
//!
//! The extractor runs a kernel under the simulator's memtrace hooks on a
//! few small *fit* grids, then infers a draft [`KernelSummary`] from the
//! observed events alone: per (buffer, mode, barrier-class) group it fits
//! affine index expressions (including strided progressions and clamped
//! boundary forms), infers guards from which threads did and did not touch
//! the buffer, and reconstructs barrier-delimited phases from the observed
//! barrier counters. Drafts are *never* trusted: the caller replay-validates
//! them on larger, unseen grids ([`crate::replay::validate_replay`]) before
//! any check consumes them.
//!
//! Residuals the fitter cannot explain degrade *soundly*: they become a
//! conservative whole-buffer interval access marked
//! [`Access::imprecise`], which boundscheck and racecheck treat as opaque
//! and surface as `SummaryImprecise` findings. Observed behaviour is thus
//! always covered — the draft over-approximates, it never silently drops
//! events.
//!
//! Fitting is deterministic: groups are visited in a canonical order and
//! every internal map is ordered, so the same traces always produce the
//! same summary (tested below).

use crate::check::analyze;
use crate::expr::{
    and, bid_x, c, free, item, lt, max_e, min_e, param, tid_x, Env, Expr, Pred, Var,
};
use crate::replay::{items_for, predicted_set, validate_replay, EvKey};
use crate::summary::{
    Access, Barrier, BufferDecl, Domain, FreeDecl, GroundDomain, KernelSummary, LaunchShape, Mode,
    SharedDecl, Space, SummaryFlags, Valuation,
};
use ompx_sanitizer::Severity;
use ompx_sim::memtrace::{BarrierEvent, MemAccessKind, MemEvent, MemSpace};
use std::collections::{BTreeMap, BTreeSet};

/// What to extract: the launch-visible facts the harness already knows
/// (geometry, declared buffers, domain shape) — everything the trace alone
/// cannot name. Accesses, guards, phases, and barriers are *inferred*.
pub struct ExtractSpec {
    pub kernel: String,
    pub app: String,
    pub version: String,
    pub launch: LaunchShape,
    pub flags: SummaryFlags,
    pub warp_ops: bool,
    pub domain: Domain,
    pub buffers: Vec<BufferDecl>,
    pub shared: Vec<SharedDecl>,
    /// Small grids to fit on — one [`Trace`] each, in order. Parameters
    /// should take pairwise-distinct values across fit valuations so fitted
    /// constants symbolize unambiguously.
    pub fit: Vec<Valuation>,
    /// Larger, unseen grids the caller replay-validates the draft on.
    pub validate: Vec<Valuation>,
}

/// One fit run's raw trace.
pub struct Trace {
    pub events: Vec<MemEvent>,
    pub barriers: Vec<BarrierEvent>,
}

/// A fitted draft summary plus what degraded along the way.
pub struct Extraction {
    pub summary: KernelSummary,
    /// Human-readable notes, one per group that fell back to an opaque
    /// whole-buffer access.
    pub imprecise: Vec<String>,
    /// Number of barrier-delimited phases inferred.
    pub phases: usize,
}

const MAX_THREADS: i64 = 200_000;
const PREDICT_CAP: u64 = 4_000_000;
const MAX_ROUNDS: usize = 8;

type Tau = ((u32, u32, u32), (u32, u32, u32));
type TauSet = BTreeMap<Tau, BTreeSet<i64>>;

struct TInfo {
    tid: (u32, u32, u32),
    bid: (u32, u32, u32),
    items: Vec<i64>,
}

struct Ctx {
    val: Valuation,
    bdim: (i64, i64, i64),
    gdim: (i64, i64, i64),
    domain: GroundDomain,
    threads: BTreeMap<Tau, TInfo>,
}

struct Fit<'a> {
    spec: &'a ExtractSpec,
    ctxs: Vec<Ctx>,
    /// Sorted union of parameter names across fit valuations.
    params: Vec<String>,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum GSpace {
    Global(String),
    Shared(usize),
}

impl GSpace {
    fn to_space(&self) -> Space {
        match self {
            GSpace::Global(l) => Space::Global(l.clone()),
            GSpace::Shared(s) => Space::Shared(*s),
        }
    }
}

impl std::fmt::Display for GSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GSpace::Global(l) => write!(f, "{l}"),
            GSpace::Shared(s) => write!(f, "shared[{s}]"),
        }
    }
}

fn mode_of(k: MemAccessKind) -> Mode {
    match k {
        MemAccessKind::Read => Mode::Read,
        MemAccessKind::Write => Mode::Write,
        MemAccessKind::Atomic => Mode::Atomic,
    }
}

fn mode_rank(m: Mode) -> u8 {
    match m {
        Mode::Read => 0,
        Mode::Write => 1,
        Mode::Atomic => 2,
    }
}

fn mode_from_rank(r: u8) -> Mode {
    match r {
        0 => Mode::Read,
        1 => Mode::Write,
        _ => Mode::Atomic,
    }
}

struct Namer {
    n: usize,
}

impl Namer {
    fn fresh(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}{}", self.n);
        self.n += 1;
        name
    }
}

/// One candidate explanation for part of a group: every index expression
/// is emitted as its own access under the shared guard and frees.
struct Hyp {
    indices: Vec<Expr>,
    base_guard: Option<Pred>,
    frees: Vec<FreeDecl>,
    /// Exact hypotheses must reproduce the remaining set *exactly* (they
    /// run before any peeling); inexact ones only need to stay inside the
    /// originally observed set.
    exact: bool,
}

struct AccessDraft {
    indices: Vec<Expr>,
    guard: Pred,
    frees: Vec<FreeDecl>,
    imprecise: bool,
}

// ---------------------------------------------------------------------------
// Small expression helpers (keep emitted summaries readable).

fn add_simpl(a: Expr, b: Expr) -> Expr {
    if a == c(0) {
        return b;
    }
    if b == c(0) {
        return a;
    }
    a + b
}

fn mul_simpl(k: i64, e: Expr) -> Expr {
    match k {
        0 => c(0),
        1 => e,
        _ => c(k) * e,
    }
}

fn sub_one(e: Expr) -> Expr {
    match e {
        Expr::Const(k) => c(k - 1),
        other => other - c(1),
    }
}

// ---------------------------------------------------------------------------
// Context construction.

fn build_ctx(spec: &ExtractSpec, val: &Valuation) -> Result<Ctx, String> {
    let skeleton = KernelSummary {
        kernel: spec.kernel.clone(),
        app: spec.app.clone(),
        version: spec.version.clone(),
        launch: spec.launch.clone(),
        flags: spec.flags,
        warp_ops: spec.warp_ops,
        domain: spec.domain.clone(),
        frees: vec![],
        buffers: spec.buffers.clone(),
        shared: spec.shared.clone(),
        accesses: vec![],
        barriers: vec![],
        valuations: vec![val.clone()],
    };
    let g = skeleton.ground(val)?;
    if g.block_size() * g.grid_size() > MAX_THREADS {
        return Err(format!(
            "fit grid `{}` has {} threads (cap {MAX_THREADS}); use a smaller fit valuation",
            val.name,
            g.block_size() * g.grid_size()
        ));
    }
    let bdim = (i64::from(g.block.0), i64::from(g.block.1), i64::from(g.block.2));
    let gdim = (i64::from(g.grid.0), i64::from(g.grid.1), i64::from(g.grid.2));
    let mut threads = BTreeMap::new();
    for bz in 0..g.grid.2 {
        for by in 0..g.grid.1 {
            for bx in 0..g.grid.0 {
                for tz in 0..g.block.2 {
                    for ty in 0..g.block.1 {
                        for tx in 0..g.block.0 {
                            let block_rank =
                                (i64::from(bz) * gdim.1 + i64::from(by)) * gdim.0 + i64::from(bx);
                            let thread_rank =
                                (i64::from(tz) * bdim.1 + i64::from(ty)) * bdim.0 + i64::from(tx);
                            let rank = block_rank * g.block_size() + thread_rank;
                            let items = items_for(&g, rank, thread_rank == 0);
                            threads.insert(
                                ((bx, by, bz), (tx, ty, tz)),
                                TInfo { tid: (tx, ty, tz), bid: (bx, by, bz), items },
                            );
                        }
                    }
                }
            }
        }
    }
    Ok(Ctx { val: val.clone(), bdim, gdim, domain: g.domain, threads })
}

fn collect_groups(
    spec: &ExtractSpec,
    traces: &[Trace],
    l: u32,
) -> BTreeMap<(GSpace, u8, u32), Vec<TauSet>> {
    let mut groups: BTreeMap<(GSpace, u8, u32), Vec<TauSet>> = BTreeMap::new();
    for (v, t) in traces.iter().enumerate() {
        for e in &t.events {
            if e.kernel != spec.kernel {
                continue;
            }
            let space = match &e.space {
                MemSpace::Global { label, .. } => GSpace::Global(label.clone()),
                MemSpace::Shared { slot } => GSpace::Shared(*slot),
            };
            let key = (space, mode_rank(mode_of(e.kind)), e.phase % l);
            let per_ctx = groups.entry(key).or_insert_with(|| vec![TauSet::new(); traces.len()]);
            per_ctx[v].entry((e.block, e.thread)).or_default().insert(e.index as i64);
        }
    }
    groups
}

// ---------------------------------------------------------------------------
// Symbolization: turn per-valuation fitted constants back into parameter
// expressions. Fails (`None`) when no parameter explains the variation.

fn symbolize(fit: &Fit<'_>, vals: &[i64]) -> Option<Expr> {
    if vals.iter().all(|&x| x == vals[0]) {
        return Some(c(vals[0]));
    }
    for p in &fit.params {
        let matches = |off: i64| {
            fit.ctxs.iter().enumerate().all(|(i, cx)| cx.val.get(p) == Some(vals[i] - off))
        };
        if matches(0) {
            return Some(param(p));
        }
        if matches(1) {
            return Some(param(p) + c(1));
        }
        if matches(-1) {
            return Some(param(p) - c(1));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Prediction: evaluate a candidate access over every thread of a fit grid.

struct Cand {
    indices: Vec<Expr>,
    guard: Pred,
    frees: Vec<FreeDecl>,
}

fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(k) => Some(*k),
        _ => None,
    }
}

fn predict(fit: &Fit<'_>, cand: &Cand, v: usize) -> Option<TauSet> {
    let ctx = &fit.ctxs[v];
    let block = fit.spec.launch.block;
    let subst = |var: &Var| -> Option<i64> {
        match var {
            Var::Param(p) => ctx.val.get(p),
            Var::BDimX => Some(i64::from(block.0)),
            Var::BDimY => Some(i64::from(block.1)),
            Var::BDimZ => Some(i64::from(block.2)),
            Var::GDimX => Some(ctx.gdim.0),
            Var::GDimY => Some(ctx.gdim.1),
            Var::GDimZ => Some(ctx.gdim.2),
            _ => None,
        }
    };
    let indices: Vec<Expr> = cand.indices.iter().map(|e| e.subst(&subst)).collect();
    let guard = cand.guard.subst(&subst);
    let mut vars = BTreeSet::new();
    for e in &indices {
        e.vars(&mut vars);
    }
    guard.vars(&mut vars);
    if vars.iter().any(|w| matches!(w, Var::Param(_))) {
        return None;
    }
    let mut frees: Vec<(String, i64, i64)> = Vec::new();
    for f in &cand.frees {
        if !vars.contains(&Var::Free(f.name.clone())) {
            continue;
        }
        let lo = const_of(&f.lo.subst(&subst))?;
        let hi = const_of(&f.hi.subst(&subst))?;
        if hi < lo {
            return Some(TauSet::new());
        }
        frees.push((f.name.clone(), lo, hi));
    }
    let needs_item =
        vars.contains(&Var::Item) || matches!(ctx.domain, GroundDomain::BlockChunked { .. });
    let mut combos: u64 = 0;
    let mut out = TauSet::new();
    for (tau, ti) in &ctx.threads {
        let items: &[i64] = if needs_item { &ti.items } else { &[0] };
        for &it in items {
            let mut asg: Vec<(String, i64)> =
                frees.iter().map(|(n, lo, _)| (n.clone(), *lo)).collect();
            'odometer: loop {
                combos += 1;
                if combos > PREDICT_CAP {
                    return None;
                }
                let env = Env {
                    tid: (i64::from(ti.tid.0), i64::from(ti.tid.1), i64::from(ti.tid.2)),
                    bid: (i64::from(ti.bid.0), i64::from(ti.bid.1), i64::from(ti.bid.2)),
                    bdim: ctx.bdim,
                    gdim: ctx.gdim,
                    item: it,
                    frees: &asg,
                };
                match guard.eval(&env) {
                    Some(true) => {
                        for e in &indices {
                            let x = i64::try_from(e.eval(&env)?).ok()?;
                            out.entry(*tau).or_default().insert(x);
                        }
                    }
                    Some(false) => {}
                    None => return None,
                }
                let mut i = 0;
                loop {
                    if i == asg.len() {
                        break 'odometer;
                    }
                    asg[i].1 += 1;
                    if asg[i].1 <= frees[i].2 {
                        break;
                    }
                    asg[i].1 = frees[i].1;
                    i += 1;
                }
            }
        }
    }
    out.retain(|_, s| !s.is_empty());
    Some(out)
}

/// Accept a candidate if, in every fit grid, every predicted access lies
/// inside the *originally* observed set (so peels never invent behaviour a
/// collision with an earlier peel would hide). Exact candidates must also
/// reproduce the remaining set precisely.
fn accepts(
    fit: &Fit<'_>,
    cand: &Cand,
    orig: &[TauSet],
    exact_rem: Option<&[TauSet]>,
) -> Option<Vec<TauSet>> {
    let mut preds = Vec::new();
    for v in 0..fit.ctxs.len() {
        let p = predict(fit, cand, v)?;
        for (tau, s) in &p {
            let o = orig[v].get(tau);
            if !s.iter().all(|x| o.is_some_and(|os| os.contains(x))) {
                return None;
            }
        }
        if let Some(rem) = exact_rem {
            for (tau, s) in &rem[v] {
                if !s.is_empty() && p.get(tau) != Some(s) {
                    return None;
                }
            }
            for (tau, s) in &p {
                match rem[v].get(tau) {
                    Some(rs) if rs == s => {}
                    _ => return None,
                }
            }
        }
        preds.push(p);
    }
    Some(preds)
}

fn subtract(rem: &mut [TauSet], preds: &[TauSet]) {
    for (v, p) in preds.iter().enumerate() {
        for (tau, s) in p {
            if let Some(r) = rem[v].get_mut(tau) {
                for x in s {
                    r.remove(x);
                }
            }
        }
        rem[v].retain(|_, s| !s.is_empty());
    }
}

fn count(rem: &[TauSet]) -> usize {
    rem.iter().map(|m| m.values().map(BTreeSet::len).sum::<usize>()).sum()
}

// ---------------------------------------------------------------------------
// Participants and drivers.

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Driver {
    Item,
    TidX,
    BidX,
}

fn driver_expr(d: Driver) -> Expr {
    match d {
        Driver::Item => item(),
        Driver::TidX => tid_x(),
        Driver::BidX => bid_x(),
    }
}

fn driver_val(ti: &TInfo, d: Driver) -> Option<i64> {
    match d {
        Driver::Item => ti.items.first().copied(),
        Driver::TidX => Some(i64::from(ti.tid.0)),
        Driver::BidX => Some(i64::from(ti.bid.0)),
    }
}

fn participants<'a>(ctx: &'a Ctx, rem: &'a TauSet) -> Vec<(&'a TInfo, &'a BTreeSet<i64>)> {
    rem.iter()
        .filter(|(_, s)| !s.is_empty())
        .filter_map(|(tau, s)| ctx.threads.get(tau).map(|ti| (ti, s)))
        .collect()
}

fn single_item(fit: &Fit<'_>) -> bool {
    fit.ctxs.iter().all(|c| c.threads.values().all(|t| t.items.len() <= 1))
}

fn participants_single_item(fit: &Fit<'_>, rem: &[TauSet]) -> bool {
    fit.ctxs
        .iter()
        .zip(rem)
        .all(|(ctx, r)| participants(ctx, r).iter().all(|(ti, _)| ti.items.len() == 1))
}

// ---------------------------------------------------------------------------
// Offset classification: turn per-valuation offset sets into an index term.

fn classify_offsets(
    fit: &Fit<'_>,
    namer: &mut Namer,
    dsets: &[Vec<i64>],
) -> Option<(Vec<Expr>, Vec<FreeDecl>)> {
    if dsets.iter().any(Vec::is_empty) {
        return None;
    }
    if dsets.iter().all(|d| d.len() == 1) {
        let beta = symbolize(fit, &dsets.iter().map(|d| d[0]).collect::<Vec<_>>())?;
        return Some((vec![beta], vec![]));
    }
    // Arithmetic progression with a common stride across valuations.
    let mut stride: Option<i64> = None;
    let mut progression = true;
    for d in dsets {
        for w in d.windows(2) {
            let s = w[1] - w[0];
            match stride {
                None => stride = Some(s),
                Some(t) if t == s => {}
                _ => progression = false,
            }
        }
    }
    if progression {
        if let Some(s) = stride {
            let lo = symbolize(fit, &dsets.iter().map(|d| d[0]).collect::<Vec<_>>());
            let cnt = symbolize(fit, &dsets.iter().map(|d| d.len() as i64).collect::<Vec<_>>());
            if let (Some(lo), Some(cnt)) = (lo, cnt) {
                let name = namer.fresh("o");
                let hi = sub_one(cnt);
                let term = add_simpl(lo, mul_simpl(s, free(&name)));
                return Some((vec![term], vec![FreeDecl { name, lo: c(0), hi }]));
            }
        }
    }
    // A small identical offset set: one access per offset.
    let first = &dsets[0];
    if first.len() <= 4 && dsets.iter().all(|d| d == first) {
        return Some((first.iter().map(|&d| c(d)).collect(), vec![]));
    }
    None
}

// ---------------------------------------------------------------------------
// Hypothesis generators.

/// Strided progression (round 0, single-item domains): every participant's
/// set is an arithmetic progression with a shared stride, whose base is
/// affine in one driver. Catches tiled loops (`tid + 64·t`) and packed
/// per-item records (`18·item + k`).
fn gen_progression(fit: &Fit<'_>, rem: &[TauSet], namer: &mut Namer) -> Vec<Hyp> {
    let mut stride: Option<i64> = None;
    for (ctx, r) in fit.ctxs.iter().zip(rem) {
        for (_, s) in participants(ctx, r) {
            let xs: Vec<i64> = s.iter().copied().collect();
            for w in xs.windows(2) {
                let d = w[1] - w[0];
                match stride {
                    None => stride = Some(d),
                    Some(t) if t == d => {}
                    _ => return vec![],
                }
            }
        }
    }
    let Some(d) = stride else { return vec![] };
    for driver in [Driver::Item, Driver::TidX, Driver::BidX] {
        if let Some(h) = try_progression_driver(fit, rem, d, driver, namer) {
            return vec![h];
        }
    }
    vec![]
}

fn try_progression_driver(
    fit: &Fit<'_>,
    rem: &[TauSet],
    d: i64,
    driver: Driver,
    namer: &mut Namer,
) -> Option<Hyp> {
    let mut alpha: Option<i64> = None;
    let mut betas = Vec::new();
    let mut kvals = Vec::new();
    let mut bounds = Vec::new();
    let mut uniform = true;
    for (ctx, r) in fit.ctxs.iter().zip(rem) {
        let mut parts: Vec<(i64, &BTreeSet<i64>)> = Vec::new();
        for (ti, s) in participants(ctx, r) {
            parts.push((driver_val(ti, driver)?, s));
        }
        if parts.is_empty() {
            return None;
        }
        let (vmin, smin) = parts.iter().min_by_key(|(v, _)| *v).unwrap();
        let (vmax, smax) = parts.iter().max_by_key(|(v, _)| *v).unwrap();
        let base_min = *smin.iter().next().unwrap();
        let base_max = *smax.iter().next().unwrap();
        let a = if vmax == vmin {
            0
        } else {
            let num = base_max - base_min;
            let den = vmax - vmin;
            if num % den != 0 {
                return None;
            }
            num / den
        };
        match alpha {
            None => alpha = Some(a),
            Some(x) if x == a => {}
            _ => return None,
        }
        let b = base_min - a * vmin;
        let mut k = 0i64;
        for (v, s) in &parts {
            if *s.iter().next().unwrap() != a * v + b {
                return None;
            }
            k = k.max(s.len() as i64);
        }
        if parts.iter().any(|(_, s)| (s.len() as i64) < k) {
            uniform = false;
        }
        betas.push(b);
        kvals.push(k);
        bounds.push(1 + parts.iter().map(|(_, s)| *s.iter().last().unwrap()).max().unwrap());
    }
    let alpha = alpha?;
    let beta = symbolize(fit, &betas)?;
    let k_e = symbolize(fit, &kvals)?;
    let name = namer.fresh("k");
    let idx = add_simpl(
        mul_simpl(alpha, driver_expr(driver)),
        add_simpl(beta, mul_simpl(d, free(&name))),
    );
    let frees = vec![FreeDecl { name, lo: c(0), hi: sub_one(k_e) }];
    let base_guard = if uniform { None } else { Some(lt(idx.clone(), symbolize(fit, &bounds)?)) };
    Some(Hyp { indices: vec![idx], base_guard, frees, exact: true })
}

/// Multi-item affine (round 0, grid-stride / block-chunked domains):
/// `α·item + D` where `D` is an offset set shared by every item, optionally
/// clamped to the buffer (`min(max(·, 0), N−1)`) for halo reads.
fn gen_multi_item(fit: &Fit<'_>, rem: &[TauSet], namer: &mut Namer) -> Vec<Hyp> {
    let ctx0 = &fit.ctxs[0];
    let parts0 = participants(ctx0, &rem[0]);
    if parts0.is_empty() {
        return vec![];
    }
    let all_vals = |parts: &Vec<(&TInfo, &BTreeSet<i64>)>| -> (i64, i64) {
        let lo = parts.iter().map(|(_, s)| *s.iter().next().unwrap()).min().unwrap();
        let hi = parts.iter().map(|(_, s)| *s.iter().last().unwrap()).max().unwrap();
        (lo, hi)
    };
    let (slo, shi) = all_vals(&parts0);
    let ilo = parts0.iter().flat_map(|(ti, _)| ti.items.iter().copied()).min();
    let ihi = parts0.iter().flat_map(|(ti, _)| ti.items.iter().copied()).max();
    let mut acands = Vec::new();
    if let (Some(ilo), Some(ihi)) = (ilo, ihi) {
        if ihi > ilo {
            acands.push((shi - slo) / (ihi - ilo));
        }
    }
    for a in [1, 0] {
        if !acands.contains(&a) {
            acands.push(a);
        }
    }
    let mut out = Vec::new();
    for a in acands {
        // Offset set per valuation, from the participant whose
        // intersection is widest (clamped edge threads narrow theirs).
        let mut dsets = Vec::new();
        let mut ok = true;
        let mut nmax = Vec::new();
        for (ctx, r) in fit.ctxs.iter().zip(rem) {
            let parts = participants(ctx, r);
            if parts.is_empty() {
                ok = false;
                break;
            }
            nmax.push(1 + all_vals(&parts).1);
            let mut best: Option<BTreeSet<i64>> = None;
            for (ti, s) in &parts {
                let mut dset: Option<BTreeSet<i64>> = None;
                for &i in &ti.items {
                    let shifted: BTreeSet<i64> = s.iter().map(|x| x - a * i).collect();
                    dset = Some(match dset {
                        None => shifted,
                        Some(p) => p.intersection(&shifted).copied().collect(),
                    });
                }
                let dset = dset.unwrap_or_default();
                if best.as_ref().is_none_or(|b| dset.len() > b.len()) {
                    best = Some(dset);
                }
            }
            let best = best.unwrap_or_default();
            if best.is_empty() {
                ok = false;
                break;
            }
            dsets.push(best.into_iter().collect::<Vec<i64>>());
        }
        if !ok {
            continue;
        }
        let Some((terms, frees)) = classify_offsets(fit, namer, &dsets) else { continue };
        let raw: Vec<Expr> =
            terms.iter().map(|t| add_simpl(mul_simpl(a, item()), t.clone())).collect();
        out.push(Hyp { indices: raw.clone(), base_guard: None, frees: frees.clone(), exact: true });
        if let Some(n_e) = symbolize(fit, &nmax) {
            let clamped: Vec<Expr> =
                raw.iter().map(|e| min_e(max_e(e.clone(), c(0)), sub_one(n_e.clone()))).collect();
            out.push(Hyp { indices: clamped, base_guard: None, frees, exact: true });
        }
    }
    out
}

/// Plain affine peel: `α·driver + D`, accepted whenever the prediction
/// stays inside the observed set.
fn gen_affine(fit: &Fit<'_>, rem: &[TauSet], namer: &mut Namer) -> Vec<Hyp> {
    let mut out = Vec::new();
    let singles = participants_single_item(fit, rem);
    let mut alphas_tried = BTreeSet::new();
    for driver in [Driver::Item, Driver::TidX, Driver::BidX] {
        if driver == Driver::Item && !singles {
            continue;
        }
        // α from the driver-extreme participants of each valuation.
        let mut alpha: Option<i64> = None;
        let mut consistent = true;
        for (ctx, r) in fit.ctxs.iter().zip(rem) {
            let mut parts: Vec<(i64, i64)> = Vec::new();
            for (ti, s) in participants(ctx, r) {
                match driver_val(ti, driver) {
                    Some(v) => parts.push((v, *s.iter().next().unwrap())),
                    None => consistent = false,
                }
            }
            if parts.is_empty() || !consistent {
                consistent = false;
                break;
            }
            let (vmin, bmin) = *parts.iter().min_by_key(|(v, _)| *v).unwrap();
            let (vmax, bmax) = *parts.iter().max_by_key(|(v, _)| *v).unwrap();
            let a = if vmax == vmin {
                0
            } else if (bmax - bmin) % (vmax - vmin) == 0 {
                (bmax - bmin) / (vmax - vmin)
            } else {
                consistent = false;
                break;
            };
            match alpha {
                None => alpha = Some(a),
                Some(x) if x == a => {}
                _ => {
                    consistent = false;
                    break;
                }
            }
        }
        let mut acands = Vec::new();
        if consistent {
            if let Some(a) = alpha {
                if a != 0 {
                    acands.push(a);
                }
            }
        }
        for a in acands {
            if !alphas_tried.insert((format!("{driver:?}"), a)) {
                continue;
            }
            if let Some(h) = affine_offsets(fit, rem, namer, driver, a) {
                out.push(h);
            }
        }
    }
    // The driver-free α=0 case once: a set of indices common to every
    // participant (uniform reads).
    if let Some(h) = affine_offsets(fit, rem, namer, Driver::Item, 0) {
        out.push(h);
    }
    out
}

fn affine_offsets(
    fit: &Fit<'_>,
    rem: &[TauSet],
    namer: &mut Namer,
    driver: Driver,
    a: i64,
) -> Option<Hyp> {
    let mut dsets = Vec::new();
    for (ctx, r) in fit.ctxs.iter().zip(rem) {
        let parts = participants(ctx, r);
        if parts.is_empty() {
            return None;
        }
        let mut dset: Option<BTreeSet<i64>> = None;
        for (ti, s) in &parts {
            let v = if a == 0 { 0 } else { driver_val(ti, driver)? };
            let shifted: BTreeSet<i64> = s.iter().map(|x| x - a * v).collect();
            dset = Some(match dset {
                None => shifted,
                Some(p) => p.intersection(&shifted).copied().collect(),
            });
        }
        let dset = dset.unwrap_or_default();
        if dset.is_empty() {
            return None;
        }
        dsets.push(dset.into_iter().collect::<Vec<i64>>());
    }
    let (terms, frees) = classify_offsets(fit, namer, &dsets)?;
    let indices =
        terms.into_iter().map(|t| add_simpl(mul_simpl(a, driver_expr(driver)), t)).collect();
    Some(Hyp { indices, base_guard: None, frees, exact: false })
}

/// Clamped-item peel for boundary halos: `clamp(item + δ, 0, N−1)` with δ
/// the most common base offset among remaining participants.
fn gen_clamped(fit: &Fit<'_>, rem: &[TauSet], orig: &[TauSet]) -> Vec<Hyp> {
    if !participants_single_item(fit, rem) {
        return vec![];
    }
    let mut deltas: BTreeMap<i64, usize> = BTreeMap::new();
    for (ctx, r) in fit.ctxs.iter().zip(rem) {
        for (ti, s) in participants(ctx, r) {
            let Some(i) = ti.items.first() else { return vec![] };
            *deltas.entry(s.iter().next().unwrap() - i).or_default() += 1;
        }
    }
    let Some((&delta, _)) = deltas.iter().max_by_key(|(_, n)| **n) else { return vec![] };
    let mut nmax = Vec::new();
    for o in orig {
        let hi = o.values().filter_map(|s| s.iter().last()).max();
        match hi {
            Some(&h) => nmax.push(1 + h),
            None => return vec![],
        }
    }
    let Some(n_e) = symbolize(fit, &nmax) else { return vec![] };
    let raw = add_simpl(item(), c(delta));
    let idx =
        if delta >= 0 { min_e(raw, sub_one(n_e)) } else { min_e(max_e(raw, c(0)), sub_one(n_e)) };
    vec![Hyp { indices: vec![idx], base_guard: None, frees: vec![], exact: false }]
}

// ---------------------------------------------------------------------------
// Guard inference.

fn compose(g: Pred, base: &Option<Pred>) -> Pred {
    match (g, base) {
        (Pred::True, Some(b)) => b.clone(),
        (g, Some(b)) => and(g, b.clone()),
        (g, None) => g,
    }
}

/// Guard ladder, most permissive first: no guard, an item bound, a
/// leading-threads bound. Bounds come from the participating threads and
/// are symbolized back to parameters.
fn ladder(fit: &Fit<'_>, rem: &[TauSet], base: &Option<Pred>) -> Vec<Pred> {
    let mut out = vec![compose(Pred::True, base)];
    let mut item_hi = Vec::new();
    let mut tid_hi = Vec::new();
    let mut items_ok = true;
    for (ctx, r) in fit.ctxs.iter().zip(rem) {
        let parts = participants(ctx, r);
        if parts.is_empty() {
            return out;
        }
        match parts
            .iter()
            .map(|(ti, _)| if ti.items.len() == 1 { ti.items.first().copied() } else { None })
            .collect::<Option<Vec<i64>>>()
        {
            Some(is) => item_hi.push(1 + is.into_iter().max().unwrap()),
            None => items_ok = false,
        }
        tid_hi.push(1 + parts.iter().map(|(ti, _)| i64::from(ti.tid.0)).max().unwrap());
    }
    if items_ok {
        if let Some(x) = symbolize(fit, &item_hi) {
            out.push(compose(lt(item(), x), base));
        }
    }
    if let Some(x) = symbolize(fit, &tid_hi) {
        out.push(compose(lt(tid_x(), x), base));
    }
    out
}

// ---------------------------------------------------------------------------
// Per-group fitting loop.

fn fit_group(
    fit: &Fit<'_>,
    space: &GSpace,
    orig: &[TauSet],
    namer: &mut Namer,
) -> (Vec<AccessDraft>, Option<String>) {
    let mut drafts = Vec::new();
    let mut rem: Vec<TauSet> = orig.to_vec();
    let multi = !single_item(fit);
    for round in 0..MAX_ROUNDS {
        let total = count(&rem);
        if total == 0 {
            break;
        }
        let mut hyps = Vec::new();
        if round == 0 {
            if multi {
                hyps.extend(gen_multi_item(fit, &rem, namer));
            } else {
                hyps.extend(gen_progression(fit, &rem, namer));
            }
        }
        hyps.extend(gen_affine(fit, &rem, namer));
        hyps.extend(gen_clamped(fit, &rem, orig));
        let mut advanced = false;
        'hyps: for hyp in hyps {
            for guard in ladder(fit, &rem, &hyp.base_guard) {
                let cand = Cand { indices: hyp.indices.clone(), guard, frees: hyp.frees.clone() };
                let exact = if hyp.exact { Some(rem.as_slice()) } else { None };
                if let Some(preds) = accepts(fit, &cand, orig, exact) {
                    subtract(&mut rem, &preds);
                    if count(&rem) < total {
                        drafts.push(AccessDraft {
                            indices: cand.indices,
                            guard: cand.guard,
                            frees: cand.frees,
                            imprecise: false,
                        });
                        advanced = true;
                        break 'hyps;
                    }
                }
            }
        }
        if !advanced {
            break;
        }
    }
    let leftover = count(&rem);
    if leftover == 0 {
        return (drafts, None);
    }
    // Sound degradation: cover the residual with an opaque whole-buffer
    // interval access. Replay stays clean; checks report SummaryImprecise.
    let len = space_len(fit, space, orig);
    let name = namer.fresh("x");
    drafts.push(AccessDraft {
        indices: vec![free(&name)],
        guard: Pred::True,
        frees: vec![FreeDecl { name, lo: c(0), hi: sub_one(len) }],
        imprecise: true,
    });
    let note = format!(
        "{space}: {leftover} observed accesses have no affine fit; degraded to a \
         conservative whole-buffer access"
    );
    (drafts, Some(note))
}

/// Declared length of a buffer or shared array; falls back to the largest
/// observed index when the spec does not declare one.
fn space_len(fit: &Fit<'_>, space: &GSpace, orig: &[TauSet]) -> Expr {
    let declared = match space {
        GSpace::Global(l) => fit.spec.buffers.iter().find(|b| &b.name == l).map(|b| b.len.clone()),
        GSpace::Shared(s) => fit.spec.shared.iter().find(|d| &d.slot == s).map(|d| d.len.clone()),
    };
    if let Some(e) = declared {
        return e;
    }
    let maxes: Vec<i64> = orig
        .iter()
        .map(|m| 1 + m.values().filter_map(|s| s.iter().last()).max().copied().unwrap_or(0))
        .collect();
    symbolize(fit, &maxes).unwrap_or_else(|| c(maxes.iter().copied().max().unwrap_or(1)))
}

// ---------------------------------------------------------------------------
// Assembly and phase-count selection.

fn phase_name(l: u32, class: u32) -> String {
    if l == 1 {
        "main".to_string()
    } else {
        format!("p{class}")
    }
}

fn fit_all(
    spec: &ExtractSpec,
    traces: &[Trace],
    l: u32,
    max_b: u32,
) -> Result<(KernelSummary, Vec<String>), String> {
    let mut ctxs = Vec::new();
    for val in &spec.fit {
        ctxs.push(build_ctx(spec, val)?);
    }
    let mut params: BTreeSet<String> = BTreeSet::new();
    for val in &spec.fit {
        for (p, _) in val.entries() {
            params.insert(p.clone());
        }
    }
    let fit = Fit { spec, ctxs, params: params.into_iter().collect() };
    let groups = collect_groups(spec, traces, l);
    let mut namer = Namer { n: 0 };
    let mut accesses = Vec::new();
    let mut frees = Vec::new();
    let mut notes = Vec::new();
    for ((space, mrank, class), data) in &groups {
        let (drafts, note) = fit_group(&fit, space, data, &mut namer);
        if let Some(n) = note {
            notes.push(n);
        }
        for d in drafts {
            frees.extend(d.frees.clone());
            for idx in d.indices {
                accesses.push(Access {
                    space: space.to_space(),
                    mode: mode_from_rank(*mrank),
                    index: idx,
                    guard: d.guard.clone(),
                    phase: phase_name(l, *class),
                    imprecise: d.imprecise,
                });
            }
        }
    }
    // Declare any traced buffer or shared array the spec missed, so
    // boundscheck has a length for every access.
    let mut buffers = spec.buffers.clone();
    let mut shared = spec.shared.clone();
    for (space, _, _) in groups.keys() {
        match space {
            GSpace::Global(label) if !buffers.iter().any(|b| &b.name == label) => {
                let data = &groups[&(space.clone(), 0, 0)];
                buffers.push(BufferDecl { name: label.clone(), len: space_len(&fit, space, data) });
            }
            GSpace::Shared(slot) if !shared.iter().any(|s| &s.slot == slot) => {
                let data = &groups[&(space.clone(), 0, 0)];
                shared.push(SharedDecl { slot: *slot, len: space_len(&fit, space, data) });
            }
            _ => {}
        }
    }
    let barriers = if max_b > 0 {
        (0..l).map(|i| Barrier { guard: Pred::True, phase: phase_name(l, i) }).collect()
    } else {
        vec![]
    };
    Ok((
        KernelSummary {
            kernel: spec.kernel.clone(),
            app: spec.app.clone(),
            version: spec.version.clone(),
            launch: spec.launch.clone(),
            flags: spec.flags,
            warp_ops: spec.warp_ops,
            domain: spec.domain.clone(),
            frees,
            buffers,
            shared,
            accesses,
            barriers,
            valuations: spec.fit.clone(),
        },
        notes,
    ))
}

/// Extract a draft summary from fit traces (one per fit valuation).
///
/// Phase structure is chosen by trying every plausible barrier-cycle
/// length `L` (1 up to one past the deepest observed barrier count, capped)
/// and keeping the one whose draft produces the fewest check and replay
/// errors, breaking ties toward fewer opaque accesses, then toward the
/// smallest `L`. The returned summary's valuations are the fit valuations
/// followed by the validation valuations, so downstream `analyze --replay`
/// re-validates on grids the fitter never saw.
pub fn extract(spec: &ExtractSpec, traces: &[Trace]) -> Result<Extraction, String> {
    if traces.len() != spec.fit.len() {
        return Err(format!("got {} traces for {} fit valuations", traces.len(), spec.fit.len()));
    }
    if spec.fit.is_empty() {
        return Err("extraction needs at least one fit valuation".into());
    }
    let observed: usize =
        traces.iter().map(|t| t.events.iter().filter(|e| e.kernel == spec.kernel).count()).sum();
    if observed == 0 {
        return Err(format!("no trace events for kernel `{}`", spec.kernel));
    }
    let max_b = traces
        .iter()
        .flat_map(|t| t.barriers.iter())
        .filter(|b| b.kernel == spec.kernel)
        .map(|b| b.ordinal + 1)
        .max()
        .unwrap_or(0);
    let candidates: Vec<u32> =
        if max_b == 0 { vec![1] } else { (1..=(max_b + 1).min(6)).collect() };
    let mut best: Option<(usize, usize, u32, KernelSummary, Vec<String>)> = None;
    for l in candidates {
        let (summary, notes) = fit_all(spec, traces, l, max_b)?;
        let mut errors =
            analyze(&summary, 32).iter().filter(|f| f.severity == Severity::Error).count();
        for (v, t) in traces.iter().enumerate() {
            errors += validate_replay(&summary, &spec.fit[v], &t.events, &t.barriers)
                .iter()
                .filter(|f| f.severity == Severity::Error)
                .count();
        }
        let score = (errors, notes.len(), l);
        if best.as_ref().is_none_or(|(e, n, bl, _, _)| score < (*e, *n, *bl)) {
            best = Some((errors, notes.len(), l, summary, notes));
        }
    }
    let (_, _, l, mut summary, notes) = best.unwrap();
    summary.valuations = spec.fit.iter().chain(spec.validate.iter()).cloned().collect();
    Ok(Extraction { summary, imprecise: notes, phases: l as usize })
}

// ---------------------------------------------------------------------------
// Diffing extracted vs hand-written summaries.

/// How one `(space, mode)` bucket of the extracted summary compares to the
/// hand-written one, by predicted access sets under a shared valuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffClass {
    /// Identical predicted sets.
    Equal,
    /// The extracted set is a strict subset — a documented refinement.
    ExtractedMorePrecise,
    /// The extracted set is wider, but an opaque (imprecise) access in
    /// this bucket explains the widening.
    ExplainedByOpaque,
    /// Sets diverge with no opaque access to blame: a real finding.
    Unexplained,
}

#[derive(Debug, Clone)]
pub struct DiffEntry {
    pub space: String,
    pub mode: Mode,
    pub class: DiffClass,
    pub detail: String,
}

/// Predicted cells per (space label, mode rank): `(block, index)` tuples.
type Buckets = BTreeMap<(String, u8), BTreeSet<(u32, u32, u32, i64)>>;

fn bucketed(s: &KernelSummary, val: &Valuation) -> Result<Buckets, String> {
    let g = s.ground(val)?;
    let mut findings = Vec::new();
    let Some(pred) = predicted_set(&g, &mut findings) else {
        return Err(findings
            .first()
            .map(|f| f.message.clone())
            .unwrap_or_else(|| "prediction failed".into()));
    };
    let mut out = Buckets::new();
    for key in pred.keys() {
        let (space, mode, block, index) = match key {
            EvKey::Global { label, index, kind } => (label.clone(), *kind, (0, 0, 0), *index),
            EvKey::Shared { block, slot, index, kind } => {
                (format!("shared[{slot}]"), *kind, *block, *index)
            }
        };
        out.entry((space, mode_rank(mode))).or_default().insert((block.0, block.1, block.2, index));
    }
    Ok(out)
}

/// Compare the predicted access sets of an extracted summary against the
/// hand-written one under a valuation both can ground.
pub fn diff_summaries(
    extracted: &KernelSummary,
    hand: &KernelSummary,
    val: &Valuation,
) -> Result<Vec<DiffEntry>, String> {
    let e = bucketed(extracted, val)?;
    let h = bucketed(hand, val)?;
    let mut spaces: BTreeSet<(String, u8)> = BTreeSet::new();
    spaces.extend(e.keys().cloned());
    spaces.extend(h.keys().cloned());
    let empty = BTreeSet::new();
    let mut out = Vec::new();
    for key in spaces {
        let es = e.get(&key).unwrap_or(&empty);
        let hs = h.get(&key).unwrap_or(&empty);
        let mode = mode_from_rank(key.1);
        let opaque = extracted.accesses.iter().any(|a| {
            a.imprecise
                && a.mode == mode
                && match (&a.space, key.0.as_str()) {
                    (Space::Global(l), s) => l == s,
                    (Space::Shared(slot), s) => s == format!("shared[{slot}]"),
                }
        });
        let class = if es == hs {
            DiffClass::Equal
        } else if es.is_subset(hs) {
            DiffClass::ExtractedMorePrecise
        } else if opaque {
            DiffClass::ExplainedByOpaque
        } else {
            DiffClass::Unexplained
        };
        out.push(DiffEntry {
            space: key.0,
            mode,
            class,
            detail: format!(
                "extracted predicts {} cells, hand-written {} (valuation `{}`)",
                es.len(),
                hs.len(),
                val.name
            ),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Rendering: Rust literal and human-readable description.

fn expr_rs(e: &Expr) -> String {
    match e {
        Expr::Const(k) => format!("c({k})"),
        Expr::Var(Var::TidX) => "tid_x()".into(),
        Expr::Var(Var::BidX) => "bid_x()".into(),
        Expr::Var(Var::Item) => "item()".into(),
        Expr::Var(Var::Param(p)) => format!("param(\"{p}\")"),
        Expr::Var(Var::Free(n)) => format!("free(\"{n}\")"),
        Expr::Var(other) => format!("v(Var::{other:?})"),
        Expr::Add(a, b) => {
            if let Expr::Mul(x, y) = &**b {
                if **x == Expr::Const(-1) {
                    return format!("({} - {})", expr_rs(a), expr_rs(y));
                }
            }
            format!("({} + {})", expr_rs(a), expr_rs(b))
        }
        Expr::Mul(a, b) => format!("({} * {})", expr_rs(a), expr_rs(b)),
        Expr::Div(a, b) => format!("div_e({}, {})", expr_rs(a), expr_rs(b)),
        Expr::Mod(a, b) => format!("mod_e({}, {})", expr_rs(a), expr_rs(b)),
        Expr::Min(a, b) => format!("min_e({}, {})", expr_rs(a), expr_rs(b)),
        Expr::Max(a, b) => format!("max_e({}, {})", expr_rs(a), expr_rs(b)),
    }
}

fn pred_rs(p: &Pred) -> String {
    match p {
        Pred::True => "Pred::True".into(),
        Pred::Lt(a, b) => format!("lt({}, {})", expr_rs(a), expr_rs(b)),
        Pred::Le(a, b) => format!("le({}, {})", expr_rs(a), expr_rs(b)),
        Pred::Eq(a, b) => format!("eq({}, {})", expr_rs(a), expr_rs(b)),
        Pred::And(a, b) => format!("and({}, {})", pred_rs(a), pred_rs(b)),
        Pred::Or(a, b) => {
            format!("Pred::Or(Box::new({}), Box::new({}))", pred_rs(a), pred_rs(b))
        }
        Pred::Not(a) => format!("Pred::Not(Box::new({}))", pred_rs(a)),
    }
}

/// Render the summary as a `hecbench::summaries`-style Rust literal,
/// ready to paste next to a hand-written one.
pub fn to_rust_literal(s: &KernelSummary) -> String {
    let mut out = String::new();
    let domain = match &s.domain {
        Domain::OnePerThread => "Domain::OnePerThread".to_string(),
        Domain::GridStride(e) => format!("Domain::GridStride({})", expr_rs(e)),
        Domain::BlockChunked(e) => format!("Domain::BlockChunked({})", expr_rs(e)),
    };
    out.push_str("KernelSummary {\n");
    out.push_str(&format!("    kernel: \"{}\".into(),\n", s.kernel));
    out.push_str(&format!("    app: \"{}\".into(),\n", s.app));
    out.push_str(&format!("    version: \"{}\".into(),\n", s.version));
    out.push_str(&format!(
        "    launch: LaunchShape {{ block: ({}, {}, {}), grid: [{}, {}, {}] }},\n",
        s.launch.block.0,
        s.launch.block.1,
        s.launch.block.2,
        expr_rs(&s.launch.grid[0]),
        expr_rs(&s.launch.grid[1]),
        expr_rs(&s.launch.grid[2]),
    ));
    out.push_str(&format!(
        "    flags: SummaryFlags {{ uses_block_sync: {}, uses_warp_ops: {} }},\n",
        s.flags.uses_block_sync, s.flags.uses_warp_ops
    ));
    out.push_str(&format!("    warp_ops: {},\n", s.warp_ops));
    out.push_str(&format!("    domain: {domain},\n"));
    out.push_str("    frees: vec![\n");
    for f in &s.frees {
        out.push_str(&format!(
            "        FreeDecl {{ name: \"{}\".into(), lo: {}, hi: {} }},\n",
            f.name,
            expr_rs(&f.lo),
            expr_rs(&f.hi)
        ));
    }
    out.push_str("    ],\n    buffers: vec![\n");
    for b in &s.buffers {
        out.push_str(&format!(
            "        BufferDecl {{ name: \"{}\".into(), len: {} }},\n",
            b.name,
            expr_rs(&b.len)
        ));
    }
    out.push_str("    ],\n    shared: vec![\n");
    for sh in &s.shared {
        out.push_str(&format!(
            "        SharedDecl {{ slot: {}, len: {} }},\n",
            sh.slot,
            expr_rs(&sh.len)
        ));
    }
    out.push_str("    ],\n    accesses: vec![\n");
    for a in &s.accesses {
        let space = match &a.space {
            Space::Global(l) => format!("Space::Global(\"{l}\".into())"),
            Space::Shared(slot) => format!("Space::Shared({slot})"),
        };
        out.push_str(&format!(
            "        Access {{ space: {space}, mode: Mode::{:?}, index: {}, guard: {}, \
             phase: \"{}\".into(), imprecise: {} }},\n",
            a.mode,
            expr_rs(&a.index),
            pred_rs(&a.guard),
            a.phase,
            a.imprecise
        ));
    }
    out.push_str("    ],\n    barriers: vec![\n");
    for b in &s.barriers {
        out.push_str(&format!(
            "        Barrier {{ guard: {}, phase: \"{}\".into() }},\n",
            pred_rs(&b.guard),
            b.phase
        ));
    }
    out.push_str("    ],\n    valuations: vec![\n");
    for v in &s.valuations {
        let vals = v
            .entries()
            .iter()
            .map(|(k, x)| format!("(\"{k}\", {x})"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("        Valuation::new(\"{}\", &[{vals}]),\n", v.name));
    }
    out.push_str("    ],\n}\n");
    out
}

/// Human-readable one-screen description of an extracted summary.
pub fn describe(s: &KernelSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} ({} / {}): block ({},{},{}), {} access(es), {} barrier phase entr{}\n",
        s.kernel,
        s.app,
        s.version,
        s.launch.block.0,
        s.launch.block.1,
        s.launch.block.2,
        s.accesses.len(),
        s.barriers.len(),
        if s.barriers.len() == 1 { "y" } else { "ies" },
    ));
    for a in &s.accesses {
        out.push_str(&format!(
            "  {} {} [{}]  guard: {}  phase: {}{}\n",
            a.space,
            a.mode.label(),
            a.index,
            a.guard,
            a.phase,
            if a.imprecise { "  (IMPRECISE: whole-buffer over-approximation)" } else { "" }
        ));
    }
    for f in &s.frees {
        out.push_str(&format!("  free ${} in [{}, {}]\n", f.name, f.lo, f.hi));
    }
    out.push_str(&format!(
        "  valuations: {}\n",
        s.valuations.iter().map(|v| v.name.as_str()).collect::<Vec<_>>().join(", ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ceil_div;

    fn gev(
        kernel: &str,
        block: (u32, u32, u32),
        thread: (u32, u32, u32),
        label: &str,
        index: usize,
        kind: MemAccessKind,
        phase: u32,
    ) -> MemEvent {
        MemEvent {
            kernel: kernel.into(),
            launch: 0,
            block,
            thread,
            space: MemSpace::Global { alloc_id: 0, label: label.into() },
            index,
            kind,
            phase,
        }
    }

    fn sev(
        kernel: &str,
        block: (u32, u32, u32),
        thread: (u32, u32, u32),
        slot: usize,
        index: usize,
        kind: MemAccessKind,
        phase: u32,
    ) -> MemEvent {
        MemEvent {
            kernel: kernel.into(),
            launch: 0,
            block,
            thread,
            space: MemSpace::Shared { slot },
            index,
            kind,
            phase,
        }
    }

    /// `copy`-style kernel: block 4, grid ceil(n/4); thread `gid < n`
    /// writes `out[gid]`.
    fn copy_spec() -> ExtractSpec {
        ExtractSpec {
            kernel: "copy".into(),
            app: "toy".into(),
            version: "ompx".into(),
            launch: LaunchShape { block: (4, 1, 1), grid: [ceil_div(param("n"), 4), c(1), c(1)] },
            flags: SummaryFlags::default(),
            warp_ops: false,
            domain: Domain::OnePerThread,
            buffers: vec![BufferDecl { name: "out".into(), len: param("n") }],
            shared: vec![],
            fit: vec![Valuation::new("fit-a", &[("n", 6)]), Valuation::new("fit-b", &[("n", 11)])],
            validate: vec![Valuation::new("big", &[("n", 37)])],
        }
    }

    fn copy_trace(n: usize) -> Trace {
        let blocks = n.div_ceil(4);
        let mut events = Vec::new();
        for b in 0..blocks {
            for t in 0..4usize {
                let gid = b * 4 + t;
                if gid < n {
                    events.push(gev(
                        "copy",
                        (b as u32, 0, 0),
                        (t as u32, 0, 0),
                        "out",
                        gid,
                        MemAccessKind::Write,
                        0,
                    ));
                }
            }
        }
        Trace { events, barriers: vec![] }
    }

    #[test]
    fn extracts_guarded_item_write_and_replays_on_unseen_grid() {
        let spec = copy_spec();
        let ext = extract(&spec, &[copy_trace(6), copy_trace(11)]).unwrap();
        assert_eq!(ext.phases, 1);
        assert!(ext.imprecise.is_empty(), "{:?}", ext.imprecise);
        assert_eq!(ext.summary.accesses.len(), 1);
        let a = &ext.summary.accesses[0];
        assert_eq!(a.index, item());
        assert_eq!(a.guard, lt(item(), param("n")));
        assert!(!a.imprecise);
        // The summary carries fit + validation valuations.
        assert_eq!(ext.summary.valuations.len(), 3);
        // Replay-validate on a larger grid the fitter never saw.
        let big = copy_trace(37);
        let findings = validate_replay(&ext.summary, &spec.validate[0], &big.events, &big.barriers);
        assert!(findings.iter().all(|f| f.severity != Severity::Error), "{findings:?}");
    }

    #[test]
    fn extraction_is_deterministic() {
        let spec = copy_spec();
        let a = extract(&spec, &[copy_trace(6), copy_trace(11)]).unwrap();
        let b = extract(&spec, &[copy_trace(6), copy_trace(11)]).unwrap();
        assert_eq!(to_rust_literal(&a.summary), to_rust_literal(&b.summary));
        assert!(to_rust_literal(&a.summary).contains("Space::Global(\"out\".into())"));
    }

    /// Data-dependent gather: `tbl[(7·gid + 3) mod n]` has no affine fit,
    /// so extraction must degrade to an opaque whole-buffer access that
    /// analyze surfaces as `SummaryImprecise` — and replay must stay clean.
    #[test]
    fn non_affine_gather_degrades_to_imprecise() {
        let mut spec = copy_spec();
        spec.kernel = "gather".into();
        spec.buffers.push(BufferDecl { name: "tbl".into(), len: param("n") });
        let gather_trace = |n: usize| {
            let mut t = copy_trace(n);
            let mut events: Vec<MemEvent> = t
                .events
                .iter()
                .map(|e| {
                    let mut r = e.clone();
                    r.kernel = "gather".into();
                    r
                })
                .collect();
            for e in events.clone() {
                let mut r = e;
                r.space = MemSpace::Global { alloc_id: 1, label: "tbl".into() };
                r.index = (7 * r.index + 3) % n;
                r.kind = MemAccessKind::Read;
                events.push(r);
            }
            t.events = events;
            t
        };
        let ext = extract(&spec, &[gather_trace(6), gather_trace(11)]).unwrap();
        assert_eq!(ext.imprecise.len(), 1, "{:?}", ext.imprecise);
        assert!(ext.imprecise[0].contains("tbl"));
        let opaque: Vec<_> = ext.summary.accesses.iter().filter(|a| a.imprecise).collect();
        assert_eq!(opaque.len(), 1);
        assert_eq!(opaque[0].space, Space::Global("tbl".into()));
        // Opaque access => SummaryImprecise warnings, zero errors.
        let findings = analyze(&ext.summary, 32);
        assert!(findings.iter().all(|f| f.severity != Severity::Error), "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("SummaryImprecise")));
        // Whole-buffer coverage keeps replay clean on an unseen grid.
        let big = gather_trace(37);
        let findings = validate_replay(&ext.summary, &spec.validate[0], &big.events, &big.barriers);
        assert!(findings.iter().all(|f| f.severity != Severity::Error), "{findings:?}");
    }

    /// Two-phase shared staging: write `tile[t]`, barrier, read `tile[t]`
    /// and `tile[t+1]` (guarded). Phase-count selection must pick L = 2:
    /// merging the phases would make the cross-thread read race the write.
    #[test]
    fn infers_two_barrier_phases_for_staged_shared_kernel() {
        let spec = ExtractSpec {
            kernel: "stage".into(),
            app: "toy".into(),
            version: "ompx".into(),
            launch: LaunchShape { block: (4, 1, 1), grid: [c(1), c(1), c(1)] },
            flags: SummaryFlags { uses_block_sync: true, uses_warp_ops: false },
            warp_ops: false,
            domain: Domain::OnePerThread,
            buffers: vec![],
            shared: vec![SharedDecl { slot: 0, len: c(4) }],
            fit: vec![Valuation::new("fit-a", &[]), Valuation::new("fit-b", &[])],
            validate: vec![],
        };
        let stage_trace = || {
            let mut events = Vec::new();
            let mut barriers = Vec::new();
            for t in 0..4u32 {
                events.push(sev(
                    "stage",
                    (0, 0, 0),
                    (t, 0, 0),
                    0,
                    t as usize,
                    MemAccessKind::Write,
                    0,
                ));
                barriers.push(BarrierEvent {
                    kernel: "stage".into(),
                    launch: 0,
                    block: (0, 0, 0),
                    thread: (t, 0, 0),
                    ordinal: 0,
                });
                events.push(sev(
                    "stage",
                    (0, 0, 0),
                    (t, 0, 0),
                    0,
                    t as usize,
                    MemAccessKind::Read,
                    1,
                ));
                if t < 3 {
                    events.push(sev(
                        "stage",
                        (0, 0, 0),
                        (t, 0, 0),
                        0,
                        t as usize + 1,
                        MemAccessKind::Read,
                        1,
                    ));
                }
            }
            Trace { events, barriers }
        };
        let ext = extract(&spec, &[stage_trace(), stage_trace()]).unwrap();
        assert_eq!(ext.phases, 2, "{}", describe(&ext.summary));
        assert_eq!(ext.summary.barriers.len(), 2);
        assert!(ext.imprecise.is_empty(), "{:?}", ext.imprecise);
        let findings = analyze(&ext.summary, 32);
        assert!(findings.iter().all(|f| f.severity != Severity::Error), "{findings:?}");
        let t = stage_trace();
        let findings = validate_replay(&ext.summary, &spec.fit[0], &t.events, &t.barriers);
        assert!(findings.iter().all(|f| f.severity != Severity::Error), "{findings:?}");
    }

    /// Tiled progression: each thread reads `m[3·gid + k]`, k in 0..3.
    #[test]
    fn fits_strided_progressions() {
        let mut spec = copy_spec();
        spec.kernel = "pack".into();
        spec.buffers = vec![BufferDecl { name: "m".into(), len: c(3) * param("n") }];
        let pack_trace = |n: usize| {
            let blocks = n.div_ceil(4);
            let mut events = Vec::new();
            for b in 0..blocks {
                for t in 0..4usize {
                    let gid = b * 4 + t;
                    if gid < n {
                        for k in 0..3 {
                            events.push(gev(
                                "pack",
                                (b as u32, 0, 0),
                                (t as u32, 0, 0),
                                "m",
                                3 * gid + k,
                                MemAccessKind::Read,
                                0,
                            ));
                        }
                    }
                }
            }
            Trace { events, barriers: vec![] }
        };
        let ext = extract(&spec, &[pack_trace(6), pack_trace(11)]).unwrap();
        assert!(ext.imprecise.is_empty(), "{}", describe(&ext.summary));
        let big = pack_trace(37);
        let findings = validate_replay(&ext.summary, &spec.validate[0], &big.events, &big.barriers);
        assert!(findings.iter().all(|f| f.severity != Severity::Error), "{findings:?}");
    }
}
