//! # ompx-analyzer — static kernel verifier with symbolic access summaries
//!
//! The static counterpart of `ompx-sanitizer`: instead of watching a
//! kernel run, it proves properties of a hand-written symbolic *access
//! summary* ([`summary::KernelSummary`]) describing what the kernel may
//! touch — and then refuses to trust that summary, validating it against
//! the real kernel via *replay*: the kernel runs on the simulator with
//! memory-trace hooks attached ([`ompx_sim::memtrace`]) on the small
//! concrete grids the summary's valuations describe, and every observed
//! access must be predicted by the summary ([`replay`]).
//!
//! Checks (tool names match the unified finding schema in
//! `ompx_sanitizer::report`):
//!
//! | tool | proves / flags |
//! |------|----------------|
//! | `racecheck` | two-thread-reduction race freedom (GPUVerify-style Rule A/B) |
//! | `synccheck` | barrier uniformity; `KernelFlags` drift |
//! | `boundscheck` | guard-tightened index intervals within buffer bounds |
//! | `launchcheck` | block/grid shape lints (warp multiples, §3.2 multi-dim grids, serial-path eligibility) |
//! | `summarycheck` | malformed summaries; replay mismatches |
//!
//! The analyzer works on *concrete valuations*: every launch parameter is
//! substituted with a constant before checking, so the symbolic core
//! ([`expr`], [`affine`], [`interval`]) only ever sees thread coordinates,
//! the logical item, and range-declared free variables — everything stays
//! affine or interval-analyzable. Each summary carries at least two
//! valuations, which double as the replay grid shapes.
//!
//! Soundness caveats (documented in DESIGN.md): phase labels are trusted
//! (barrier/launch ordering is not re-derived), atomic-atomic pairs never
//! race (matching the dynamic racecheck), and the domains model the
//! runtime's three 1-D lowering shapes only.

pub mod affine;
pub mod check;
pub mod expr;
pub mod extract;
pub mod fixtures;
pub mod interval;
pub mod replay;
pub mod summary;

pub use check::analyze;
pub use extract::{
    describe, diff_summaries, extract, to_rust_literal, DiffClass, DiffEntry, ExtractSpec,
    Extraction, Trace,
};
pub use replay::{validate_events, validate_replay};
pub use summary::{
    Access, Barrier, BufferDecl, Domain, FreeDecl, Ground, KernelSummary, LaunchShape, Mode,
    SharedDecl, Space, SummaryFlags, Valuation,
};

/// Warp size for a system name as the CLIs spell it (`nvidia` | `amd`).
pub fn warp_size_for(system: &str) -> u32 {
    match system {
        "amd" => 64,
        _ => 32,
    }
}
