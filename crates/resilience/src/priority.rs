//! Priority classes and the deadline model.
//!
//! Three classes, ordered: `Interactive` traffic is latency-sensitive and
//! scheduled first, `Batch` tolerates queueing, `BestEffort` is the
//! scavenger class the brownout ladder sheds first. Deadlines are
//! *relative to a fault-free service estimate* supplied by the caller
//! (the serve loop passes the mix-wide mean, so heterogeneous apps
//! sharing a device see a common queueing allowance) — which keeps the
//! deadline model scale-free across `WorkScale`s and app mixes.

/// Scheduling class of one request. Order is scheduling order: a lower
/// [`Priority::rank`] is always served before a higher one on the same
/// member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive: tight deadline, shed last, hedged eagerly.
    Interactive,
    /// Throughput traffic: loose deadline, shed under heavy overload.
    Batch,
    /// Scavenger: no deadline, first class shed by the brownout ladder.
    BestEffort,
}

impl Priority {
    /// Every class, in scheduling (and shedding-review) order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Scheduling rank: lower is served first.
    pub fn rank(self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::BestEffort => 2,
        }
    }

    /// Stable label used in reports and metric series.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best_effort",
        }
    }
}

/// Deadline assignment: a request's absolute deadline is
/// `arrival + factor(class) * service_estimate`, with `BestEffort`
/// carrying no deadline at all. The defaults are sized against the serve
/// loop's operating point (offered ~1.3× capacity with EDF-within-priority
/// scheduling and a bounded backlog): interactive requests cut the line,
/// so a 100× mean-service budget absorbs in-flight-batch blocking plus
/// the interactive class's own queueing with margin at the p99; batch
/// rides the backlog and gets 800×.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePolicy {
    /// Deadline factor for [`Priority::Interactive`].
    pub interactive_factor: f64,
    /// Deadline factor for [`Priority::Batch`].
    pub batch_factor: f64,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        DeadlinePolicy { interactive_factor: 100.0, batch_factor: 800.0 }
    }
}

impl DeadlinePolicy {
    /// Absolute modeled deadline for a request of `class` arriving at
    /// `arrival_s` whose app's fault-free service estimate is
    /// `estimate_s`. `None` for [`Priority::BestEffort`].
    pub fn deadline(&self, class: Priority, arrival_s: f64, estimate_s: f64) -> Option<f64> {
        let factor = match class {
            Priority::Interactive => self.interactive_factor,
            Priority::Batch => self.batch_factor,
            Priority::BestEffort => return None,
        };
        Some(arrival_s + factor * estimate_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_labels_are_stable() {
        assert!(Priority::Interactive.rank() < Priority::Batch.rank());
        assert!(Priority::Batch.rank() < Priority::BestEffort.rank());
        assert_eq!(Priority::Interactive.label(), "interactive");
        assert_eq!(Priority::Batch.label(), "batch");
        assert_eq!(Priority::BestEffort.label(), "best_effort");
        assert_eq!(Priority::ALL.len(), 3);
    }

    #[test]
    fn deadlines_scale_with_the_service_estimate() {
        let p = DeadlinePolicy::default();
        let d = p.deadline(Priority::Interactive, 2.0, 0.1).unwrap();
        assert!((d - (2.0 + 100.0 * 0.1)).abs() < 1e-12);
        let b = p.deadline(Priority::Batch, 2.0, 0.1).unwrap();
        assert!(b > d, "batch deadlines are looser than interactive");
        assert_eq!(p.deadline(Priority::BestEffort, 2.0, 0.1), None);
    }
}
