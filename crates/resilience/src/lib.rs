//! # ompx-resilience — SLO-aware serving policies
//!
//! `ompx-serve` survives faults; this crate decides *how well* it must
//! survive them. It packages the four policy mechanisms the serving loop
//! wires together, each a pure deterministic state machine over modeled
//! time so every decision is bit-reproducible for a fixed seed:
//!
//! * **priority classes & deadlines** ([`priority`]) — every request is
//!   `Interactive`, `Batch`, or `BestEffort`; a [`DeadlinePolicy`] turns a
//!   request's fault-free service estimate into an absolute modeled
//!   deadline, and the server schedules earliest-deadline-first within
//!   priority while a brownout ladder sheds `BestEffort` first under
//!   overload;
//! * **hedged re-dispatch thresholds** ([`hedge`]) — a [`HedgeTracker`]
//!   folds observed per-app service times into the telemetry layer's
//!   log-linear histograms and derives the deterministic quantile
//!   threshold past which a dispatch should be speculatively re-issued on
//!   a second healthy device;
//! * **per-device circuit breakers** ([`breaker`]) — a
//!   [`CircuitBreaker`] per pool member scores the member's recent
//!   dispatch outcomes (an exponentially-decayed failure score over the
//!   fault state's typed-error verdicts) and walks the classic
//!   closed → open → half-open machine with deterministic trip and
//!   recovery thresholds, so a flaky member stops receiving work before
//!   it burns retry budget;
//! * **the escalation SLO contract** ([`slo`]) — given one
//!   [`RungSlo`] summary per fault-rate rung of a chaos-escalation
//!   campaign, [`check_contract`] returns the exact list of violations:
//!   interactive p99 lateness over budget, any `Corrupt` verdict, or a
//!   shed fraction that fails to grow monotonically with pressure.
//!
//! The crate deliberately knows nothing about devices, queues, or the
//! event loop — `ompx-serve` owns the wiring; this crate owns the policy
//! arithmetic, which keeps every threshold unit-testable in isolation.
//!
//! [`DeadlinePolicy`]: priority::DeadlinePolicy
//! [`HedgeTracker`]: hedge::HedgeTracker
//! [`CircuitBreaker`]: breaker::CircuitBreaker
//! [`RungSlo`]: slo::RungSlo
//! [`check_contract`]: slo::check_contract

pub mod breaker;
pub mod hedge;
pub mod priority;
pub mod slo;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use hedge::{HedgeConfig, HedgeTracker};
pub use priority::{DeadlinePolicy, Priority};
pub use slo::{check_contract, RungSlo};
