//! The chaos-escalation SLO contract.
//!
//! An escalation campaign replays one seeded serve load at a ladder of
//! fault-rate multipliers and summarizes each rung as a [`RungSlo`].
//! [`check_contract`] then asserts the three properties the serving layer
//! promises to hold *at every pressure level*:
//!
//! 1. **Interactive p99 ≤ deadline** — the 99th percentile of
//!    `latency / deadline_budget` over completed interactive requests
//!    stays ≤ 1 (a ratio, so per-app deadline scaling is already folded
//!    in);
//! 2. **zero `Corrupt` verdicts** — faults may slow or shed traffic but
//!    never silently corrupt it;
//! 3. **shed fraction monotone in pressure** — the brownout ladder
//!    degrades *gracefully*: more pressure may shed more, never less
//!    (within a tolerance for exact ties).
//!
//! Violations come back as human-readable strings so the CLI can print
//! them and exit non-zero; an empty list is the passing gate.

/// One rung of the escalation campaign, as consumed by the contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RungSlo {
    /// Fault-rate multiplier this rung ran at.
    pub multiplier: f64,
    /// p99 of `latency / deadline_budget` over completed interactive
    /// requests (0 when the rung completed none).
    pub interactive_p99_ratio: f64,
    /// Responses that completed with a wrong checksum.
    pub corrupt: u64,
    /// Fraction of all requests shed by admission control.
    pub shed_frac: f64,
}

/// Slack allowed when comparing shed fractions across rungs: exact ties
/// and float noise are fine, a real regression is not.
pub const SHED_MONOTONE_TOL: f64 = 1e-9;

/// Check the contract over the campaign's rungs (assumed sorted by
/// ascending multiplier). Returns every violation found; empty = pass.
pub fn check_contract(rungs: &[RungSlo]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in rungs {
        if r.interactive_p99_ratio > 1.0 {
            violations.push(format!(
                "rung {}x: interactive p99 lateness ratio {:.4} exceeds the deadline budget",
                r.multiplier, r.interactive_p99_ratio
            ));
        }
        if r.corrupt > 0 {
            violations.push(format!(
                "rung {}x: {} corrupt verdict(s) — the trichotomy must hold at every rung",
                r.multiplier, r.corrupt
            ));
        }
    }
    for w in rungs.windows(2) {
        if w[1].shed_frac + SHED_MONOTONE_TOL < w[0].shed_frac {
            violations.push(format!(
                "shed fraction not monotone in pressure: {:.4} at {}x but {:.4} at {}x",
                w[0].shed_frac, w[0].multiplier, w[1].shed_frac, w[1].multiplier
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rung(multiplier: f64, ratio: f64, corrupt: u64, shed: f64) -> RungSlo {
        RungSlo { multiplier, interactive_p99_ratio: ratio, corrupt, shed_frac: shed }
    }

    #[test]
    fn clean_campaign_passes() {
        let rungs = [
            rung(1.0, 0.2, 0, 0.00),
            rung(2.0, 0.3, 0, 0.00),
            rung(4.0, 0.5, 0, 0.02),
            rung(8.0, 0.8, 0, 0.02),
            rung(16.0, 0.95, 0, 0.10),
        ];
        assert!(check_contract(&rungs).is_empty());
    }

    #[test]
    fn deadline_corrupt_and_monotonicity_violations_are_all_reported() {
        let rungs = [rung(1.0, 0.5, 0, 0.10), rung(2.0, 1.2, 1, 0.05)];
        let v = check_contract(&rungs);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v[0].contains("p99 lateness"));
        assert!(v[1].contains("corrupt"));
        assert!(v[2].contains("monotone"));
    }

    #[test]
    fn exact_ties_and_float_noise_do_not_trip_monotonicity() {
        let rungs = [rung(1.0, 0.1, 0, 0.05), rung(2.0, 0.1, 0, 0.05 - 1e-12)];
        assert!(check_contract(&rungs).is_empty());
    }
}
