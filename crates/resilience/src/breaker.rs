//! Per-device circuit breakers: closed → open → half-open with
//! deterministic trip and recovery thresholds.
//!
//! The breaker scores a pool member's recent dispatch outcomes with an
//! exponentially-decayed failure score (`score ← α·fail + (1-α)·score`):
//! the member's fault state already decides *which* dispatches fail (the
//! seeded plan), so the score — and therefore every trip and recovery —
//! is a pure function of the seeded outcome stream and modeled time.
//! When the score crosses the trip threshold the breaker opens and the
//! member stops receiving work; after a modeled cooldown it half-opens
//! and admits probe traffic; enough consecutive clean probes close it,
//! one failed probe re-opens it.

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, outcomes feed the failure score.
    Closed,
    /// Tripped: no traffic until the cooldown elapses.
    Open,
    /// Probing: traffic flows; clean probes close, one failure re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable label used in metric series and reports.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// One recorded state change, for metric accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    pub from: BreakerState,
    pub to: BreakerState,
}

/// Trip/recovery thresholds. All values are deterministic constants; the
/// only run-to-run variation comes from the seeded outcome stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// EWMA weight of the newest outcome in the failure score.
    pub decay: f64,
    /// Open once the failure score reaches this (after `min_observed`).
    pub trip_score: f64,
    /// Outcomes required before the score is trusted enough to trip.
    pub min_observed: u32,
    /// Modeled seconds an open breaker waits before half-opening.
    pub cooldown_s: f64,
    /// Consecutive clean half-open probes required to close.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    /// `decay` 0.35 / `trip_score` 0.5 trips on the 2nd–3rd consecutive
    /// failure from a clean score; `min_observed` 3 keeps a single early
    /// fault from tripping a barely-used member; the cooldown is set by
    /// the server relative to its mean service estimate.
    fn default() -> Self {
        BreakerConfig {
            decay: 0.35,
            trip_score: 0.5,
            min_observed: 3,
            cooldown_s: 1.0,
            probe_successes: 2,
        }
    }
}

/// The per-member breaker state machine.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Exponentially-decayed failure score in `[0, 1]`.
    score: f64,
    /// Outcomes observed since the last close (gates the trip).
    observed: u32,
    /// Modeled time the breaker last opened.
    opened_at_s: f64,
    /// Clean probes accumulated while half-open.
    probes_ok: u32,
    /// Lifetime count of opens (for reports).
    opens: u64,
}

impl CircuitBreaker {
    /// Fresh closed breaker.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            score: 0.0,
            observed: 0,
            opened_at_s: 0.0,
            probes_ok: 0,
            opens: 0,
        }
    }

    /// Current position (without advancing time).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Current failure score.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Lifetime number of times the breaker opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Whether the member may receive traffic at modeled time `now_s`.
    /// An open breaker whose cooldown has elapsed half-opens here (the
    /// lazy time-based edge), returning the transition for metering.
    pub fn accepting(&mut self, now_s: f64) -> (bool, Option<Transition>) {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => (true, None),
            BreakerState::Open => {
                if now_s - self.opened_at_s >= self.cfg.cooldown_s {
                    self.state = BreakerState::HalfOpen;
                    self.probes_ok = 0;
                    (
                        true,
                        Some(Transition { from: BreakerState::Open, to: BreakerState::HalfOpen }),
                    )
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Feed one dispatch outcome (`ok` = the batch completed without a
    /// typed error) at modeled time `now_s`. Returns a transition when
    /// the outcome tripped, re-opened, or closed the breaker.
    pub fn on_outcome(&mut self, ok: bool, now_s: f64) -> Option<Transition> {
        match self.state {
            BreakerState::Closed => {
                self.observed = self.observed.saturating_add(1);
                let fail = if ok { 0.0 } else { 1.0 };
                self.score = self.cfg.decay * fail + (1.0 - self.cfg.decay) * self.score;
                if self.observed >= self.cfg.min_observed && self.score >= self.cfg.trip_score {
                    self.open_at(now_s);
                    return Some(Transition { from: BreakerState::Closed, to: BreakerState::Open });
                }
                None
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.probes_ok += 1;
                    if self.probes_ok >= self.cfg.probe_successes {
                        self.state = BreakerState::Closed;
                        self.score = 0.0;
                        self.observed = 0;
                        return Some(Transition {
                            from: BreakerState::HalfOpen,
                            to: BreakerState::Closed,
                        });
                    }
                    None
                } else {
                    self.open_at(now_s);
                    Some(Transition { from: BreakerState::HalfOpen, to: BreakerState::Open })
                }
            }
            // Outcomes can still arrive while open (a hedge losing late);
            // they neither reset the cooldown nor change the score.
            BreakerState::Open => None,
        }
    }

    fn open_at(&mut self, now_s: f64) {
        self.state = BreakerState::Open;
        self.opened_at_s = now_s;
        self.probes_ok = 0;
        self.opens += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { cooldown_s: 10.0, ..BreakerConfig::default() }
    }

    #[test]
    fn trips_after_consecutive_failures_and_not_before_min_observed() {
        let mut b = CircuitBreaker::new(cfg());
        // Two early failures: score 0.35, then 0.5775 — but only 2
        // observations, so min_observed gates the trip.
        assert!(b.on_outcome(false, 0.0).is_none());
        assert!(b.on_outcome(false, 1.0).is_none());
        assert_eq!(b.state(), BreakerState::Closed);
        let t = b.on_outcome(false, 2.0).expect("third failure trips");
        assert_eq!(t, Transition { from: BreakerState::Closed, to: BreakerState::Open });
        assert_eq!(b.opens(), 1);
        assert!(!b.accepting(2.5).0, "open breaker takes no traffic inside the cooldown");
    }

    #[test]
    fn successes_decay_the_score_and_keep_it_closed() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..51 {
            // One failure in three: the score peaks at
            // 0.35 / (1 - 0.65^3) ≈ 0.48, just under the 0.5 trip line —
            // a moderate failure rate degrades but never trips.
            let t = b.on_outcome(i % 3 != 0, i as f64);
            assert!(t.is_none(), "1-in-3 failures tripped at {i}");
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_half_opens_then_probes_close() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..3 {
            b.on_outcome(false, i as f64);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Still cooling at t=11.9 (opened at 2.0, cooldown 10).
        assert!(!b.accepting(11.9).0);
        let (ok, t) = b.accepting(12.0);
        assert!(ok);
        assert_eq!(t, Some(Transition { from: BreakerState::Open, to: BreakerState::HalfOpen }));
        // Two clean probes close it and reset the score.
        assert!(b.on_outcome(true, 12.5).is_none());
        let t = b.on_outcome(true, 13.0).expect("second probe closes");
        assert_eq!(t.to, BreakerState::Closed);
        assert_eq!(b.score(), 0.0);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_the_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..3 {
            b.on_outcome(false, i as f64);
        }
        assert!(b.accepting(12.0).0, "half-open after cooldown");
        let t = b.on_outcome(false, 12.5).expect("failed probe re-opens");
        assert_eq!(t, Transition { from: BreakerState::HalfOpen, to: BreakerState::Open });
        assert_eq!(b.opens(), 2);
        // The cooldown restarts from the re-open time.
        assert!(!b.accepting(20.0).0);
        assert!(b.accepting(22.5).0);
    }

    #[test]
    fn deterministic_replay_produces_identical_state() {
        let outcomes = [true, false, false, false, true, false, true, true, true];
        let run = || {
            let mut b = CircuitBreaker::new(cfg());
            let mut trace = Vec::new();
            for (i, &ok) in outcomes.iter().enumerate() {
                trace.push((b.accepting(i as f64).0, b.on_outcome(ok, i as f64)));
            }
            (trace, b.state(), b.score().to_bits(), b.opens())
        };
        assert_eq!(run(), run());
    }
}
