//! Hedged re-dispatch thresholds derived from telemetry latency
//! histograms.
//!
//! The classic tail-tolerance move: once a dispatch has run longer than a
//! high quantile of its peers, issue a speculative second attempt on
//! another healthy device and take whichever completes first. The
//! threshold must be *derived*, not guessed — a [`HedgeTracker`] folds
//! every observed per-key (per-app) service time into the telemetry
//! layer's [`LogLinearHistogram`] and reports
//! `quantile(q) · multiplier` once enough samples exist. Everything is a
//! pure function of the observed (seeded, deterministic) service stream,
//! so the hedge decision replays bit-identically.

use ompx_telemetry::LogLinearHistogram;
use std::collections::BTreeMap;

/// Threshold shape: which quantile anchors the hedge and how much slack
/// it gets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Quantile of the observed service distribution the threshold
    /// anchors on.
    pub quantile: f64,
    /// Multiplier on the anchored quantile (hedging at exactly p95 would
    /// hedge 5% of healthy traffic; 1.5× gives faults room to stand out).
    pub multiplier: f64,
    /// Observations required per key before a threshold is derived at
    /// all — hedging off two samples is noise, not policy.
    pub min_samples: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig { quantile: 0.95, multiplier: 1.5, min_samples: 16 }
    }
}

/// Per-key service-time tracker (keys are app names in `ompx-serve`).
#[derive(Debug, Clone)]
pub struct HedgeTracker {
    cfg: HedgeConfig,
    observed: BTreeMap<String, LogLinearHistogram>,
}

impl HedgeTracker {
    /// Fresh tracker with `cfg` thresholds.
    pub fn new(cfg: HedgeConfig) -> HedgeTracker {
        HedgeTracker { cfg, observed: BTreeMap::new() }
    }

    /// The threshold shape in use.
    pub fn config(&self) -> HedgeConfig {
        self.cfg
    }

    /// Record one completed primary dispatch of `key` that took
    /// `service_s` modeled seconds. (Hedge attempts are *not* recorded —
    /// they are conditioned on being slow, and would drag the threshold
    /// up toward the tail it exists to cut.)
    pub fn observe(&mut self, key: &str, service_s: f64) {
        self.observed
            .entry(key.to_string())
            .or_insert_with(|| LogLinearHistogram::new(ompx_telemetry::DEFAULT_REL_ERR))
            .record(service_s);
    }

    /// Samples observed for `key`.
    pub fn samples(&self, key: &str) -> u64 {
        self.observed.get(key).map_or(0, |h| h.count())
    }

    /// The hedge threshold for `key`: `quantile(q) · multiplier`, or
    /// `None` until `min_samples` observations exist.
    pub fn threshold_s(&self, key: &str) -> Option<f64> {
        let h = self.observed.get(key)?;
        if h.count() < self.cfg.min_samples {
            return None;
        }
        Some(h.quantile(self.cfg.quantile) * self.cfg.multiplier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_threshold_until_min_samples() {
        let mut t = HedgeTracker::new(HedgeConfig { min_samples: 4, ..HedgeConfig::default() });
        for _ in 0..3 {
            t.observe("adam", 0.010);
        }
        assert_eq!(t.threshold_s("adam"), None);
        t.observe("adam", 0.010);
        assert!(t.threshold_s("adam").is_some());
        assert_eq!(t.threshold_s("xsbench"), None, "keys are independent");
    }

    #[test]
    fn threshold_tracks_the_quantile_times_multiplier() {
        let cfg = HedgeConfig { quantile: 0.95, multiplier: 1.5, min_samples: 10 };
        let mut t = HedgeTracker::new(cfg);
        // 100 samples at 10ms: every quantile is ~10ms (within the 1%
        // histogram error), so the threshold is ~15ms.
        for _ in 0..100 {
            t.observe("su3", 0.010);
        }
        let th = t.threshold_s("su3").unwrap();
        assert!((th - 0.015).abs() < 0.015 * 0.02, "threshold {th}");
        // A normal sample sits under it, a 3× straggler over it.
        assert!(0.010 < th);
        assert!(0.030 > th);
    }

    #[test]
    fn tracker_is_deterministic_for_a_fixed_stream() {
        let run = || {
            let mut t = HedgeTracker::new(HedgeConfig::default());
            for i in 0..200u32 {
                t.observe("rsbench", 1e-3 * (1.0 + f64::from(i % 17)));
            }
            t.threshold_s("rsbench").unwrap().to_bits()
        };
        assert_eq!(run(), run());
    }
}
