//! Criterion benches: one group per Figure 8 subfigure (8a–8l).
//!
//! Each group measures the *wall time of the functional simulation* for
//! the four program versions at test scale — useful for tracking the
//! reproduction's own performance and for spotting regressions in the
//! executor. The paper-facing modeled times are produced by the `figures`
//! binary (`cargo run --release -p ompx-bench --bin figures -- fig8`).

use criterion::{criterion_group, criterion_main, Criterion};
use ompx_hecbench::{run_app, ProgVersion, System, WorkScale, APP_NAMES};

fn bench_panel(c: &mut Criterion, app: &'static str, sys: System) {
    let mut group = c.benchmark_group(format!(
        "fig{}_{}_{}",
        ompx_bench::subfigure_label(app, sys),
        app,
        sys.label()
    ));
    group.sample_size(10);
    for version in ProgVersion::all() {
        group.bench_function(version.label(sys), |b| {
            b.iter(|| std::hint::black_box(run_app(app, sys, version, WorkScale::Test)));
        });
    }
    group.finish();
}

fn fig8_nvidia(c: &mut Criterion) {
    for app in APP_NAMES {
        bench_panel(c, app, System::Nvidia);
    }
}

fn fig8_amd(c: &mut Criterion) {
    for app in APP_NAMES {
        bench_panel(c, app, System::Amd);
    }
}

criterion_group!(benches, fig8_nvidia, fig8_amd);
criterion_main!(benches);
