//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `ablation_bare_vs_generic` — the same loop launched bare / SPMD /
//!   generic: how much the execution-mode machinery costs in the
//!   functional simulator (the modeled costs are asserted in unit tests).
//! * `ablation_globalization` — per-thread scratch on the globalized heap
//!   vs shared memory vs thread-local.
//! * `ablation_block_exec` — the executor's serial fast path vs the
//!   barrier-capable team path for a barrier-free kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use ompx::BareTarget;
use ompx_hostrt::{OpenMp, QuirkSet};
use ompx_sim::prelude::*;

const N: usize = 16_384;
const BLOCK: u32 = 64;

fn ablation_bare_vs_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bare_vs_generic");
    group.sample_size(10);

    group.bench_function("bare", |b| {
        let omp = ompx::runtime_on(Device::new(DeviceProfile::test_small()));
        let buf = omp.device().alloc::<f32>(N);
        b.iter(|| {
            BareTarget::new(&omp, "abl_bare")
                .num_teams([(N as u32) / BLOCK])
                .thread_limit([BLOCK])
                .launch({
                    let buf = buf.clone();
                    move |tc| {
                        let i = tc.global_thread_id_x();
                        if i < N {
                            tc.write(&buf, i, i as f32);
                        }
                    }
                })
                .unwrap()
        });
    });

    for (name, quirk) in [
        ("spmd", QuirkSet::default()),
        ("generic", QuirkSet { force_generic: true, ..Default::default() }),
    ] {
        group.bench_function(name, |b| {
            let omp = OpenMp::test_system();
            omp.quirks().set("abl_mode", quirk);
            let buf = omp.device().alloc::<f32>(N);
            b.iter(|| {
                omp.target("abl_mode")
                    .num_teams((N as u32) / BLOCK)
                    .thread_limit(BLOCK)
                    .run_distribute_parallel_for(N, {
                        let buf = buf.clone();
                        move |tc, i, _s| tc.write(&buf, i, i as f32)
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn ablation_globalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_globalization");
    group.sample_size(10);

    for (name, quirk) in [
        ("heap", QuirkSet::default()),
        ("shared", QuirkSet { heap_to_shared: true, ..Default::default() }),
    ] {
        group.bench_function(name, |b| {
            let omp = OpenMp::test_system();
            omp.quirks().set("abl_glob", quirk);
            b.iter(|| {
                omp.target("abl_glob")
                    .num_teams(16)
                    .thread_limit(BLOCK)
                    .scratch_f64(8)
                    .run_distribute_parallel_for(N, move |tc, i, s| {
                        for j in 0..8 {
                            s.set(tc, j, (i + j) as f64);
                        }
                        let mut acc = 0.0;
                        for j in 0..8 {
                            acc += s.get(tc, j);
                        }
                        std::hint::black_box(acc);
                    })
                    .unwrap()
            });
        });
    }

    group.bench_function("thread_local", |b| {
        let omp = ompx::runtime_on(Device::new(DeviceProfile::test_small()));
        b.iter(|| {
            BareTarget::new(&omp, "abl_local")
                .num_teams([(N as u32) / BLOCK])
                .thread_limit([BLOCK])
                .launch(move |tc| {
                    let i = tc.global_thread_id_x();
                    let mut arr = tc.local_array::<f64>(8);
                    for j in 0..8 {
                        tc.lwrite(&mut arr, j, (i + j) as f64);
                    }
                    let mut acc = 0.0;
                    for j in 0..8 {
                        acc += tc.lread(&arr, j);
                    }
                    std::hint::black_box(acc);
                })
                .unwrap()
        });
    });
    group.finish();
}

fn ablation_block_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_block_exec");
    group.sample_size(10);
    let dev = Device::new(DeviceProfile::test_small());
    let buf = dev.alloc::<f32>(N);

    let body = |buf: ompx_sim::mem::DBuf<f32>| {
        move |tc: &mut ThreadCtx<'_>| {
            let i = tc.global_thread_id_x();
            if i < N {
                tc.flops(4);
                tc.write(&buf, i, (i as f32).sqrt());
            }
        }
    };

    group.bench_function("serial_path", |b| {
        let k = Kernel::new("abl_serial", body(buf.clone()));
        b.iter(|| dev.launch(&k, LaunchConfig::linear(N, BLOCK)).unwrap());
    });
    group.bench_function("team_path", |b| {
        // Force the team executor by declaring (unused) barrier usage.
        let k = Kernel::with_flags(
            "abl_team",
            KernelFlags { uses_block_sync: true, uses_warp_ops: false },
            body(buf.clone()),
        );
        b.iter(|| dev.launch(&k, LaunchConfig::linear(N, BLOCK)).unwrap());
    });
    group.finish();
}

fn ablation_racecheck(c: &mut Criterion) {
    // Cost of the shared-memory race detector on a barrier-heavy kernel,
    // toggled by attaching a racecheck sanitizer session to the device.
    use ompx_sim::san::{SanState, ToolMask};
    let mut group = c.benchmark_group("ablation_racecheck");
    group.sample_size(10);
    let dev = Device::new(DeviceProfile::test_small());
    for (name, racecheck) in [("off", false), ("on", true)] {
        group.bench_function(name, |b| {
            if racecheck {
                dev.attach_sanitizer(SanState::new(ToolMask::RACECHECK));
            } else {
                dev.detach_sanitizer();
            }
            let mut cfg = LaunchConfig::new(16u32, 64u32);
            let slot = cfg.shared_array::<f32>(64);
            let k = Kernel::with_flags(
                "abl_race",
                KernelFlags { uses_block_sync: true, uses_warp_ops: false },
                move |tc: &mut ThreadCtx<'_>| {
                    let tile = tc.shared::<f32>(slot);
                    let t = tc.thread_rank();
                    tc.swrite(&tile, t, t as f32);
                    tc.sync_threads();
                    let v = tc.sread(&tile, (t + 1) % 64);
                    std::hint::black_box(v);
                },
            );
            b.iter(|| dev.launch(&k, cfg.clone()).unwrap());
        });
    }
    dev.detach_sanitizer();
    group.finish();
}

criterion_group!(
    benches,
    ablation_bare_vs_generic,
    ablation_globalization,
    ablation_block_exec,
    ablation_racecheck
);
criterion_main!(benches);
