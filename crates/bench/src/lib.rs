//! # ompx-bench — regenerating the paper's tables and figures
//!
//! * **Figure 6** (benchmark table) — [`print_fig6`]
//! * **Figure 7** (hardware/software configuration) — [`print_fig7`]
//! * **Figure 8 a–l** (six benchmarks × four versions × two systems) —
//!   [`run_fig8`] / [`print_fig8`], which also compares each bar against
//!   the value read off the paper's plots ([`paper_reference_seconds`]).
//!
//! The Criterion benches under `benches/` measure the wall time of the
//! *simulator* for each program version (useful for tracking the
//! reproduction itself); the paper-facing numbers are the modeled times
//! printed by the `figures` binary and recorded in EXPERIMENTS.md.

use ompx_hecbench::{run_app, ProgVersion, RunOutcome, System, WorkScale, APP_NAMES};

/// Approximate bar heights read from the paper's Figure 8 plots, in
/// seconds. `None` = the paper excluded the series (XSBench `omp`).
pub fn paper_reference_seconds(app: &str, sys: System, label: &str) -> Option<f64> {
    let ms = 1e-3;
    let v = match (app, sys, label) {
        ("xsbench", System::Nvidia, "ompx") => 0.74,
        ("xsbench", System::Nvidia, "omp") => return None,
        ("xsbench", System::Nvidia, "cuda") => 0.85,
        ("xsbench", System::Nvidia, "cuda-nvcc") => 0.85,
        ("xsbench", System::Amd, "ompx") => 0.55,
        ("xsbench", System::Amd, "omp") => return None,
        ("xsbench", System::Amd, "hip") => 0.65,
        ("xsbench", System::Amd, "hip-hipcc") => 0.66,

        ("rsbench", System::Nvidia, "ompx") => 1.6,
        ("rsbench", System::Nvidia, "omp") => 1.8,
        ("rsbench", System::Nvidia, "cuda") => 2.0,
        ("rsbench", System::Nvidia, "cuda-nvcc") => 1.9,
        ("rsbench", System::Amd, "ompx") => 2.5,
        ("rsbench", System::Amd, "omp") => 3.5,
        ("rsbench", System::Amd, "hip") => 3.1,
        ("rsbench", System::Amd, "hip-hipcc") => 3.0,

        ("su3", System::Nvidia, "ompx") => 1.09,
        ("su3", System::Nvidia, "omp") => 1.3,
        ("su3", System::Nvidia, "cuda") => 1.0,
        ("su3", System::Nvidia, "cuda-nvcc") => 1.05,
        ("su3", System::Amd, "ompx") => 1.2,
        ("su3", System::Amd, "omp") => 1.8,
        ("su3", System::Amd, "hip") => 1.54,
        ("su3", System::Amd, "hip-hipcc") => 1.5,

        ("aidw", System::Nvidia, "ompx") => 84.0 * ms,
        ("aidw", System::Nvidia, "omp") => 86.0 * ms,
        ("aidw", System::Nvidia, "cuda") => 80.0 * ms,
        ("aidw", System::Nvidia, "cuda-nvcc") => 84.0 * ms,
        ("aidw", System::Amd, "ompx") => 200.0 * ms,
        ("aidw", System::Amd, "omp") => 205.0 * ms,
        ("aidw", System::Amd, "hip") => 200.0 * ms,
        ("aidw", System::Amd, "hip-hipcc") => 200.0 * ms,

        ("adam", System::Nvidia, "ompx") => 0.20 * ms,
        ("adam", System::Nvidia, "omp") => 1.60 * ms,
        ("adam", System::Nvidia, "cuda") => 0.20 * ms,
        ("adam", System::Nvidia, "cuda-nvcc") => 0.20 * ms,
        ("adam", System::Amd, "ompx") => 0.125 * ms,
        ("adam", System::Amd, "omp") => 1.59 * ms,
        ("adam", System::Amd, "hip") => 0.15 * ms,
        ("adam", System::Amd, "hip-hipcc") => 0.15 * ms,

        ("stencil", System::Nvidia, "ompx") => 0.85 * ms,
        ("stencil", System::Nvidia, "omp") => 145.6 * ms,
        ("stencil", System::Nvidia, "cuda") => 1.0 * ms,
        ("stencil", System::Nvidia, "cuda-nvcc") => 1.05 * ms,
        ("stencil", System::Amd, "ompx") => 0.95 * ms,
        ("stencil", System::Amd, "omp") => 60.87 * ms,
        ("stencil", System::Amd, "hip") => 1.1 * ms,
        ("stencil", System::Amd, "hip-hipcc") => 1.15 * ms,
        _ => return None,
    };
    Some(v)
}

/// Which subfigure (8a–8l) an (app, system) cell corresponds to.
pub fn subfigure_label(app: &str, sys: System) -> &'static str {
    match (app, sys) {
        ("xsbench", System::Nvidia) => "8a",
        ("rsbench", System::Nvidia) => "8b",
        ("su3", System::Nvidia) => "8c",
        ("aidw", System::Nvidia) => "8d",
        ("adam", System::Nvidia) => "8e",
        ("stencil", System::Nvidia) => "8f",
        ("xsbench", System::Amd) => "8g",
        ("rsbench", System::Amd) => "8h",
        ("su3", System::Amd) => "8i",
        ("aidw", System::Amd) => "8j",
        ("adam", System::Amd) => "8k",
        ("stencil", System::Amd) => "8l",
        _ => "8?",
    }
}

/// Run the four program versions of one subfigure.
pub fn run_fig8(app: &str, sys: System, scale: WorkScale) -> Vec<RunOutcome> {
    ProgVersion::all().iter().map(|v| run_app(app, sys, *v, scale)).collect()
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:8.3} s ")
    } else if seconds >= 1e-3 {
        format!("{:8.3} ms", seconds * 1e3)
    } else {
        format!("{:8.3} us", seconds * 1e6)
    }
}

/// Print the Figure 6 table (benchmark descriptions + command lines).
pub fn print_fig6() {
    println!("Figure 6: Benchmarks including brief summary and the command line arguments.");
    println!("{:<12} {:<70} Command Line", "Name", "Description");
    println!("{}", "-".repeat(110));
    for b in ompx_hecbench::all_benchmarks() {
        println!("{:<12} {:<70} {}", b.name, b.description, b.paper_cmdline);
    }
}

/// Print the Figure 7 table (hardware/software configuration), from the
/// device profiles the simulator actually uses.
pub fn print_fig7() {
    use ompx_sim::device::DeviceProfile;
    let nv = DeviceProfile::a100();
    let amd = DeviceProfile::mi250();
    println!("Figure 7: Hardware and software configuration of the AMD and NVIDIA systems.");
    println!("{:<22} {:<28} {:<28}", "", "AMD", "NVIDIA");
    println!("{}", "-".repeat(78));
    println!("{:<22} {:<28} {:<28}", "GPU", amd.name, nv.name);
    println!("{:<22} {:<28} {:<28}", "CPU", "AMD EPYC 7532", "AMD EPYC 7532");
    println!("{:<22} {:<28} {:<28}", "Memory", "256 GB", "512 GB");
    println!("{:<22} {:<28} {:<28}", "SDK", "ROCm 5.5 (modeled)", "CUDA 11.8 (modeled)");
    println!(
        "{:<22} {:<28} {:<28}",
        "SMs/CUs x warp",
        format!("{} x {}", amd.sm_count, amd.warp_size),
        format!("{} x {}", nv.sm_count, nv.warp_size)
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "Memory bandwidth",
        format!("{:.0} GB/s", amd.mem_bw_bytes_per_s / 1e9),
        format!("{:.0} GB/s", nv.mem_bw_bytes_per_s / 1e9)
    );
}

/// Render the subfigure's bars the way the paper draws them: horizontal
/// bars normalized to the native-LLVM baseline (the figure's dotted line).
/// Excluded and pathological series are capped and annotated.
fn render_bars(outcomes: &[ompx_hecbench::RunOutcome], baseline: f64) {
    const WIDTH: f64 = 46.0;
    for o in outcomes {
        let rel = o.reported_seconds / baseline;
        let capped = rel.min(3.0);
        let len = ((capped / 3.0) * WIDTH).round().max(1.0) as usize;
        let bar: String = "█".repeat(len);
        let overflow = if rel > 3.0 { "▸" } else { " " };
        let marker = if o.excluded { " (excluded in paper)" } else { "" };
        println!("  {:<10} |{bar:<46}{overflow} {rel:6.2}x{marker}", o.label);
    }
    let baseline_pos = ((1.0 / 3.0) * WIDTH).round() as usize;
    println!("  {:<10} |{}^ 1.00x = native (LLVM/Clang)", "", " ".repeat(baseline_pos));
}

/// Print one Figure 8 subfigure with paper-reference comparison.
pub fn print_fig8(app: &str, sys: System, scale: WorkScale) {
    let info = ompx_hecbench::all_benchmarks()
        .into_iter()
        .find(|b| b.name.to_lowercase().starts_with(&app[..3]))
        .expect("benchmark info");
    let outcomes = run_fig8(app, sys, scale);
    println!(
        "Figure {} — {} on {} ({})",
        subfigure_label(app, sys),
        info.name,
        sys.label(),
        info.reported_metric
    );
    println!("{:<12} {:>12} {:>12} {:>9}  notes", "version", "modeled", "paper", "mod/paper");
    // Baseline = the native LLVM/Clang version (the figure's dotted line).
    let baseline = outcomes
        .iter()
        .find(|o| o.label == "cuda" || o.label == "hip")
        .map(|o| o.reported_seconds)
        .unwrap_or(f64::NAN);
    for o in &outcomes {
        let paper = paper_reference_seconds(app, sys, &o.label);
        let cmp = match paper {
            Some(p) => format!("{:9.2}", o.reported_seconds / p),
            None => format!("{:>9}", "-"),
        };
        let mut notes = Vec::new();
        if o.excluded {
            notes.push("EXCLUDED IN PAPER".to_string());
        }
        if let Some(n) = &o.note {
            notes.push(n.clone());
        }
        notes.push(format!(
            "{:.2}x of {}",
            o.reported_seconds / baseline,
            if sys == System::Nvidia { "cuda" } else { "hip" }
        ));
        println!(
            "{:<12} {:>12} {:>12} {}  {}",
            o.label,
            fmt_time(o.reported_seconds),
            paper.map(fmt_time).unwrap_or_else(|| "    -    ".into()),
            cmp,
            notes.join("; ")
        );
    }
    render_bars(&outcomes, baseline);
    println!();
}

/// All apps (the full Figure 8).
pub fn print_fig8_all(sys: System, scale: WorkScale) {
    for app in APP_NAMES {
        print_fig8(app, sys, scale);
    }
}

/// Serialize the full Figure 8 data to CSV (one row per bar), including
/// paper references and checksums — the machine-readable companion to
/// EXPERIMENTS.md.
pub fn fig8_csv(scale: WorkScale) -> String {
    let mut out = String::from(
        "subfigure,app,system,version,modeled_seconds,paper_seconds,checksum,excluded,note\n",
    );
    for sys in [System::Nvidia, System::Amd] {
        for app in APP_NAMES {
            for o in run_fig8(app, sys, scale) {
                let paper = paper_reference_seconds(app, sys, &o.label)
                    .map(|p| format!("{p:.6}"))
                    .unwrap_or_default();
                let note = o.note.clone().unwrap_or_default().replace(',', ";");
                out.push_str(&format!(
                    "{},{},{},{},{:.9},{},{:#018x},{},{}\n",
                    subfigure_label(app, sys),
                    app,
                    sys.label(),
                    o.label,
                    o.reported_seconds,
                    paper,
                    o.checksum,
                    o.excluded,
                    note
                ));
            }
        }
    }
    out
}

/// One assertion of the DESIGN.md §3 shape table.
pub struct ShapeCheck {
    /// Human-readable statement of the paper observation.
    pub claim: &'static str,
    /// Did the modeled numbers satisfy it?
    pub pass: bool,
    /// The measured quantity backing the verdict.
    pub detail: String,
}

/// Evaluate the full DESIGN.md shape table against modeled results at the
/// given scale. This is the machine-checked core of EXPERIMENTS.md.
pub fn shape_checks(scale: WorkScale) -> Vec<ShapeCheck> {
    let t = |app: &str, sys: System, v: ProgVersion| run_app(app, sys, v, scale).reported_seconds;
    use ProgVersion::{Native, NativeVendor, Omp, Ompx};
    use System::{Amd, Nvidia};
    let mut checks = Vec::new();
    let mut push = |claim: &'static str, pass: bool, detail: String| {
        checks.push(ShapeCheck { claim, pass, detail })
    };

    // XSBench
    for sys in [Nvidia, Amd] {
        let (o, n, v) =
            (t("xsbench", sys, Ompx), t("xsbench", sys, Native), t("xsbench", sys, NativeVendor));
        push(
            "XSBench: ompx beats native under both compilers",
            o < n && o < v,
            format!("{}: ompx/native = {:.3}", sys.label(), o / n),
        );
    }
    push(
        "XSBench: omp series flagged excluded (invalid checksum in paper)",
        run_app("xsbench", Nvidia, Omp, scale).excluded,
        "flag carried".into(),
    );

    // RSBench
    {
        let (o, m, n) =
            (t("rsbench", Nvidia, Ompx), t("rsbench", Nvidia, Omp), t("rsbench", Nvidia, Native));
        push(
            "RSBench A100: ompx < omp < cuda (omp beats cuda via heap-to-shared)",
            o < m && m < n,
            format!("ompx {o:.3}, omp {m:.3}, cuda {n:.3}"),
        );
        let (o, m, n) =
            (t("rsbench", Amd, Ompx), t("rsbench", Amd, Omp), t("rsbench", Amd, Native));
        push(
            "RSBench MI250: ompx < hip; omp slowest",
            o < n && n < m,
            format!("ompx {o:.3}, hip {n:.3}, omp {m:.3}"),
        );
    }

    // SU3 crossover
    {
        let r = t("su3", Nvidia, Ompx) / t("su3", Nvidia, Native);
        push(
            "SU3 A100: ompx/cuda in 1.03..1.20 (paper ~1.09)",
            (1.03..1.20).contains(&r),
            format!("{r:.3}"),
        );
        let r = t("su3", Amd, Native) / t("su3", Amd, Ompx);
        push(
            "SU3 MI250: hip/ompx in 1.15..1.50 (paper ~1.28)",
            (1.15..1.50).contains(&r),
            format!("{r:.3}"),
        );
    }

    // AIDW
    {
        let times: Vec<f64> = ProgVersion::all().iter().map(|v| t("aidw", Amd, *v)).collect();
        let spread = times.iter().cloned().fold(0.0f64, f64::max)
            / times.iter().cloned().fold(f64::INFINITY, f64::min);
        push(
            "AIDW MI250: all four versions within 25%",
            spread < 1.25,
            format!("spread {spread:.3}"),
        );
        let r = t("aidw", Nvidia, Ompx) / t("aidw", Nvidia, Native);
        push(
            "AIDW A100: ompx a few % behind clang-cuda",
            (1.01..1.20).contains(&r),
            format!("{r:.3}"),
        );
        let r = t("aidw", Nvidia, Ompx) / t("aidw", Nvidia, NativeVendor);
        push("AIDW A100: ompx matches cuda-nvcc", (0.9..1.1).contains(&r), format!("{r:.3}"));
    }

    // Adam
    for sys in [Nvidia, Amd] {
        let r = t("adam", sys, Omp) / t("adam", sys, Native);
        push(
            "Adam: omp an order of magnitude slower (32-thread bug)",
            (4.0..30.0).contains(&r),
            format!("{}: omp/native = {r:.2}", sys.label()),
        );
    }
    {
        let r = t("adam", Amd, Native) / t("adam", Amd, Ompx);
        push("Adam MI250: ompx beats hip (paper 16.6%)", r > 1.05, format!("hip/ompx = {r:.3}"));
    }

    // Stencil
    for sys in [Nvidia, Amd] {
        let o = t("stencil", sys, Ompx);
        let n = t("stencil", sys, Native);
        let m = t("stencil", sys, Omp);
        push(
            "Stencil: ompx beats native; omp two orders of magnitude slower",
            o < n && m / o > 50.0,
            format!("{}: ompx/native = {:.3}, omp/ompx = {:.1}", sys.label(), o / n, m / o),
        );
    }
    checks
}

/// Verify cross-version checksum agreement for one app on both systems.
/// Returns the common checksum on success.
pub fn verify_app(app: &str, scale: WorkScale) -> Result<u64, String> {
    let mut sums = std::collections::HashMap::new();
    for sys in [System::Nvidia, System::Amd] {
        for v in ProgVersion::all() {
            let r = run_app(app, sys, v, scale);
            sums.entry(r.checksum).or_insert_with(Vec::new).push(format!(
                "{}/{}",
                sys.label(),
                r.label
            ));
        }
    }
    if sums.len() == 1 {
        Ok(*sums.keys().next().unwrap())
    } else {
        Err(format!("{app}: checksum divergence: {sums:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subfigures_cover_a_through_l() {
        let mut labels = Vec::new();
        for sys in [System::Nvidia, System::Amd] {
            for app in APP_NAMES {
                labels.push(subfigure_label(app, sys));
            }
        }
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn paper_reference_covers_every_bar() {
        for sys in [System::Nvidia, System::Amd] {
            for app in APP_NAMES {
                for v in ProgVersion::all() {
                    let label = v.label(sys);
                    let r = paper_reference_seconds(app, sys, label);
                    // Only the XSBench omp series is absent (excluded).
                    if app == "xsbench" && label == "omp" {
                        assert!(r.is_none());
                    } else {
                        assert!(
                            r.is_some(),
                            "missing paper value for {app}/{}/{label}",
                            sys.label()
                        );
                    }
                }
            }
        }
    }
}
