//! `simspeed` — wall-clock speed and determinism gate for the parallel
//! simulator:
//!
//! ```text
//! simspeed                                  # full matrix, report only
//! simspeed --runs 5 --test-scale
//! simspeed --bench-out results/BENCH_simspeed.json --csv-out results/BENCH_simspeed.csv
//! simspeed --baseline results/BENCH_simspeed.json   # gate: exit 1 on drift
//! ```
//!
//! Every (app, program version) cell of the HeCBench matrix runs twice:
//! once in reference serial mode (one worker) and once with the full host
//! worker budget. The gate holds the simulator to its contract:
//!
//! * **bit identity** — the parallel checksum must equal the serial
//!   checksum for every cell, on every run;
//! * **trace identity** — the memory trace of a barrier-heavy cell and the
//!   sanitizer report of a racy fixture must serialize to the same bytes
//!   under one worker and under the full budget;
//! * **speed** — on a multi-core host the parallel matrix must complete at
//!   least `MIN_SPEEDUP` times faster than serial mode. On a single-core
//!   host (or `OMPX_SIM_WORKERS=1`) the speedup is reported but not
//!   enforced — identity always is.
//!
//! `--baseline` compares per-cell checksums against a committed
//! `BENCH_simspeed.json` and exits non-zero on any mismatch; wall-clock
//! numbers are machine-dependent and deliberately not part of the
//! baseline diff.

use ompx_hecbench::{run_app, with_mem_trace_full, ProgVersion, System, WorkScale, APP_NAMES};
use ompx_prof::jsonio;
use ompx_sanitizer::fixtures;
use ompx_sim::exec;
use std::time::Instant;

/// Speedup the parallel executor must reach over serial mode on hosts
/// where it actually has more than one worker.
const MIN_SPEEDUP: f64 = 1.5;

fn usage() -> ! {
    eprintln!(
        "usage: simspeed [--runs N] [--test-scale] [--system nvidia|amd]\n\
         \x20               [--bench-out FILE] [--csv-out FILE] [--baseline FILE]"
    );
    std::process::exit(2);
}

struct Opts {
    runs: usize,
    scale: WorkScale,
    system: System,
    bench_out: Option<String>,
    csv_out: Option<String>,
    baseline: Option<String>,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        runs: 3,
        scale: WorkScale::Default,
        system: System::Nvidia,
        bench_out: None,
        csv_out: None,
        baseline: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => o.runs = n,
                    _ => usage(),
                }
            }
            "--test-scale" => o.scale = WorkScale::Test,
            "--system" => {
                i += 1;
                o.system = match args.get(i).map(String::as_str) {
                    Some("nvidia") => System::Nvidia,
                    Some("amd") => System::Amd,
                    _ => usage(),
                };
            }
            "--bench-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.bench_out = Some(p.clone()),
                    None => usage(),
                }
            }
            "--csv-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.csv_out = Some(p.clone()),
                    None => usage(),
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.baseline = Some(p.clone()),
                    None => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    o
}

struct Cell {
    app: String,
    version: String,
    checksum: u64,
    wall_s_serial: f64,
    wall_s_parallel: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        if self.wall_s_parallel > 0.0 {
            self.wall_s_serial / self.wall_s_parallel
        } else {
            1.0
        }
    }
}

/// Best-of-`runs` wall time for one cell under the *current* worker
/// setting, with the checksum of every run (they must all agree).
fn time_cell(
    app: &str,
    sys: System,
    version: ProgVersion,
    scale: WorkScale,
    runs: usize,
) -> (f64, Vec<u64>) {
    let mut best = f64::INFINITY;
    let mut checksums = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        let outcome = run_app(app, sys, version, scale);
        best = best.min(t0.elapsed().as_secs_f64());
        checksums.push(outcome.checksum);
    }
    (best, checksums)
}

/// Canonical bytes of a traced barrier-heavy cell: every memory event and
/// barrier event in merged order. Identical bytes across worker counts is
/// the memtrace half of the determinism contract. Allocation ids come from
/// a process-global counter and differ between runs by construction, so
/// they are renumbered in first-appearance order before serializing.
fn trace_bytes(sys: System, scale: WorkScale) -> String {
    let (_, mut events, barriers) = with_mem_trace_full(|| {
        run_app("stencil", sys, ProgVersion::Native, scale);
    });
    let mut dense: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for e in &mut events {
        if let ompx_sim::memtrace::MemSpace::Global { alloc_id, .. } = &mut e.space {
            let next = dense.len();
            *alloc_id = *dense.entry(*alloc_id).or_insert(next);
        }
    }
    let mut out = String::new();
    for e in &events {
        out.push_str(&format!("{e:?}\n"));
    }
    for b in &barriers {
        out.push_str(&format!("{b:?}\n"));
    }
    out
}

/// Canonical bytes of a racy fixture's sanitizer report: finding order is
/// part of the determinism contract.
fn findings_bytes(fixture: &str) -> String {
    let (run, _) = fixtures::by_name(fixture).expect("known fixture");
    run().to_json()
}

fn write_file(path: &str, content: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("simspeed: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_json(
    cells: &[Cell],
    host_cores: usize,
    workers: usize,
    enforced: bool,
    runs: usize,
    scale: WorkScale,
    total_serial: f64,
    total_parallel: f64,
    identity_ok: bool,
) -> String {
    let mut lines = Vec::new();
    for c in cells {
        lines.push(format!(
            "    {{\"app\":\"{}\",\"version\":\"{}\",\"checksum\":\"{:#018x}\",\"wall_s_serial\":{:e},\"wall_s_parallel\":{:e},\"speedup\":{:.4}}}",
            c.app, c.version, c.checksum, c.wall_s_serial, c.wall_s_parallel, c.speedup()
        ));
    }
    let total_speedup = if total_parallel > 0.0 { total_serial / total_parallel } else { 1.0 };
    format!(
        "{{\n  \"schema\": \"ompx-bench-simspeed-v1\",\n  \"host_cores\": {host_cores},\n  \"workers\": {workers},\n  \"enforced\": {enforced},\n  \"runs\": {runs},\n  \"scale\": \"{}\",\n  \"identity_ok\": {identity_ok},\n  \"total_serial_s\": {total_serial:e},\n  \"total_parallel_s\": {total_parallel:e},\n  \"speedup\": {total_speedup:.4},\n  \"cells\": [\n{}\n  ]\n}}\n",
        match scale {
            WorkScale::Test => "test",
            _ => "default",
        },
        lines.join(",\n")
    )
}

fn bench_csv(cells: &[Cell]) -> String {
    let mut out = String::from("app,version,checksum,wall_s_serial,wall_s_parallel,speedup\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{:#018x},{:e},{:e},{:.4}\n",
            c.app,
            c.version,
            c.checksum,
            c.wall_s_serial,
            c.wall_s_parallel,
            c.speedup()
        ));
    }
    out
}

/// Diff per-cell checksums against a committed `BENCH_simspeed.json`.
/// Returns human-readable drift lines (empty = gate passed).
fn diff_baseline(cells: &[Cell], text: &str, scale: WorkScale) -> Result<Vec<String>, String> {
    let json = jsonio::parse(text)?;
    if json.get("schema").and_then(|s| s.as_str()) != Some("ompx-bench-simspeed-v1") {
        return Err("not an ompx-bench-simspeed-v1 file".into());
    }
    let want_scale = if scale == WorkScale::Test { "test" } else { "default" };
    let base_scale = json.get("scale").and_then(|s| s.as_str()).unwrap_or("default");
    if base_scale != want_scale {
        return Err(format!(
            "baseline was recorded at {base_scale} scale, this run is {want_scale} scale"
        ));
    }
    let base = json
        .get("cells")
        .and_then(|c| c.as_arr())
        .ok_or_else(|| "missing cells array".to_string())?;
    let mut drifts = Vec::new();
    for c in cells {
        let found = base.iter().find(|b| {
            b.get("app").and_then(|v| v.as_str()) == Some(c.app.as_str())
                && b.get("version").and_then(|v| v.as_str()) == Some(c.version.as_str())
        });
        let Some(found) = found else {
            drifts.push(format!("{}/{}: missing from baseline", c.app, c.version));
            continue;
        };
        let want = found
            .get("checksum")
            .and_then(|v| v.as_str())
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok());
        match want {
            Some(w) if w == c.checksum => {}
            Some(w) => drifts.push(format!(
                "{}/{}: checksum {:#018x}, baseline {:#018x}",
                c.app, c.version, c.checksum, w
            )),
            None => drifts.push(format!("{}/{}: unreadable baseline checksum", c.app, c.version)),
        }
    }
    Ok(drifts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse(&args);

    let host_cores = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);
    let workers = exec::default_workers();
    // The >=1.5x requirement only means something when the parallel
    // executor actually has parallelism to spend.
    let enforced = workers >= 2 && host_cores >= 2;

    let mut cells: Vec<Cell> = Vec::new();
    let mut identity_failures: Vec<String> = Vec::new();

    eprintln!(
        "simspeed: {} apps x {} versions, {} run(s)/cell, workers 1 vs {} ({} host cores)",
        APP_NAMES.len(),
        ProgVersion::all().len(),
        o.runs,
        workers,
        host_cores
    );

    for app in APP_NAMES {
        for version in ProgVersion::all() {
            exec::set_global_workers(Some(1));
            let (wall_serial, serial_sums) = time_cell(app, o.system, version, o.scale, o.runs);
            exec::set_global_workers(None);
            let (wall_parallel, parallel_sums) = time_cell(app, o.system, version, o.scale, o.runs);

            let label = version.label(o.system).to_string();
            let reference = serial_sums[0];
            for (mode, sums) in [("serial", &serial_sums), ("parallel", &parallel_sums)] {
                for (run, &sum) in sums.iter().enumerate() {
                    if sum != reference {
                        identity_failures.push(format!(
                            "{app}/{label}: {mode} run {run} checksum {sum:#018x} != reference {reference:#018x}"
                        ));
                    }
                }
            }
            let cell = Cell {
                app: app.to_string(),
                version: label,
                checksum: reference,
                wall_s_serial: wall_serial,
                wall_s_parallel: wall_parallel,
            };
            eprintln!(
                "  {:10} {:8} {:>9.4}s -> {:>9.4}s  ({:.2}x)  {:#018x}",
                cell.app,
                cell.version,
                cell.wall_s_serial,
                cell.wall_s_parallel,
                cell.speedup(),
                cell.checksum
            );
            cells.push(cell);
        }
    }

    // Byte-identity probes: a barrier-heavy traced cell and a racy
    // sanitizer fixture, serial vs parallel (twice, to also catch
    // run-to-run drift at full width). Always probed at test scale —
    // byte identity is a property of the merge, not of the workload size,
    // and the default-scale trace is hundreds of megabytes.
    exec::set_global_workers(Some(1));
    let trace_ref = trace_bytes(o.system, WorkScale::Test);
    let findings_ref = findings_bytes("shared-race");
    exec::set_global_workers(None);
    for round in 0..2 {
        let t = trace_bytes(o.system, WorkScale::Test);
        if t != trace_ref {
            identity_failures
                .push(format!("memtrace bytes differ from serial reference (round {round})"));
        }
        let f = findings_bytes("shared-race");
        if f != findings_ref {
            identity_failures.push(format!(
                "sanitizer report bytes differ from serial reference (round {round})"
            ));
        }
    }
    let identity_ok = identity_failures.is_empty();
    eprintln!(
        "simspeed: identity probes ({} trace bytes, {} report bytes): {}",
        trace_ref.len(),
        findings_ref.len(),
        if identity_ok { "byte-identical" } else { "FAILED" }
    );

    let total_serial: f64 = cells.iter().map(|c| c.wall_s_serial).sum();
    let total_parallel: f64 = cells.iter().map(|c| c.wall_s_parallel).sum();
    let speedup = if total_parallel > 0.0 { total_serial / total_parallel } else { 1.0 };
    eprintln!(
        "simspeed: matrix {total_serial:.3}s serial -> {total_parallel:.3}s parallel ({speedup:.2}x, gate {})",
        if enforced { "enforced" } else { "not enforced: single-core host or single worker" }
    );

    let json = bench_json(
        &cells,
        host_cores,
        workers,
        enforced,
        o.runs,
        o.scale,
        total_serial,
        total_parallel,
        identity_ok,
    );
    if let Some(path) = &o.bench_out {
        write_file(path, &json);
        eprintln!("simspeed: wrote {path}");
    }
    if let Some(path) = &o.csv_out {
        write_file(path, &bench_csv(&cells));
        eprintln!("simspeed: wrote {path}");
    }

    let mut exit = 0;
    if !identity_ok {
        eprintln!("simspeed: DETERMINISM GATE FAILED, {} violation(s):", identity_failures.len());
        for f in &identity_failures {
            eprintln!("  {f}");
        }
        exit = 1;
    }
    if enforced && speedup < MIN_SPEEDUP {
        eprintln!(
            "simspeed: SPEED GATE FAILED: {speedup:.2}x < {MIN_SPEEDUP}x with {workers} workers"
        );
        exit = 1;
    }
    if let Some(path) = &o.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("simspeed: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        match diff_baseline(&cells, &text, o.scale) {
            Ok(drifts) if drifts.is_empty() => {
                eprintln!("simspeed: baseline gate PASSED ({} cells bit-identical)", cells.len());
            }
            Ok(drifts) => {
                eprintln!("simspeed: baseline gate FAILED, {} drift(s):", drifts.len());
                for d in &drifts {
                    eprintln!("  {d}");
                }
                exit = 1;
            }
            Err(e) => {
                eprintln!("simspeed: bad baseline {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(exit);
}
