//! `figures` — regenerate the paper's tables and figures.
//!
//! ```text
//! figures fig6                      # benchmark table
//! figures fig7                      # hardware/software configuration
//! figures fig8                      # all twelve subfigures (both systems)
//! figures fig8 --system nvidia      # 8a-8f
//! figures fig8 --system amd --app stencil
//! figures all                       # everything, in paper order
//! ```
//!
//! Add `--test-scale` to use the tiny unit-test workloads (fast, identical
//! orderings, coarser absolute numbers).

use ompx_bench::{print_fig6, print_fig7, print_fig8, print_fig8_all};
use ompx_hecbench::{System, WorkScale, APP_NAMES};

fn usage() -> ! {
    eprintln!(
        "usage: figures <fig6|fig7|fig8|all|verify|shapecheck> [--system nvidia|amd] [--app NAME] \
         [--csv PATH] [--test-scale]\n\
         apps: {}",
        APP_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut system: Option<System> = None;
    let mut app: Option<String> = None;
    let mut scale = WorkScale::Default;
    let mut csv: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => {
                i += 1;
                csv = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
                i += 1;
                continue;
            }
            "--system" => {
                i += 1;
                system = match args.get(i).map(String::as_str) {
                    Some("nvidia") => Some(System::Nvidia),
                    Some("amd") => Some(System::Amd),
                    _ => usage(),
                };
            }
            "--app" => {
                i += 1;
                let a = args.get(i).cloned().unwrap_or_else(|| usage());
                if !APP_NAMES.contains(&a.as_str()) {
                    usage();
                }
                app = Some(a);
            }
            "--test-scale" => scale = WorkScale::Test,
            _ => usage(),
        }
        i += 1;
    }

    let systems = match system {
        Some(s) => vec![s],
        None => vec![System::Nvidia, System::Amd],
    };

    if let Some(path) = &csv {
        let data = ompx_bench::fig8_csv(scale);
        if let Err(e) = std::fs::write(path, &data) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {} ({} rows)", path, data.lines().count() - 1);
        return;
    }

    match args[0].as_str() {
        "fig6" => print_fig6(),
        "fig7" => print_fig7(),
        "shapecheck" => {
            let checks = ompx_bench::shape_checks(scale);
            let mut failed = false;
            for c in &checks {
                println!("[{}] {} — {}", if c.pass { "PASS" } else { "FAIL" }, c.claim, c.detail);
                failed |= !c.pass;
            }
            println!(
                "\n{}/{} paper observations hold",
                checks.iter().filter(|c| c.pass).count(),
                checks.len()
            );
            if failed {
                std::process::exit(1);
            }
        }
        "verify" => {
            let mut failed = false;
            for app in APP_NAMES {
                match ompx_bench::verify_app(app, scale) {
                    Ok(sum) => {
                        println!("{app:<10} OK  checksum {sum:#018x} across 8 version/system cells")
                    }
                    Err(e) => {
                        failed = true;
                        println!("{app:<10} FAIL {e}");
                    }
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        "fig8" => {
            for sys in systems {
                match &app {
                    Some(a) => print_fig8(a, sys, scale),
                    None => print_fig8_all(sys, scale),
                }
            }
        }
        "all" => {
            print_fig6();
            println!();
            print_fig7();
            println!();
            for sys in systems {
                print_fig8_all(sys, scale);
            }
        }
        _ => usage(),
    }
}
