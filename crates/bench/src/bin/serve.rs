//! `serve` — replay a deterministic multi-tenant load against the
//! simulated device pool and assert the chaos trichotomy under load:
//!
//! ```text
//! serve --seed 20260808 --clients 1000 --tenants 8
//! serve --clients 200 --rate 0.05 --lose-at 10
//! serve --clients 1000 --bench-out results/BENCH_serve.json
//! serve --clients 1000 --baseline results/BENCH_serve.json
//! ```
//!
//! Every request must end as success, a typed error, a bit-identical
//! validated fallback, or a backpressure rejection — a corrupt response
//! (wrong checksum) is a finding in the same `{tool, kernel, location,
//! severity, message}` schema the other CLIs emit and drives a non-zero
//! exit. `--baseline` diffs the run's report against a committed
//! `BENCH_serve.json` (integer fields exact, floats to 1e-9 relative)
//! and fails on drift, mirroring the profile gate.
//!
//! `--sweep` replays the same seeded load at a ladder of load factors
//! (`--sweep-factors`, default 0.5..3.0, 7 points) and emits the
//! throughput / p50/p95/p99-vs-load curve as `BENCH_sweep.json`
//! (`--bench-out`) and CSV (`--csv-out`); `--baseline` then gates the
//! sweep document instead of the single-point report. `--metrics-out` /
//! `--metrics-json` dump the run's deterministic metric snapshot in
//! Prometheus text / JSON form — identical seeded runs produce
//! bit-identical files, which CI diffs directly.
//!
//! `--escalate` runs the chaos-escalation campaign instead: the same
//! seeded load replayed at a ladder of fault-rate multipliers
//! (`--multipliers`, default 1,2,4,8,16), asserting the per-rung SLO
//! contract (interactive p99 within deadline, zero corrupt verdicts,
//! shed fraction monotone in pressure) and emitting
//! `BENCH_resilience.json` (`--bench-out`) and CSV (`--csv-out`);
//! contract breaches are findings and drive a non-zero exit. `--spares N`
//! benches N warm spares that promote on device loss in any mode.

use ompx_prof::chrome::to_chrome_trace;
use ompx_prof::jsonio;
use ompx_sanitizer::report::{exit_code, render_json as findings_json, render_text};
use ompx_sanitizer::{Finding, Severity};
use ompx_serve::{
    build_report, escalate, render_escalate_csv, render_escalate_json, render_json,
    render_sweep_csv, render_sweep_json, serve, sweep, DeviceKind, EscalateResult, LoadSpec,
    ServeConfig, ServeError, ServeReport, SweepResult, Verdict,
};
use ompx_sim::fault::FaultPlan;
use ompx_telemetry::{to_json as metrics_json, to_prometheus};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--seed N] [--clients N] [--tenants N]\n\
         \x20           [--devices a100,a100,mi250,mi250] [--spares N] [--max-batch N]\n\
         \x20           [--queue-cap N] [--load-factor F] [--rate F] [--lose-at N]\n\
         \x20           [--no-faults] [--default-scale] [--json] [--bench-out FILE]\n\
         \x20           [--trace FILE] [--baseline FILE] [--write-baseline FILE]\n\
         \x20           [--metrics-out FILE] [--metrics-json FILE]\n\
         \x20           [--sweep] [--sweep-factors F,F,...] [--csv-out FILE]\n\
         \x20           [--escalate] [--multipliers F,F,...]"
    );
    std::process::exit(2);
}

struct Opts {
    cfg: ServeConfig,
    spec: LoadSpec,
    json: bool,
    bench_out: Option<String>,
    trace: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    metrics_out: Option<String>,
    metrics_json: Option<String>,
    sweep: bool,
    sweep_factors: Vec<f64>,
    escalate: bool,
    multipliers: Vec<f64>,
    csv_out: Option<String>,
}

/// A serve-layer failure rendered as a finding, so every error path
/// exits through the same reporting machinery (and non-zero).
fn error_findings(e: &ServeError) -> Vec<Finding> {
    vec![Finding {
        tool: "serve".to_string(),
        kernel: "-".to_string(),
        location: "serve".to_string(),
        severity: Severity::Error,
        message: e.to_string(),
    }]
}

fn fail(o: &Opts, e: &ServeError) -> ! {
    let findings = error_findings(e);
    if o.json {
        print!("{}", findings_json(&findings));
    } else {
        print!("{}", render_text(&findings));
    }
    std::process::exit(exit_code(&findings));
}

fn parse(args: &[String]) -> Opts {
    let mut cfg = ServeConfig::new(20260808);
    let mut spec = LoadSpec { seed: 20260808, clients: 1000, tenants: 8 };
    // Default chaos: a low fault rate everywhere plus one scheduled
    // device loss (member 0 only, per FaultPlan::for_pool_member).
    let mut rate = 0.02;
    let mut lose_at = Some(40);
    let mut faults = true;
    let mut o = Opts {
        cfg: cfg.clone(),
        spec,
        json: false,
        bench_out: None,
        trace: None,
        baseline: None,
        write_baseline: None,
        metrics_out: None,
        metrics_json: None,
        sweep: false,
        sweep_factors: ompx_serve::DEFAULT_FACTORS.to_vec(),
        escalate: false,
        multipliers: ompx_serve::DEFAULT_MULTIPLIERS.to_vec(),
        csv_out: None,
    };
    let mut i = 0;
    macro_rules! val {
        () => {{
            i += 1;
            match args.get(i) {
                Some(v) => v,
                None => usage(),
            }
        }};
    }
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                let v: u64 = val!().parse().unwrap_or_else(|_| usage());
                cfg.seed = v;
                spec.seed = v;
            }
            "--clients" => spec.clients = val!().parse().unwrap_or_else(|_| usage()),
            "--tenants" => spec.tenants = val!().parse().unwrap_or_else(|_| usage()),
            "--devices" => {
                cfg.devices = val!()
                    .split(',')
                    .map(|d| match d.trim() {
                        "a100" => DeviceKind::A100,
                        "mi250" => DeviceKind::Mi250,
                        _ => usage(),
                    })
                    .collect();
            }
            "--spares" => {
                let n: usize = val!().parse().unwrap_or_else(|_| usage());
                // Alternate profiles starting with A100 so a mixed bench
                // can cover either side of the pool.
                cfg.spares = (0..n)
                    .map(|i| if i % 2 == 0 { DeviceKind::A100 } else { DeviceKind::Mi250 })
                    .collect();
            }
            "--max-batch" => cfg.max_batch = val!().parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => cfg.queue_cap = val!().parse().unwrap_or_else(|_| usage()),
            "--load-factor" => cfg.load_factor = val!().parse().unwrap_or_else(|_| usage()),
            "--rate" => rate = val!().parse().unwrap_or_else(|_| usage()),
            "--lose-at" => lose_at = Some(val!().parse().unwrap_or_else(|_| usage())),
            "--no-faults" => faults = false,
            "--default-scale" => cfg.scale = ompx_hecbench::WorkScale::Default,
            "--json" => o.json = true,
            "--bench-out" => o.bench_out = Some(val!().clone()),
            "--trace" => o.trace = Some(val!().clone()),
            "--baseline" => o.baseline = Some(val!().clone()),
            "--write-baseline" => o.write_baseline = Some(val!().clone()),
            "--metrics-out" => o.metrics_out = Some(val!().clone()),
            "--metrics-json" => o.metrics_json = Some(val!().clone()),
            "--sweep" => o.sweep = true,
            "--sweep-factors" => {
                o.sweep_factors = val!()
                    .split(',')
                    .map(|f| f.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if o.sweep_factors.is_empty() {
                    usage();
                }
            }
            "--escalate" => o.escalate = true,
            "--multipliers" => {
                o.multipliers = val!()
                    .split(',')
                    .map(|f| f.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if o.multipliers.is_empty() {
                    usage();
                }
            }
            "--csv-out" => o.csv_out = Some(val!().clone()),
            _ => usage(),
        }
        i += 1;
    }
    if faults {
        let mut plan = FaultPlan::seeded(cfg.seed, rate);
        if let Some(n) = lose_at {
            plan = plan.with_device_loss_at(n);
        }
        cfg.plan = Some(plan);
    }
    if spec.tenants == 0 || spec.clients == 0 {
        usage();
    }
    o.cfg = cfg;
    o.spec = spec;
    o
}

fn write_file(path: &str, text: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("serve: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse(&args);
    if o.escalate {
        run_escalate(&o);
        return;
    }
    if o.sweep {
        run_sweep(&o);
        return;
    }

    let start = std::time::Instant::now();
    let out = match serve(&o.cfg, &o.spec) {
        Ok(out) => out,
        Err(e) => fail(&o, &e),
    };
    let wall = start.elapsed();
    let report = build_report(
        o.cfg.seed,
        o.spec.clients,
        o.spec.tenants,
        &out.responses,
        &out.pool,
        &out.stats,
    );

    // The trichotomy assertion: corrupt responses are findings.
    let findings: Vec<Finding> = out
        .responses
        .iter()
        .filter_map(|r| match &r.verdict {
            Verdict::Corrupt(msg) => Some(Finding {
                tool: "serve".to_string(),
                kernel: format!("{}@{:?}", r.app, r.member),
                location: format!("request {} tenant {}", r.id, r.tenant),
                severity: Severity::Error,
                message: format!("trichotomy violation: {msg}"),
            }),
            _ => None,
        })
        .collect();

    let json = render_json(&report);
    if o.json {
        print!("{json}");
    } else {
        print_text(&report);
    }
    eprintln!(
        "serve: {} clients over {} tenants on {} devices in {:.2}s wall ({:.3}s modeled)",
        o.spec.clients,
        o.spec.tenants,
        o.cfg.devices.len(),
        wall.as_secs_f64(),
        report.makespan_s
    );
    if !findings.is_empty() {
        if o.json {
            print!("{}", findings_json(&findings));
        } else {
            print!("{}", render_text(&findings));
        }
    }

    if let Some(path) = &o.bench_out {
        write_file(path, &json);
        eprintln!("serve: report written to {path}");
    }
    if let Some(path) = &o.write_baseline {
        write_file(path, &json);
        eprintln!("serve: baseline written to {path}");
    }
    if let Some(path) = &o.trace {
        write_file(path, &to_chrome_trace(&out.spans));
        eprintln!("serve: timeline trace written to {path} ({} spans)", out.spans.len());
    }
    if o.metrics_out.is_some() || o.metrics_json.is_some() {
        let snap = out.metrics.as_ref().expect("serve sessions install a metric registry");
        if let Some(path) = &o.metrics_out {
            write_file(path, &to_prometheus(snap));
            eprintln!("serve: Prometheus metrics written to {path}");
        }
        if let Some(path) = &o.metrics_json {
            write_file(path, &metrics_json(snap));
            eprintln!("serve: JSON metrics written to {path}");
        }
    }
    if let Some(path) = &o.baseline {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("serve: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
            Ok(text) => {
                let drifts = diff_baseline(&report, &text);
                match drifts {
                    Err(e) => {
                        eprintln!("serve: bad baseline {path}: {e}");
                        std::process::exit(2);
                    }
                    Ok(drifts) if drifts.is_empty() => {
                        eprintln!("serve: baseline gate PASSED");
                    }
                    Ok(drifts) => {
                        eprintln!("serve: baseline gate FAILED, {} drift(s):", drifts.len());
                        for d in &drifts {
                            eprintln!("  {d}");
                        }
                        std::process::exit(1);
                    }
                }
            }
        }
    }
    std::process::exit(exit_code(&findings));
}

/// The `--sweep` mode: one seeded run per load factor, curve outputs,
/// and the sweep-document baseline gate.
fn run_sweep(o: &Opts) {
    let start = std::time::Instant::now();
    let s = match sweep(&o.cfg, &o.spec, &o.sweep_factors) {
        Ok(s) => s,
        Err(e) => fail(o, &e),
    };
    let wall = start.elapsed();
    let json = render_sweep_json(&s);
    if o.json {
        print!("{json}");
    } else {
        println!("serve sweep (seed {}, {} clients, {} tenants)", s.seed, s.clients, s.tenants);
        println!(
            "  {:>11} {:>10} {:>9} {:>12} {:>10} {:>10} {:>10}",
            "load_factor", "completed", "rejected", "rps", "p50_s", "p95_s", "p99_s"
        );
        for p in &s.points {
            println!(
                "  {:>11.2} {:>10} {:>9} {:>12.1} {:>10.4} {:>10.4} {:>10.4}",
                p.load_factor,
                p.completed,
                p.rejected,
                p.throughput_rps,
                p.latency_p50_s,
                p.latency_p95_s,
                p.latency_p99_s
            );
        }
    }
    eprintln!("serve: swept {} load factors in {:.2}s wall", s.points.len(), wall.as_secs_f64());
    if let Some(path) = &o.bench_out {
        write_file(path, &json);
        eprintln!("serve: sweep report written to {path}");
    }
    if let Some(path) = &o.write_baseline {
        write_file(path, &json);
        eprintln!("serve: sweep baseline written to {path}");
    }
    if let Some(path) = &o.csv_out {
        write_file(path, &render_sweep_csv(&s));
        eprintln!("serve: sweep CSV written to {path}");
    }
    if let Some(path) = &o.baseline {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("serve: cannot read sweep baseline {path}: {e}");
                std::process::exit(2);
            }
            Ok(text) => match diff_sweep_baseline(&s, &text) {
                Err(e) => {
                    eprintln!("serve: bad sweep baseline {path}: {e}");
                    std::process::exit(2);
                }
                Ok(drifts) if drifts.is_empty() => {
                    eprintln!("serve: sweep baseline gate PASSED");
                }
                Ok(drifts) => {
                    eprintln!("serve: sweep baseline gate FAILED, {} drift(s):", drifts.len());
                    for d in &drifts {
                        eprintln!("  {d}");
                    }
                    std::process::exit(1);
                }
            },
        }
    }
}

/// The `--escalate` mode: one seeded chaos run per fault-rate
/// multiplier, the per-rung SLO contract, campaign outputs, and the
/// resilience-document baseline gate.
fn run_escalate(o: &Opts) {
    let start = std::time::Instant::now();
    let e = match escalate(&o.cfg, &o.spec, &o.multipliers) {
        Ok(e) => e,
        Err(err) => fail(o, &err),
    };
    let wall = start.elapsed();
    let json = render_escalate_json(&e);
    if o.json {
        print!("{json}");
    } else {
        println!(
            "serve escalation (seed {}, {} clients, {} tenants, base rate {:.4})",
            e.seed, e.clients, e.tenants, e.base_rate
        );
        println!(
            "  {:>10} {:>9} {:>9} {:>8} {:>9} {:>9} {:>7} {:>8} {:>7}",
            "multiplier",
            "completed",
            "rejected",
            "corrupt",
            "shed_frac",
            "int_p99r",
            "hedges",
            "breakers",
            "spares"
        );
        for r in &e.rungs {
            println!(
                "  {:>10.1} {:>9} {:>9} {:>8} {:>9.4} {:>9.4} {:>7} {:>8} {:>7}",
                r.multiplier,
                r.completed,
                r.rejected,
                r.corrupt,
                r.shed_frac,
                r.interactive_p99_ratio,
                r.hedges_launched,
                r.breaker_opens,
                r.spares_promoted
            );
        }
    }
    eprintln!("serve: escalated over {} rungs in {:.2}s wall", e.rungs.len(), wall.as_secs_f64());
    // SLO contract breaches are findings: same schema, non-zero exit.
    let findings: Vec<Finding> = e
        .violations
        .iter()
        .map(|v| Finding {
            tool: "serve".to_string(),
            kernel: "-".to_string(),
            location: "escalate".to_string(),
            severity: Severity::Error,
            message: format!("SLO contract breach: {v}"),
        })
        .collect();
    if !findings.is_empty() {
        if o.json {
            print!("{}", findings_json(&findings));
        } else {
            print!("{}", render_text(&findings));
        }
    }
    if let Some(path) = &o.bench_out {
        write_file(path, &json);
        eprintln!("serve: resilience report written to {path}");
    }
    if let Some(path) = &o.write_baseline {
        write_file(path, &json);
        eprintln!("serve: resilience baseline written to {path}");
    }
    if let Some(path) = &o.csv_out {
        write_file(path, &render_escalate_csv(&e));
        eprintln!("serve: resilience CSV written to {path}");
    }
    if let Some(path) = &o.baseline {
        match std::fs::read_to_string(path) {
            Err(err) => {
                eprintln!("serve: cannot read resilience baseline {path}: {err}");
                std::process::exit(2);
            }
            Ok(text) => match diff_resilience_baseline(&e, &text) {
                Err(err) => {
                    eprintln!("serve: bad resilience baseline {path}: {err}");
                    std::process::exit(2);
                }
                Ok(drifts) if drifts.is_empty() => {
                    eprintln!("serve: resilience baseline gate PASSED");
                }
                Ok(drifts) => {
                    eprintln!("serve: resilience baseline gate FAILED, {} drift(s):", drifts.len());
                    for d in &drifts {
                        eprintln!("  {d}");
                    }
                    std::process::exit(1);
                }
            },
        }
    }
    std::process::exit(exit_code(&findings));
}

fn print_text(r: &ServeReport) {
    println!("serve report (seed {})", r.seed);
    println!(
        "  requests: {} total, {} completed ({} success / {} fallback / {} typed-error), {} rejected, {} corrupt",
        r.total, r.completed, r.success, r.fallback, r.typed_error, r.rejected, r.corrupt
    );
    println!(
        "  modeled: makespan {:.3}s, throughput {:.1} req/s, latency p50 {:.3}s p99 {:.3}s",
        r.makespan_s, r.throughput_rps, r.latency_p50_s, r.latency_p99_s
    );
    println!("  batches: {} (max {}, mean {:.2})", r.batch_count, r.batch_max, r.batch_mean);
    for c in &r.classes {
        println!(
            "  class {}: {} completed, {} shed, {} deadline misses (lateness p99 {:.3})",
            c.class, c.completed, c.shed, c.deadline_misses, c.lateness_p99
        );
    }
    let s = &r.resilience;
    println!(
        "  resilience: {} hedges ({} won, {} skipped), {} breaker opens, {} spares promoted",
        s.hedges_launched, s.hedges_won, s.hedges_skipped, s.breaker_opens, s.spares_promoted
    );
    for d in &r.devices {
        println!(
            "  device {} [{}]: served {} in {} batches, busy {:.3}s{}{}",
            d.member,
            d.kind,
            d.served,
            d.batches,
            d.busy_s,
            if d.lost { " — LOST" } else { "" },
            if d.standby { " — SPARE" } else { "" }
        );
    }
    for t in &r.fairness {
        println!(
            "  tenant {}: served {} ({:.1}% share), rejected {}",
            t.tenant,
            t.served,
            100.0 * t.share,
            t.rejected
        );
    }
}

/// Integer fields must match exactly, floats to 1e-9 relative: the run is
/// deterministic, so any drift is a real behavior change.
fn diff_baseline(report: &ServeReport, baseline: &str) -> Result<Vec<String>, String> {
    let b = jsonio::parse(baseline)?;
    if b.get("schema").and_then(|s| s.as_str()) != Some("ompx-bench-serve-v2") {
        return Err("missing or wrong schema tag".to_string());
    }
    let mut drifts = Vec::new();
    let int = |name: &str| -> Result<i64, String> {
        b.get(name)
            .and_then(|v| v.as_f64())
            .map(|f| f as i64)
            .ok_or_else(|| format!("baseline missing {name}"))
    };
    let fl = |name: &str| -> Result<f64, String> {
        b.get(name).and_then(|v| v.as_f64()).ok_or_else(|| format!("baseline missing {name}"))
    };
    let mut check_int = |name: &str, got: i64| -> Result<(), String> {
        let want = int(name)?;
        if want != got {
            drifts.push(format!("{name}: baseline {want}, run {got}"));
        }
        Ok(())
    };
    check_int("seed", report.seed as i64)?;
    check_int("clients", i64::from(report.clients))?;
    check_int("tenants", i64::from(report.tenants))?;
    check_int("total", report.total as i64)?;
    check_int("completed", report.completed as i64)?;
    let verdicts = b.get("verdicts").ok_or("baseline missing verdicts")?;
    for (name, got) in [
        ("success", report.success),
        ("fallback", report.fallback),
        ("typed_error", report.typed_error),
        ("rejected", report.rejected),
        ("corrupt", report.corrupt),
    ] {
        let want = verdicts
            .get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("baseline missing verdicts.{name}"))? as u64;
        if want != got {
            drifts.push(format!("verdicts.{name}: baseline {want}, run {got}"));
        }
    }
    let mut check_float = |name: &str, got: f64| -> Result<(), String> {
        let want = fl(name)?;
        let tol = want.abs().max(1e-12) * 1e-9;
        if (want - got).abs() > tol {
            drifts.push(format!("{name}: baseline {want:e}, run {got:e}"));
        }
        Ok(())
    };
    check_float("makespan_s", report.makespan_s)?;
    check_float("throughput_rps", report.throughput_rps)?;
    check_float("latency_p50_s", report.latency_p50_s)?;
    check_float("latency_p95_s", report.latency_p95_s)?;
    check_float("latency_p99_s", report.latency_p99_s)?;
    let batches = b.get("batches").ok_or("baseline missing batches")?;
    for (name, got) in [("count", report.batch_count), ("max", report.batch_max)] {
        let want = batches
            .get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("baseline missing batches.{name}"))? as u64;
        if want != got {
            drifts.push(format!("batches.{name}: baseline {want}, run {got}"));
        }
    }
    let resilience = b.get("resilience").ok_or("baseline missing resilience")?;
    for (name, got) in [
        ("hedges_launched", report.resilience.hedges_launched),
        ("hedges_won", report.resilience.hedges_won),
        ("breaker_opens", report.resilience.breaker_opens),
        ("spares_promoted", report.resilience.spares_promoted),
        ("deadline_misses", report.resilience.deadline_misses),
    ] {
        let want = resilience
            .get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("baseline missing resilience.{name}"))?
            as u64;
        if want != got {
            drifts.push(format!("resilience.{name}: baseline {want}, run {got}"));
        }
    }
    let devs = b.get("devices").and_then(|d| d.as_arr()).ok_or("baseline missing devices")?;
    if devs.len() != report.devices.len() {
        drifts.push(format!(
            "devices: baseline has {}, run has {}",
            devs.len(),
            report.devices.len()
        ));
    } else {
        for (want, got) in devs.iter().zip(&report.devices) {
            let served = want.get("served").and_then(|v| v.as_f64()).unwrap_or(-1.0);
            if served as i64 != got.served as i64 {
                drifts.push(format!(
                    "devices[{}].served: baseline {served}, run {}",
                    got.member, got.served
                ));
            }
            let lost = want.get("lost") == Some(&jsonio::Json::Bool(true));
            if lost != got.lost {
                drifts.push(format!(
                    "devices[{}].lost: baseline {lost}, run {}",
                    got.member, got.lost
                ));
            }
            let standby = want.get("standby") == Some(&jsonio::Json::Bool(true));
            if standby != got.standby {
                drifts.push(format!(
                    "devices[{}].standby: baseline {standby}, run {}",
                    got.member, got.standby
                ));
            }
        }
    }
    Ok(drifts)
}

/// Resilience drift gate: the campaign is deterministic, so integer
/// fields must match exactly and floats to 1e-9 relative.
fn diff_resilience_baseline(e: &EscalateResult, baseline: &str) -> Result<Vec<String>, String> {
    let b = jsonio::parse(baseline)?;
    if b.get("schema").and_then(|v| v.as_str()) != Some("ompx-bench-resilience-v1") {
        return Err("missing or wrong schema tag".to_string());
    }
    let mut drifts = Vec::new();
    for (name, got) in [
        ("seed", e.seed as i64),
        ("clients", i64::from(e.clients)),
        ("tenants", i64::from(e.tenants)),
    ] {
        let want = b
            .get(name)
            .and_then(|v| v.as_f64())
            .map(|f| f as i64)
            .ok_or_else(|| format!("baseline missing {name}"))?;
        if want != got {
            drifts.push(format!("{name}: baseline {want}, run {got}"));
        }
    }
    let rungs = b.get("rungs").and_then(|r| r.as_arr()).ok_or("baseline missing rungs")?;
    if rungs.len() != e.rungs.len() {
        drifts.push(format!("rungs: baseline has {}, run has {}", rungs.len(), e.rungs.len()));
        return Ok(drifts);
    }
    for (k, (want, got)) in rungs.iter().zip(&e.rungs).enumerate() {
        for (name, got_v) in [
            ("completed", got.completed),
            ("deadline_misses", got.deadline_misses),
            ("hedges_launched", got.hedges_launched),
            ("hedges_won", got.hedges_won),
            ("breaker_opens", got.breaker_opens),
            ("spares_promoted", got.spares_promoted),
        ] {
            let want_v = want
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline missing rungs[{k}].{name}"))?
                as u64;
            if want_v != got_v {
                drifts.push(format!("rungs[{k}].{name}: baseline {want_v}, run {got_v}"));
            }
        }
        let verdicts =
            want.get("verdicts").ok_or_else(|| format!("rungs[{k}] missing verdicts"))?;
        for (name, got_v) in [
            ("success", got.success),
            ("fallback", got.fallback),
            ("typed_error", got.typed_error),
            ("rejected", got.rejected),
            ("corrupt", got.corrupt),
        ] {
            let want_v = verdicts
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline missing rungs[{k}].verdicts.{name}"))?
                as u64;
            if want_v != got_v {
                drifts.push(format!("rungs[{k}].verdicts.{name}: baseline {want_v}, run {got_v}"));
            }
        }
        for (name, got_v) in [
            ("multiplier", got.multiplier),
            ("fault_rate", got.fault_rate),
            ("shed_frac", got.shed_frac),
            ("interactive_p99_ratio", got.interactive_p99_ratio),
            ("throughput_rps", got.throughput_rps),
            ("latency_p99_s", got.latency_p99_s),
        ] {
            let want_v = want
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline missing rungs[{k}].{name}"))?;
            let tol = want_v.abs().max(1e-12) * 1e-9;
            if (want_v - got_v).abs() > tol {
                drifts.push(format!("rungs[{k}].{name}: baseline {want_v:e}, run {got_v:e}"));
            }
        }
    }
    let want_violations =
        b.get("violations").and_then(|v| v.as_arr()).map(|v| v.len()).unwrap_or(0);
    if want_violations != e.violations.len() {
        drifts.push(format!(
            "violations: baseline has {want_violations}, run has {}",
            e.violations.len()
        ));
    }
    Ok(drifts)
}

/// Sweep drift gate: same contract as [`diff_baseline`] — the curve is
/// deterministic, so integer fields must match exactly and floats to
/// 1e-9 relative.
fn diff_sweep_baseline(s: &SweepResult, baseline: &str) -> Result<Vec<String>, String> {
    let b = jsonio::parse(baseline)?;
    if b.get("schema").and_then(|v| v.as_str()) != Some("ompx-bench-sweep-v1") {
        return Err("missing or wrong schema tag".to_string());
    }
    let mut drifts = Vec::new();
    for (name, got) in [
        ("seed", s.seed as i64),
        ("clients", i64::from(s.clients)),
        ("tenants", i64::from(s.tenants)),
    ] {
        let want = b
            .get(name)
            .and_then(|v| v.as_f64())
            .map(|f| f as i64)
            .ok_or_else(|| format!("baseline missing {name}"))?;
        if want != got {
            drifts.push(format!("{name}: baseline {want}, run {got}"));
        }
    }
    let points = b.get("points").and_then(|p| p.as_arr()).ok_or("baseline missing points")?;
    if points.len() != s.points.len() {
        drifts.push(format!("points: baseline has {}, run has {}", points.len(), s.points.len()));
        return Ok(drifts);
    }
    for (k, (want, got)) in points.iter().zip(&s.points).enumerate() {
        for (name, got_v) in [("completed", got.completed), ("rejected", got.rejected)] {
            let want_v = want
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline missing points[{k}].{name}"))?
                as u64;
            if want_v != got_v {
                drifts.push(format!("points[{k}].{name}: baseline {want_v}, run {got_v}"));
            }
        }
        for (name, got_v) in [
            ("load_factor", got.load_factor),
            ("makespan_s", got.makespan_s),
            ("throughput_rps", got.throughput_rps),
            ("latency_p50_s", got.latency_p50_s),
            ("latency_p95_s", got.latency_p95_s),
            ("latency_p99_s", got.latency_p99_s),
        ] {
            let want_v = want
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline missing points[{k}].{name}"))?;
            let tol = want_v.abs().max(1e-12) * 1e-9;
            if (want_v - got_v).abs() > tol {
                drifts.push(format!("points[{k}].{name}: baseline {want_v:e}, run {got_v:e}"));
            }
        }
    }
    Ok(drifts)
}
