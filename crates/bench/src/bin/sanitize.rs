//! `sanitize` — run a benchmark app (or a buggy fixture kernel) under the
//! sanitizer, `compute-sanitizer --tool <T>` style:
//!
//! ```text
//! sanitize --tool racecheck --app stencil --version omp
//! sanitize --tool all --app xsbench --test-scale --json
//! sanitize --tool memcheck --fixture oob-write
//! sanitize --list-fixtures
//! ```
//!
//! Prints one line per finding (tool, kernel, block/thread coordinates,
//! address, allocation label) plus a summary tail, and exits non-zero when
//! anything was found — wire it straight into CI. `--json` emits the
//! machine-readable report instead (exportable alongside the Chrome-trace
//! output); `--out FILE` writes that JSON to a file as well.
//! `--metrics-out FILE` meters the run — `sanitizer_findings_total` by
//! tool at detection time, `findings_total` by tool and severity at
//! report time — and writes the Prometheus text snapshot.

use ompx_hecbench::{run_app_sanitized, ProgVersion, System, WorkScale, APP_NAMES};
use ompx_sanitizer::report::record_findings_metrics;
use ompx_sanitizer::{fixtures, Report, Tool};

fn usage() -> ! {
    eprintln!(
        "usage: sanitize --tool memcheck|racecheck|synccheck|initcheck|leakcheck|all\n\
         \x20               (--app <name> | --fixture <name> | --list-fixtures)\n\
         \x20               [--system nvidia|amd] [--version ompx|omp|native|vendor]\n\
         \x20               [--test-scale] [--json] [--out FILE] [--metrics-out FILE]\n\
         apps: {}\n\
         fixtures: {}",
        APP_NAMES.join(", "),
        fixtures::ALL.iter().map(|(n, _, _)| *n).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2);
}

struct Opts {
    tool: Tool,
    app: Option<String>,
    fixture: Option<String>,
    system: System,
    versions: Vec<ProgVersion>,
    scale: WorkScale,
    json: bool,
    out: Option<String>,
    metrics_out: Option<String>,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        tool: Tool::All,
        app: None,
        fixture: None,
        system: System::Nvidia,
        versions: ProgVersion::all().to_vec(),
        scale: WorkScale::Default,
        json: false,
        out: None,
        metrics_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tool" => {
                i += 1;
                o.tool = match args.get(i).map(|s| s.parse()) {
                    Some(Ok(t)) => t,
                    _ => usage(),
                };
            }
            "--app" => {
                i += 1;
                match args.get(i) {
                    Some(a) if APP_NAMES.contains(&a.as_str()) => o.app = Some(a.clone()),
                    _ => usage(),
                }
            }
            "--fixture" => {
                i += 1;
                match args.get(i) {
                    Some(f) if fixtures::by_name(f).is_some() => o.fixture = Some(f.clone()),
                    _ => usage(),
                }
            }
            "--list-fixtures" => {
                for (name, _, kind) in fixtures::ALL {
                    println!("{name:20} -> {} ({})", kind.label(), kind.tool());
                }
                std::process::exit(0);
            }
            "--system" => {
                i += 1;
                o.system = match args.get(i).map(String::as_str) {
                    Some("nvidia") => System::Nvidia,
                    Some("amd") => System::Amd,
                    _ => usage(),
                };
            }
            "--version" => {
                i += 1;
                o.versions = match args.get(i).map(String::as_str) {
                    Some("ompx") => vec![ProgVersion::Ompx],
                    Some("omp") => vec![ProgVersion::Omp],
                    Some("native") => vec![ProgVersion::Native],
                    Some("vendor") => vec![ProgVersion::NativeVendor],
                    _ => usage(),
                };
            }
            "--test-scale" => o.scale = WorkScale::Test,
            "--json" => o.json = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.out = Some(p.clone()),
                    None => usage(),
                }
            }
            "--metrics-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.metrics_out = Some(p.clone()),
                    None => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    if o.app.is_none() && o.fixture.is_none() {
        usage();
    }
    o
}

fn emit(report: &Report, header: &str, o: &Opts) -> i32 {
    if o.json {
        print!("{}", report.to_json());
    } else {
        println!("========= {header}");
        print!("{}", report.to_text());
    }
    if let Some(path) = &o.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("sanitize: cannot write {path}: {e}");
            return 2;
        }
    }
    report.exit_code()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse(&args);
    let mask = o.tool.mask();

    // With --metrics-out, install a session registry so detection-time
    // counters (`sanitizer_findings_total`) land alongside the
    // report-time `findings_total` rollup.
    let registry = o.metrics_out.as_ref().map(|_| {
        let reg = ompx_telemetry::MetricRegistry::new();
        ompx_telemetry::describe_base_families(&reg);
        ompx_telemetry::install(std::sync::Arc::clone(&reg));
        reg
    });

    let mut exit = 0;
    if let Some(fixture) = &o.fixture {
        let (run, _kind) = fixtures::by_name(fixture).unwrap();
        let report = run();
        record_findings_metrics(&report.findings());
        exit = exit.max(emit(&report, &format!("fixture {fixture} [{}]", o.tool), &o));
    }
    if let Some(app) = &o.app {
        for version in &o.versions {
            let (outcome, findings) = run_app_sanitized(app, o.system, *version, o.scale, mask);
            let report = Report::from_findings(mask, findings);
            record_findings_metrics(&report.findings());
            let header = format!("{app} / {} / {} [{}]", o.system.label(), outcome.label, o.tool);
            exit = exit.max(emit(&report, &header, &o));
        }
    }
    if let (Some(path), Some(reg)) = (&o.metrics_out, registry) {
        ompx_telemetry::uninstall();
        let text = ompx_telemetry::to_prometheus(&reg.snapshot());
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("sanitize: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("sanitize: Prometheus metrics written to {path}");
    }
    std::process::exit(exit);
}
