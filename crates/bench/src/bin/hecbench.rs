//! `hecbench` — run one benchmark app the way HeCBench's drivers do:
//! pick the app, the system, and the program version; get the checksum,
//! the modeled time, and the kernel-model breakdown.
//!
//! ```text
//! hecbench xsbench --system nvidia --version ompx
//! hecbench stencil --system amd --version omp --test-scale
//! hecbench adam                      # all versions on both systems
//! ```

use ompx_hecbench::{run_app, ProgVersion, System, WorkScale, APP_NAMES};

fn usage() -> ! {
    eprintln!(
        "usage: hecbench <app> [--system nvidia|amd] [--version ompx|omp|native|vendor] [--test-scale]\n\
         apps: {}",
        APP_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(app) = args.first() else { usage() };
    if !APP_NAMES.contains(&app.as_str()) {
        usage();
    }

    let mut systems = vec![System::Nvidia, System::Amd];
    let mut versions = ProgVersion::all().to_vec();
    let mut scale = WorkScale::Default;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--system" => {
                i += 1;
                systems = match args.get(i).map(String::as_str) {
                    Some("nvidia") => vec![System::Nvidia],
                    Some("amd") => vec![System::Amd],
                    _ => usage(),
                };
            }
            "--version" => {
                i += 1;
                versions = match args.get(i).map(String::as_str) {
                    Some("ompx") => vec![ProgVersion::Ompx],
                    Some("omp") => vec![ProgVersion::Omp],
                    Some("native") => vec![ProgVersion::Native],
                    Some("vendor") => vec![ProgVersion::NativeVendor],
                    _ => usage(),
                };
            }
            "--test-scale" => scale = WorkScale::Test,
            _ => usage(),
        }
        i += 1;
    }

    for sys in systems {
        for version in &versions {
            let r = run_app(app, sys, *version, scale);
            println!("== {} / {} / {} ==", app, sys.label(), r.label);
            println!("  checksum          : {:#018x}", r.checksum);
            println!("  reported time     : {:.6} s", r.reported_seconds);
            let m = &r.kernel_model;
            println!(
                "  kernel breakdown  : launch {:.2}us  bw {:.2}us  lat {:.2}us  fp {:.2}us  shared {:.2}us  mode {:.2}us  occ {:.2}",
                m.t_launch * 1e6,
                m.t_bandwidth * 1e6,
                m.t_latency * 1e6,
                m.t_compute * 1e6,
                m.t_shared * 1e6,
                m.t_mode * 1e6,
                m.occupancy
            );
            println!(
                "  counted events    : {:.2e} flops, {:.2e} B global, {:.2e} shared ops, {} blocks",
                r.stats.flops as f64,
                r.stats.global_bytes() as f64,
                r.stats.shared_accesses as f64,
                r.stats.blocks_executed
            );
            if r.excluded {
                println!("  NOTE: series excluded in the paper");
            }
            if let Some(n) = &r.note {
                println!("  note              : {n}");
            }
        }
    }
}
