//! `analyze` — static kernel verifier over the hand-written symbolic
//! access summaries in `ompx-hecbench/src/summaries.rs`:
//!
//! ```text
//! analyze                                 # all six apps x four versions
//! analyze --app stencil --version omp
//! analyze --app su3 --replay              # + replay validation on the simulator
//! analyze --fixture race-global           # demonstrate one diagnostic
//! analyze --list-fixtures
//! analyze extract                         # auto-extract all 24 cells from traces
//! analyze extract --app su3 --emit-rust   # print the summaries.rs-style literal
//! analyze extract --diff                  # diff extracted vs hand-written
//! ```
//!
//! Emits the same unified finding schema as `sanitize` (tool, kernel,
//! location, severity, message) as text or `--json`, and exits non-zero
//! when any error-severity finding is reported — wire it straight into CI.
//! `--replay` additionally runs each kernel on the simulator with the
//! memory-trace hooks attached, on each valuation's concrete grid, and
//! cross-checks every observed access against the summary's predictions;
//! its JSON output lists the concrete grid shapes that validated clean.
//!
//! The `extract` subcommand inverts the pipeline: it traces each kernel
//! on small fit grids, fits an affine access summary to the observations
//! (`ompx_analyzer::extract`), replay-validates the draft on a larger
//! unseen grid, and diffs it against the hand-written registry entry.
//! Non-affine behavior degrades to opaque whole-buffer accesses that
//! surface as `SummaryImprecise` warnings. Exit is non-zero on any
//! validation failure or unexplained divergence from the registry.

use ompx_analyzer::{
    analyze, describe, fixtures, to_rust_literal, validate_events, warp_size_for, DiffClass,
};
use ompx_hecbench::extraction::extract_cell;
use ompx_hecbench::summaries::{replay_events, summary_for, version_str};
use ompx_hecbench::{ProgVersion, System, APP_NAMES};
use ompx_sanitizer::report::{exit_code, record_findings_metrics, render_json, render_text};
use ompx_sanitizer::Finding;

fn usage() -> ! {
    eprintln!(
        "usage: analyze [extract] [--app <name>] [--version ompx|omp|native|vendor]\n\
         \x20              [--system nvidia|amd] [--replay] [--emit-rust] [--diff]\n\
         \x20              [--fixture <name> | --list-fixtures] [--json] [--out FILE]\n\
         \x20              [--metrics-out FILE]\n\
         apps: {}\n\
         fixtures: {}",
        APP_NAMES.join(", "),
        fixtures::ALL.iter().map(|f| f.name).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2);
}

struct Opts {
    extract: bool,
    apps: Vec<String>,
    versions: Vec<ProgVersion>,
    system: System,
    replay: bool,
    emit_rust: bool,
    diff: bool,
    fixture: Option<String>,
    json: bool,
    out: Option<String>,
    metrics_out: Option<String>,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        extract: false,
        apps: APP_NAMES.iter().map(|s| s.to_string()).collect(),
        versions: ProgVersion::all().to_vec(),
        system: System::Nvidia,
        replay: false,
        emit_rust: false,
        diff: false,
        fixture: None,
        json: false,
        out: None,
        metrics_out: None,
    };
    let mut i = 0;
    if args.first().map(String::as_str) == Some("extract") {
        o.extract = true;
        i = 1;
    }
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                i += 1;
                match args.get(i) {
                    Some(a) if APP_NAMES.contains(&a.as_str()) => o.apps = vec![a.clone()],
                    _ => usage(),
                }
            }
            "--version" => {
                i += 1;
                o.versions = match args.get(i).map(String::as_str) {
                    Some("ompx") => vec![ProgVersion::Ompx],
                    Some("omp") => vec![ProgVersion::Omp],
                    Some("native") => vec![ProgVersion::Native],
                    Some("vendor") => vec![ProgVersion::NativeVendor],
                    _ => usage(),
                };
            }
            "--system" => {
                i += 1;
                o.system = match args.get(i).map(String::as_str) {
                    Some("nvidia") => System::Nvidia,
                    Some("amd") => System::Amd,
                    _ => usage(),
                };
            }
            "--replay" => o.replay = true,
            "--emit-rust" if o.extract => o.emit_rust = true,
            "--diff" if o.extract => o.diff = true,
            "--fixture" if !o.extract => {
                i += 1;
                match args.get(i) {
                    Some(f) if fixtures::by_name(f).is_some() => o.fixture = Some(f.clone()),
                    _ => usage(),
                }
            }
            "--list-fixtures" => {
                for f in &fixtures::ALL {
                    println!("{:24} -> {}", f.name, f.tool);
                }
                std::process::exit(0);
            }
            "--json" => o.json = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.out = Some(p.clone()),
                    None => usage(),
                }
            }
            "--metrics-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.metrics_out = Some(p.clone()),
                    None => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|ch| match ch {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Splice extra top-level fields (a pre-rendered `"key": value,` block)
/// into the unified findings document.
fn with_fields(findings: &[Finding], extra: &str) -> String {
    let doc = render_json(findings);
    match doc.strip_prefix("{\n") {
        Some(rest) => format!("{{\n{extra}{rest}"),
        None => doc,
    }
}

fn write_out(o: &Opts, doc: &str) -> i32 {
    if let Some(path) = &o.out {
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("analyze: cannot write {path}: {e}");
            return 2;
        }
    }
    0
}

/// Write the ambient metrics snapshot (if `--metrics-out` installed one)
/// as Prometheus text. Call before every exit path.
fn flush_metrics(o: &Opts) -> i32 {
    let Some(path) = &o.metrics_out else { return 0 };
    let Some(reg) = ompx_telemetry::uninstall() else { return 0 };
    let text = ompx_telemetry::to_prometheus(&reg.snapshot());
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("analyze: cannot write {path}: {e}");
        return 2;
    }
    0
}

fn emit(findings: &[Finding], header: &str, extra_json: &str, o: &Opts) -> i32 {
    record_findings_metrics(findings);
    let doc = with_fields(findings, extra_json);
    if o.json {
        print!("{doc}");
    } else {
        println!("========= {header}");
        print!("{}", render_text(findings));
    }
    let w = write_out(o, &doc);
    if w != 0 {
        return w;
    }
    exit_code(findings)
}

/// The per-valuation grid shapes that replayed clean, as a JSON field.
fn grids_field(grids: &[String]) -> String {
    let items: Vec<String> = grids.iter().map(|g| format!("    \"{}\"", json_escape(g))).collect();
    if items.is_empty() {
        "  \"validated_grids\": [],\n".into()
    } else {
        format!("  \"validated_grids\": [\n{}\n  ],\n", items.join(",\n"))
    }
}

fn run_extract(o: &Opts) -> i32 {
    let mut exit = 0;
    for app in &o.apps {
        for version in &o.versions {
            let header =
                format!("extract {app} / {} / {}", o.system.label(), version_str(*version));
            let report = match extract_cell(app, o.system, *version) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("========= {header}\nextraction failed: {e}");
                    exit = exit.max(1);
                    continue;
                }
            };
            let failures = report.failures();
            let grids = report.validated_grids();
            let mut findings: Vec<Finding> = report.analysis.clone();
            for (_, fs) in &report.validation {
                findings.extend(fs.iter().cloned());
            }
            record_findings_metrics(&findings);

            if o.json {
                let mut extra = String::new();
                extra.push_str(&format!(
                    "  \"cell\": {{\"app\": \"{}\", \"version\": \"{}\", \"system\": \"{}\"}},\n",
                    json_escape(app),
                    json_escape(&report.version),
                    json_escape(&report.system),
                ));
                extra.push_str(&format!("  \"phases\": {},\n", report.extraction.phases));
                let imp: Vec<String> = report
                    .extraction
                    .imprecise
                    .iter()
                    .map(|n| format!("    \"{}\"", json_escape(n)))
                    .collect();
                extra.push_str(&format!(
                    "  \"imprecise\": [{}],\n",
                    if imp.is_empty() {
                        String::new()
                    } else {
                        format!("\n{}\n  ", imp.join(",\n"))
                    }
                ));
                extra.push_str(&grids_field(&grids));
                let diffs: Vec<String> = report
                    .diff
                    .iter()
                    .map(|d| {
                        format!(
                            "    {{\"space\": \"{}\", \"mode\": \"{:?}\", \"class\": \"{:?}\", \"detail\": \"{}\"}}",
                            json_escape(&d.space),
                            d.mode,
                            d.class,
                            json_escape(&d.detail)
                        )
                    })
                    .collect();
                extra.push_str(&format!(
                    "  \"diff\": [{}],\n",
                    if diffs.is_empty() {
                        String::new()
                    } else {
                        format!("\n{}\n  ", diffs.join(",\n"))
                    }
                ));
                extra.push_str(&format!("  \"accepted\": {},\n", failures.is_empty()));
                let doc = with_fields(&findings, &extra);
                print!("{doc}");
                let w = write_out(o, &doc);
                if w != 0 {
                    return w;
                }
            } else {
                println!("========= {header}");
                if o.emit_rust {
                    println!("{}", to_rust_literal(&report.extraction.summary));
                } else {
                    print!("{}", describe(&report.extraction.summary));
                }
                for note in &report.extraction.imprecise {
                    println!("  imprecise: {note}");
                }
                for g in &grids {
                    println!("  validated: {g}");
                }
                if o.diff {
                    for d in &report.diff {
                        println!("  diff {} {:?}: {:?} — {}", d.space, d.mode, d.class, d.detail);
                    }
                } else if report.diff.iter().any(|d| d.class != DiffClass::Equal) {
                    let n = report.diff.iter().filter(|d| d.class != DiffClass::Equal).count();
                    println!("  diff: {n} non-equal bucket(s) vs hand-written (--diff for detail)");
                }
                print!("{}", render_text(&findings));
                for f in &failures {
                    println!("  FAILURE: {f}");
                }
            }
            if !failures.is_empty() {
                exit = exit.max(1);
            }
            exit = exit.max(exit_code(&findings));
        }
    }
    exit
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse(&args);
    if o.metrics_out.is_some() {
        let reg = ompx_telemetry::MetricRegistry::new();
        ompx_telemetry::describe_base_families(&reg);
        ompx_telemetry::install(reg);
    }
    if o.extract {
        let code = run_extract(&o);
        std::process::exit(flush_metrics(&o).max(code));
    }
    let warp = warp_size_for(o.system.label());

    if let Some(name) = &o.fixture {
        let fx = fixtures::by_name(name).unwrap();
        let findings = fx.run();
        let code = emit(&findings, &format!("fixture {name} [{}]", fx.tool), "", &o);
        std::process::exit(flush_metrics(&o).max(code));
    }

    let mut exit = 0;
    for app in &o.apps {
        for version in &o.versions {
            let s = summary_for(app, *version);
            let mut findings = analyze(&s, warp);
            let mut grids = Vec::new();
            if o.replay {
                for val in &s.valuations {
                    let events = replay_events(app, o.system, *version, val);
                    let fs = validate_events(&s, val, &events);
                    let clean = exit_code(&fs) == 0;
                    findings.extend(fs);
                    if clean {
                        if let Ok(g) = s.ground(val) {
                            grids.push(format!(
                                "{}: grid ({},{},{}) x block ({},{},{})",
                                val.name,
                                g.grid.0,
                                g.grid.1,
                                g.grid.2,
                                s.launch.block.0,
                                s.launch.block.1,
                                s.launch.block.2,
                            ));
                        }
                    }
                }
            }
            let header = format!(
                "{app} / {} / {}{}",
                o.system.label(),
                s.version,
                if o.replay { " (+replay)" } else { "" }
            );
            let extra = if o.replay { grids_field(&grids) } else { String::new() };
            exit = exit.max(emit(&findings, &header, &extra, &o));
        }
    }
    std::process::exit(flush_metrics(&o).max(exit));
}
