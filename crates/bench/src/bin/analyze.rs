//! `analyze` — static kernel verifier over the hand-written symbolic
//! access summaries in `ompx-hecbench/src/summaries.rs`:
//!
//! ```text
//! analyze                                 # all six apps x four versions
//! analyze --app stencil --version omp
//! analyze --app su3 --replay              # + replay validation on the simulator
//! analyze --fixture race-global           # demonstrate one diagnostic
//! analyze --list-fixtures
//! ```
//!
//! Emits the same unified finding schema as `sanitize` (tool, kernel,
//! location, severity, message) as text or `--json`, and exits non-zero
//! when any error-severity finding is reported — wire it straight into CI.
//! `--replay` additionally runs each kernel on the simulator with the
//! memory-trace hooks attached, on each valuation's concrete grid, and
//! cross-checks every observed access against the summary's predictions.

use ompx_analyzer::{analyze, fixtures, validate_events, warp_size_for};
use ompx_hecbench::summaries::{replay_events, summary_for};
use ompx_hecbench::{ProgVersion, System, APP_NAMES};
use ompx_sanitizer::report::{exit_code, render_json, render_text};
use ompx_sanitizer::Finding;

fn usage() -> ! {
    eprintln!(
        "usage: analyze [--app <name>] [--version ompx|omp|native|vendor]\n\
         \x20              [--system nvidia|amd] [--replay]\n\
         \x20              [--fixture <name> | --list-fixtures] [--json] [--out FILE]\n\
         apps: {}\n\
         fixtures: {}",
        APP_NAMES.join(", "),
        fixtures::ALL.iter().map(|f| f.name).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2);
}

struct Opts {
    apps: Vec<String>,
    versions: Vec<ProgVersion>,
    system: System,
    replay: bool,
    fixture: Option<String>,
    json: bool,
    out: Option<String>,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        apps: APP_NAMES.iter().map(|s| s.to_string()).collect(),
        versions: ProgVersion::all().to_vec(),
        system: System::Nvidia,
        replay: false,
        fixture: None,
        json: false,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                i += 1;
                match args.get(i) {
                    Some(a) if APP_NAMES.contains(&a.as_str()) => o.apps = vec![a.clone()],
                    _ => usage(),
                }
            }
            "--version" => {
                i += 1;
                o.versions = match args.get(i).map(String::as_str) {
                    Some("ompx") => vec![ProgVersion::Ompx],
                    Some("omp") => vec![ProgVersion::Omp],
                    Some("native") => vec![ProgVersion::Native],
                    Some("vendor") => vec![ProgVersion::NativeVendor],
                    _ => usage(),
                };
            }
            "--system" => {
                i += 1;
                o.system = match args.get(i).map(String::as_str) {
                    Some("nvidia") => System::Nvidia,
                    Some("amd") => System::Amd,
                    _ => usage(),
                };
            }
            "--replay" => o.replay = true,
            "--fixture" => {
                i += 1;
                match args.get(i) {
                    Some(f) if fixtures::by_name(f).is_some() => o.fixture = Some(f.clone()),
                    _ => usage(),
                }
            }
            "--list-fixtures" => {
                for f in &fixtures::ALL {
                    println!("{:24} -> {}", f.name, f.tool);
                }
                std::process::exit(0);
            }
            "--json" => o.json = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.out = Some(p.clone()),
                    None => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn emit(findings: &[Finding], header: &str, o: &Opts) -> i32 {
    if o.json {
        print!("{}", render_json(findings));
    } else {
        println!("========= {header}");
        print!("{}", render_text(findings));
    }
    if let Some(path) = &o.out {
        if let Err(e) = std::fs::write(path, render_json(findings)) {
            eprintln!("analyze: cannot write {path}: {e}");
            return 2;
        }
    }
    exit_code(findings)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse(&args);
    let warp = warp_size_for(match o.system {
        System::Amd => "amd",
        _ => "nvidia",
    });

    if let Some(name) = &o.fixture {
        let fx = fixtures::by_name(name).unwrap();
        let findings = fx.run();
        std::process::exit(emit(&findings, &format!("fixture {name} [{}]", fx.tool), &o));
    }

    let mut exit = 0;
    for app in &o.apps {
        for version in &o.versions {
            let s = summary_for(app, *version);
            let mut findings = analyze(&s, warp);
            if o.replay {
                for val in &s.valuations {
                    let events = replay_events(app, o.system, *version, val);
                    findings.extend(validate_events(&s, val, &events));
                }
            }
            let header = format!(
                "{app} / {} / {}{}",
                match o.system {
                    System::Amd => "amd",
                    _ => "nvidia",
                },
                s.version,
                if o.replay { " (+replay)" } else { "" }
            );
            exit = exit.max(emit(&findings, &header, &o));
        }
    }
    std::process::exit(exit);
}
