//! `profile` — Nsight/rocprof-style profiling over the HeCBench matrix:
//!
//! ```text
//! profile                                   # all apps x versions x both systems
//! profile --app xsbench --system nvidia
//! profile --format csv                      # or json; default is a text table
//! profile --out-dir results/profile         # roofline.csv + per-cell Chrome traces
//! profile --write-baseline results/profile_baseline.json
//! profile --baseline results/profile_baseline.json   # gate: exit 1 on drift
//! profile --bench-out results/BENCH_prof.json
//! ```
//!
//! Each cell (app, program version, system) runs under an ambient span
//! log; alongside the app itself the stream-overlap probe executes the
//! §3.5 `depend(interopobj:)` idiom, so every exported Chrome trace has
//! the host track, the hidden-helper-thread track when `nowait` target
//! tasks ran, and two genuine stream tracks with flow arrows. Metrics are
//! derived from the run's extrapolated counters and modeled-time
//! breakdown; `--baseline` diffs them against a committed baseline and
//! exits non-zero past tolerance — the repo's perf-regression gate.

use ompx_hecbench::{run_app, with_span_log, ProgVersion, System, WorkScale, APP_NAMES};
use ompx_hostrt::{KnownIssues, OpenMp};
use ompx_klang::toolchain::Toolchain;
use ompx_prof::probe::{overlap_probe, OverlapReport};
use ompx_prof::{
    derive_metrics, diff_baseline, parse_baseline, roofline, table_csv, table_text,
    to_chrome_trace, to_json, CellProfile, Tolerance,
};
use ompx_sim::device::{Device, DeviceProfile};

fn usage() -> ! {
    eprintln!(
        "usage: profile [--app <name>] [--version ompx|omp|native|vendor]\n\
         \x20              [--system nvidia|amd|both] [--test-scale]\n\
         \x20              [--format text|csv|json] [--out-dir DIR]\n\
         \x20              [--baseline FILE] [--tolerance REL] [--write-baseline FILE]\n\
         \x20              [--bench-out FILE]\n\
         apps: {}",
        APP_NAMES.join(", ")
    );
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Csv,
    Json,
}

struct Opts {
    apps: Vec<String>,
    versions: Vec<ProgVersion>,
    systems: Vec<System>,
    scale: WorkScale,
    format: Format,
    out_dir: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    bench_out: Option<String>,
    tolerance: Tolerance,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        apps: APP_NAMES.iter().map(|s| s.to_string()).collect(),
        versions: ProgVersion::all().to_vec(),
        systems: vec![System::Nvidia, System::Amd],
        scale: WorkScale::Default,
        format: Format::Text,
        out_dir: None,
        baseline: None,
        write_baseline: None,
        bench_out: None,
        tolerance: Tolerance::default(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                i += 1;
                match args.get(i) {
                    Some(a) if APP_NAMES.contains(&a.as_str()) => o.apps = vec![a.clone()],
                    _ => usage(),
                }
            }
            "--version" => {
                i += 1;
                o.versions = match args.get(i).map(String::as_str) {
                    Some("ompx") => vec![ProgVersion::Ompx],
                    Some("omp") => vec![ProgVersion::Omp],
                    Some("native") => vec![ProgVersion::Native],
                    Some("vendor") => vec![ProgVersion::NativeVendor],
                    _ => usage(),
                };
            }
            "--system" => {
                i += 1;
                o.systems = match args.get(i).map(String::as_str) {
                    Some("nvidia") => vec![System::Nvidia],
                    Some("amd") => vec![System::Amd],
                    Some("both") => vec![System::Nvidia, System::Amd],
                    _ => usage(),
                };
            }
            "--test-scale" => o.scale = WorkScale::Test,
            "--format" => {
                i += 1;
                o.format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("csv") => Format::Csv,
                    Some("json") => Format::Json,
                    _ => usage(),
                };
            }
            "--out-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.out_dir = Some(p.clone()),
                    None => usage(),
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.baseline = Some(p.clone()),
                    None => usage(),
                }
            }
            "--write-baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.write_baseline = Some(p.clone()),
                    None => usage(),
                }
            }
            "--bench-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.bench_out = Some(p.clone()),
                    None => usage(),
                }
            }
            "--tolerance" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(t) if t >= 0.0 => o.tolerance.rel_seconds = t,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn device_profile(sys: System) -> DeviceProfile {
    match sys {
        System::Nvidia => DeviceProfile::a100(),
        System::Amd => DeviceProfile::mi250(),
    }
}

fn write_file(path: &str, content: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("profile: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse(&args);

    let mut cells: Vec<CellProfile> = Vec::new();
    let mut roofline_points = Vec::new();
    let mut probes: Vec<(System, OverlapReport)> = Vec::new();

    for &sys in &o.systems {
        let dev_profile = device_profile(sys);
        for app in &o.apps {
            for &version in &o.versions {
                // The span log captures the app's host-side activity plus
                // the overlap probe's two stream timelines, so every
                // cell's trace is genuinely multi-track.
                let ((outcome, probe), spans) = with_span_log(|| {
                    let outcome = run_app(app, sys, version, o.scale);
                    let omp = OpenMp::with_device(
                        Device::new(device_profile(sys)),
                        Toolchain::OmpxPrototype,
                        KnownIssues::new(),
                    );
                    let probe = overlap_probe(&omp);
                    (outcome, probe)
                });
                let metrics = derive_metrics(&dev_profile, &outcome.stats, &outcome.kernel_model);
                let cell = CellProfile {
                    app: app.clone(),
                    version: version.label(sys).to_string(),
                    system: sys.label().to_string(),
                    checksum: outcome.checksum,
                    reported_seconds: outcome.reported_seconds,
                    excluded: outcome.excluded,
                    metrics,
                };
                roofline_points.push(roofline::place(&dev_profile, &cell.key(), &cell.metrics));
                if let Some(dir) = &o.out_dir {
                    write_file(
                        &format!("{dir}/trace_{}_{}_{}.json", app, version.label(sys), sys.label()),
                        &to_chrome_trace(&spans),
                    );
                }
                cells.push(cell);
                probes.push((sys, probe));
            }
        }
    }

    match o.format {
        Format::Text => print!("{}", table_text(&cells)),
        Format::Csv => print!("{}", table_csv(&cells)),
        Format::Json => print!("{}", to_json(&cells)),
    }

    if let Some(dir) = &o.out_dir {
        write_file(&format!("{dir}/roofline.csv"), &roofline::to_csv(&roofline_points));
        write_file(&format!("{dir}/profile.json"), &to_json(&cells));
    }
    if let Some(path) = &o.write_baseline {
        write_file(path, &to_json(&cells));
        eprintln!("profile: baseline written to {path} ({} cells)", cells.len());
    }
    if let Some(path) = &o.bench_out {
        write_file(path, &bench_summary(&cells, &probes));
    }

    if let Some(path) = &o.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("profile: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let baseline = match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("profile: bad baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let drifts = diff_baseline(&cells, &baseline, o.tolerance);
        if drifts.is_empty() {
            eprintln!(
                "profile: baseline gate PASSED ({} cells within ±{:.0}% / ±{:.1} occupancy pts)",
                cells.len(),
                100.0 * o.tolerance.rel_seconds,
                o.tolerance.occupancy_pts
            );
        } else {
            eprintln!("profile: baseline gate FAILED, {} drift(s):", drifts.len());
            for d in &drifts {
                eprintln!("  {d}");
            }
            std::process::exit(1);
        }
    }
}

/// The `BENCH_prof.json` artifact: per-cell modeled seconds plus the
/// stream-overlap canary, i.e. the numbers a perf trajectory tracks.
fn bench_summary(cells: &[CellProfile], probes: &[(System, OverlapReport)]) -> String {
    let mut lines = Vec::new();
    for c in cells {
        lines.push(format!(
            "    {{\"cell\":\"{}\",\"seconds\":{:e},\"occupancy_pct\":{:.3},\"bottleneck\":\"{}\"}}",
            c.key(),
            c.reported_seconds,
            c.metrics.occupancy_pct,
            c.metrics.bottleneck.label()
        ));
    }
    // One representative probe per system (they are deterministic).
    let mut probe_lines = Vec::new();
    for sys in [System::Nvidia, System::Amd] {
        if let Some((_, p)) = probes.iter().find(|(s, _)| *s == sys) {
            probe_lines.push(format!(
                "    {{\"system\":\"{}\",\"serial_s\":{:e},\"overlap_s\":{:e},\"speedup\":{:.4}}}",
                sys.label(),
                p.serial_s,
                p.overlap_s,
                p.speedup
            ));
        }
    }
    format!(
        "{{\n  \"schema\": \"ompx-bench-prof-v1\",\n  \"cells\": [\n{}\n  ],\n  \"stream_overlap_probe\": [\n{}\n  ]\n}}\n",
        lines.join(",\n"),
        probe_lines.join(",\n")
    )
}
