//! `chaos` — run the benchmark matrix under seeded fault schedules and
//! assert the trichotomy: every (app, system, version, schedule) run must
//! end in success, a clean typed error, or a validated host fallback —
//! never a panic, and never silently wrong results:
//!
//! ```text
//! chaos --seed 20260807 --schedules 5 --test-scale
//! chaos --app xsbench --system amd --rate 0.1 --json
//! chaos --schedules 8 --test-scale --out chaos.json
//! ```
//!
//! Each schedule `k` runs the whole selected matrix under
//! `FaultPlan::seeded(seed + k, rate)`; every third schedule additionally
//! loses the device mid-run to exercise the host-fallback path. With
//! `--only watchdog` the schedules are watchdog-pure instead: rate-based
//! episodes are restricted to watchdog timeouts, schedule `k` explicitly
//! injects one at launch op `k`, and the device is never lost — every
//! failure walks the partial-commit + checkpoint-restore path. A run that
//! completes must reproduce the cell's fault-free checksum bit-for-bit
//! (recoveries and fallbacks included); a run that fails must have a typed
//! error recorded in the device's sticky state. Violations become findings
//! in the same `{tool, kernel, location, severity, message}` schema the
//! sanitizer and analyzer CLIs emit, and drive the non-zero exit code.

use ompx_hecbench::{run_app_chaos, ProgVersion, System, WorkScale, APP_NAMES};
use ompx_sanitizer::report::{exit_code, render_json, render_text};
use ompx_sanitizer::{Finding, Severity};
use ompx_sim::fault::{FaultKind, FaultPlan, FaultSite};

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seed N] [--schedules N] [--rate F]\n\
         \x20            [--app <name>] [--system nvidia|amd]\n\
         \x20            [--version ompx|omp|native|vendor]\n\
         \x20            [--only watchdog] [--test-scale] [--json] [--out FILE]\n\
         apps: {}",
        APP_NAMES.join(", ")
    );
    std::process::exit(2);
}

struct Opts {
    seed: u64,
    schedules: u64,
    rate: f64,
    apps: Vec<&'static str>,
    systems: Vec<System>,
    versions: Vec<ProgVersion>,
    scale: WorkScale,
    only: Option<FaultKind>,
    json: bool,
    out: Option<String>,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        seed: 20260807,
        schedules: 5,
        rate: 0.05,
        apps: APP_NAMES.to_vec(),
        systems: vec![System::Nvidia, System::Amd],
        versions: ProgVersion::all().to_vec(),
        scale: WorkScale::Default,
        only: None,
        json: false,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                o.seed = match args.get(i).map(|s| s.parse()) {
                    Some(Ok(n)) => n,
                    _ => usage(),
                };
            }
            "--schedules" => {
                i += 1;
                o.schedules = match args.get(i).map(|s| s.parse()) {
                    Some(Ok(n)) if n > 0 => n,
                    _ => usage(),
                };
            }
            "--rate" => {
                i += 1;
                o.rate = match args.get(i).map(|s| s.parse::<f64>()) {
                    Some(Ok(r)) if (0.0..=1.0).contains(&r) => r,
                    _ => usage(),
                };
            }
            "--app" => {
                i += 1;
                match args.get(i).and_then(|a| APP_NAMES.iter().find(|n| **n == a.as_str())) {
                    Some(name) => o.apps = vec![name],
                    None => usage(),
                }
            }
            "--system" => {
                i += 1;
                o.systems = match args.get(i).map(String::as_str) {
                    Some("nvidia") => vec![System::Nvidia],
                    Some("amd") => vec![System::Amd],
                    _ => usage(),
                };
            }
            "--version" => {
                i += 1;
                o.versions = match args.get(i).map(String::as_str) {
                    Some("ompx") => vec![ProgVersion::Ompx],
                    Some("omp") => vec![ProgVersion::Omp],
                    Some("native") => vec![ProgVersion::Native],
                    Some("vendor") => vec![ProgVersion::NativeVendor],
                    _ => usage(),
                };
            }
            "--only" => {
                i += 1;
                o.only = match args.get(i).map(String::as_str) {
                    Some("watchdog") => Some(FaultKind::Watchdog),
                    _ => usage(),
                };
            }
            "--test-scale" => o.scale = WorkScale::Test,
            "--json" => o.json = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => o.out = Some(p.clone()),
                    None => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    o
}

/// Running totals across the whole matrix, printed as the summary tail.
#[derive(Default)]
struct Tally {
    runs: u64,
    clean: u64,
    recovered_runs: u64,
    recovered_ops: u64,
    fallback_runs: u64,
    typed_errors: u64,
    panics: u64,
    divergences: u64,
}

fn finding(cell: &str, seed: u64, schedule: u64, severity: Severity, message: String) -> Finding {
    Finding {
        tool: "chaos".into(),
        kernel: cell.into(),
        location: format!("seed={seed} schedule={schedule}"),
        severity,
        message,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse(&args);

    let mut findings: Vec<Finding> = Vec::new();
    let mut tally = Tally::default();

    for app in &o.apps {
        for &sys in &o.systems {
            for &version in &o.versions {
                let cell = format!("{app}/{}/{}", sys.label(), version.label(sys));

                // The fault-free baseline this cell must reproduce.
                let (baseline, base_report, _) =
                    run_app_chaos(app, sys, version, o.scale, FaultPlan::none());
                let baseline = match baseline {
                    Ok(b) => b,
                    Err(msg) => {
                        findings.push(finding(
                            &cell,
                            o.seed,
                            0,
                            Severity::Error,
                            format!("fault-free baseline failed: {msg}"),
                        ));
                        continue;
                    }
                };
                if !base_report.snapshot.injected.is_empty() {
                    findings.push(finding(
                        &cell,
                        o.seed,
                        0,
                        Severity::Error,
                        "quiet plan injected faults".into(),
                    ));
                }

                for k in 0..o.schedules {
                    let seed = o.seed.wrapping_add(k);
                    let mut plan = FaultPlan::seeded(seed, o.rate);
                    let mut lose = false;
                    if let Some(kind) = o.only {
                        // Kind-pure schedules: restrict the rate-based
                        // episodes and pin one explicit injection at launch
                        // op `k` (staggered so each schedule kills a
                        // different launch). No device loss, so every
                        // failure exercises the partial-commit +
                        // checkpoint-restore recovery path.
                        plan = plan.with_only_kind(kind).with_injection(FaultSite::Launch, k, kind);
                    } else {
                        // Every third schedule also loses the device mid-run
                        // to exercise the degradation paths.
                        lose = k % 3 == 2;
                        if lose {
                            // Early enough to fire even at test scale,
                            // staggered per schedule so different ops take
                            // the hit.
                            plan = plan.with_device_loss_at(2 + k);
                        }
                    }
                    let (result, report, _spans) = run_app_chaos(app, sys, version, o.scale, plan);
                    tally.runs += 1;
                    let snap = &report.snapshot;

                    let verdict = match result {
                        Ok(outcome) => {
                            tally.recovered_ops += snap.recovered;
                            if snap.recovered > 0 {
                                tally.recovered_runs += 1;
                            }
                            if outcome.checksum != baseline.checksum {
                                tally.divergences += 1;
                                findings.push(finding(
                                    &cell,
                                    seed,
                                    k,
                                    Severity::Error,
                                    format!(
                                        "checksum diverged from fault-free baseline \
                                         ({:#018x} != {:#018x}; {} injected, {} recovered, \
                                         {} fallbacks, {} degraded)",
                                        outcome.checksum,
                                        baseline.checksum,
                                        snap.injected.len(),
                                        snap.recovered,
                                        snap.fallbacks.len(),
                                        snap.degraded.len()
                                    ),
                                ));
                                "DIVERGED"
                            } else if !snap.fallbacks.is_empty() || !snap.degraded.is_empty() {
                                tally.fallback_runs += 1;
                                "fallback-validated"
                            } else {
                                tally.clean += 1;
                                "ok"
                            }
                        }
                        Err(msg) => {
                            if snap.sticky.is_empty() && !snap.device_lost {
                                tally.panics += 1;
                                findings.push(finding(
                                    &cell,
                                    seed,
                                    k,
                                    Severity::Error,
                                    format!("panic without a typed error: {msg}"),
                                ));
                                "PANIC"
                            } else {
                                tally.typed_errors += 1;
                                "typed-error"
                            }
                        }
                    };
                    if !o.json {
                        println!(
                            "{cell:28} seed={seed} {}-> {verdict:18} \
                             injected={} recovered={} fallbacks={} degraded={} sticky={}",
                            if lose { "lose-device " } else { "" },
                            snap.injected.len(),
                            snap.recovered,
                            snap.fallbacks.len(),
                            snap.degraded.len(),
                            snap.sticky.len()
                        );
                    }
                }
            }
        }
    }

    if o.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
        println!(
            "========= {} runs: {} clean, {} with recoveries ({} ops retried back to health), \
             {} fallback-validated, {} typed errors, {} panics, {} divergences",
            tally.runs,
            tally.clean,
            tally.recovered_runs,
            tally.recovered_ops,
            tally.fallback_runs,
            tally.typed_errors,
            tally.panics,
            tally.divergences
        );
    }
    if let Some(path) = &o.out {
        if let Err(e) = std::fs::write(path, render_json(&findings)) {
            eprintln!("chaos: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    std::process::exit(exit_code(&findings));
}
