//! The unified finding schema shared by the `sanitize` and `analyze` CLIs.
//!
//! Both tools — the dynamic sanitizer (this crate) and the static verifier
//! (`ompx-analyzer`) — emit the same JSON shape, so CI consumers parse one
//! format:
//!
//! ```json
//! {
//!   "findings": [
//!     {"tool": "...", "kernel": "...", "location": "...",
//!      "severity": "error", "message": "..."}
//!   ],
//!   "count": 1,
//!   "exit_code": 1
//! }
//! ```
//!
//! `tool` is the producing checker (`memcheck`, `racecheck`, … for the
//! sanitizer; `racecheck`, `synccheck`, `boundscheck`, `launchcheck`,
//! `summarycheck` for the analyzer), `location` a human-readable position
//! (block/thread/index for dynamic findings, the access or buffer
//! description for static ones).

use crate::json_escape;
use ompx_sim::san::Diagnostic;

/// Finding severity. Errors drive the non-zero exit code; warnings are
/// reported but do not fail a run by themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    /// JSON/text spelling.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding in the unified schema.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Producing checker, e.g. `memcheck` or `boundscheck`.
    pub tool: String,
    /// Kernel the finding concerns (empty for host-side findings).
    pub kernel: String,
    /// Human-readable position: block/thread/index for dynamic findings,
    /// access or buffer description for static ones.
    pub location: String,
    /// Error or warning.
    pub severity: Severity,
    /// Defect description.
    pub message: String,
}

impl Finding {
    /// Convert a dynamic sanitizer diagnostic into the unified schema.
    /// Every sanitizer diagnostic is an error.
    pub fn from_diagnostic(d: &Diagnostic) -> Finding {
        let mut location = String::new();
        if d.kernel.is_empty() {
            location.push_str("host");
        } else {
            location.push_str(&format!(
                "block ({},{},{}) thread ({},{},{})",
                d.block.0, d.block.1, d.block.2, d.thread.0, d.thread.1, d.thread.2
            ));
        }
        if let Some(a) = d.address {
            location.push_str(&format!(" index {a}"));
        }
        if let Some(l) = &d.alloc {
            location.push_str(&format!(" of {l}"));
        }
        Finding {
            tool: d.kind.tool().to_string(),
            kernel: d.kernel.clone(),
            location,
            severity: Severity::Error,
            message: format!("{}: {}", d.kind.label(), d.message),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.tool, self.severity)?;
        if !self.kernel.is_empty() {
            write!(f, " in kernel `{}`", self.kernel)?;
        }
        if !self.location.is_empty() {
            write!(f, " at {}", self.location)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// CI exit code for a finding list: 0 when no *errors* (warnings alone stay
/// clean), 1 otherwise.
pub fn exit_code(findings: &[Finding]) -> i32 {
    i32::from(findings.iter().any(|f| f.severity == Severity::Error))
}

/// Count `findings` into the ambient metric registry (if one is
/// installed) as `findings_total{tool, severity}` — the reporting-side
/// companion to the per-diagnostic `sanitizer_findings_total` the dynamic
/// sanitizer records at detection time. CLIs call this once per report so
/// a metrics snapshot covers static-analyzer findings too.
pub fn record_findings_metrics(findings: &[Finding]) {
    if let Some(reg) = ompx_telemetry::active() {
        for f in findings {
            reg.counter_add(
                "findings_total",
                &[("tool", &f.tool), ("severity", f.severity.label())],
                1,
            );
        }
    }
}

/// Render a finding list as the unified JSON document.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"tool\": \"{}\", ", json_escape(&f.tool)));
        out.push_str(&format!("\"kernel\": \"{}\", ", json_escape(&f.kernel)));
        out.push_str(&format!("\"location\": \"{}\", ", json_escape(&f.location)));
        out.push_str(&format!("\"severity\": \"{}\", ", f.severity.label()));
        out.push_str(&format!("\"message\": \"{}\"}}", json_escape(&f.message)));
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"count\": {},\n", findings.len()));
    out.push_str(&format!("  \"exit_code\": {}\n}}\n", exit_code(findings)));
    out
}

/// Render a finding list as a human-readable multi-line report with the
/// sanitizer's summary-tail convention.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{f}\n"));
    }
    out.push_str(&format!(
        "========= {} finding(s){}\n",
        findings.len(),
        if findings.is_empty() { " — clean run" } else { "" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            tool: "boundscheck".into(),
            kernel: "k".into(),
            location: "read buf[i]".into(),
            severity: Severity::Error,
            message: "index may exceed len".into(),
        }
    }

    #[test]
    fn json_has_the_unified_fields() {
        let json = render_json(&[sample()]);
        for key in ["\"tool\"", "\"kernel\"", "\"location\"", "\"severity\"", "\"message\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"exit_code\": 1"));
    }

    #[test]
    fn warnings_do_not_fail_the_run() {
        let mut w = sample();
        w.severity = Severity::Warning;
        assert_eq!(exit_code(&[w.clone()]), 0);
        assert_eq!(exit_code(&[w, sample()]), 1);
        assert_eq!(exit_code(&[]), 0);
    }

    #[test]
    fn findings_metrics_count_by_tool_and_severity() {
        let ((), snap) = ompx_telemetry::with_metrics(|| {
            let mut w = sample();
            w.severity = Severity::Warning;
            record_findings_metrics(&[sample(), sample(), w]);
        });
        let errors = [("severity", "error"), ("tool", "boundscheck")];
        let warns = [("severity", "warning"), ("tool", "boundscheck")];
        assert_eq!(snap.counter("findings_total", &errors), 2);
        assert_eq!(snap.counter("findings_total", &warns), 1);
    }

    #[test]
    fn diagnostic_conversion_carries_position() {
        use ompx_sim::san::DiagKind;
        let d = Diagnostic {
            kind: DiagKind::OutOfBounds,
            kernel: "vecadd".into(),
            block: (1, 0, 0),
            thread: (3, 0, 0),
            address: Some(42),
            alloc: Some("out".into()),
            message: "Write of element 42 past the end of out (len 32)".into(),
        };
        let f = Finding::from_diagnostic(&d);
        assert_eq!(f.tool, "memcheck");
        assert_eq!(f.kernel, "vecadd");
        assert!(f.location.contains("block (1,0,0)"));
        assert!(f.location.contains("index 42"));
        assert!(f.message.starts_with("out-of-bounds access:"));
        assert_eq!(f.severity, Severity::Error);
    }
}
