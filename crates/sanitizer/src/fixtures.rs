//! Deliberately-buggy fixture kernels, one per diagnostic the tools can
//! raise. Each fixture builds a tiny device, attaches exactly the tool that
//! should catch the bug, runs a kernel (or allocation sequence) containing
//! it, and returns the report. They serve three purposes: regression tests
//! that every tool actually fires, executable documentation of what each
//! tool looks for, and demo targets for the `sanitize` CLI
//! (`sanitize --tool memcheck --fixture oob-write`).
//!
//! The bugs mirror the classic `compute-sanitizer` demo kernels: an
//! off-the-end write, a read through a freed pointer, a type-punned
//! misaligned load, missing `__syncthreads()` races, a cross-block
//! accumulation without atomics, divergent barriers, a `__shfl_sync` mask
//! that omits callers, reads of `cudaMalloc`'d garbage, and an allocation
//! never freed before `cudaDeviceReset`.

use crate::{Report, Sanitizer, Tool};
use ompx_sim::prelude::*;
use ompx_sim::san::DiagKind;

fn device() -> Device {
    Device::new(DeviceProfile::test_small())
}

/// memcheck: the grid overhangs the buffer and the last threads write past
/// the end (`buf[gid]` with `gid >= len`).
pub fn oob_write() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Memcheck]);
    let buf = dev.alloc_labeled::<u32>(4, "undersized");
    let k = Kernel::new("fixture_oob_write", {
        let buf = buf.clone();
        move |ctx: &mut ThreadCtx| {
            let gid = ctx.global_thread_id_x();
            ctx.write(&buf, gid, gid as u32); // gids 4..8 run off the end
        }
    });
    dev.launch(&k, LaunchConfig::linear(8, 4)).unwrap();
    session.finish()
}

/// memcheck: the host frees the buffer, then a kernel still reads it.
pub fn use_after_free() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Memcheck]);
    let buf = dev.alloc_labeled::<f32>(4, "freed-early");
    dev.free(&buf);
    let k = Kernel::new("fixture_use_after_free", {
        let buf = buf.clone();
        move |ctx: &mut ThreadCtx| {
            let gid = ctx.global_thread_id_x();
            let _ = ctx.read(&buf, gid % 4);
        }
    });
    dev.launch(&k, LaunchConfig::linear(4, 4)).unwrap();
    session.finish()
}

/// memcheck: a type-punned load `*(double*)((char*)p + 4)` that breaks
/// `f64` alignment — a fault on real hardware.
pub fn misaligned_read() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Memcheck]);
    let buf = dev.alloc_labeled::<f64>(4, "punned");
    let k = Kernel::new("fixture_misaligned_read", {
        let buf = buf.clone();
        move |ctx: &mut ThreadCtx| {
            let _ = ctx.read_at_bytes::<f64>(&buf, 4);
        }
    });
    dev.launch(&k, LaunchConfig::linear(1, 1)).unwrap();
    session.finish()
}

/// racecheck: every thread of the block writes the same shared cell in the
/// same barrier epoch — the missing-`sync_threads` reduction bug.
pub fn shared_race() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Racecheck]);
    let cfg = LaunchConfig::linear(4, 4).with_shared_array::<u32>(1);
    let k = Kernel::new("fixture_shared_race", move |ctx: &mut ThreadCtx| {
        let tile = ctx.shared::<u32>(0);
        ctx.swrite(&tile, 0, ctx.thread_id_x() as u32);
    });
    dev.launch(&k, cfg).unwrap();
    session.finish()
}

/// racecheck: two blocks accumulate into the same global cell with plain
/// writes instead of atomics — the cross-block histogram bug.
pub fn global_race() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Racecheck]);
    let buf = dev.alloc_labeled::<u32>(1, "histogram");
    let k = Kernel::new("fixture_global_race", {
        let buf = buf.clone();
        move |ctx: &mut ThreadCtx| {
            let old = ctx.read(&buf, 0);
            ctx.write(&buf, 0, old + 1); // should be ctx.atomic_add
        }
    });
    dev.launch(&k, LaunchConfig::linear(2, 1)).unwrap();
    session.finish()
}

/// synccheck: half the block takes an extra `sync_threads` the other half
/// never reaches — barrier divergence (a hang on real hardware).
pub fn barrier_divergence() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Synccheck]);
    let k = Kernel::new("fixture_barrier_divergence", move |ctx: &mut ThreadCtx| {
        ctx.sync_threads();
        if ctx.thread_id_x() >= 2 {
            ctx.sync_threads(); // lanes 0..2 never arrive here
        }
    })
    .with_block_sync();
    dev.launch(&k, LaunchConfig::linear(4, 4)).unwrap();
    session.finish()
}

/// synccheck: a `shfl_sync` member mask naming only lane 0 while every lane
/// of the warp participates — undefined behaviour on real hardware.
pub fn invalid_shfl_mask() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Synccheck]);
    let k = Kernel::new("fixture_invalid_shfl_mask", move |ctx: &mut ThreadCtx| {
        let v = ctx.thread_id_x() as u32;
        let _ = ctx.shfl_masked(0b0001, v, 0); // lanes 1..4 are not members
    })
    .with_warp_ops();
    dev.launch(&k, LaunchConfig::linear(4, 4)).unwrap();
    session.finish()
}

/// initcheck: the kernel reads an `alloc_uninit` buffer (the `cudaMalloc`
/// analogue) that no one ever wrote.
pub fn uninit_global_read() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Initcheck]);
    let buf = dev.alloc_uninit::<f32>(4);
    let k = Kernel::new("fixture_uninit_global_read", {
        let buf = buf.clone();
        move |ctx: &mut ThreadCtx| {
            let gid = ctx.global_thread_id_x();
            let _ = ctx.read(&buf, gid);
        }
    });
    dev.launch(&k, LaunchConfig::linear(4, 4)).unwrap();
    session.finish()
}

/// initcheck: the kernel reads a shared-memory tile before any thread has
/// filled it (shared memory is undefined at block start).
pub fn uninit_shared_read() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Initcheck]);
    let cfg = LaunchConfig::linear(4, 4).with_shared_array::<f32>(4);
    let k = Kernel::new("fixture_uninit_shared_read", move |ctx: &mut ThreadCtx| {
        let tile = ctx.shared::<f32>(0);
        let _ = ctx.sread(&tile, ctx.thread_id_x());
    });
    dev.launch(&k, cfg).unwrap();
    session.finish()
}

/// leakcheck: an allocation is still live when the device is reset
/// (`cudaDeviceReset` with an outstanding `cudaMalloc`).
pub fn leak() -> Report {
    let dev = device();
    let session = Sanitizer::attach(&dev, &[Tool::Leakcheck]);
    let _buf = dev.alloc_labeled::<f64>(16, "never-freed");
    dev.reset();
    session.finish()
}

/// One fixture entry: (CLI name, runner, the diagnostic it must raise).
pub type Fixture = (&'static str, fn() -> Report, DiagKind);

/// Every fixture.
pub const ALL: [Fixture; 10] = [
    ("oob-write", oob_write, DiagKind::OutOfBounds),
    ("use-after-free", use_after_free, DiagKind::UseAfterFree),
    ("misaligned-read", misaligned_read, DiagKind::MisalignedAccess),
    ("shared-race", shared_race, DiagKind::SharedRace),
    ("global-race", global_race, DiagKind::GlobalRace),
    ("barrier-divergence", barrier_divergence, DiagKind::BarrierDivergence),
    ("invalid-shfl-mask", invalid_shfl_mask, DiagKind::InvalidShflMask),
    ("uninit-global-read", uninit_global_read, DiagKind::UninitGlobalRead),
    ("uninit-shared-read", uninit_shared_read, DiagKind::UninitSharedRead),
    ("leak", leak, DiagKind::DeviceLeak),
];

/// Look up a fixture by its CLI name.
pub fn by_name(name: &str) -> Option<(fn() -> Report, DiagKind)> {
    ALL.iter().find(|(n, _, _)| *n == name).map(|(_, f, k)| (*f, *k))
}
