//! # ompx-sanitizer — compute-sanitizer-style correctness tools
//!
//! The simulator counterpart of NVIDIA's `compute-sanitizer` (and ROCm's
//! equivalent): a pluggable set of correctness tools that attach to a
//! [`ompx_sim::device::Device`] and observe every launch through the
//! instrumentation hooks in `ompx_sim::san`. Because the hooks live at the
//! device/executor layer, *every* launch path is covered automatically —
//! `ompx-klang` CUDA/HIP kernels, `ompx-devicert` generic/SPMD OpenMP
//! regions, `ompx-hostrt` target regions, and bare `ompx` launches.
//!
//! | tool | finds |
//! |------|-------|
//! | `memcheck`  | out-of-bounds indices, use-after-free, misaligned typed access |
//! | `racecheck` | shared-memory races (block-local) and plain cross-block global conflicts |
//! | `synccheck` | divergent `sync_threads` usage, invalid `shfl_sync` member masks |
//! | `initcheck` | reads of never-written global (`alloc_uninit`) or shared cells |
//! | `leakcheck` | device allocations still live at explicit `Device::reset` |
//!
//! ```
//! use ompx_sanitizer::{Sanitizer, Tool};
//! use ompx_sim::prelude::*;
//!
//! let dev = Device::new(DeviceProfile::test_small());
//! let session = Sanitizer::attach(&dev, &[Tool::Memcheck]);
//! let buf = dev.alloc::<u32>(4);
//! let k = Kernel::new("oob", {
//!     let buf = buf.clone();
//!     move |ctx: &mut ThreadCtx| {
//!         let i = ctx.global_thread_id_x();
//!         ctx.write(&buf, i + 3, 1); // last thread runs off the end
//!     }
//! });
//! dev.launch(&k, LaunchConfig::linear(2, 2)).unwrap();
//! let report = session.finish();
//! assert_eq!(report.len(), 1);
//! assert_ne!(report.exit_code(), 0);
//! ```

pub mod fixtures;
pub mod report;

pub use report::{Finding, Severity};

use ompx_sim::device::Device;
pub use ompx_sim::san::{AllocRecord, DiagKind, Diagnostic, SanState, ToolMask};
use std::sync::Arc;

/// One sanitizer tool, as named on the `sanitize --tool` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    Memcheck,
    Racecheck,
    Synccheck,
    Initcheck,
    Leakcheck,
    /// All five tools at once.
    All,
}

impl Tool {
    /// Every concrete tool (excludes [`Tool::All`]).
    pub const EACH: [Tool; 5] =
        [Tool::Memcheck, Tool::Racecheck, Tool::Synccheck, Tool::Initcheck, Tool::Leakcheck];

    /// The tool's mask bits.
    pub fn mask(self) -> ToolMask {
        match self {
            Tool::Memcheck => ToolMask::MEMCHECK,
            Tool::Racecheck => ToolMask::RACECHECK,
            Tool::Synccheck => ToolMask::SYNCCHECK,
            Tool::Initcheck => ToolMask::INITCHECK,
            Tool::Leakcheck => ToolMask::LEAKCHECK,
            Tool::All => ToolMask::ALL,
        }
    }

    /// CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Memcheck => "memcheck",
            Tool::Racecheck => "racecheck",
            Tool::Synccheck => "synccheck",
            Tool::Initcheck => "initcheck",
            Tool::Leakcheck => "leakcheck",
            Tool::All => "all",
        }
    }

    /// Fold a tool list into one mask.
    pub fn mask_of(tools: &[Tool]) -> ToolMask {
        tools.iter().fold(ToolMask::NONE, |m, t| m | t.mask())
    }
}

impl std::str::FromStr for Tool {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "memcheck" => Ok(Tool::Memcheck),
            "racecheck" => Ok(Tool::Racecheck),
            "synccheck" => Ok(Tool::Synccheck),
            "initcheck" => Ok(Tool::Initcheck),
            "leakcheck" => Ok(Tool::Leakcheck),
            "all" => Ok(Tool::All),
            other => Err(format!(
                "unknown tool `{other}` (expected memcheck|racecheck|synccheck|initcheck|\
                 leakcheck|all)"
            )),
        }
    }
}

impl std::fmt::Display for Tool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An attached sanitizer session on one device. Dropping the session does
/// NOT detach it (the state is shared with the device); call
/// [`Sanitizer::finish`] to detach and collect the report.
pub struct Sanitizer {
    device: Device,
    state: Arc<SanState>,
}

impl Sanitizer {
    /// Attach a fresh session running `tools` to `device`. Launches and
    /// allocations made from now on are observed.
    pub fn attach(device: &Device, tools: &[Tool]) -> Sanitizer {
        Self::attach_mask(device, Tool::mask_of(tools))
    }

    /// Attach with an explicit tool mask.
    pub fn attach_mask(device: &Device, mask: ToolMask) -> Sanitizer {
        let state = SanState::new(mask);
        device.attach_sanitizer(Arc::clone(&state));
        Sanitizer { device: device.clone(), state }
    }

    /// The shared session state (e.g. to poll findings mid-run).
    pub fn state(&self) -> &Arc<SanState> {
        &self.state
    }

    /// Findings recorded so far, without detaching.
    pub fn findings(&self) -> Vec<Diagnostic> {
        self.state.diagnostics()
    }

    /// Detach from the device and return the final report.
    pub fn finish(self) -> Report {
        self.device.detach_sanitizer();
        Report { enabled: self.state.enabled(), diagnostics: self.state.diagnostics() }
    }
}

/// The outcome of a sanitizer session: structured findings plus the
/// formatting/exit-code conventions the CLI and CI use.
#[derive(Debug, Clone)]
pub struct Report {
    enabled: ToolMask,
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Assemble a report directly from session state (used by runtime
    /// layers that manage attachment themselves).
    pub fn from_state(state: &SanState) -> Report {
        Report { enabled: state.enabled(), diagnostics: state.diagnostics() }
    }

    /// Assemble a report from already-drained findings (used by harnesses
    /// like `run_app_sanitized` that hand back a plain diagnostic list).
    pub fn from_findings(enabled: ToolMask, diagnostics: Vec<Diagnostic>) -> Report {
        Report { enabled, diagnostics }
    }

    /// The findings, in recording order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when the run was clean.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings belonging to one tool.
    pub fn for_tool(&self, tool: Tool) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.kind.tool() == tool.name()).collect()
    }

    /// CI convention: 0 on a clean run, 1 when any tool reported a finding
    /// (`compute-sanitizer --error-exitcode`).
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.diagnostics.is_empty())
    }

    /// The findings in the unified schema shared with `analyze`
    /// (see [`report`]).
    pub fn findings(&self) -> Vec<Finding> {
        self.diagnostics.iter().map(Finding::from_diagnostic).collect()
    }

    /// Human-readable multi-line report, one finding per line plus a
    /// summary tail.
    pub fn to_text(&self) -> String {
        report::render_text(&self.findings())
    }

    /// Machine-readable JSON in the unified finding schema (tool, kernel,
    /// location, severity, message — see [`report`]). Hand-rolled so the
    /// workspace needs no JSON dependency.
    pub fn to_json(&self) -> String {
        report::render_json(&self.findings())
    }

    /// The tools that were enabled for this session.
    pub fn enabled(&self) -> ToolMask {
        self.enabled
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tool_parsing_roundtrip() {
        for t in Tool::EACH {
            assert_eq!(t.name().parse::<Tool>().unwrap(), t);
        }
        assert_eq!("ALL".parse::<Tool>().unwrap(), Tool::All);
        assert!("memchk".parse::<Tool>().is_err());
        assert!(Tool::mask_of(&[Tool::Memcheck, Tool::Leakcheck]).contains(ToolMask::MEMCHECK));
        assert!(!Tool::mask_of(&[Tool::Memcheck]).contains(ToolMask::RACECHECK));
        assert_eq!(Tool::All.mask(), ToolMask::ALL);
    }

    #[test]
    fn empty_report_is_clean() {
        let state = SanState::new(ToolMask::ALL);
        let report = Report::from_state(&state);
        assert!(report.is_empty());
        assert_eq!(report.exit_code(), 0);
        assert!(report.to_text().contains("clean run"));
        assert!(report.to_json().contains("\"count\": 0"));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
