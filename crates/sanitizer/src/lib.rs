//! ompx-sanitizer: compute-sanitizer-style correctness tools.
