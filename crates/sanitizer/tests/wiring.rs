//! The sanitizer hooks live at the device/executor layer, so one session
//! observes every launch path. These tests drive a buggy kernel through
//! each stack — ompx-klang chevron launches, ompx-hostrt target regions
//! (lowered via ompx-devicert), and ompx-core bare launches — and check
//! the findings arrive with correct attribution.

use ompx_hostrt::{ompx_sanitizer_disable, ompx_sanitizer_enable, OpenMp};
use ompx_sanitizer::{DiagKind, SanState, ToolMask};
use ompx_sim::prelude::*;
use ompx_sim::san::Diagnostic;
use std::sync::Arc;

fn has(findings: &[Diagnostic], kind: DiagKind) -> bool {
    findings.iter().any(|d| d.kind == kind)
}

#[test]
fn klang_chevron_launch_reports_oob() {
    let ctx = ompx_klang::cuda::cuda_context_clang();
    let state = SanState::new(ToolMask::MEMCHECK);
    ctx.sanitizer_attach(Arc::clone(&state));
    let buf = ctx.malloc::<u32>(4);
    let k = Kernel::new("klang_oob", {
        let buf = buf.clone();
        move |tc: &mut ThreadCtx| {
            let gid = tc.global_thread_id_x();
            tc.write(&buf, gid + 2, 7);
        }
    });
    ctx.launch(&k, 1u32, 8u32).unwrap();
    let findings = ctx.sanitizer_findings();
    assert!(has(&findings, DiagKind::OutOfBounds), "{findings:?}");
    assert!(findings.iter().all(|d| d.kernel == "klang_oob"));
    assert!(ctx.sanitizer_detach().is_some());
}

#[test]
fn target_region_reports_oob_through_devicert_lowering() {
    let omp = OpenMp::test_system();
    ompx_sanitizer_enable(&omp, ToolMask::MEMCHECK);
    let buf = omp.device().alloc::<f64>(4);
    omp.target("omp_oob")
        .num_teams(2)
        .thread_limit(4)
        .run_distribute_parallel_for(8, {
            let buf = buf.clone();
            move |tc, i, _scratch| tc.write(&buf, i + 2, 1.0)
        })
        .unwrap();
    let findings = ompx_sanitizer_disable(&omp);
    assert!(has(&findings, DiagKind::OutOfBounds), "{findings:?}");
    assert!(omp.device().sanitizer().is_none());
}

#[test]
fn bare_launch_reports_through_host_api_session() {
    let omp = ompx::runtime_nvidia();
    ompx_sanitizer_enable(&omp, ToolMask::MEMCHECK);
    let buf = omp.device().alloc::<u32>(4);
    ompx::BareTarget::new(&omp, "bare_oob")
        .num_teams([2u32])
        .thread_limit([4u32])
        .launch({
            let buf = buf.clone();
            move |tc| {
                let gid = tc.global_thread_id_x();
                tc.write(&buf, gid, 1);
            }
        })
        .unwrap();
    let findings = ompx_sanitizer_disable(&omp);
    assert!(has(&findings, DiagKind::OutOfBounds), "{findings:?}");
    let d = findings.iter().find(|d| d.kind == DiagKind::OutOfBounds).unwrap();
    assert_eq!(d.kernel, "bare_oob");
    assert_eq!(d.block.0, 1, "only the second block overhangs");
}

/// Racecheck is session-scoped (the legacy per-launch `racecheck()` flag
/// was removed): a racecheck session attached through the hostrt entry
/// points records shared-memory races on a `BareTarget` launch as
/// structured findings and the launch completes.
#[test]
fn racecheck_session_records_bare_target_races() {
    let omp = ompx::runtime_nvidia();
    ompx_sanitizer_enable(&omp, ToolMask::RACECHECK);
    let mut bt = ompx::BareTarget::new(&omp, "session_race").num_teams([1u32]).thread_limit([4u32]);
    let slot = bt.shared_array::<u32>(1);
    bt.launch(move |tc| {
        let tile = tc.shared::<u32>(slot);
        tc.swrite(&tile, 0, tc.thread_id_x() as u32); // recorded, not a panic
    })
    .unwrap();
    let findings = ompx_sanitizer_disable(&omp);
    assert!(has(&findings, DiagKind::SharedRace), "{findings:?}");
}

/// One session shared across layers: a native context and an OpenMP
/// runtime on different devices report into the same report.
#[test]
fn one_session_spans_native_and_openmp_launches() {
    let state = SanState::new(ToolMask::MEMCHECK);
    let ctx = ompx_klang::hip::hip_context_clang();
    ctx.sanitizer_attach(Arc::clone(&state));
    let omp = OpenMp::test_system();
    ompx_hostrt::ompx_sanitizer_attach(&omp, &state);

    let nbuf = ctx.malloc::<u32>(2);
    let k = Kernel::new("native_half", {
        let nbuf = nbuf.clone();
        move |tc: &mut ThreadCtx| tc.write(&nbuf, tc.global_thread_id_x() + 1, 1)
    });
    ctx.launch(&k, 1u32, 2u32).unwrap();

    let obuf = omp.device().alloc::<f64>(2);
    omp.target("omp_half")
        .run_distribute_parallel_for(4, {
            let obuf = obuf.clone();
            move |tc, i, _s| tc.write(&obuf, i, 0.0)
        })
        .unwrap();

    let kernels: Vec<_> = state.diagnostics().iter().map(|d| d.kernel.clone()).collect();
    assert!(kernels.iter().any(|k| k == "native_half"), "{kernels:?}");
    assert!(kernels.iter().any(|k| k.contains("omp_half")), "{kernels:?}");
}
