//! Every fixture kernel raises the diagnostic its tool exists to find, and
//! nothing from any other tool (each fixture attaches only its own tool).

use ompx_sanitizer::{fixtures, DiagKind, Report};

fn kinds(report: &Report) -> Vec<DiagKind> {
    report.diagnostics().iter().map(|d| d.kind).collect()
}

#[test]
fn each_fixture_raises_its_diagnostic() {
    for (name, run, expected) in fixtures::ALL {
        let report = run();
        assert!(
            kinds(&report).contains(&expected),
            "fixture {name}: expected {expected:?}, got {:?}\n{}",
            kinds(&report),
            report.to_text()
        );
        assert_ne!(report.exit_code(), 0, "fixture {name} must fail CI");
        let tool = expected.tool();
        for d in report.diagnostics() {
            assert_eq!(d.kind.tool(), tool, "fixture {name} leaked a {:?}", d.kind);
        }
    }
}

#[test]
fn fixture_lookup_by_cli_name() {
    let (run, expected) = fixtures::by_name("oob-write").unwrap();
    let report = run();
    assert!(kinds(&report).contains(&expected));
    assert!(fixtures::by_name("not-a-fixture").is_none());
}

#[test]
fn oob_write_reports_coordinates_and_allocation() {
    let report = fixtures::oob_write();
    let d = &report.diagnostics()[0];
    assert_eq!(d.kind, DiagKind::OutOfBounds);
    assert_eq!(d.kernel, "fixture_oob_write");
    assert_eq!(d.alloc.as_deref(), Some("undersized"));
    assert!(d.address.is_some());
    assert!(d.message.contains("past the end"), "message: {}", d.message);
    // The overhanging block is block 1 — compute-sanitizer-style coords.
    assert_eq!(d.block.0, 1);
}

#[test]
fn barrier_divergence_flags_only_the_short_lanes() {
    let report = fixtures::barrier_divergence();
    assert!(!report.is_empty());
    for d in report.diagnostics() {
        assert_eq!(d.kind, DiagKind::BarrierDivergence);
        // Lanes 0 and 1 exit after one barrier; lanes 2 and 3 reach both.
        assert!(d.thread.0 < 2, "flagged thread {:?} is not divergent", d.thread);
    }
}

#[test]
fn leak_report_names_the_allocation() {
    let report = fixtures::leak();
    assert_eq!(report.len(), 1);
    let d = &report.diagnostics()[0];
    assert_eq!(d.kind, DiagKind::DeviceLeak);
    assert_eq!(d.alloc.as_deref(), Some("never-freed"));
    assert!(d.message.contains("128"), "16 f64s = 128 bytes: {}", d.message);
}

#[test]
fn json_export_round_trips_fixture_findings() {
    let report = fixtures::use_after_free();
    let json = report.to_json();
    assert!(json.contains("\"tool\": \"memcheck\""));
    assert!(json.contains("\"kernel\": \"fixture_use_after_free\""));
    assert!(json.contains("\"exit_code\": 1"));
}
