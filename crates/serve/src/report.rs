//! Aggregation of a serve run into the `BENCH_serve.json` report:
//! throughput, modeled latency percentiles, batch shape, per-device
//! utilization, per-tenant fairness shares, per-class deadline
//! accounting, and the resilience counters (hedges, breaker activity,
//! spare promotions).
//!
//! Every field is a pure function of the (deterministic) responses, so
//! the rendered JSON is byte-stable for a fixed seed — which is what the
//! CI baseline gate diffs against.

use crate::pool::DevicePool;
use crate::request::{Response, Verdict};
use crate::server::ResilienceStats;
use ompx_resilience::Priority;
use ompx_telemetry::percentile_interp;

/// Per-member rollup.
#[derive(Debug, Clone)]
pub struct DeviceSummary {
    pub member: usize,
    pub kind: &'static str,
    pub served: u64,
    pub batches: u64,
    pub busy_s: f64,
    pub lost: bool,
    /// Still benched as a warm spare at drain time (a promoted spare
    /// reports `false` and its serving counters).
    pub standby: bool,
}

/// Per-tenant rollup. `share` is this tenant's fraction of all served
/// (executed) requests — the fairness accounting the scheduler optimizes.
/// The latency percentiles are over the tenant's own served requests
/// (modeled queueing + service), so tail unfairness is visible even when
/// the served shares balance.
#[derive(Debug, Clone)]
pub struct TenantShare {
    pub tenant: u32,
    pub served: u64,
    pub rejected: u64,
    pub share: f64,
    pub latency_p50_s: f64,
    pub latency_p95_s: f64,
    pub latency_p99_s: f64,
}

/// Per-priority-class rollup: what the deadline scheduler delivered.
/// `lateness_p99` is the p99 of `latency / deadline budget` over the
/// class's completed requests (≤ 1 means the SLO held at the tail);
/// 0 for deadline-free classes.
#[derive(Debug, Clone)]
pub struct ClassStat {
    pub class: &'static str,
    pub completed: u64,
    pub shed: u64,
    pub deadline_misses: u64,
    pub lateness_p99: f64,
}

/// The full serve report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    pub seed: u64,
    pub clients: u32,
    pub tenants: u32,
    pub total: u64,
    pub completed: u64,
    pub success: u64,
    pub fallback: u64,
    pub typed_error: u64,
    pub rejected: u64,
    pub corrupt: u64,
    /// Modeled time of the last completion.
    pub makespan_s: f64,
    /// Completed requests per modeled second.
    pub throughput_rps: f64,
    pub latency_p50_s: f64,
    pub latency_p95_s: f64,
    pub latency_p99_s: f64,
    pub batch_count: u64,
    pub batch_max: u64,
    pub batch_mean: f64,
    pub classes: Vec<ClassStat>,
    pub resilience: ResilienceStats,
    pub devices: Vec<DeviceSummary>,
    pub fairness: Vec<TenantShare>,
}

/// Roll a run's responses, final pool state, and resilience counters
/// into the report.
pub fn build(
    seed: u64,
    clients: u32,
    tenants: u32,
    responses: &[Response],
    pool: &DevicePool,
    stats: &ResilienceStats,
) -> ServeReport {
    let mut success = 0u64;
    let mut fallback = 0u64;
    let mut typed_error = 0u64;
    let mut rejected = 0u64;
    let mut corrupt = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut served_per_tenant = vec![0u64; tenants as usize];
    let mut rejected_per_tenant = vec![0u64; tenants as usize];
    let mut tenant_latencies: Vec<Vec<f64>> = vec![Vec::new(); tenants as usize];
    for r in responses {
        match &r.verdict {
            Verdict::Success => success += 1,
            Verdict::Fallback => fallback += 1,
            Verdict::TypedError(_) => typed_error += 1,
            Verdict::Rejected(_) => rejected += 1,
            Verdict::Corrupt(_) => corrupt += 1,
        }
        if matches!(r.verdict, Verdict::Rejected(_)) {
            rejected_per_tenant[r.tenant as usize] += 1;
        } else {
            latencies.push(r.latency_s());
            served_per_tenant[r.tenant as usize] += 1;
            tenant_latencies[r.tenant as usize].push(r.latency_s());
        }
    }
    latencies.sort_by(f64::total_cmp);
    for tl in &mut tenant_latencies {
        tl.sort_by(f64::total_cmp);
    }
    let completed = latencies.len() as u64;
    let makespan_s = responses.iter().map(|r| r.done_s).fold(0.0f64, f64::max);
    let throughput_rps = if makespan_s > 0.0 { completed as f64 / makespan_s } else { 0.0 };

    // Batch shape, one sample per executed batch: responses carry the
    // batch size per member request, so count each (member, done) once
    // via the per-pool batch counters and the per-response max.
    let batch_count: u64 = pool.members.iter().map(|m| m.batches).sum();
    let batch_max = responses.iter().map(|r| r.batch_size as u64).max().unwrap_or(0);
    let batch_mean = if batch_count > 0 { completed as f64 / batch_count as f64 } else { 0.0 };

    let classes = Priority::ALL
        .iter()
        .map(|&p| {
            let mut done = 0u64;
            let mut shed = 0u64;
            let mut misses = 0u64;
            let mut lateness: Vec<f64> = Vec::new();
            for r in responses.iter().filter(|r| r.priority == p) {
                if matches!(r.verdict, Verdict::Rejected(_)) {
                    shed += 1;
                    continue;
                }
                done += 1;
                if r.missed_deadline() {
                    misses += 1;
                }
                if let Some(l) = r.lateness_ratio() {
                    lateness.push(l);
                }
            }
            lateness.sort_by(f64::total_cmp);
            ClassStat {
                class: p.label(),
                completed: done,
                shed,
                deadline_misses: misses,
                lateness_p99: percentile_interp(&lateness, 0.99),
            }
        })
        .collect();

    let devices = pool
        .members
        .iter()
        .enumerate()
        .map(|(i, m)| DeviceSummary {
            member: i,
            kind: m.kind.label(),
            served: m.served,
            batches: m.batches,
            busy_s: m.busy_s,
            lost: m.lost,
            standby: m.standby,
        })
        .collect();
    let fairness = (0..tenants)
        .map(|t| {
            let tl = &tenant_latencies[t as usize];
            TenantShare {
                tenant: t,
                served: served_per_tenant[t as usize],
                rejected: rejected_per_tenant[t as usize],
                share: if completed > 0 {
                    served_per_tenant[t as usize] as f64 / completed as f64
                } else {
                    0.0
                },
                latency_p50_s: percentile_interp(tl, 0.50),
                latency_p95_s: percentile_interp(tl, 0.95),
                latency_p99_s: percentile_interp(tl, 0.99),
            }
        })
        .collect();

    ServeReport {
        seed,
        clients,
        tenants,
        total: responses.len() as u64,
        completed,
        success,
        fallback,
        typed_error,
        rejected,
        corrupt,
        makespan_s,
        throughput_rps,
        latency_p50_s: percentile_interp(&latencies, 0.50),
        latency_p95_s: percentile_interp(&latencies, 0.95),
        latency_p99_s: percentile_interp(&latencies, 0.99),
        batch_count,
        batch_max,
        batch_mean,
        classes,
        resilience: stats.clone(),
        devices,
        fairness,
    }
}

/// Render the report as the `BENCH_serve.json` document (schema
/// `ompx-bench-serve-v2`). Field order and float formatting are fixed so
/// the output is byte-stable for baseline diffing.
pub fn render_json(r: &ServeReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ompx-bench-serve-v2\",\n");
    out.push_str(&format!("  \"seed\": {},\n", r.seed));
    out.push_str(&format!("  \"clients\": {},\n", r.clients));
    out.push_str(&format!("  \"tenants\": {},\n", r.tenants));
    out.push_str(&format!("  \"total\": {},\n", r.total));
    out.push_str(&format!("  \"completed\": {},\n", r.completed));
    out.push_str(&format!(
        "  \"verdicts\": {{\"success\":{},\"fallback\":{},\"typed_error\":{},\"rejected\":{},\"corrupt\":{}}},\n",
        r.success, r.fallback, r.typed_error, r.rejected, r.corrupt
    ));
    out.push_str(&format!("  \"makespan_s\": {:e},\n", r.makespan_s));
    out.push_str(&format!("  \"throughput_rps\": {:e},\n", r.throughput_rps));
    out.push_str(&format!("  \"latency_p50_s\": {:e},\n", r.latency_p50_s));
    out.push_str(&format!("  \"latency_p95_s\": {:e},\n", r.latency_p95_s));
    out.push_str(&format!("  \"latency_p99_s\": {:e},\n", r.latency_p99_s));
    out.push_str(&format!(
        "  \"batches\": {{\"count\":{},\"max\":{},\"mean\":{:.4}}},\n",
        r.batch_count, r.batch_max, r.batch_mean
    ));
    out.push_str("  \"classes\": [\n");
    for (i, c) in r.classes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"class\":\"{}\",\"completed\":{},\"shed\":{},\"deadline_misses\":{},\"lateness_p99\":{:e}}}{}\n",
            c.class,
            c.completed,
            c.shed,
            c.deadline_misses,
            c.lateness_p99,
            if i + 1 < r.classes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let s = &r.resilience;
    out.push_str(&format!(
        "  \"resilience\": {{\"hedges_launched\":{},\"hedges_won\":{},\"hedges_skipped\":{},\"breaker_transitions\":{},\"breaker_opens\":{},\"spares_promoted\":{},\"deadline_misses\":{}}},\n",
        s.hedges_launched,
        s.hedges_won,
        s.hedges_skipped,
        s.breaker_transitions,
        s.breaker_opens,
        s.spares_promoted,
        s.deadline_misses
    ));
    out.push_str("  \"devices\": [\n");
    for (i, d) in r.devices.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"member\":{},\"kind\":\"{}\",\"served\":{},\"batches\":{},\"busy_s\":{:e},\"lost\":{},\"standby\":{}}}{}\n",
            d.member,
            d.kind,
            d.served,
            d.batches,
            d.busy_s,
            d.lost,
            d.standby,
            if i + 1 < r.devices.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"fairness\": [\n");
    for (i, t) in r.fairness.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tenant\":{},\"served\":{},\"rejected\":{},\"share\":{:.4},\"latency_p50_s\":{:e},\"latency_p95_s\":{:e},\"latency_p99_s\":{:e}}}{}\n",
            t.tenant,
            t.served,
            t.rejected,
            t.share,
            t.latency_p50_s,
            t.latency_p95_s,
            t.latency_p99_s,
            if i + 1 < r.fairness.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{DeviceKind, DevicePool};
    use ompx_hecbench::ProgVersion;

    fn resp(
        id: u32,
        tenant: u32,
        verdict: Verdict,
        arrival: f64,
        done: f64,
        batch: usize,
    ) -> Response {
        Response {
            id,
            tenant,
            app: "adam",
            version: ProgVersion::Ompx,
            member: Some(0),
            batch_size: batch,
            verdict,
            arrival_s: arrival,
            priority: Priority::Batch,
            deadline_s: None,
            hedged: false,
            done_s: done,
            checksum: Some(1),
            trace: None,
        }
    }

    fn no_stats() -> ResilienceStats {
        ResilienceStats::default()
    }

    #[test]
    fn report_buckets_and_percentiles() {
        let mut pool = DevicePool::new(&[DeviceKind::A100], None, 1);
        pool.members[0].batches = 2;
        pool.members[0].served = 3;
        let responses = vec![
            resp(0, 0, Verdict::Success, 0.0, 1.0, 2),
            resp(1, 1, Verdict::Success, 0.0, 1.0, 2),
            resp(2, 0, Verdict::Fallback, 1.0, 4.0, 1),
            resp(3, 1, Verdict::Rejected("full".into()), 2.0, 2.0, 1),
        ];
        let r = build(9, 4, 2, &responses, &pool, &no_stats());
        assert_eq!((r.success, r.fallback, r.rejected, r.corrupt), (2, 1, 1, 0));
        assert_eq!(r.completed, 3);
        assert_eq!(r.total, 4);
        assert!((r.makespan_s - 4.0).abs() < 1e-12);
        assert!((r.latency_p50_s - 1.0).abs() < 1e-12);
        // Interpolated ranks over sorted [1, 1, 3]: rank 1.9 and 1.98.
        assert!((r.latency_p95_s - 2.8).abs() < 1e-12);
        assert!((r.latency_p99_s - 2.96).abs() < 1e-12);
        assert_eq!(r.batch_count, 2);
        assert_eq!(r.batch_max, 2);
        assert!((r.batch_mean - 1.5).abs() < 1e-12);
        let shares: f64 = r.fairness.iter().map(|t| t.share).sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_stats_split_by_priority_and_count_misses() {
        let pool = DevicePool::new(&[DeviceKind::A100], None, 1);
        let mut interactive_met = resp(0, 0, Verdict::Success, 0.0, 1.0, 1);
        interactive_met.priority = Priority::Interactive;
        interactive_met.deadline_s = Some(2.0);
        let mut interactive_missed = resp(1, 0, Verdict::Success, 0.0, 5.0, 1);
        interactive_missed.priority = Priority::Interactive;
        interactive_missed.deadline_s = Some(2.0);
        let mut be_shed = resp(2, 1, Verdict::Rejected("brownout".into()), 0.0, 0.0, 1);
        be_shed.priority = Priority::BestEffort;
        let responses = vec![interactive_met, interactive_missed, be_shed];
        let r = build(9, 3, 2, &responses, &pool, &no_stats());
        assert_eq!(r.classes.len(), 3);
        let by = |label: &str| r.classes.iter().find(|c| c.class == label).unwrap().clone();
        let i = by("interactive");
        assert_eq!((i.completed, i.shed, i.deadline_misses), (2, 0, 1));
        // Lateness over [0.5, 2.5]: p99 interpolates toward the miss.
        assert!(i.lateness_p99 > 1.0);
        let b = by("best_effort");
        assert_eq!((b.completed, b.shed, b.deadline_misses), (0, 1, 0));
        assert_eq!(by("batch").completed, 0);
    }

    #[test]
    fn all_rejected_percentiles_are_zero() {
        // No completed request: every percentile (global and per-tenant)
        // must come out 0.0, not panic or index out of range.
        let pool = DevicePool::new(&[DeviceKind::A100], None, 1);
        let responses = vec![
            resp(0, 0, Verdict::Rejected("full".into()), 0.0, 0.0, 1),
            resp(1, 1, Verdict::Rejected("full".into()), 1.0, 1.0, 1),
        ];
        let r = build(9, 2, 2, &responses, &pool, &no_stats());
        assert_eq!(r.completed, 0);
        assert_eq!(r.latency_p50_s, 0.0);
        assert_eq!(r.latency_p95_s, 0.0);
        assert_eq!(r.latency_p99_s, 0.0);
        for t in &r.fairness {
            assert_eq!(t.latency_p50_s, 0.0);
            assert_eq!(t.latency_p99_s, 0.0);
        }
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let pool = DevicePool::new(&[DeviceKind::A100], None, 1);
        let responses = vec![resp(0, 0, Verdict::Success, 0.5, 2.5, 1)];
        let r = build(9, 1, 1, &responses, &pool, &no_stats());
        assert!((r.latency_p50_s - 2.0).abs() < 1e-12);
        assert!((r.latency_p95_s - 2.0).abs() < 1e-12);
        assert!((r.latency_p99_s - 2.0).abs() < 1e-12);
        assert!((r.fairness[0].latency_p99_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_tenant_percentiles_cover_only_that_tenants_requests() {
        let pool = DevicePool::new(&[DeviceKind::A100], None, 1);
        let responses = vec![
            resp(0, 0, Verdict::Success, 0.0, 1.0, 1),
            resp(1, 0, Verdict::Success, 0.0, 3.0, 1),
            resp(2, 1, Verdict::Success, 0.0, 10.0, 1),
        ];
        let r = build(9, 3, 2, &responses, &pool, &no_stats());
        assert!((r.fairness[0].latency_p50_s - 2.0).abs() < 1e-12);
        assert!((r.fairness[1].latency_p50_s - 10.0).abs() < 1e-12);
        assert!(r.fairness[0].latency_p99_s < r.fairness[1].latency_p99_s);
    }

    #[test]
    fn json_is_stable_and_tagged() {
        let pool = DevicePool::new(&[DeviceKind::A100, DeviceKind::Mi250], None, 1);
        let responses = vec![resp(0, 0, Verdict::Success, 0.0, 2.0, 1)];
        let mut stats = no_stats();
        stats.hedges_launched = 3;
        stats.spares_promoted = 1;
        let r = build(9, 1, 1, &responses, &pool, &stats);
        let a = render_json(&r);
        let b = render_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"ompx-bench-serve-v2\""));
        assert!(a.contains("\"kind\":\"a100\""));
        assert!(a.contains("\"kind\":\"mi250\""));
        assert!(a.contains("\"standby\":false"));
        assert!(a.contains("\"hedges_launched\":3"));
        assert!(a.contains("\"spares_promoted\":1"));
        assert!(a.contains("\"class\":\"interactive\""));
    }
}
