//! Seeded load-factor sweep: the serving layer's throughput/latency
//! curve.
//!
//! A single serve run measures one operating point. Capacity planning
//! needs the *curve*: how throughput saturates and latency percentiles
//! blow up as offered load crosses pool capacity. [`sweep`] replays the
//! same seeded client population at a ladder of load factors (the only
//! knob that changes between points), producing one [`SweepPoint`] per
//! factor. Everything inherits the serve loop's determinism, so the
//! rendered JSON/CSV are byte-stable for a fixed `(cfg, spec, factors)`
//! and CI gates on them exactly like the single-point serve baseline.

use crate::error::ServeError;
use crate::loadgen::LoadSpec;
use crate::report::{build, ServeReport};
use crate::server::{serve, ServeConfig};

/// The default ladder: from comfortably under capacity to 3× saturated,
/// dense around the knee at 1.0.
pub const DEFAULT_FACTORS: [f64; 7] = [0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 3.0];

/// One operating point of the sweep: the load factor it ran at plus the
/// curve-relevant slice of that run's report.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub load_factor: f64,
    pub completed: u64,
    pub rejected: u64,
    pub makespan_s: f64,
    pub throughput_rps: f64,
    pub latency_p50_s: f64,
    pub latency_p95_s: f64,
    pub latency_p99_s: f64,
}

impl SweepPoint {
    fn from_report(load_factor: f64, r: &ServeReport) -> SweepPoint {
        SweepPoint {
            load_factor,
            completed: r.completed,
            rejected: r.rejected,
            makespan_s: r.makespan_s,
            throughput_rps: r.throughput_rps,
            latency_p50_s: r.latency_p50_s,
            latency_p95_s: r.latency_p95_s,
            latency_p99_s: r.latency_p99_s,
        }
    }
}

/// A full sweep result: the shared run identity plus one point per factor.
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub seed: u64,
    pub clients: u32,
    pub tenants: u32,
    pub points: Vec<SweepPoint>,
}

/// Run `cfg` at every factor in `factors` (ascending order is
/// conventional but not required) against the same seeded `spec`.
pub fn sweep(
    cfg: &ServeConfig,
    spec: &LoadSpec,
    factors: &[f64],
) -> Result<SweepResult, ServeError> {
    if factors.is_empty() {
        return Err(ServeError::InvalidConfig("sweep needs at least one load factor".into()));
    }
    let mut points = Vec::with_capacity(factors.len());
    for &f in factors {
        let mut c = cfg.clone();
        c.load_factor = f;
        let out = serve(&c, spec)?;
        let report =
            build(c.seed, spec.clients, spec.tenants, &out.responses, &out.pool, &out.stats);
        points.push(SweepPoint::from_report(f, &report));
    }
    Ok(SweepResult { seed: cfg.seed, clients: spec.clients, tenants: spec.tenants, points })
}

/// Render a sweep as the `BENCH_sweep.json` document (schema
/// `ompx-bench-sweep-v1`). Field order and float formatting are fixed so
/// the output is byte-stable for baseline diffing.
pub fn render_sweep_json(s: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ompx-bench-sweep-v1\",\n");
    out.push_str(&format!("  \"seed\": {},\n", s.seed));
    out.push_str(&format!("  \"clients\": {},\n", s.clients));
    out.push_str(&format!("  \"tenants\": {},\n", s.tenants));
    out.push_str("  \"points\": [\n");
    for (i, p) in s.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"load_factor\":{:e},\"completed\":{},\"rejected\":{},\"makespan_s\":{:e},\"throughput_rps\":{:e},\"latency_p50_s\":{:e},\"latency_p95_s\":{:e},\"latency_p99_s\":{:e}}}{}\n",
            p.load_factor,
            p.completed,
            p.rejected,
            p.makespan_s,
            p.throughput_rps,
            p.latency_p50_s,
            p.latency_p95_s,
            p.latency_p99_s,
            if i + 1 < s.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the sweep as a plotting-friendly CSV: one row per load factor,
/// throughput and latency percentiles as columns.
pub fn render_sweep_csv(s: &SweepResult) -> String {
    let mut out = String::from(
        "load_factor,completed,rejected,throughput_rps,latency_p50_s,latency_p95_s,latency_p99_s\n",
    );
    for p in &s.points {
        out.push_str(&format!(
            "{:e},{},{},{:e},{:e},{:e},{:e}\n",
            p.load_factor,
            p.completed,
            p.rejected,
            p.throughput_rps,
            p.latency_p50_s,
            p.latency_p95_s,
            p.latency_p99_s,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::DeviceKind;
    use ompx_hecbench::WorkScale;

    fn tiny_cfg() -> ServeConfig {
        let mut cfg = ServeConfig::new(7);
        cfg.devices = vec![DeviceKind::A100];
        cfg.scale = WorkScale::Test;
        cfg
    }

    #[test]
    fn sweep_is_deterministic_and_latency_grows_with_load() {
        let cfg = tiny_cfg();
        let spec = LoadSpec { seed: 7, clients: 24, tenants: 4 };
        let factors = [0.5, 1.5, 3.0];
        let a = sweep(&cfg, &spec, &factors).expect("sweep");
        let b = sweep(&cfg, &spec, &factors).expect("sweep");
        assert_eq!(render_sweep_json(&a), render_sweep_json(&b));
        assert_eq!(render_sweep_csv(&a), render_sweep_csv(&b));
        assert_eq!(a.points.len(), 3);
        // Oversubscription cannot *improve* the tail: p99 at 3.0× is at
        // least p99 at 0.5×.
        assert!(a.points[2].latency_p99_s >= a.points[0].latency_p99_s);
        // Every point served the full population (no shedding at cap 64
        // with 24 clients) and the factors are recorded in order.
        for (p, f) in a.points.iter().zip(factors) {
            assert_eq!(p.load_factor, f);
            assert_eq!(p.completed + p.rejected, 24);
        }
    }

    #[test]
    fn csv_has_one_row_per_point_plus_header() {
        let cfg = tiny_cfg();
        let spec = LoadSpec { seed: 7, clients: 8, tenants: 2 };
        let s = sweep(&cfg, &spec, &[1.0, 2.0]).expect("sweep");
        let csv = render_sweep_csv(&s);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("load_factor,"));
    }

    #[test]
    fn empty_factor_ladder_is_a_typed_error() {
        let cfg = tiny_cfg();
        let spec = LoadSpec { seed: 7, clients: 4, tenants: 2 };
        assert!(matches!(sweep(&cfg, &spec, &[]), Err(crate::error::ServeError::InvalidConfig(_))));
    }
}
