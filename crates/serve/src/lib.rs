//! # ompx-serve — a multi-device kernel-serving layer
//!
//! The rest of the workspace runs one benchmark loop against one
//! simulated device. This crate is the production-shaped layer above it:
//! a pool of simulated devices with mixed A100/MI250 profiles serving
//! thousands of concurrent clients of mixed hecbench traffic, with
//!
//! * **sharding** — tenants hash-shard onto pool members ([`pool`]), and
//!   re-home deterministically when a member is lost;
//! * **batching** — same-kernel requests queued on one member coalesce
//!   into one dispatch, amortizing per-launch setup ([`server`]) — the
//!   win the work-group-specialization line of work points at, and what
//!   launch-bound kernels (Adam) need;
//! * **backpressure** — a bounded backlog with per-tenant fair slices,
//!   shedding typed `Rejected` responses instead of queueing without
//!   bound;
//! * **fairness** — least-served-tenant-first dispatch, reported as
//!   per-tenant shares;
//! * **fault isolation** — each member carries its own decorrelated
//!   [`FaultState`] (via [`FaultPlan::for_pool_member`]); sticky errors
//!   and device loss stay on the member, and the chaos trichotomy
//!   (success / typed error / bit-identical validated fallback) is
//!   asserted per response;
//! * **resilience** — per-request deadlines with EDF-within-priority
//!   scheduling and a brownout admission ladder, hedged re-dispatch off
//!   telemetry latency quantiles, per-member circuit breakers, and warm
//!   spare promotion on device loss ([`server`], policies from
//!   `ompx-resilience`), stress-tested by the [`escalate`]
//!   chaos-escalation campaign and its per-rung SLO contract.
//!
//! Time is *modeled* (the pool's busy cursors advance by each run's
//! reported seconds) while execution is *real* (every batch runs its
//! hecbench cell under a [`ChaosSession`]), so a serve run is both
//! bit-reproducible and functionally validated. The `serve` subcommand
//! in `ompx-bench` drives this and emits `results/BENCH_serve.json`.
//!
//! [`FaultState`]: ompx_sim::fault::FaultState
//! [`FaultPlan::for_pool_member`]: ompx_sim::fault::FaultPlan::for_pool_member
//! [`ChaosSession`]: ompx_hecbench::ChaosSession

pub mod error;
pub mod escalate;
pub mod loadgen;
pub mod pool;
pub mod report;
pub mod request;
pub mod server;
pub mod sweep;

pub use error::ServeError;
pub use escalate::{
    escalate, render_escalate_csv, render_escalate_json, EscalateResult, EscalateRung,
    DEFAULT_MULTIPLIERS,
};
pub use loadgen::LoadSpec;
pub use pool::{DeviceKind, DevicePool, PoolMember};
pub use report::{build as build_report, render_json, ClassStat, ServeReport};
pub use request::{Request, Response, Verdict};
pub use server::{serve, ResilienceStats, ServeConfig, ServeResult};
pub use sweep::{
    render_sweep_csv, render_sweep_json, sweep, SweepPoint, SweepResult, DEFAULT_FACTORS,
};
