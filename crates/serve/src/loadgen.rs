//! Deterministic seeded load generator: thousands of clients of mixed
//! hecbench traffic.
//!
//! Every field of every request is a pure splitmix64 function of `(seed,
//! client id)`, so a load replay is bit-reproducible. Arrivals are
//! generated normalized to `[0, 1)` and scaled by the server once it has
//! estimated the pool's capacity — the generator does not need to know
//! how long the apps take.

use crate::request::Request;
use ompx_hecbench::common::{item_uniform, splitmix64};
use ompx_hecbench::ProgVersion;
use ompx_resilience::Priority;

/// Shape of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Seed for every random decision in the load.
    pub seed: u64,
    /// Number of clients; each issues exactly one request.
    pub clients: u32,
    /// Number of tenants the clients are spread over (`client % tenants`).
    pub tenants: u32,
}

/// Traffic mix in percent. Weighted by measured per-run cost so a
/// 1000-client load stays fast: `stencil` and `aidw` are the two
/// expensive apps at test scale and ride along at low rates, the
/// launch-bound apps that batching actually helps dominate.
const APP_WEIGHTS: [(&str, u64); 6] =
    [("xsbench", 30), ("rsbench", 22), ("su3", 22), ("adam", 18), ("aidw", 6), ("stencil", 2)];

/// Version mix in percent: mostly the prototype, a native slice, and a
/// thin traditional-OpenMP slice (the generic path is the slowest).
const VERSION_WEIGHTS: [(ProgVersion, u64); 3] =
    [(ProgVersion::Ompx, 70), (ProgVersion::Native, 20), (ProgVersion::Omp, 10)];

/// Priority mix in percent: a production-shaped blend of latency-bound
/// interactive traffic, a throughput-bound batch majority, and a
/// scavenger best-effort slice for the brownout ladder to shed first.
const PRIORITY_WEIGHTS: [(Priority, u64); 3] =
    [(Priority::Interactive, 30), (Priority::Batch, 50), (Priority::BestEffort, 20)];

fn weighted<T: Copy>(table: &[(T, u64)], roll: u64) -> T {
    let total: u64 = table.iter().map(|(_, w)| w).sum();
    let mut x = roll % total;
    for (item, w) in table {
        if x < *w {
            return *item;
        }
        x -= w;
    }
    table[table.len() - 1].0
}

/// Generate the offered load with arrivals normalized to `[0, 1)`,
/// sorted by `(arrival, id)`.
pub fn offered(spec: &LoadSpec) -> Vec<Request> {
    assert!(spec.tenants > 0, "need at least one tenant");
    let mut reqs: Vec<Request> = (0..spec.clients)
        .map(|id| {
            let h = splitmix64(spec.seed ^ splitmix64(0x6C6F_6164 ^ u64::from(id)));
            Request {
                id,
                tenant: id % spec.tenants,
                app: weighted(&APP_WEIGHTS, h % 1_000),
                version: weighted(&VERSION_WEIGHTS, (h >> 10) % 1_000),
                arrival_s: item_uniform(spec.seed ^ 0xA881, u64::from(id)),
                priority: weighted(&PRIORITY_WEIGHTS, (h >> 20) % 1_000),
                // Priced by the server after warmup (deadlines are
                // relative to the app's fault-free service estimate).
                deadline_s: None,
            }
        })
        .collect();
    reqs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
    reqs
}

/// Scale normalized arrivals onto a modeled horizon in seconds.
pub fn scale_arrivals(reqs: &mut [Request], horizon_s: f64) {
    for r in reqs {
        r.arrival_s *= horizon_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LoadSpec {
        LoadSpec { seed: 2023, clients: 1000, tenants: 8 }
    }

    #[test]
    fn load_is_deterministic() {
        let a = offered(&spec());
        let b = offered(&spec());
        assert_eq!(a.len(), 1000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.app, y.app);
            assert_eq!(x.version, y.version);
            assert_eq!(x.arrival_s.to_bits(), y.arrival_s.to_bits());
        }
    }

    #[test]
    fn mix_respects_weights() {
        let reqs = offered(&spec());
        let count = |app: &str| reqs.iter().filter(|r| r.app == app).count();
        // The expensive tail apps must stay rare, the cheap heads common.
        assert!(count("stencil") < 60, "stencil {}", count("stencil"));
        assert!(count("aidw") < 120, "aidw {}", count("aidw"));
        assert!(count("xsbench") > 200, "xsbench {}", count("xsbench"));
        // All six apps and all eight tenants appear.
        for (app, _) in APP_WEIGHTS {
            assert!(count(app) > 0, "{app} missing");
        }
        for t in 0..8 {
            assert!(reqs.iter().any(|r| r.tenant == t));
        }
    }

    #[test]
    fn priority_mix_covers_all_classes_with_batch_majority() {
        let reqs = offered(&spec());
        let count = |p: Priority| reqs.iter().filter(|r| r.priority == p).count();
        let (i, b, e) =
            (count(Priority::Interactive), count(Priority::Batch), count(Priority::BestEffort));
        assert_eq!(i + b + e, 1000);
        // The weights are 30/50/20; at 1000 clients every class must be
        // well represented and batch must dominate.
        assert!(i > 200 && i < 400, "interactive {i}");
        assert!(b > 400, "batch {b}");
        assert!(e > 120 && e < 300, "best-effort {e}");
        // Deadlines are not priced by the generator.
        assert!(reqs.iter().all(|r| r.deadline_s.is_none()));
    }

    #[test]
    fn arrivals_are_sorted_and_scale() {
        let mut reqs = offered(&spec());
        assert!(reqs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(reqs.iter().all(|r| (0.0..1.0).contains(&r.arrival_s)));
        scale_arrivals(&mut reqs, 40.0);
        assert!(reqs.iter().all(|r| (0.0..40.0).contains(&r.arrival_s)));
    }
}
