//! The serving loop: event-driven dispatch over modeled time.
//!
//! Requests arrive on a modeled clock, are admitted or shed by the
//! backpressure policy, shard by tenant onto pool members, and execute in
//! batches. *Execution* is real — every batch runs its hecbench cell
//! through [`ChaosSession::run_cell`] with the member's persistent fault
//! state attached — while *time* is modeled: each member carries a busy
//! cursor in modeled seconds and a batch occupies it for the run's
//! reported time, with followers paying only the non-launch fraction
//! (batching amortizes per-launch setup, which is the whole point for
//! launch-bound kernels like Adam's). The loop itself is single-threaded
//! and seeded, so a serve run is bit-reproducible end to end.
//!
//! On top of the base loop sit the resilience policies:
//!
//! * **EDF-within-priority scheduling** — each member serves its backlog
//!   ordered by `(priority rank, deadline, arrival, id)`; interactive
//!   traffic cuts the line and, within a class, the earliest deadline
//!   goes first.
//! * **Brownout admission ladder** — best-effort traffic is shed once
//!   the backlog crosses `brownout_best_effort · queue_cap`, batch at
//!   `brownout_batch · queue_cap`, interactive only by the fair-slice cap
//!   rule — so pressure degrades the scavenger classes first.
//! * **Hedged re-dispatch** — once a batch runs past the app's
//!   quantile-derived hedge threshold (from the telemetry service-time
//!   histogram), a second attempt launches on an idle healthy member;
//!   the first completion wins, the loser is cancelled and its device
//!   span is marked.
//! * **Circuit breakers** — every member's dispatch outcomes feed a
//!   closed → open → half-open breaker; routing skips open breakers and
//!   an opening breaker's backlog drains to healthy members.
//! * **Warm spares** — on an observed device loss, a standby member is
//!   promoted after re-running the fault-free warmup to re-pin the
//!   expected checksums, and tenants re-shard onto the new serving set.
//!
//! [`ChaosSession::run_cell`]: ompx_hecbench::ChaosSession

use crate::error::ServeError;
use crate::loadgen::{self, LoadSpec};
use crate::pool::{DeviceKind, DevicePool};
use crate::request::{version_tag, Request, Response, Verdict};
use ompx_hecbench::{ChaosSession, ProgVersion, RunOutcome, System, WorkScale};
use ompx_resilience::{
    BreakerConfig, BreakerState, DeadlinePolicy, HedgeConfig, HedgeTracker, Priority, Transition,
};
use ompx_sim::fault::FaultPlan;
use ompx_sim::span::{set_trace_context, Span, SpanCategory};
use ompx_telemetry::{MetricRegistry, Snapshot};
use std::collections::{BinaryHeap, HashMap};

/// Server shape and policies.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed for sharding (load generation seeds separately via [`LoadSpec`]).
    pub seed: u64,
    /// Pool member profiles in member-index order.
    pub devices: Vec<DeviceKind>,
    /// Warm spares appended to the pool as standby members: they take no
    /// traffic until a device loss promotes one into the serving set.
    pub spares: Vec<DeviceKind>,
    /// Largest batch one dispatch may coalesce.
    pub max_batch: usize,
    /// Admission cap: a request is shed when the total backlog is at the
    /// cap *and* its tenant holds at least its fair slice of it.
    pub queue_cap: usize,
    /// Offered load relative to estimated pool capacity (>1 keeps queues
    /// non-empty so batching and backpressure actually engage).
    pub load_factor: f64,
    /// Base chaos plan; member `m` runs `plan.for_pool_member(m)`.
    /// `None` = fault-free serving.
    pub plan: Option<FaultPlan>,
    /// Functional workload scale for the executed cells.
    pub scale: WorkScale,
    /// Deadline factors per priority class.
    pub deadlines: DeadlinePolicy,
    /// Hedge threshold shape (quantile, multiplier, minimum samples).
    pub hedge: HedgeConfig,
    /// Circuit-breaker thresholds. A non-positive `cooldown_s` means
    /// "auto": the server derives it as [`BREAKER_COOLDOWN_ESTIMATES`] ×
    /// the mean warmup service estimate, keeping the cooldown scale-free.
    pub breaker: BreakerConfig,
    /// Brownout ladder: best-effort traffic is shed once the backlog
    /// reaches this fraction of `queue_cap`.
    pub brownout_best_effort: f64,
    /// Brownout ladder: batch traffic is shed once the backlog reaches
    /// this fraction of `queue_cap`.
    pub brownout_batch: f64,
}

/// Auto-derived breaker cooldown, in units of the mean warmup estimate.
pub const BREAKER_COOLDOWN_ESTIMATES: f64 = 20.0;

impl ServeConfig {
    /// The default pool: two A100s and two MI250s, batch 8, cap 64,
    /// offered at 1.3× capacity, fault-free, no spares, default
    /// resilience policies (auto breaker cooldown).
    pub fn new(seed: u64) -> ServeConfig {
        ServeConfig {
            seed,
            devices: vec![DeviceKind::A100, DeviceKind::A100, DeviceKind::Mi250, DeviceKind::Mi250],
            spares: Vec::new(),
            max_batch: 8,
            queue_cap: 64,
            load_factor: 1.3,
            plan: None,
            scale: WorkScale::Test,
            deadlines: DeadlinePolicy::default(),
            hedge: HedgeConfig::default(),
            breaker: BreakerConfig { cooldown_s: 0.0, ..BreakerConfig::default() },
            brownout_best_effort: 0.5,
            brownout_batch: 0.85,
        }
    }
}

/// Counters the resilience machinery accumulated over one serve run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Hedged second attempts actually launched.
    pub hedges_launched: u64,
    /// Hedges whose attempt completed first (and validly) — the primary
    /// was cancelled.
    pub hedges_won: u64,
    /// Hedge arms that found no idle healthy member to launch on.
    pub hedges_skipped: u64,
    /// Circuit-breaker state transitions, all edges.
    pub breaker_transitions: u64,
    /// Transitions whose destination was `Open`.
    pub breaker_opens: u64,
    /// Warm spares promoted into the serving set.
    pub spares_promoted: u64,
    /// Completed requests that finished past their deadline.
    pub deadline_misses: u64,
    /// Requests shed at admission, by class.
    pub shed_interactive: u64,
    /// Requests shed at admission, by class.
    pub shed_batch: u64,
    /// Requests shed at admission, by class.
    pub shed_best_effort: u64,
}

/// Everything a serve run produced.
pub struct ServeResult {
    /// One response per request, sorted by request id.
    pub responses: Vec<Response>,
    /// Final pool state (served counts, busy seconds, loss flags).
    pub pool: DevicePool,
    /// The full session timeline, including per-member `Track::Device`
    /// batch spans and the retry/fallback spans the runs recorded.
    pub spans: Vec<Span>,
    /// Fault-free checksum per app, established by the warmup runs.
    pub expected: HashMap<&'static str, u64>,
    /// The modeled arrival horizon the load was scaled onto.
    pub horizon_s: f64,
    /// Resilience accounting: hedges, breaker activity, spare
    /// promotions, deadline misses, per-class shedding.
    pub stats: ResilienceStats,
    /// Metric snapshot taken at drain time from the session's registry:
    /// queue/batch/backpressure counters, per-tenant latency histograms,
    /// the resilience families, and the substrate families (`sim_*`,
    /// `fault_*`, sanitizer) the executed cells recorded. Deterministic
    /// for a fixed `(cfg, spec)`.
    pub metrics: Option<Snapshot>,
}

/// Run `f` against the ambient metric registry, if one is installed.
fn meter(f: impl FnOnce(&MetricRegistry)) {
    if let Some(reg) = ompx_telemetry::active() {
        f(&reg);
    }
}

/// Modeled service cost of a failed (typed-error) dispatch, as a fraction
/// of the app's fault-free run estimate: the device was occupied while
/// the launch path discovered the error.
const FAIL_SERVICE_FRAC: f64 = 0.1;

/// Event-queue entry. Frees and hedge checks sort before arrivals at
/// equal time so a freed member immediately sees work that arrives on
/// the same tick.
struct Ev {
    t: f64,
    rank: u8,
    seq: u64,
    kind: EvKind,
}

enum EvKind {
    Arrival(usize),
    Free(usize),
    /// Resolve the pending hedge decision for the batch with this trace
    /// id: the primary has run past the hedge threshold by now.
    HedgeCheck(u64),
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest event pops.
        other.t.total_cmp(&self.t).then(other.rank.cmp(&self.rank)).then(other.seq.cmp(&self.seq))
    }
}

/// A dispatched batch whose responses are withheld until the hedge
/// decision at `t0 + threshold` resolves.
struct PendingHedge {
    m: usize,
    batch: Vec<usize>,
    t0: f64,
    service: f64,
    verdict: Verdict,
    checksum: Option<u64>,
}

/// Breaker-edge label for metric series.
fn edge_label(t: Transition) -> &'static str {
    match (t.from, t.to) {
        (BreakerState::Closed, BreakerState::Open) => "closed_open",
        (BreakerState::Open, BreakerState::HalfOpen) => "open_half_open",
        (BreakerState::HalfOpen, BreakerState::Closed) => "half_open_closed",
        (BreakerState::HalfOpen, BreakerState::Open) => "half_open_open",
        _ => "other",
    }
}

struct Server<'a> {
    cfg: &'a ServeConfig,
    session: &'a ChaosSession,
    reqs: &'a [Request],
    pool: DevicePool,
    /// Per-member backlog of request indices (kept in push order; all
    /// selection re-sorts by the EDF key explicitly).
    queues: Vec<Vec<usize>>,
    tenant_queued: Vec<usize>,
    tenant_served: Vec<u64>,
    total_queued: usize,
    expected: HashMap<&'static str, u64>,
    estimate: HashMap<&'static str, f64>,
    hedge: HedgeTracker,
    pending: HashMap<u64, PendingHedge>,
    stats: ResilienceStats,
    responses: Vec<Response>,
    events: BinaryHeap<Ev>,
    seq: u64,
}

impl<'a> Server<'a> {
    fn push_event(&mut self, t: f64, rank: u8, kind: EvKind) {
        self.seq += 1;
        self.events.push(Ev { t, rank, seq: self.seq, kind });
    }

    /// The EDF-within-priority scheduling key: class rank first, then the
    /// absolute deadline (deadline-free best-effort sorts last within its
    /// class via +inf), then arrival, then id.
    fn edf_key(&self, i: usize) -> (u8, u64, u64, u32) {
        let r = &self.reqs[i];
        (
            r.priority.rank(),
            r.deadline_s.unwrap_or(f64::INFINITY).to_bits(),
            r.arrival_s.to_bits(),
            r.id,
        )
    }

    fn respond_unexecuted(&mut self, i: usize, t: f64, verdict: Verdict) {
        let r = &self.reqs[i];
        self.responses.push(Response {
            id: r.id,
            tenant: r.tenant,
            app: r.app,
            version: r.version,
            member: None,
            batch_size: 1,
            verdict,
            arrival_s: r.arrival_s,
            priority: r.priority,
            deadline_s: r.deadline_s,
            hedged: false,
            done_s: t,
            checksum: None,
            trace: None,
        });
        let resp = self.responses.last().expect("just pushed");
        meter(|reg| {
            reg.counter_add(
                "serve_requests_total",
                &[
                    ("app", resp.app),
                    ("verdict", resp.verdict.label()),
                    ("version", version_tag(resp.version)),
                ],
                1,
            );
        });
    }

    /// Shed one request at admission, metering both the per-tenant
    /// backpressure counter and the per-class brownout counter.
    fn shed(&mut self, i: usize, t: f64, reason: String) {
        let (tenant, class) = (self.reqs[i].tenant, self.reqs[i].priority);
        match class {
            Priority::Interactive => self.stats.shed_interactive += 1,
            Priority::Batch => self.stats.shed_batch += 1,
            Priority::BestEffort => self.stats.shed_best_effort += 1,
        }
        self.respond_unexecuted(i, t, Verdict::Rejected(reason));
        meter(|reg| {
            reg.counter_add("serve_shed_total", &[("tenant", &tenant.to_string())], 1);
            reg.counter_add("resilience_shed_total", &[("class", class.label())], 1);
        });
    }

    /// Admission: the brownout ladder sheds best-effort first and batch
    /// second as the backlog climbs; interactive is shed only by the
    /// fair-slice cap rule, so one tenant's burst cannot starve the rest
    /// of the pool's queue space.
    fn admit(&mut self, i: usize, t: f64) -> Result<(), ServeError> {
        let r = &self.reqs[i];
        let (home, transitions) = self.pool.route_of(r.tenant, t);
        self.note_transitions(&transitions);
        let Some(m) = home else {
            self.respond_unexecuted(i, t, Verdict::TypedError("no live pool members".into()));
            return Ok(());
        };
        let cap = self.cfg.queue_cap;
        let per_tenant_cap = (cap / self.tenant_queued.len().max(1)).max(1);
        let brownout_limit = |frac: f64| ((cap as f64 * frac).ceil() as usize).max(1);
        let reason = if self.total_queued >= cap
            && self.tenant_queued[r.tenant as usize] >= per_tenant_cap
        {
            Some(format!(
                "backlog {} at cap {}, tenant {} over fair slice {per_tenant_cap}",
                self.total_queued, cap, r.tenant
            ))
        } else {
            match r.priority {
                Priority::BestEffort
                    if self.total_queued >= brownout_limit(self.cfg.brownout_best_effort) =>
                {
                    Some(format!(
                        "brownout: best-effort shed at backlog {}/{cap}",
                        self.total_queued
                    ))
                }
                Priority::Batch if self.total_queued >= brownout_limit(self.cfg.brownout_batch) => {
                    Some(format!("brownout: batch shed at backlog {}/{cap}", self.total_queued))
                }
                _ => None,
            }
        };
        if let Some(reason) = reason {
            self.shed(i, t, reason);
            return Ok(());
        }
        self.queues[m].push(i);
        self.tenant_queued[r.tenant as usize] += 1;
        self.total_queued += 1;
        self.meter_queue_depth(m);
        if !self.pool.members[m].busy {
            self.dispatch(m, t)?;
        }
        Ok(())
    }

    /// Record the member's backlog depth and the global high-water mark.
    fn meter_queue_depth(&self, m: usize) {
        meter(|reg| {
            let member_label = m.to_string();
            reg.gauge_set(
                "serve_queue_depth",
                &[("member", &member_label)],
                self.queues[m].len() as f64,
            );
            reg.gauge_max("serve_queue_depth_peak", &[], self.total_queued as f64);
        });
    }

    /// Drain a member's backlog back through admission (used when a
    /// member is lost or its breaker opens: its tenants now route to
    /// healthy members).
    fn rehome(&mut self, m: usize, t: f64) -> Result<(), ServeError> {
        let mut drained = std::mem::take(&mut self.queues[m]);
        drained.sort_by_key(|&i| self.edf_key(i));
        meter(|reg| reg.counter_add("serve_rehomed_total", &[], drained.len() as u64));
        for i in drained {
            self.tenant_queued[self.reqs[i].tenant as usize] -= 1;
            self.total_queued -= 1;
            self.admit(i, t)?;
        }
        Ok(())
    }

    /// Meter breaker transitions surfaced by routing or outcomes.
    fn note_transitions(&mut self, transitions: &[(usize, Transition)]) {
        for &(m, t) in transitions {
            self.stats.breaker_transitions += 1;
            if t.to == BreakerState::Open {
                self.stats.breaker_opens += 1;
            }
            meter(|reg| {
                reg.counter_add(
                    "resilience_breaker_transitions_total",
                    &[("edge", edge_label(t)), ("member", &m.to_string())],
                    1,
                );
            });
        }
    }

    /// Feed one dispatch outcome to the member's breaker; an opening
    /// breaker drains its backlog to healthy members.
    fn breaker_feed(&mut self, m: usize, ok: bool, now: f64) -> Result<(), ServeError> {
        if let Some(t) = self.pool.members[m].breaker.on_outcome(ok, now) {
            self.note_transitions(&[(m, t)]);
            if t.to == BreakerState::Open && !self.queues[m].is_empty() {
                self.rehome(m, now)?;
            }
        }
        Ok(())
    }

    /// Pick and execute one batch on an idle member at modeled time `t`.
    fn dispatch(&mut self, m: usize, t: f64) -> Result<(), ServeError> {
        if self.pool.members[m].lost {
            return self.rehome(m, t);
        }
        if self.queues[m].is_empty() {
            return Ok(());
        }
        // EDF within priority: the head is the queued request with the
        // lowest (class rank, deadline, arrival, id) key.
        let head = self.queues[m]
            .iter()
            .copied()
            .min_by_key(|&i| self.edf_key(i))
            .expect("non-empty queue");
        let (app, version) = (self.reqs[head].app, self.reqs[head].version);
        // Batch: the head plus up to max_batch-1 queued requests for the
        // same (app, version) — cross-tenant, since they run the same
        // kernels — in EDF order.
        let mut batch: Vec<usize> = self.queues[m]
            .iter()
            .copied()
            .filter(|&i| self.reqs[i].app == app && self.reqs[i].version == version && i != head)
            .collect();
        batch.sort_by_key(|&i| self.edf_key(i));
        batch.truncate(self.cfg.max_batch.saturating_sub(1));
        batch.insert(0, head);
        self.queues[m].retain(|i| !batch.contains(i));
        for &i in &batch {
            self.tenant_queued[self.reqs[i].tenant as usize] -= 1;
            self.total_queued -= 1;
        }
        self.meter_queue_depth(m);

        // One trace id per batch (the leader's request id, offset past
        // the zero sentinel): every span the execution records — launches,
        // retries, fallbacks, and the device-track batch span — carries
        // it, as do all of the batch's responses.
        let trace_id = self.reqs[head].id as u64 + 1;
        set_trace_context(Some(trace_id));
        let sys = self.pool.members[m].kind.system();
        let (service, verdict, checksum) = self.execute(m, sys, app, version, batch.len());
        set_trace_context(None);
        // Completed primaries feed the hedge threshold (hedge attempts
        // do not — they are conditioned on being slow and would drag the
        // threshold toward the tail it exists to cut).
        if !matches!(verdict, Verdict::TypedError(_)) {
            self.hedge.observe(app, service);
            meter(|reg| reg.hist_record("serve_service_seconds", &[("app", app)], service));
        }
        let member = &mut self.pool.members[m];
        member.busy = true;
        member.busy_until_s = t + service;

        let threshold = self.hedge.threshold_s(app);
        if let Some(th) = threshold.filter(|&th| service > th) {
            // Past the hedge threshold: withhold the responses and
            // resolve at t + threshold, when a second attempt may launch.
            self.pending
                .insert(trace_id, PendingHedge { m, batch, t0: t, service, verdict, checksum });
            self.push_event(t + th, 0, EvKind::HedgeCheck(trace_id));
            return Ok(());
        }
        let done = t + service;
        self.charge(m, trace_id, t, service, app, version, batch.len(), "");
        self.account_batch(m, batch.len());
        self.finish(m, &batch, trace_id, done, &verdict, checksum, false);
        self.breaker_feed(m, !matches!(verdict, Verdict::TypedError(_)), done)?;
        self.check_loss(m, done)?;
        self.push_event(done, 0, EvKind::Free(m));
        Ok(())
    }

    /// Resolve the hedge decision for a pending batch: launch a second
    /// attempt on an idle healthy member if one exists, and let the first
    /// (valid) completion win.
    fn resolve_hedge(&mut self, trace_id: u64, th_t: f64) -> Result<(), ServeError> {
        let p = self.pending.remove(&trace_id).ok_or_else(|| {
            ServeError::Internal(format!("hedge check for unknown trace {trace_id}"))
        })?;
        let head = p.batch[0];
        let (app, version) = (self.reqs[head].app, self.reqs[head].version);
        let done1 = p.t0 + p.service;
        // Candidate: idle, serving, breaker-accepting, not the primary.
        let mut transitions = Vec::new();
        let mut m2 = None;
        for c in self.pool.alive() {
            if c == p.m || self.pool.members[c].busy {
                continue;
            }
            let (ok, t) = self.pool.members[c].breaker.accepting(th_t);
            if let Some(t) = t {
                transitions.push((c, t));
            }
            if ok && m2.is_none() {
                m2 = Some(c);
            }
        }
        self.note_transitions(&transitions);
        let Some(m2) = m2 else {
            // No capacity to hedge onto: the primary stands as-is.
            self.stats.hedges_skipped += 1;
            meter(|reg| {
                reg.counter_add(
                    "resilience_hedges_total",
                    &[("app", app), ("outcome", "skipped")],
                    1,
                );
            });
            self.charge(p.m, trace_id, p.t0, p.service, app, version, p.batch.len(), "");
            self.account_batch(p.m, p.batch.len());
            self.finish(p.m, &p.batch, trace_id, done1, &p.verdict, p.checksum, true);
            self.breaker_feed(p.m, !matches!(p.verdict, Verdict::TypedError(_)), done1)?;
            self.check_loss(p.m, done1)?;
            self.push_event(done1, 0, EvKind::Free(p.m));
            return Ok(());
        };
        self.stats.hedges_launched += 1;
        let sys2 = self.pool.members[m2].kind.system();
        set_trace_context(Some(trace_id));
        let (s2, verdict2, checksum2) = self.execute(m2, sys2, app, version, p.batch.len());
        set_trace_context(None);
        let done2 = th_t + s2;
        let hedge_wins = done2 < done1 && matches!(verdict2, Verdict::Success | Verdict::Fallback);
        let outcome = if hedge_wins { "won" } else { "lost" };
        meter(|reg| {
            reg.counter_add("resilience_hedges_total", &[("app", app), ("outcome", outcome)], 1);
        });
        if hedge_wins {
            self.stats.hedges_won += 1;
            // The hedge completes first: it carries the batch; the
            // primary is cancelled at the hedge's completion.
            self.charge(m2, trace_id, th_t, s2, app, version, p.batch.len(), " (hedge-win)");
            self.account_batch(m2, p.batch.len());
            self.pool.members[m2].busy = true;
            self.pool.members[m2].busy_until_s = done2;
            self.charge(
                p.m,
                trace_id,
                p.t0,
                done2 - p.t0,
                app,
                version,
                p.batch.len(),
                " (hedge-cancelled)",
            );
            self.pool.members[p.m].busy_until_s = done2;
            self.finish(m2, &p.batch, trace_id, done2, &verdict2, checksum2, true);
            self.breaker_feed(m2, true, done2)?;
            self.breaker_feed(p.m, !matches!(p.verdict, Verdict::TypedError(_)), done2)?;
            self.check_loss(m2, done2)?;
            self.check_loss(p.m, done2)?;
            self.push_event(done2, 0, EvKind::Free(m2));
            self.push_event(done2, 0, EvKind::Free(p.m));
        } else {
            // The primary stands; the hedge attempt is cancelled at the
            // primary's completion (or ran to completion and is
            // discarded — first valid completion wins either way).
            let hedge_busy = s2.min(done1 - th_t);
            self.charge(
                m2,
                trace_id,
                th_t,
                hedge_busy,
                app,
                version,
                p.batch.len(),
                " (hedge-cancelled)",
            );
            self.pool.members[m2].busy = true;
            self.pool.members[m2].busy_until_s = th_t + hedge_busy;
            self.charge(
                p.m,
                trace_id,
                p.t0,
                p.service,
                app,
                version,
                p.batch.len(),
                " (hedge-survived)",
            );
            self.account_batch(p.m, p.batch.len());
            self.finish(p.m, &p.batch, trace_id, done1, &p.verdict, p.checksum, true);
            self.breaker_feed(p.m, !matches!(p.verdict, Verdict::TypedError(_)), done1)?;
            if done2 <= done1 {
                // The hedge ran to completion before losing on validity:
                // its outcome is real and feeds its member's breaker.
                self.breaker_feed(m2, !matches!(verdict2, Verdict::TypedError(_)), done2)?;
            }
            self.check_loss(p.m, done1)?;
            self.check_loss(m2, th_t + hedge_busy)?;
            self.push_event(th_t + hedge_busy, 0, EvKind::Free(m2));
            self.push_event(done1, 0, EvKind::Free(p.m));
        }
        Ok(())
    }

    /// Charge `dur` of busy time to member `m` and draw the matching
    /// device span, so span time and busy time stay equal per member.
    #[allow(clippy::too_many_arguments)]
    fn charge(
        &mut self,
        m: usize,
        trace_id: u64,
        start: f64,
        dur: f64,
        app: &'static str,
        version: ProgVersion,
        batch_len: usize,
        suffix: &str,
    ) {
        self.pool.members[m].busy_s += dur;
        set_trace_context(Some(trace_id));
        self.session.span_log().device_span(
            m,
            &format!("{app}/{} ×{batch_len}{suffix}", version_tag(version)),
            SpanCategory::Kernel,
            start,
            dur,
            None,
        );
        set_trace_context(None);
        meter(|reg| {
            reg.gauge_set(
                "serve_busy_seconds",
                &[("member", &m.to_string())],
                self.pool.members[m].busy_s,
            );
        });
    }

    /// Account one executed batch against member `m`.
    fn account_batch(&mut self, m: usize, batch_len: usize) {
        let member = &mut self.pool.members[m];
        member.batches += 1;
        member.served += batch_len as u64;
        meter(|reg| {
            reg.counter_add(
                "serve_batches_total",
                &[("kind", self.pool.members[m].kind.label()), ("member", &m.to_string())],
                1,
            );
            reg.hist_record("serve_batch_occupancy", &[], batch_len as f64);
        });
    }

    /// Push the batch's responses and meter completion, latency, and
    /// deadline misses.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        m: usize,
        batch: &[usize],
        trace_id: u64,
        done: f64,
        verdict: &Verdict,
        checksum: Option<u64>,
        hedged: bool,
    ) {
        for &i in batch {
            let r = &self.reqs[i];
            self.tenant_served[r.tenant as usize] += 1;
            let resp = Response {
                id: r.id,
                tenant: r.tenant,
                app: r.app,
                version: r.version,
                member: Some(m),
                batch_size: batch.len(),
                verdict: verdict.clone(),
                arrival_s: r.arrival_s,
                priority: r.priority,
                deadline_s: r.deadline_s,
                hedged,
                done_s: done,
                checksum,
                trace: Some(trace_id),
            };
            if resp.missed_deadline() {
                self.stats.deadline_misses += 1;
                meter(|reg| {
                    reg.counter_add(
                        "resilience_deadline_miss_total",
                        &[("class", r.priority.label())],
                        1,
                    );
                });
            }
            meter(|reg| {
                reg.counter_add(
                    "serve_requests_total",
                    &[
                        ("app", r.app),
                        ("verdict", verdict.label()),
                        ("version", version_tag(r.version)),
                    ],
                    1,
                );
                reg.hist_record(
                    "serve_latency_seconds",
                    &[("tenant", &r.tenant.to_string())],
                    done - r.arrival_s,
                );
            });
            self.responses.push(resp);
        }
    }

    /// A loss surfaced by an execution on `m`: quarantine the member,
    /// promote a warm spare if one is benched (after re-pinning the
    /// expected checksums against it), and drain the backlog to the new
    /// serving set.
    fn check_loss(&mut self, m: usize, now: f64) -> Result<(), ServeError> {
        let lost_now = match &self.pool.members[m].faults {
            Some(f) => f.device_lost() && !self.pool.members[m].lost,
            None => false,
        };
        if !lost_now {
            return Ok(());
        }
        self.pool.members[m].lost = true;
        if let Some(sp) = self.pool.promote_spare() {
            self.warm_spare(sp)?;
            self.stats.spares_promoted += 1;
            meter(|reg| reg.counter_add("resilience_spare_promotions_total", &[], 1));
        }
        self.rehome(m, now)
    }

    /// Fault-free warmup of a freshly promoted spare: every app in the
    /// mix must reproduce the checksum the original warmup pinned. The
    /// spare is *warm* — the runs validate it off the serving clock and
    /// charge no modeled time.
    fn warm_spare(&mut self, sp: usize) -> Result<(), ServeError> {
        let sys = self.pool.members[sp].kind.system();
        let mut apps: Vec<&'static str> = self.expected.keys().copied().collect();
        apps.sort_unstable();
        for app in apps {
            let warm = self
                .session
                .run_cell(app, sys, ProgVersion::Ompx, self.cfg.scale, None)
                .map_err(|msg| ServeError::WarmupFailed { app, msg })?;
            let expected = self.expected[app];
            if warm.checksum != expected {
                return Err(ServeError::WarmupUnexpected { app, got: warm.checksum, expected });
            }
        }
        Ok(())
    }

    /// Run the batch's cell once (followers share the leader's execution
    /// — they asked for the same kernels) and classify the verdict.
    fn execute(
        &self,
        m: usize,
        sys: System,
        app: &'static str,
        version: ProgVersion,
        batch_len: usize,
    ) -> (f64, Verdict, Option<u64>) {
        let faults = self.pool.members[m].faults.as_ref();
        let before_fallbacks = faults.map(|f| f.snapshot().fallbacks.len()).unwrap_or(0);
        let result = self.session.run_cell(app, sys, version, self.cfg.scale, faults);
        match result {
            Err(msg) => (self.estimate[app] * FAIL_SERVICE_FRAC, Verdict::TypedError(msg), None),
            Ok(o) => {
                let service = batch_service(&o, batch_len);
                let verdict = if o.checksum == self.expected[app] {
                    let after_fallbacks = faults.map(|f| f.snapshot().fallbacks.len()).unwrap_or(0);
                    if after_fallbacks > before_fallbacks {
                        Verdict::Fallback
                    } else {
                        Verdict::Success
                    }
                } else {
                    Verdict::Corrupt(format!(
                        "checksum {:#x} != expected {:#x}",
                        o.checksum, self.expected[app]
                    ))
                };
                (service, verdict, Some(o.checksum))
            }
        }
    }
}

/// Modeled busy time of a batch: the leader pays the full reported run,
/// each follower only the non-launch fraction — per-launch setup is
/// issued once for the coalesced batch. Launch-bound apps (Adam) amortize
/// almost everything; kernel-bound apps gain little, as they should.
fn batch_service(outcome: &RunOutcome, batch_len: usize) -> f64 {
    let launch_frac = if outcome.kernel_model.seconds > 0.0 {
        (outcome.kernel_model.t_launch / outcome.kernel_model.seconds).clamp(0.0, 0.9)
    } else {
        0.0
    };
    outcome.reported_seconds * (1.0 + (batch_len as f64 - 1.0) * (1.0 - launch_frac))
}

/// Pre-declare zero-valued series for the resilience counter families so
/// quiet runs still export sample lines (the family-coverage check greps
/// for them), with canonical label sets.
fn preseed_resilience_series() {
    meter(|reg| {
        reg.counter_add(
            "resilience_breaker_transitions_total",
            &[("edge", "closed_open"), ("member", "0")],
            0,
        );
        reg.counter_add("resilience_hedges_total", &[("app", "xsbench"), ("outcome", "won")], 0);
        reg.counter_add("resilience_spare_promotions_total", &[], 0);
        reg.counter_add("resilience_deadline_miss_total", &[("class", "interactive")], 0);
        reg.counter_add("resilience_shed_total", &[("class", "best_effort")], 0);
    });
}

/// Run one complete serve load: warm up fault-free expectations, scale
/// the offered arrivals to the pool's estimated capacity, price the
/// deadlines, then replay the load event by event. Deterministic for a
/// fixed `(cfg, spec)`. Fault-path failures come back as [`ServeError`]s
/// — no panic is reachable from an injected fault.
pub fn serve(cfg: &ServeConfig, spec: &LoadSpec) -> Result<ServeResult, ServeError> {
    if cfg.devices.is_empty() {
        return Err(ServeError::InvalidConfig("pool needs at least one device".into()));
    }
    if cfg.max_batch < 1 {
        return Err(ServeError::InvalidConfig("max_batch must be at least 1".into()));
    }
    let session = ChaosSession::begin();
    preseed_resilience_series();
    let mut reqs = loadgen::offered(spec);

    // Warmup: one fault-free run per distinct app in the mix pins the
    // expected checksum (bit-identical across versions and systems — the
    // repo's verify suite guarantees it, and it is what makes re-homing
    // a tenant across A100/MI250 checksum-transparent) and yields the
    // capacity estimate the horizon is derived from.
    let mut expected = HashMap::new();
    let mut estimate = HashMap::new();
    for r in &reqs {
        if expected.contains_key(r.app) {
            continue;
        }
        let warm = session
            .run_cell(r.app, System::Nvidia, ProgVersion::Ompx, cfg.scale, None)
            .map_err(|msg| ServeError::WarmupFailed { app: r.app, msg })?;
        expected.insert(r.app, warm.checksum);
        estimate.insert(r.app, warm.reported_seconds);
    }
    let total_work: f64 = reqs.iter().map(|r| estimate[r.app]).sum();
    let horizon_s = total_work / cfg.devices.len() as f64 / cfg.load_factor;
    loadgen::scale_arrivals(&mut reqs, horizon_s);
    // Deadlines are priced against the *mix-wide mean* fault-free
    // estimate, not the request's own app: heterogeneous apps share the
    // devices, so a cheap request queues behind whatever batch is in
    // flight — its achievable latency is a property of the mix, and a
    // per-app budget would make cheap-app deadlines unmeetable by
    // construction.
    let mean_estimate_s = total_work / reqs.len().max(1) as f64;
    for r in &mut reqs {
        r.deadline_s = cfg.deadlines.deadline(r.priority, r.arrival_s, mean_estimate_s);
    }
    // Auto breaker cooldown: scale-free against the same mean estimate.
    let mut breaker = cfg.breaker;
    if breaker.cooldown_s <= 0.0 {
        breaker.cooldown_s = BREAKER_COOLDOWN_ESTIMATES * mean_estimate_s;
    }

    let n_tenants = spec.tenants as usize;
    let mut server = Server {
        cfg,
        session: &session,
        reqs: &reqs,
        pool: DevicePool::with_spares(
            &cfg.devices,
            &cfg.spares,
            cfg.plan.as_ref(),
            cfg.seed,
            breaker,
        ),
        queues: vec![Vec::new(); cfg.devices.len() + cfg.spares.len()],
        tenant_queued: vec![0; n_tenants],
        tenant_served: vec![0; n_tenants],
        total_queued: 0,
        expected,
        estimate,
        hedge: HedgeTracker::new(cfg.hedge),
        pending: HashMap::new(),
        stats: ResilienceStats::default(),
        responses: Vec::with_capacity(reqs.len()),
        events: BinaryHeap::new(),
        seq: 0,
    };
    for (idx, r) in reqs.iter().enumerate() {
        server.push_event(r.arrival_s, 1, EvKind::Arrival(idx));
    }
    while let Some(ev) = server.events.pop() {
        match ev.kind {
            EvKind::Arrival(i) => server.admit(i, ev.t)?,
            EvKind::Free(m) => {
                // Stale-free guard: a hedge may have extended or shrunk
                // the member's busy window after this event was queued;
                // only the free matching the final cursor releases it.
                if server.pool.members[m].busy_until_s > ev.t {
                    continue;
                }
                server.pool.members[m].busy = false;
                server.dispatch(m, ev.t)?;
            }
            EvKind::HedgeCheck(trace_id) => server.resolve_hedge(trace_id, ev.t)?,
        }
    }
    if server.total_queued != 0 {
        return Err(ServeError::Internal(format!(
            "drained event loop left {} request(s) queued",
            server.total_queued
        )));
    }
    if !server.pending.is_empty() {
        return Err(ServeError::Internal(format!(
            "{} pending hedge(s) never resolved",
            server.pending.len()
        )));
    }

    let mut responses = server.responses;
    responses.sort_by_key(|r| r.id);
    let spans = session.spans();
    let metrics = ompx_telemetry::active().map(|reg| reg.snapshot());
    Ok(ServeResult {
        responses,
        pool: server.pool,
        spans,
        expected: server.expected,
        horizon_s,
        stats: server.stats,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::span::Track;

    fn small_spec(clients: u32) -> LoadSpec {
        LoadSpec { seed: 11, clients, tenants: 4 }
    }

    #[test]
    fn fault_free_serving_is_all_success_and_deterministic() {
        let cfg = ServeConfig::new(5);
        let a = serve(&cfg, &small_spec(40)).expect("fault-free serve");
        let b = serve(&cfg, &small_spec(40)).expect("fault-free serve");
        assert_eq!(a.responses.len(), 40);
        for (x, y) in a.responses.iter().zip(&b.responses) {
            assert_eq!(x.verdict, y.verdict);
            assert_eq!(x.member, y.member);
            assert_eq!(x.checksum, y.checksum);
            assert_eq!(x.done_s.to_bits(), y.done_s.to_bits());
        }
        for r in &a.responses {
            match &r.verdict {
                Verdict::Success | Verdict::Rejected(_) => {}
                other => panic!("fault-free run produced {other:?}"),
            }
            if r.verdict == Verdict::Success {
                assert_eq!(r.checksum, Some(a.expected[r.app]));
                assert!(r.latency_s() >= 0.0);
            }
        }
    }

    #[test]
    fn metrics_cover_serve_and_substrate_and_traces_join_responses_to_spans() {
        let cfg = ServeConfig::new(5);
        let out = serve(&cfg, &small_spec(40)).expect("serve");
        let snap = out.metrics.expect("session installs a registry");
        // Serve-side accounting matches the response stream exactly.
        let requests_total: u64 = snap
            .samples
            .iter()
            .filter(|s| s.name == "serve_requests_total")
            .map(|s| match s.value {
                ompx_telemetry::MetricValue::Counter(c) => c,
                _ => 0,
            })
            .sum();
        assert_eq!(requests_total, out.responses.len() as u64);
        // Substrate families recorded through the same ambient registry.
        assert!(snap.counter("sim_launches_total", &[]) > 0);
        assert!(snap.samples.iter().any(|s| s.name == "sim_memcpys_total"));
        assert!(snap.samples.iter().any(|s| s.name == "serve_latency_seconds"));
        // The resilience families export sample lines even at rest.
        for fam in [
            "resilience_breaker_transitions_total",
            "resilience_hedges_total",
            "resilience_spare_promotions_total",
            "resilience_deadline_miss_total",
            "resilience_shed_total",
        ] {
            assert!(snap.samples.iter().any(|s| s.name == fam), "missing family {fam}");
        }
        // Executed responses carry a trace id that joins them to their
        // batch's device span; rejected ones carry none.
        for r in &out.responses {
            if matches!(r.verdict, Verdict::Rejected(_)) {
                assert_eq!(r.trace, None);
            } else {
                let t = r.trace.expect("executed response has a trace id");
                assert!(out
                    .spans
                    .iter()
                    .any(|s| s.trace == Some(t) && matches!(s.track, Track::Device(_))));
            }
        }
    }

    #[test]
    fn batching_engages_under_load_and_lands_device_spans() {
        // Oversubscribed: 40 requests, one device, so the backlog builds
        // and same-app requests coalesce.
        let mut cfg = ServeConfig::new(5);
        cfg.devices = vec![DeviceKind::A100];
        cfg.load_factor = 3.0;
        cfg.queue_cap = 100;
        let out = serve(&cfg, &small_spec(40)).expect("serve");
        let max_batch = out.responses.iter().map(|r| r.batch_size).max().unwrap();
        assert!(max_batch > 1, "no batch formed: {max_batch}");
        assert!(max_batch <= cfg.max_batch);
        let device_spans = out.spans.iter().filter(|s| s.track == Track::Device(0)).count();
        assert!(device_spans as u64 >= out.pool.members[0].batches);
        // Batch accounting: spans cover exactly the member's busy time.
        let span_s: f64 =
            out.spans.iter().filter(|s| s.track == Track::Device(0)).map(|s| s.dur_s).sum();
        assert!((span_s - out.pool.members[0].busy_s).abs() < 1e-9);
    }

    #[test]
    fn injected_loss_quarantines_one_member_and_trichotomy_holds() {
        let mut cfg = ServeConfig::new(5);
        // A loss early in member 0's schedule; other members get quiet
        // plans (rate 0, loss stripped by for_pool_member).
        cfg.plan = Some(FaultPlan::seeded(99, 0.0).with_device_loss_at(2));
        let out = serve(&cfg, &small_spec(60)).expect("serve under loss");
        assert!(out.pool.members[0].lost, "member 0 should observe its loss");
        for m in 1..out.pool.members.len() {
            assert!(!out.pool.members[m].lost);
        }
        for r in &out.responses {
            match &r.verdict {
                Verdict::Success
                | Verdict::Fallback
                | Verdict::TypedError(_)
                | Verdict::Rejected(_) => {}
                Verdict::Corrupt(msg) => panic!("corruption on request {}: {msg}", r.id),
            }
            // Anything that completed cleanly has the expected checksum.
            if matches!(r.verdict, Verdict::Success | Verdict::Fallback) {
                assert_eq!(r.checksum, Some(out.expected[r.app]));
            }
        }
        // The pool kept serving: most traffic still completes.
        let ok = out
            .responses
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Success | Verdict::Fallback))
            .count();
        assert!(ok > 40, "only {ok}/60 completed after single-member loss");
    }

    #[test]
    fn backpressure_sheds_with_fair_slices() {
        let mut cfg = ServeConfig::new(5);
        cfg.devices = vec![DeviceKind::A100];
        cfg.queue_cap = 4;
        cfg.max_batch = 1;
        cfg.load_factor = 4.0;
        let out = serve(&cfg, &small_spec(60)).expect("serve");
        let rejected =
            out.responses.iter().filter(|r| matches!(r.verdict, Verdict::Rejected(_))).count();
        assert!(rejected > 0, "cap 4 at 4x load must shed");
        // Everything is accounted for exactly once.
        assert_eq!(out.responses.len(), 60);
    }

    #[test]
    fn brownout_sheds_best_effort_before_interactive() {
        let mut cfg = ServeConfig::new(5);
        cfg.devices = vec![DeviceKind::A100];
        cfg.queue_cap = 8;
        cfg.max_batch = 1;
        cfg.load_factor = 6.0;
        let out = serve(&cfg, &small_spec(80)).expect("serve");
        let shed = |p: Priority| {
            out.responses
                .iter()
                .filter(|r| r.priority == p && matches!(r.verdict, Verdict::Rejected(_)))
                .count() as f64
        };
        let offered =
            |p: Priority| out.responses.iter().filter(|r| r.priority == p).count().max(1) as f64;
        let be_rate = shed(Priority::BestEffort) / offered(Priority::BestEffort);
        let int_rate = shed(Priority::Interactive) / offered(Priority::Interactive);
        assert!(shed(Priority::BestEffort) > 0.0, "saturated queue must brown out best-effort");
        assert!(
            be_rate >= int_rate,
            "best-effort shed rate {be_rate:.2} below interactive {int_rate:.2}"
        );
        assert_eq!(
            out.stats.shed_best_effort + out.stats.shed_batch + out.stats.shed_interactive,
            out.responses.iter().filter(|r| matches!(r.verdict, Verdict::Rejected(_))).count()
                as u64
        );
    }

    #[test]
    fn deadlines_are_priced_per_class_and_interactive_is_scheduled_first() {
        let cfg = ServeConfig::new(5);
        let out = serve(&cfg, &small_spec(60)).expect("serve");
        for r in &out.responses {
            match r.priority {
                Priority::BestEffort => assert_eq!(r.deadline_s, None),
                _ => {
                    let d = r.deadline_s.expect("deadline priced");
                    assert!(d > r.arrival_s, "deadline before arrival on {}", r.id);
                }
            }
        }
        // Interactive mean latency is no worse than best-effort's: EDF
        // within priority puts it at the head of every backlog.
        let mean = |p: Priority| {
            let l: Vec<f64> = out
                .responses
                .iter()
                .filter(|r| r.priority == p && !matches!(r.verdict, Verdict::Rejected(_)))
                .map(|r| r.latency_s())
                .collect();
            l.iter().sum::<f64>() / l.len().max(1) as f64
        };
        assert!(mean(Priority::Interactive) <= mean(Priority::BestEffort) + 1e-9);
    }

    #[test]
    fn warm_spare_promotes_on_loss_and_takes_traffic() {
        let mut cfg = ServeConfig::new(5);
        cfg.plan = Some(FaultPlan::seeded(99, 0.0).with_device_loss_at(2));
        cfg.spares = vec![DeviceKind::A100];
        let out = serve(&cfg, &small_spec(60)).expect("serve with spare");
        assert!(out.pool.members[0].lost);
        let spare = cfg.devices.len();
        assert!(!out.pool.members[spare].standby, "spare not promoted");
        assert_eq!(out.stats.spares_promoted, 1);
        assert!(out.pool.members[spare].served > 0, "promoted spare served nothing");
        // The spare's traffic is checksum-transparent.
        for r in out.responses.iter().filter(|r| r.member == Some(spare)) {
            if matches!(r.verdict, Verdict::Success | Verdict::Fallback) {
                assert_eq!(r.checksum, Some(out.expected[r.app]));
            }
        }
    }

    #[test]
    fn invalid_configs_are_typed_errors_not_panics() {
        let mut cfg = ServeConfig::new(5);
        cfg.devices.clear();
        match serve(&cfg, &small_spec(4)) {
            Err(ServeError::InvalidConfig(msg)) => assert!(msg.contains("device")),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
        }
        let mut cfg = ServeConfig::new(5);
        cfg.max_batch = 0;
        assert!(matches!(serve(&cfg, &small_spec(4)), Err(ServeError::InvalidConfig(_))));
    }
}
