//! The serving loop: event-driven dispatch over modeled time.
//!
//! Requests arrive on a modeled clock, are admitted or shed by the
//! backpressure policy, shard by tenant onto pool members, and execute in
//! batches. *Execution* is real — every batch runs its hecbench cell
//! through [`ChaosSession::run_cell`] with the member's persistent fault
//! state attached — while *time* is modeled: each member carries a busy
//! cursor in modeled seconds and a batch occupies it for the run's
//! reported time, with followers paying only the non-launch fraction
//! (batching amortizes per-launch setup, which is the whole point for
//! launch-bound kernels like Adam's). The loop itself is single-threaded
//! and seeded, so a serve run is bit-reproducible end to end.
//!
//! [`ChaosSession::run_cell`]: ompx_hecbench::ChaosSession

use crate::loadgen::{self, LoadSpec};
use crate::pool::{DeviceKind, DevicePool};
use crate::request::{version_tag, Request, Response, Verdict};
use ompx_hecbench::{ChaosSession, ProgVersion, RunOutcome, System, WorkScale};
use ompx_sim::fault::FaultPlan;
use ompx_sim::span::{set_trace_context, Span, SpanCategory};
use ompx_telemetry::{MetricRegistry, Snapshot};
use std::collections::{BinaryHeap, HashMap};

/// Server shape and policies.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Seed for sharding (load generation seeds separately via [`LoadSpec`]).
    pub seed: u64,
    /// Pool member profiles in member-index order.
    pub devices: Vec<DeviceKind>,
    /// Largest batch one dispatch may coalesce.
    pub max_batch: usize,
    /// Admission cap: a request is shed when the total backlog is at the
    /// cap *and* its tenant holds at least its fair slice of it.
    pub queue_cap: usize,
    /// Offered load relative to estimated pool capacity (>1 keeps queues
    /// non-empty so batching and backpressure actually engage).
    pub load_factor: f64,
    /// Base chaos plan; member `m` runs `plan.for_pool_member(m)`.
    /// `None` = fault-free serving.
    pub plan: Option<FaultPlan>,
    /// Functional workload scale for the executed cells.
    pub scale: WorkScale,
}

impl ServeConfig {
    /// The default pool: two A100s and two MI250s, batch 8, cap 64,
    /// offered at 1.3× capacity, fault-free.
    pub fn new(seed: u64) -> ServeConfig {
        ServeConfig {
            seed,
            devices: vec![DeviceKind::A100, DeviceKind::A100, DeviceKind::Mi250, DeviceKind::Mi250],
            max_batch: 8,
            queue_cap: 64,
            load_factor: 1.3,
            plan: None,
            scale: WorkScale::Test,
        }
    }
}

/// Everything a serve run produced.
pub struct ServeResult {
    /// One response per request, sorted by request id.
    pub responses: Vec<Response>,
    /// Final pool state (served counts, busy seconds, loss flags).
    pub pool: DevicePool,
    /// The full session timeline, including per-member `Track::Device`
    /// batch spans and the retry/fallback spans the runs recorded.
    pub spans: Vec<Span>,
    /// Fault-free checksum per app, established by the warmup runs.
    pub expected: HashMap<&'static str, u64>,
    /// The modeled arrival horizon the load was scaled onto.
    pub horizon_s: f64,
    /// Metric snapshot taken at drain time from the session's registry:
    /// queue/batch/backpressure counters, per-tenant latency histograms,
    /// and the substrate families (`sim_*`, `fault_*`, sanitizer) the
    /// executed cells recorded. Deterministic for a fixed `(cfg, spec)`.
    pub metrics: Option<Snapshot>,
}

/// Run `f` against the ambient metric registry, if one is installed.
fn meter(f: impl FnOnce(&MetricRegistry)) {
    if let Some(reg) = ompx_telemetry::active() {
        f(&reg);
    }
}

/// Modeled service cost of a failed (typed-error) dispatch, as a fraction
/// of the app's fault-free run estimate: the device was occupied while
/// the launch path discovered the error.
const FAIL_SERVICE_FRAC: f64 = 0.1;

/// Event-queue entry. Frees sort before arrivals at equal time so a
/// freed member immediately sees work that arrives on the same tick.
struct Ev {
    t: f64,
    rank: u8,
    seq: u64,
    kind: EvKind,
}

enum EvKind {
    Arrival(usize),
    Free(usize),
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest event pops.
        other.t.total_cmp(&self.t).then(other.rank.cmp(&self.rank)).then(other.seq.cmp(&self.seq))
    }
}

struct Server<'a> {
    cfg: &'a ServeConfig,
    session: &'a ChaosSession,
    reqs: &'a [Request],
    pool: DevicePool,
    /// Per-member backlog of request indices (kept in push order; all
    /// selection re-sorts by `(arrival, id)` explicitly).
    queues: Vec<Vec<usize>>,
    tenant_queued: Vec<usize>,
    tenant_served: Vec<u64>,
    total_queued: usize,
    expected: HashMap<&'static str, u64>,
    estimate: HashMap<&'static str, f64>,
    responses: Vec<Response>,
    events: BinaryHeap<Ev>,
    seq: u64,
}

impl<'a> Server<'a> {
    fn push_event(&mut self, t: f64, rank: u8, kind: EvKind) {
        self.seq += 1;
        self.events.push(Ev { t, rank, seq: self.seq, kind });
    }

    fn respond_unexecuted(&mut self, i: usize, t: f64, verdict: Verdict) {
        let r = &self.reqs[i];
        self.responses.push(Response {
            id: r.id,
            tenant: r.tenant,
            app: r.app,
            version: r.version,
            member: None,
            batch_size: 1,
            verdict,
            arrival_s: r.arrival_s,
            done_s: t,
            checksum: None,
            trace: None,
        });
        let resp = self.responses.last().expect("just pushed");
        meter(|reg| {
            reg.counter_add(
                "serve_requests_total",
                &[
                    ("app", resp.app),
                    ("verdict", resp.verdict.label()),
                    ("version", version_tag(resp.version)),
                ],
                1,
            );
        });
    }

    /// Admission: shed when the backlog is full and this tenant already
    /// holds its fair slice of it, so one tenant's burst cannot starve
    /// the rest of the pool's queue space.
    fn admit(&mut self, i: usize, t: f64) {
        let r = &self.reqs[i];
        let Some(m) = self.pool.home_of(r.tenant) else {
            self.respond_unexecuted(i, t, Verdict::TypedError("no live pool members".into()));
            return;
        };
        let per_tenant_cap = (self.cfg.queue_cap / self.tenant_queued.len().max(1)).max(1);
        if self.total_queued >= self.cfg.queue_cap
            && self.tenant_queued[r.tenant as usize] >= per_tenant_cap
        {
            let tenant = r.tenant;
            self.respond_unexecuted(
                i,
                t,
                Verdict::Rejected(format!(
                    "backlog {} at cap {}, tenant {} over fair slice {per_tenant_cap}",
                    self.total_queued, self.cfg.queue_cap, tenant
                )),
            );
            meter(|reg| {
                reg.counter_add("serve_shed_total", &[("tenant", &tenant.to_string())], 1);
            });
            return;
        }
        self.queues[m].push(i);
        self.tenant_queued[r.tenant as usize] += 1;
        self.total_queued += 1;
        self.meter_queue_depth(m);
        if !self.pool.members[m].busy {
            self.dispatch(m, t);
        }
    }

    /// Record the member's backlog depth and the global high-water mark.
    fn meter_queue_depth(&self, m: usize) {
        meter(|reg| {
            let member_label = m.to_string();
            reg.gauge_set(
                "serve_queue_depth",
                &[("member", &member_label)],
                self.queues[m].len() as f64,
            );
            reg.gauge_max("serve_queue_depth_peak", &[], self.total_queued as f64);
        });
    }

    /// Drain a lost member's backlog back through admission (its tenants
    /// now hash to live members).
    fn rehome(&mut self, m: usize, t: f64) {
        let mut drained = std::mem::take(&mut self.queues[m]);
        drained.sort_by_key(|&i| (self.reqs[i].arrival_s.to_bits(), self.reqs[i].id));
        meter(|reg| reg.counter_add("serve_rehomed_total", &[], drained.len() as u64));
        for i in drained {
            self.tenant_queued[self.reqs[i].tenant as usize] -= 1;
            self.total_queued -= 1;
            self.admit(i, t);
        }
    }

    /// Pick and execute one batch on an idle member at modeled time `t`.
    fn dispatch(&mut self, m: usize, t: f64) {
        if self.pool.members[m].lost {
            self.rehome(m, t);
            return;
        }
        if self.queues[m].is_empty() {
            return;
        }
        // Fairness: among tenants with work queued here, serve the one
        // with the fewest completed requests (ties to the lower tenant id).
        let tenant = self.queues[m]
            .iter()
            .map(|&i| self.reqs[i].tenant)
            .min_by_key(|&tn| (self.tenant_served[tn as usize], tn))
            .expect("non-empty queue");
        let head = self.queues[m]
            .iter()
            .copied()
            .filter(|&i| self.reqs[i].tenant == tenant)
            .min_by_key(|&i| (self.reqs[i].arrival_s.to_bits(), self.reqs[i].id))
            .expect("tenant has queued work");
        let (app, version) = (self.reqs[head].app, self.reqs[head].version);
        // Batch: the head plus up to max_batch-1 queued requests for the
        // same (app, version) — cross-tenant, since they run the same
        // kernels — in arrival order.
        let mut batch: Vec<usize> = self.queues[m]
            .iter()
            .copied()
            .filter(|&i| self.reqs[i].app == app && self.reqs[i].version == version && i != head)
            .collect();
        batch.sort_by_key(|&i| (self.reqs[i].arrival_s.to_bits(), self.reqs[i].id));
        batch.truncate(self.cfg.max_batch.saturating_sub(1));
        batch.insert(0, head);
        self.queues[m].retain(|i| !batch.contains(i));
        for &i in &batch {
            self.tenant_queued[self.reqs[i].tenant as usize] -= 1;
            self.total_queued -= 1;
        }

        self.meter_queue_depth(m);

        // One trace id per batch (the leader's request id, offset past
        // the zero sentinel): every span the execution records — launches,
        // retries, fallbacks, and the device-track batch span below —
        // carries it, as do all of the batch's responses.
        let trace_id = self.reqs[head].id as u64 + 1;
        set_trace_context(Some(trace_id));
        let sys = self.pool.members[m].kind.system();
        let (service, verdict, checksum) = self.execute(m, sys, app, version, batch.len());
        let member = &mut self.pool.members[m];
        member.busy = true;
        member.busy_until_s = t + service;
        member.busy_s += service;
        member.batches += 1;
        member.served += batch.len() as u64;
        let done = t + service;
        self.session.span_log().device_span(
            m,
            &format!("{app}/{} ×{}", version_tag(version), batch.len()),
            SpanCategory::Kernel,
            t,
            service,
            None,
        );
        set_trace_context(None);
        meter(|reg| {
            let member_label = m.to_string();
            reg.counter_add(
                "serve_batches_total",
                &[("kind", self.pool.members[m].kind.label()), ("member", &member_label)],
                1,
            );
            reg.hist_record("serve_batch_occupancy", &[], batch.len() as f64);
            reg.gauge_set(
                "serve_busy_seconds",
                &[("member", &member_label)],
                self.pool.members[m].busy_s,
            );
        });
        for &i in &batch {
            let r = &self.reqs[i];
            self.tenant_served[r.tenant as usize] += 1;
            self.responses.push(Response {
                id: r.id,
                tenant: r.tenant,
                app: r.app,
                version: r.version,
                member: Some(m),
                batch_size: batch.len(),
                verdict: verdict.clone(),
                arrival_s: r.arrival_s,
                done_s: done,
                checksum,
                trace: Some(trace_id),
            });
            meter(|reg| {
                reg.counter_add(
                    "serve_requests_total",
                    &[
                        ("app", r.app),
                        ("verdict", verdict.label()),
                        ("version", version_tag(r.version)),
                    ],
                    1,
                );
                reg.hist_record(
                    "serve_latency_seconds",
                    &[("tenant", &r.tenant.to_string())],
                    done - r.arrival_s,
                );
            });
        }
        // A loss surfaced by this batch: quarantine the member and move
        // its remaining backlog before anything else lands on it.
        if let Some(f) = &self.pool.members[m].faults {
            if f.device_lost() && !self.pool.members[m].lost {
                self.pool.members[m].lost = true;
                self.rehome(m, done);
            }
        }
        self.push_event(done, 0, EvKind::Free(m));
    }

    /// Run the batch's cell once (followers share the leader's execution
    /// — they asked for the same kernels) and classify the verdict.
    fn execute(
        &self,
        m: usize,
        sys: System,
        app: &'static str,
        version: ProgVersion,
        batch_len: usize,
    ) -> (f64, Verdict, Option<u64>) {
        let faults = self.pool.members[m].faults.as_ref();
        let before_fallbacks = faults.map(|f| f.snapshot().fallbacks.len()).unwrap_or(0);
        let result = self.session.run_cell(app, sys, version, self.cfg.scale, faults);
        match result {
            Err(msg) => (self.estimate[app] * FAIL_SERVICE_FRAC, Verdict::TypedError(msg), None),
            Ok(o) => {
                let service = batch_service(&o, batch_len);
                let verdict = if o.checksum == self.expected[app] {
                    let after_fallbacks = faults.map(|f| f.snapshot().fallbacks.len()).unwrap_or(0);
                    if after_fallbacks > before_fallbacks {
                        Verdict::Fallback
                    } else {
                        Verdict::Success
                    }
                } else {
                    Verdict::Corrupt(format!(
                        "checksum {:#x} != expected {:#x}",
                        o.checksum, self.expected[app]
                    ))
                };
                (service, verdict, Some(o.checksum))
            }
        }
    }
}

/// Modeled busy time of a batch: the leader pays the full reported run,
/// each follower only the non-launch fraction — per-launch setup is
/// issued once for the coalesced batch. Launch-bound apps (Adam) amortize
/// almost everything; kernel-bound apps gain little, as they should.
fn batch_service(outcome: &RunOutcome, batch_len: usize) -> f64 {
    let launch_frac = if outcome.kernel_model.seconds > 0.0 {
        (outcome.kernel_model.t_launch / outcome.kernel_model.seconds).clamp(0.0, 0.9)
    } else {
        0.0
    };
    outcome.reported_seconds * (1.0 + (batch_len as f64 - 1.0) * (1.0 - launch_frac))
}

/// Run one complete serve load: warm up fault-free expectations, scale
/// the offered arrivals to the pool's estimated capacity, then replay the
/// load event by event. Deterministic for a fixed `(cfg, spec)`.
pub fn serve(cfg: &ServeConfig, spec: &LoadSpec) -> ServeResult {
    assert!(!cfg.devices.is_empty(), "pool needs at least one device");
    assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
    let session = ChaosSession::begin();
    let mut reqs = loadgen::offered(spec);

    // Warmup: one fault-free run per distinct app in the mix pins the
    // expected checksum (bit-identical across versions and systems — the
    // repo's verify suite guarantees it, and it is what makes re-homing
    // a tenant across A100/MI250 checksum-transparent) and yields the
    // capacity estimate the horizon is derived from.
    let mut expected = HashMap::new();
    let mut estimate = HashMap::new();
    for r in &reqs {
        if expected.contains_key(r.app) {
            continue;
        }
        let warm = session
            .run_cell(r.app, System::Nvidia, ProgVersion::Ompx, cfg.scale, None)
            .unwrap_or_else(|e| panic!("fault-free warmup of {} failed: {e}", r.app));
        expected.insert(r.app, warm.checksum);
        estimate.insert(r.app, warm.reported_seconds);
    }
    let total_work: f64 = reqs.iter().map(|r| estimate[r.app]).sum();
    let horizon_s = total_work / cfg.devices.len() as f64 / cfg.load_factor;
    loadgen::scale_arrivals(&mut reqs, horizon_s);

    let n_tenants = spec.tenants as usize;
    let mut server = Server {
        cfg,
        session: &session,
        reqs: &reqs,
        pool: DevicePool::new(&cfg.devices, cfg.plan.as_ref(), cfg.seed),
        queues: vec![Vec::new(); cfg.devices.len()],
        tenant_queued: vec![0; n_tenants],
        tenant_served: vec![0; n_tenants],
        total_queued: 0,
        expected,
        estimate,
        responses: Vec::with_capacity(reqs.len()),
        events: BinaryHeap::new(),
        seq: 0,
    };
    for (idx, r) in reqs.iter().enumerate() {
        server.push_event(r.arrival_s, 1, EvKind::Arrival(idx));
    }
    while let Some(ev) = server.events.pop() {
        match ev.kind {
            EvKind::Arrival(i) => server.admit(i, ev.t),
            EvKind::Free(m) => {
                server.pool.members[m].busy = false;
                server.dispatch(m, ev.t);
            }
        }
    }
    assert_eq!(server.total_queued, 0, "drained event loop left queued work");

    let mut responses = server.responses;
    responses.sort_by_key(|r| r.id);
    let spans = session.spans();
    let metrics = ompx_telemetry::active().map(|reg| reg.snapshot());
    ServeResult {
        responses,
        pool: server.pool,
        spans,
        expected: server.expected,
        horizon_s,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::span::Track;

    fn small_spec(clients: u32) -> LoadSpec {
        LoadSpec { seed: 11, clients, tenants: 4 }
    }

    #[test]
    fn fault_free_serving_is_all_success_and_deterministic() {
        let cfg = ServeConfig::new(5);
        let a = serve(&cfg, &small_spec(40));
        let b = serve(&cfg, &small_spec(40));
        assert_eq!(a.responses.len(), 40);
        for (x, y) in a.responses.iter().zip(&b.responses) {
            assert_eq!(x.verdict, y.verdict);
            assert_eq!(x.member, y.member);
            assert_eq!(x.checksum, y.checksum);
            assert_eq!(x.done_s.to_bits(), y.done_s.to_bits());
        }
        for r in &a.responses {
            match &r.verdict {
                Verdict::Success | Verdict::Rejected(_) => {}
                other => panic!("fault-free run produced {other:?}"),
            }
            if r.verdict == Verdict::Success {
                assert_eq!(r.checksum, Some(a.expected[r.app]));
                assert!(r.latency_s() >= 0.0);
            }
        }
    }

    #[test]
    fn metrics_cover_serve_and_substrate_and_traces_join_responses_to_spans() {
        let cfg = ServeConfig::new(5);
        let out = serve(&cfg, &small_spec(40));
        let snap = out.metrics.expect("session installs a registry");
        // Serve-side accounting matches the response stream exactly.
        let requests_total: u64 = snap
            .samples
            .iter()
            .filter(|s| s.name == "serve_requests_total")
            .map(|s| match s.value {
                ompx_telemetry::MetricValue::Counter(c) => c,
                _ => 0,
            })
            .sum();
        assert_eq!(requests_total, out.responses.len() as u64);
        // Substrate families recorded through the same ambient registry.
        assert!(snap.counter("sim_launches_total", &[]) > 0);
        assert!(snap.samples.iter().any(|s| s.name == "sim_memcpys_total"));
        assert!(snap.samples.iter().any(|s| s.name == "serve_latency_seconds"));
        // Executed responses carry a trace id that joins them to their
        // batch's device span; rejected ones carry none.
        for r in &out.responses {
            if matches!(r.verdict, Verdict::Rejected(_)) {
                assert_eq!(r.trace, None);
            } else {
                let t = r.trace.expect("executed response has a trace id");
                assert!(out
                    .spans
                    .iter()
                    .any(|s| s.trace == Some(t) && matches!(s.track, Track::Device(_))));
            }
        }
    }

    #[test]
    fn batching_engages_under_load_and_lands_device_spans() {
        // Oversubscribed: 40 requests, one device, so the backlog builds
        // and same-app requests coalesce.
        let mut cfg = ServeConfig::new(5);
        cfg.devices = vec![DeviceKind::A100];
        cfg.load_factor = 3.0;
        cfg.queue_cap = 100;
        let out = serve(&cfg, &small_spec(40));
        let max_batch = out.responses.iter().map(|r| r.batch_size).max().unwrap();
        assert!(max_batch > 1, "no batch formed: {max_batch}");
        assert!(max_batch <= cfg.max_batch);
        let device_spans = out.spans.iter().filter(|s| s.track == Track::Device(0)).count();
        assert_eq!(device_spans as u64, out.pool.members[0].batches);
        // Batch accounting: spans cover exactly the member's busy time.
        let span_s: f64 =
            out.spans.iter().filter(|s| s.track == Track::Device(0)).map(|s| s.dur_s).sum();
        assert!((span_s - out.pool.members[0].busy_s).abs() < 1e-9);
    }

    #[test]
    fn injected_loss_quarantines_one_member_and_trichotomy_holds() {
        let mut cfg = ServeConfig::new(5);
        // A loss early in member 0's schedule; other members get quiet
        // plans (rate 0, loss stripped by for_pool_member).
        cfg.plan = Some(FaultPlan::seeded(99, 0.0).with_device_loss_at(2));
        let out = serve(&cfg, &small_spec(60));
        assert!(out.pool.members[0].lost, "member 0 should observe its loss");
        for m in 1..out.pool.members.len() {
            assert!(!out.pool.members[m].lost);
        }
        for r in &out.responses {
            match &r.verdict {
                Verdict::Success
                | Verdict::Fallback
                | Verdict::TypedError(_)
                | Verdict::Rejected(_) => {}
                Verdict::Corrupt(msg) => panic!("corruption on request {}: {msg}", r.id),
            }
            // Anything that completed cleanly has the expected checksum.
            if matches!(r.verdict, Verdict::Success | Verdict::Fallback) {
                assert_eq!(r.checksum, Some(out.expected[r.app]));
            }
        }
        // The pool kept serving: most traffic still completes.
        let ok = out
            .responses
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Success | Verdict::Fallback))
            .count();
        assert!(ok > 40, "only {ok}/60 completed after single-member loss");
    }

    #[test]
    fn backpressure_sheds_with_fair_slices() {
        let mut cfg = ServeConfig::new(5);
        cfg.devices = vec![DeviceKind::A100];
        cfg.queue_cap = 4;
        cfg.max_batch = 1;
        cfg.load_factor = 4.0;
        let out = serve(&cfg, &small_spec(60));
        let rejected =
            out.responses.iter().filter(|r| matches!(r.verdict, Verdict::Rejected(_))).count();
        assert!(rejected > 0, "cap 4 at 4x load must shed");
        // Everything is accounted for exactly once.
        assert_eq!(out.responses.len(), 60);
    }
}
