//! The device pool: a fixed set of logical pool members with mixed
//! A100/MI250 profiles, each carrying its own persistent fault state,
//! per-member circuit breaker, and (optionally) a bench of warm spares.
//!
//! A member is *logical*: the hecbench apps construct their own simulated
//! devices per run, so what a pool member owns is the part that must
//! persist across requests — the profile kind (which picks the modeled
//! system), the member's [`FaultState`] (whose sticky device-loss flag is
//! exactly the "this pool member died" bit), and a [`CircuitBreaker`]
//! scoring its dispatch outcomes. Chaos schedules are decorrelated across
//! members via [`FaultPlan::for_pool_member`], and only member 0 inherits
//! a plan's scheduled device loss, so an injected loss is a single-member
//! event the rest of the pool must survive.
//!
//! **Warm spares** are members appended with `standby = true`: they take
//! no traffic and do not appear in the sharding set until
//! [`DevicePool::promote_spare`] flips them in — the serving loop does
//! that when it observes a device loss, after re-running the fault-free
//! warmup against the spare to re-pin the expected checksums.
//!
//! [`FaultState`]: ompx_sim::fault::FaultState
//! [`FaultPlan::for_pool_member`]: ompx_sim::fault::FaultPlan::for_pool_member

use ompx_hecbench::common::splitmix64;
use ompx_hecbench::System;
use ompx_resilience::{BreakerConfig, CircuitBreaker, Transition};
use ompx_sim::fault::{FaultPlan, FaultState};
use std::sync::Arc;

/// Hardware profile of one pool member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// NVIDIA A100 — requests routed here run the `System::Nvidia` model.
    A100,
    /// AMD MI250 — requests routed here run the `System::Amd` model.
    Mi250,
}

impl DeviceKind {
    /// The benchmark system a member of this kind executes as.
    pub fn system(self) -> System {
        match self {
            DeviceKind::A100 => System::Nvidia,
            DeviceKind::Mi250 => System::Amd,
        }
    }

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::A100 => "a100",
            DeviceKind::Mi250 => "mi250",
        }
    }
}

/// One member of the serving pool.
pub struct PoolMember {
    pub kind: DeviceKind,
    /// The member's persistent fault state (`None` = fault-free pool).
    /// Sticky errors and the device-loss flag survive across requests.
    pub faults: Option<Arc<FaultState>>,
    /// Set once the server observes the member's fault state report loss;
    /// a lost member takes no further traffic.
    pub lost: bool,
    /// True while the member is a warm spare: warmed up but outside the
    /// serving (and sharding) set until promoted.
    pub standby: bool,
    /// Circuit breaker over this member's dispatch outcomes.
    pub breaker: CircuitBreaker,
    /// Modeled time until which the member is executing.
    pub busy_until_s: f64,
    /// True while a batch is in flight.
    pub busy: bool,
    /// Requests served (batch followers included).
    pub served: u64,
    /// Batches executed.
    pub batches: u64,
    /// Total modeled busy seconds.
    pub busy_s: f64,
}

/// The pool: members plus the sharding function.
pub struct DevicePool {
    pub members: Vec<PoolMember>,
    seed: u64,
}

impl DevicePool {
    /// Build a pool of `kinds`, deriving each member's fault state from
    /// `base_plan` with [`FaultPlan::for_pool_member`] so schedules do not
    /// correlate across members.
    pub fn new(kinds: &[DeviceKind], base_plan: Option<&FaultPlan>, seed: u64) -> DevicePool {
        DevicePool::with_spares(kinds, &[], base_plan, seed, BreakerConfig::default())
    }

    /// [`DevicePool::new`] plus a bench of warm spares appended after the
    /// serving members (so spare indices continue the member numbering),
    /// and the breaker thresholds every member starts with.
    pub fn with_spares(
        kinds: &[DeviceKind],
        spares: &[DeviceKind],
        base_plan: Option<&FaultPlan>,
        seed: u64,
        breaker: BreakerConfig,
    ) -> DevicePool {
        let members = kinds
            .iter()
            .map(|&k| (k, false))
            .chain(spares.iter().map(|&k| (k, true)))
            .enumerate()
            .map(|(m, (kind, standby))| PoolMember {
                kind,
                faults: base_plan.map(|p| FaultState::new(p.for_pool_member(m))),
                lost: false,
                standby,
                breaker: CircuitBreaker::new(breaker),
                busy_until_s: 0.0,
                busy: false,
                served: 0,
                batches: 0,
                busy_s: 0.0,
            })
            .collect();
        DevicePool { members, seed }
    }

    /// Members in the serving set (not lost, not standby), in index order.
    pub fn alive(&self) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&m| !self.members[m].lost && !self.members[m].standby)
            .collect()
    }

    /// Shard a tenant onto a live member: a pure hash of `(pool seed,
    /// tenant)` reduced over the *alive* set, so the mapping is sticky
    /// while the pool is stable and every tenant re-homes deterministically
    /// the moment a member is lost (or a spare is promoted). `None` when
    /// the whole pool is gone.
    pub fn home_of(&self, tenant: u32) -> Option<usize> {
        Self::reduce(self.seed, tenant, &self.alive())
    }

    /// Breaker-aware routing: shard over the serving members whose
    /// breakers accept traffic at modeled time `now_s` (an open breaker
    /// whose cooldown elapsed half-opens here; the transitions are
    /// returned for metering). When every breaker refuses, routing falls
    /// back to the plain alive set — breakers shift load while capacity
    /// exists, they do not fabricate a total outage.
    pub fn route_of(
        &mut self,
        tenant: u32,
        now_s: f64,
    ) -> (Option<usize>, Vec<(usize, Transition)>) {
        let mut transitions = Vec::new();
        let mut accepting = Vec::new();
        for m in self.alive() {
            let (ok, t) = self.members[m].breaker.accepting(now_s);
            if let Some(t) = t {
                transitions.push((m, t));
            }
            if ok {
                accepting.push(m);
            }
        }
        let home = if accepting.is_empty() {
            self.home_of(tenant)
        } else {
            Self::reduce(self.seed, tenant, &accepting)
        };
        (home, transitions)
    }

    /// Promote the first available warm spare into the serving set,
    /// returning its member index. `None` when the bench is empty.
    pub fn promote_spare(&mut self) -> Option<usize> {
        let m =
            (0..self.members.len()).find(|&m| self.members[m].standby && !self.members[m].lost)?;
        self.members[m].standby = false;
        Some(m)
    }

    fn reduce(seed: u64, tenant: u32, set: &[usize]) -> Option<usize> {
        if set.is_empty() {
            return None;
        }
        let h = splitmix64(seed ^ 0x7365_7276_653A_7468 ^ u64::from(tenant));
        Some(set[(h % set.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> Vec<DeviceKind> {
        vec![DeviceKind::A100, DeviceKind::A100, DeviceKind::Mi250, DeviceKind::Mi250]
    }

    #[test]
    fn kinds_map_to_systems() {
        assert_eq!(DeviceKind::A100.system(), System::Nvidia);
        assert_eq!(DeviceKind::Mi250.system(), System::Amd);
    }

    #[test]
    fn sharding_is_sticky_and_rehomes_off_lost_members() {
        let mut pool = DevicePool::new(&kinds(), None, 42);
        let homes: Vec<_> = (0..64).map(|t| pool.home_of(t).unwrap()).collect();
        // Sticky: same pool, same answer.
        for (t, &h) in homes.iter().enumerate() {
            assert_eq!(pool.home_of(t as u32), Some(h));
        }
        // All members get some tenant at this fan-out.
        for m in 0..4 {
            assert!(homes.contains(&m), "member {m} unused: {homes:?}");
        }
        // Losing member 0 re-homes exactly its tenants; others stay put...
        pool.members[0].lost = true;
        for (t, &h) in homes.iter().enumerate() {
            let now = pool.home_of(t as u32).unwrap();
            assert_ne!(now, 0, "tenant {t} routed to a lost member");
            if h != 0 {
                // ...modulo the hash reduction changing with the alive set;
                // what we require is determinism and no lost-member routing.
                assert_eq!(now, pool.home_of(t as u32).unwrap());
            }
        }
        // Whole pool gone: nowhere to route.
        for m in &mut pool.members {
            m.lost = true;
        }
        assert_eq!(pool.home_of(3), None);
    }

    #[test]
    fn fault_states_are_per_member_and_decorrelated() {
        let plan = FaultPlan::seeded(7, 0.5).with_device_loss_at(3);
        let pool = DevicePool::new(&kinds(), Some(&plan), 42);
        let states: Vec<_> = pool.members.iter().map(|m| m.faults.clone().unwrap()).collect();
        // Distinct Arcs — a sticky error on one member cannot leak into
        // another member's state.
        for i in 0..states.len() {
            for j in i + 1..states.len() {
                assert!(!Arc::ptr_eq(&states[i], &states[j]));
            }
        }
        // Only member 0 inherits the scheduled loss.
        assert!(pool.members[0].faults.as_ref().unwrap().plan().lose_device_at.is_some());
        for m in 1..4 {
            assert!(pool.members[m].faults.as_ref().unwrap().plan().lose_device_at.is_none());
        }
    }

    #[test]
    fn spares_stay_out_of_sharding_until_promoted() {
        let mut pool = DevicePool::with_spares(
            &kinds(),
            &[DeviceKind::A100],
            None,
            42,
            BreakerConfig::default(),
        );
        assert_eq!(pool.members.len(), 5);
        assert!(pool.members[4].standby);
        assert_eq!(pool.alive(), vec![0, 1, 2, 3]);
        for t in 0..64 {
            assert_ne!(pool.home_of(t), Some(4), "tenant {t} routed to a standby spare");
        }
        // Lose a member, promote: the spare joins the serving set and the
        // lost member stays out of it.
        pool.members[1].lost = true;
        assert_eq!(pool.promote_spare(), Some(4));
        assert_eq!(pool.alive(), vec![0, 2, 3, 4]);
        assert!((0..64).any(|t| pool.home_of(t) == Some(4)), "promoted spare gets no tenants");
        // Bench exhausted.
        assert_eq!(pool.promote_spare(), None);
    }

    #[test]
    fn routing_skips_open_breakers_and_falls_back_when_all_trip() {
        let mut pool = DevicePool::new(&kinds(), None, 42);
        // Trip member 0's breaker outright. Routing happens inside the
        // cooldown window (default 1.0 s), so the breaker stays open.
        for i in 0..3 {
            pool.members[0].breaker.on_outcome(false, f64::from(i));
        }
        for t in 0..64 {
            let (home, _) = pool.route_of(t, 2.5);
            assert_ne!(home, Some(0), "tenant {t} routed through an open breaker");
        }
        // Trip every breaker: routing falls back to the alive set rather
        // than reporting an outage.
        for m in 0..4 {
            for i in 0..3 {
                pool.members[m].breaker.on_outcome(false, f64::from(i));
            }
        }
        let (home, _) = pool.route_of(9, 2.5);
        assert!(home.is_some(), "all-tripped pool must still route");
        // After the cooldown the breakers half-open and the transitions
        // are surfaced for metering.
        let (_, transitions) = pool.route_of(9, 1e9);
        assert!(!transitions.is_empty());
    }
}
