//! Typed serving errors.
//!
//! The serving loop used to panic on conditions that injected-fault runs
//! can legitimately reach (a warmup failure, a drained loop with work
//! still queued). Those are now [`ServeError`] variants: callers get a
//! `Result`, the CLI renders them as findings and exits non-zero, and no
//! panic is reachable from a fault path.

use std::fmt;

/// Why a serve run could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The configuration cannot describe a runnable pool (no devices,
    /// zero batch size, empty sweep ladder, ...).
    InvalidConfig(String),
    /// A fault-free warmup run failed outright — the harness cannot even
    /// establish the expected checksum for `app`.
    WarmupFailed {
        /// The app whose warmup failed.
        app: &'static str,
        /// The underlying run error.
        msg: String,
    },
    /// A fault-free warmup completed but disagreed with the already
    /// pinned expectation — the "unexpected fault-free verdict" case a
    /// spare promotion must surface instead of serving corrupt data.
    WarmupUnexpected {
        /// The app whose re-warmup diverged.
        app: &'static str,
        /// Checksum the re-warmup produced.
        got: u64,
        /// Checksum pinned by the original warmup.
        expected: u64,
    },
    /// An internal invariant broke (the event loop drained with work
    /// still queued, a pending hedge never resolved). A bug, reported as
    /// an error instead of a panic so fault campaigns fail cleanly.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::WarmupFailed { app, msg } => {
                write!(f, "fault-free warmup of {app} failed: {msg}")
            }
            ServeError::WarmupUnexpected { app, got, expected } => {
                write!(f, "fault-free warmup of {app} produced {got:#x}, expected {expected:#x}")
            }
            ServeError::Internal(msg) => write!(f, "serve internal invariant broke: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = ServeError::WarmupFailed { app: "su3", msg: "boom".into() };
        assert!(e.to_string().contains("su3"));
        assert!(e.to_string().contains("boom"));
        let e = ServeError::WarmupUnexpected { app: "adam", got: 0xab, expected: 0xcd };
        assert!(e.to_string().contains("0xab"));
        assert!(e.to_string().contains("0xcd"));
        assert!(ServeError::InvalidConfig("x".into()).to_string().contains("invalid"));
        assert!(ServeError::Internal("x".into()).to_string().contains("invariant"));
    }
}
