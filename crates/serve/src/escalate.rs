//! Chaos-escalation campaign: the same seeded serve load replayed at a
//! ladder of fault-rate multipliers, with an SLO contract asserted per
//! rung.
//!
//! One chaos run shows the pool surviving one fault schedule. The
//! resilience claim is stronger: as injected pressure escalates, the
//! layer must *degrade by policy* — interactive traffic keeps its
//! deadline SLO (hedging and breakers route around slow and failing
//! members), correctness never bends (zero `Corrupt` verdicts at every
//! rung), and the brownout ladder sheds monotonically more as pressure
//! grows, never less. [`escalate`] runs the ladder and
//! [`ompx_resilience::check_contract`] turns any breach into a finding
//! the CLI exits non-zero on. Everything inherits the serve loop's
//! determinism, so the rendered JSON/CSV are byte-stable for a fixed
//! `(cfg, spec, multipliers)` and CI gates on them like the other
//! baselines.

use crate::error::ServeError;
use crate::loadgen::LoadSpec;
use crate::report::build;
use crate::server::{serve, ServeConfig};
use ompx_resilience::{check_contract, RungSlo};

/// The default ladder: from the plan's own rate to 16× it, doubling.
pub const DEFAULT_MULTIPLIERS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// One rung of the escalation: the multiplier it ran at plus the
/// SLO-relevant slice of that run's report.
#[derive(Debug, Clone)]
pub struct EscalateRung {
    pub multiplier: f64,
    /// The effective per-op fault rate the rung injected.
    pub fault_rate: f64,
    pub completed: u64,
    pub success: u64,
    pub fallback: u64,
    pub typed_error: u64,
    pub rejected: u64,
    pub corrupt: u64,
    /// Fraction of offered requests shed at admission.
    pub shed_frac: f64,
    /// p99 of interactive `latency / deadline budget` (≤ 1 = SLO held).
    pub interactive_p99_ratio: f64,
    pub deadline_misses: u64,
    pub hedges_launched: u64,
    pub hedges_won: u64,
    pub breaker_opens: u64,
    pub spares_promoted: u64,
    pub throughput_rps: f64,
    pub latency_p99_s: f64,
}

/// A full escalation campaign: the shared run identity, one rung per
/// multiplier, and the contract breaches (empty = contract held).
#[derive(Debug, Clone)]
pub struct EscalateResult {
    pub seed: u64,
    pub clients: u32,
    pub tenants: u32,
    /// The base plan's per-op fault rate (multiplied per rung).
    pub base_rate: f64,
    pub rungs: Vec<EscalateRung>,
    /// SLO contract breaches from [`check_contract`], in rung order.
    pub violations: Vec<String>,
}

/// Replay `cfg` against `spec` once per multiplier, scaling the fault
/// plan's per-op rate each time (the loss schedule and everything else
/// stay fixed), then check the SLO contract over the resulting rungs.
pub fn escalate(
    cfg: &ServeConfig,
    spec: &LoadSpec,
    multipliers: &[f64],
) -> Result<EscalateResult, ServeError> {
    if multipliers.is_empty() {
        return Err(ServeError::InvalidConfig("escalation needs at least one multiplier".into()));
    }
    let base = cfg.plan.clone().ok_or_else(|| {
        ServeError::InvalidConfig("escalation needs a fault plan (run without --no-faults)".into())
    })?;
    let mut rungs = Vec::with_capacity(multipliers.len());
    for &k in multipliers {
        if k.is_nan() || k <= 0.0 {
            return Err(ServeError::InvalidConfig(format!("multiplier {k} is not positive")));
        }
        let mut plan = base.clone();
        plan.rate = (base.rate * k).min(1.0);
        let mut c = cfg.clone();
        let fault_rate = plan.rate;
        c.plan = Some(plan);
        let out = serve(&c, spec)?;
        let report =
            build(c.seed, spec.clients, spec.tenants, &out.responses, &out.pool, &out.stats);
        let interactive_p99_ratio = report
            .classes
            .iter()
            .find(|cl| cl.class == "interactive")
            .map(|cl| cl.lateness_p99)
            .unwrap_or(0.0);
        rungs.push(EscalateRung {
            multiplier: k,
            fault_rate,
            completed: report.completed,
            success: report.success,
            fallback: report.fallback,
            typed_error: report.typed_error,
            rejected: report.rejected,
            corrupt: report.corrupt,
            shed_frac: if report.total > 0 {
                report.rejected as f64 / report.total as f64
            } else {
                0.0
            },
            interactive_p99_ratio,
            deadline_misses: out.stats.deadline_misses,
            hedges_launched: out.stats.hedges_launched,
            hedges_won: out.stats.hedges_won,
            breaker_opens: out.stats.breaker_opens,
            spares_promoted: out.stats.spares_promoted,
            throughput_rps: report.throughput_rps,
            latency_p99_s: report.latency_p99_s,
        });
    }
    let slo: Vec<RungSlo> = rungs
        .iter()
        .map(|r| RungSlo {
            multiplier: r.multiplier,
            interactive_p99_ratio: r.interactive_p99_ratio,
            corrupt: r.corrupt,
            shed_frac: r.shed_frac,
        })
        .collect();
    Ok(EscalateResult {
        seed: cfg.seed,
        clients: spec.clients,
        tenants: spec.tenants,
        base_rate: base.rate,
        rungs,
        violations: check_contract(&slo),
    })
}

/// Render the campaign as the `BENCH_resilience.json` document (schema
/// `ompx-bench-resilience-v1`). Field order and float formatting are
/// fixed so the output is byte-stable for baseline diffing.
pub fn render_escalate_json(e: &EscalateResult) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ompx-bench-resilience-v1\",\n");
    out.push_str(&format!("  \"seed\": {},\n", e.seed));
    out.push_str(&format!("  \"clients\": {},\n", e.clients));
    out.push_str(&format!("  \"tenants\": {},\n", e.tenants));
    out.push_str(&format!("  \"base_rate\": {:e},\n", e.base_rate));
    out.push_str("  \"rungs\": [\n");
    for (i, r) in e.rungs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"multiplier\":{:e},\"fault_rate\":{:e},\"completed\":{},\"verdicts\":{{\"success\":{},\"fallback\":{},\"typed_error\":{},\"rejected\":{},\"corrupt\":{}}},\"shed_frac\":{:e},\"interactive_p99_ratio\":{:e},\"deadline_misses\":{},\"hedges_launched\":{},\"hedges_won\":{},\"breaker_opens\":{},\"spares_promoted\":{},\"throughput_rps\":{:e},\"latency_p99_s\":{:e}}}{}\n",
            r.multiplier,
            r.fault_rate,
            r.completed,
            r.success,
            r.fallback,
            r.typed_error,
            r.rejected,
            r.corrupt,
            r.shed_frac,
            r.interactive_p99_ratio,
            r.deadline_misses,
            r.hedges_launched,
            r.hedges_won,
            r.breaker_opens,
            r.spares_promoted,
            r.throughput_rps,
            r.latency_p99_s,
            if i + 1 < e.rungs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"violations\": [");
    for (i, v) in e.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", v.replace('"', "'")));
    }
    out.push_str("]\n}\n");
    out
}

/// Render the campaign as a plotting-friendly CSV: one row per rung.
pub fn render_escalate_csv(e: &EscalateResult) -> String {
    let mut out = String::from(
        "multiplier,fault_rate,completed,success,fallback,typed_error,rejected,corrupt,shed_frac,interactive_p99_ratio,deadline_misses,hedges_launched,hedges_won,breaker_opens,spares_promoted,throughput_rps,latency_p99_s\n",
    );
    for r in &e.rungs {
        out.push_str(&format!(
            "{:e},{:e},{},{},{},{},{},{},{:e},{:e},{},{},{},{},{},{:e},{:e}\n",
            r.multiplier,
            r.fault_rate,
            r.completed,
            r.success,
            r.fallback,
            r.typed_error,
            r.rejected,
            r.corrupt,
            r.shed_frac,
            r.interactive_p99_ratio,
            r.deadline_misses,
            r.hedges_launched,
            r.hedges_won,
            r.breaker_opens,
            r.spares_promoted,
            r.throughput_rps,
            r.latency_p99_s,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::fault::FaultPlan;

    fn tiny_cfg() -> ServeConfig {
        let mut cfg = ServeConfig::new(7);
        cfg.plan = Some(FaultPlan::seeded(7, 0.01));
        cfg
    }

    fn tiny_spec() -> LoadSpec {
        LoadSpec { seed: 7, clients: 24, tenants: 4 }
    }

    #[test]
    fn escalation_is_deterministic_and_scales_the_rate() {
        let cfg = tiny_cfg();
        let spec = tiny_spec();
        let a = escalate(&cfg, &spec, &[1.0, 4.0]).expect("escalate");
        let b = escalate(&cfg, &spec, &[1.0, 4.0]).expect("escalate");
        assert_eq!(render_escalate_json(&a), render_escalate_json(&b));
        assert_eq!(render_escalate_csv(&a), render_escalate_csv(&b));
        assert_eq!(a.rungs.len(), 2);
        assert!((a.rungs[0].fault_rate - 0.01).abs() < 1e-12);
        assert!((a.rungs[1].fault_rate - 0.04).abs() < 1e-12);
        // Correctness never bends, whatever the rate.
        for r in &a.rungs {
            assert_eq!(r.corrupt, 0);
            assert_eq!(r.completed + r.rejected, 24);
        }
    }

    #[test]
    fn rate_saturates_at_one() {
        let mut cfg = tiny_cfg();
        cfg.plan = Some(FaultPlan::seeded(7, 0.2));
        let e = escalate(&cfg, &tiny_spec(), &[16.0]).expect("escalate");
        assert!((e.rungs[0].fault_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_plan_and_bad_ladders_are_typed_errors() {
        let mut cfg = tiny_cfg();
        cfg.plan = None;
        assert!(matches!(escalate(&cfg, &tiny_spec(), &[1.0]), Err(ServeError::InvalidConfig(_))));
        let cfg = tiny_cfg();
        assert!(matches!(escalate(&cfg, &tiny_spec(), &[]), Err(ServeError::InvalidConfig(_))));
        assert!(matches!(escalate(&cfg, &tiny_spec(), &[0.0]), Err(ServeError::InvalidConfig(_))));
    }
}
