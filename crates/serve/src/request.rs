//! The serving wire types: requests, verdicts, responses.

use ompx_hecbench::ProgVersion;
use ompx_resilience::Priority;

/// One client's launch request: run one hecbench app (a stand-in for "a
/// target region") and return its checksum. Arrival time is modeled
/// seconds on the shared serving clock.
#[derive(Debug, Clone)]
pub struct Request {
    /// Dense request id (also the client id: one request per client).
    pub id: u32,
    /// The tenant this client belongs to. Sharding is by tenant, so all
    /// of a tenant's traffic lands on one pool member at a time.
    pub tenant: u32,
    /// Which hecbench app the request runs.
    pub app: &'static str,
    /// Which program version of the app.
    pub version: ProgVersion,
    /// Modeled arrival time in seconds.
    pub arrival_s: f64,
    /// Scheduling class: interactive cuts the line, best-effort is shed
    /// first by the brownout ladder.
    pub priority: Priority,
    /// Absolute modeled deadline, assigned by the server once it knows
    /// the app's fault-free service estimate (`None` for best-effort).
    pub deadline_s: Option<f64>,
}

/// Short version tag that does not depend on the executing system (a
/// request is version-tagged before it is sharded to a device).
pub fn version_tag(v: ProgVersion) -> &'static str {
    match v {
        ProgVersion::Ompx => "ompx",
        ProgVersion::Omp => "omp",
        ProgVersion::Native => "native",
        ProgVersion::NativeVendor => "native-vendor",
    }
}

/// What the server concluded about one request. Executed requests must
/// land in the chaos trichotomy (`Success` / `TypedError` / `Fallback`);
/// `Rejected` is backpressure (never executed) and `Corrupt` is the
/// must-never-happen fourth state the harness asserts against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Ran clean, checksum matched the fault-free expectation.
    Success,
    /// Ran through the retry/fallback machinery and still produced the
    /// bit-identical expected checksum.
    Fallback,
    /// Failed with a clean typed error (injected fault, lost device).
    TypedError(String),
    /// Shed at admission by the backpressure policy.
    Rejected(String),
    /// Completed with a wrong checksum — a trichotomy violation.
    Corrupt(String),
}

impl Verdict {
    /// Stable bucket label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Success => "success",
            Verdict::Fallback => "fallback",
            Verdict::TypedError(_) => "typed_error",
            Verdict::Rejected(_) => "rejected",
            Verdict::Corrupt(_) => "corrupt",
        }
    }
}

/// The server's answer to one request.
#[derive(Debug, Clone)]
pub struct Response {
    pub id: u32,
    pub tenant: u32,
    pub app: &'static str,
    pub version: ProgVersion,
    /// Pool member that executed the request (`None` when rejected).
    pub member: Option<usize>,
    /// Size of the batch this request was served in (1 when rejected).
    pub batch_size: usize,
    pub verdict: Verdict,
    /// Copied from the request.
    pub arrival_s: f64,
    /// Scheduling class, copied from the request.
    pub priority: Priority,
    /// Absolute modeled deadline the scheduler worked against (`None`
    /// for best-effort and for requests shed before warmup pricing).
    pub deadline_s: Option<f64>,
    /// True when a hedged second attempt was launched for this request's
    /// batch (whichever attempt won).
    pub hedged: bool,
    /// Modeled completion (or rejection) time.
    pub done_s: f64,
    /// The app checksum the execution produced, when it completed.
    pub checksum: Option<u64>,
    /// Request-scoped trace id: set for executed requests, shared by the
    /// whole batch, and stamped onto every span the batch's execution
    /// recorded — so a response can be joined against its timeline slice.
    pub trace: Option<u64>,
}

impl Response {
    /// Modeled queueing + service latency.
    pub fn latency_s(&self) -> f64 {
        self.done_s - self.arrival_s
    }

    /// Whether a completed request finished past its deadline. Rejected
    /// requests never count (they did not complete), and deadline-free
    /// (best-effort) requests cannot miss.
    pub fn missed_deadline(&self) -> bool {
        !matches!(self.verdict, Verdict::Rejected(_))
            && self.deadline_s.is_some_and(|d| self.done_s > d)
    }

    /// Lateness as a fraction of the deadline budget:
    /// `latency / (deadline - arrival)`. `None` when no deadline was set
    /// or the request was rejected. ≤ 1 means the deadline was met.
    pub fn lateness_ratio(&self) -> Option<f64> {
        if matches!(self.verdict, Verdict::Rejected(_)) {
            return None;
        }
        let d = self.deadline_s?;
        let budget = d - self.arrival_s;
        (budget > 0.0).then(|| self.latency_s() / budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(Verdict::Success.label(), "success");
        assert_eq!(Verdict::Fallback.label(), "fallback");
        assert_eq!(Verdict::TypedError("x".into()).label(), "typed_error");
        assert_eq!(Verdict::Rejected("x".into()).label(), "rejected");
        assert_eq!(Verdict::Corrupt("x".into()).label(), "corrupt");
    }

    fn resp(verdict: Verdict, deadline_s: Option<f64>) -> Response {
        Response {
            id: 0,
            tenant: 0,
            app: "adam",
            version: ProgVersion::Ompx,
            member: Some(1),
            batch_size: 2,
            verdict,
            arrival_s: 1.5,
            priority: Priority::Interactive,
            deadline_s,
            hedged: false,
            done_s: 4.0,
            checksum: Some(7),
            trace: None,
        }
    }

    #[test]
    fn latency_is_done_minus_arrival() {
        let r = resp(Verdict::Success, None);
        assert!((r.latency_s() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn deadline_miss_and_lateness_follow_the_deadline() {
        // done_s = 4.0, arrival 1.5: a deadline of 6.5 is met at ratio
        // 0.5, one of 3.0 is missed at ratio > 1.
        let met = resp(Verdict::Success, Some(6.5));
        assert!(!met.missed_deadline());
        assert!((met.lateness_ratio().unwrap() - 0.5).abs() < 1e-12);
        let missed = resp(Verdict::Fallback, Some(3.0));
        assert!(missed.missed_deadline());
        assert!(missed.lateness_ratio().unwrap() > 1.0);
        // No deadline: cannot miss, no ratio.
        assert!(!resp(Verdict::Success, None).missed_deadline());
        assert_eq!(resp(Verdict::Success, None).lateness_ratio(), None);
        // Rejected: never a miss even with a stale deadline attached.
        assert!(!resp(Verdict::Rejected("full".into()), Some(0.1)).missed_deadline());
        assert_eq!(resp(Verdict::Rejected("full".into()), Some(0.1)).lateness_ratio(), None);
    }
}
