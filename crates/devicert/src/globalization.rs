//! Variable globalization: team-visible locals that cannot live in registers.
//!
//! In OpenMP semantics, a variable declared in a `target teams` region may
//! be referenced by all threads of the team (e.g. firstprivate capture into
//! a `parallel` region), so the compiler must *globalize* it: allocate it
//! from a runtime-managed heap in device global memory instead of a
//! register or stack slot (Huber et al., CGO'22 — ref \[9\]). The paper's
//! `ompx_bare` clause disables this ("local variables defined in the scope
//! will not be globalized", §3.1), which is one of the reasons the `ompx`
//! versions beat the `omp` versions.
//!
//! LLVM's *heap-to-shared* optimization can rescue globalized storage into
//! shared memory when it fits; the paper observes exactly this making the
//! `omp` RSBench **faster** than CUDA on the A100 (§4.2.2: 2 KB of shared
//! memory). Both placements are implemented here so the traffic difference
//! is counted, not asserted.

use ompx_sim::mem::{DBuf, DeviceScalar};
use ompx_sim::shared::SharedView;
use ompx_sim::thread::ThreadCtx;

/// Where the runtime placed a globalized allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalizedPlacement {
    /// Runtime heap in device global memory (the default).
    GlobalHeap,
    /// Shared memory (LLVM's heap-to-shared optimization applied).
    Shared,
}

/// A globalized team-local array. Every access goes through the accessing
/// thread's [`ThreadCtx`] so the placement's traffic is charged correctly.
pub enum GlobalizedArray<'a, T: DeviceScalar> {
    Heap(DBuf<T>),
    Shared(SharedView<'a, T>),
}

impl<'a, T: DeviceScalar> GlobalizedArray<'a, T> {
    /// The placement of this allocation.
    pub fn placement(&self) -> GlobalizedPlacement {
        match self {
            GlobalizedArray::Heap(_) => GlobalizedPlacement::GlobalHeap,
            GlobalizedArray::Shared(_) => GlobalizedPlacement::Shared,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            GlobalizedArray::Heap(b) => b.len(),
            GlobalizedArray::Shared(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counted load through `tc`.
    #[inline]
    pub fn get(&self, tc: &mut ThreadCtx<'_>, i: usize) -> T {
        match self {
            GlobalizedArray::Heap(b) => tc.read(b, i),
            GlobalizedArray::Shared(v) => {
                tc.counters.shared_accesses += 1;
                v.get(i)
            }
        }
    }

    /// Counted store through `tc`.
    #[inline]
    pub fn set(&self, tc: &mut ThreadCtx<'_>, i: usize, v: T) {
        match self {
            GlobalizedArray::Heap(b) => tc.write(b, i, v),
            GlobalizedArray::Shared(view) => {
                tc.counters.shared_accesses += 1;
                view.set(i, v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::device::{Device, DeviceProfile};
    use ompx_sim::dim::{Dim3, LaunchConfig};
    use ompx_sim::shared::BlockShared;

    fn with_ctx(f: impl FnOnce(&mut ThreadCtx<'_>, &BlockShared)) {
        let mut cfg = LaunchConfig::new(1u32, 1u32);
        cfg.shared_array::<f64>(16);
        let shared = BlockShared::new(&cfg.shared_slots);
        let mut tc = ThreadCtx::detached(Dim3::x(1), Dim3::x(1), (0, 0, 0), (0, 0, 0), 32, &shared);
        f(&mut tc, &shared);
    }

    #[test]
    fn heap_placement_counts_global_traffic() {
        with_ctx(|tc, _| {
            let dev = Device::new(DeviceProfile::test_small());
            let arr = GlobalizedArray::Heap(dev.alloc::<f64>(8));
            assert_eq!(arr.placement(), GlobalizedPlacement::GlobalHeap);
            assert_eq!(arr.len(), 8);
            arr.set(tc, 2, 1.5);
            assert_eq!(arr.get(tc, 2), 1.5);
            assert_eq!(tc.counters.global_store_bytes, 8);
            assert_eq!(tc.counters.global_load_bytes, 8);
            assert_eq!(tc.counters.shared_accesses, 0);
        });
    }

    #[test]
    fn shared_placement_counts_shared_accesses() {
        with_ctx(|tc, shared| {
            let arr = GlobalizedArray::Shared(shared.view::<f64>(0));
            assert_eq!(arr.placement(), GlobalizedPlacement::Shared);
            arr.set(tc, 0, 2.5);
            assert_eq!(arr.get(tc, 0), 2.5);
            assert_eq!(tc.counters.shared_accesses, 2);
            assert_eq!(tc.counters.global_load_bytes, 0);
        });
    }
}
