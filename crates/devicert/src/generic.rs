//! Generic-mode execution: master thread + worker state machine.
//!
//! A generic-mode `target teams` region alternates sequential sections
//! (master only) with `parallel` regions (all threads). On hardware, LLVM's
//! device runtime keeps the team's worker threads parked in a state machine;
//! the master broadcasts a work descriptor, two team-wide barriers bracket
//! the region, and the workers return to the state machine afterwards.
//!
//! ## How this is simulated
//!
//! The functional result of a generic-mode region does not depend on which
//! lane performed which iteration, and the timing model works on counters
//! aggregated over the whole launch. We exploit both facts: a generic-mode
//! kernel is *simulated* with a single master thread per team that executes
//! everything in order (deterministic, no intra-block threading needed),
//! while the state-machine costs the hardware would pay are charged to the
//! same counters every other kernel uses:
//!
//! * each `parallel` region charges two barrier participations per team
//!   thread (fork + join) plus descriptor-handling ALU work;
//! * sequential sections record their work as `serial_ops`, which the
//!   timing model runs at single-thread speed per resident master;
//! * the launch geometry reported to the timing model is the *modeled*
//!   geometry (`team_size` threads per team), not the simulated one.
//!
//! The result: `omp`-version kernels produce bit-identical answers to their
//! `cuda`/`ompx` counterparts, and their extra modeled time comes from
//! counted events plus the per-mode overheads in [`crate::mode`].

use crate::globalization::GlobalizedArray;
use ompx_sim::device::Device;
use ompx_sim::dim::{Dim3, LaunchConfig};
use ompx_sim::exec::Kernel;
use ompx_sim::mem::DeviceScalar;
use ompx_sim::thread::ThreadCtx;
use std::sync::Arc;

/// ALU operations charged per thread per parallel region for work-descriptor
/// handling (fetch, decode, loop-bound setup). From the state-machine
/// structure in Doerfert et al. (IPDPS'22).
pub const DESCRIPTOR_OPS_PER_THREAD: u64 = 24;

/// Serialized cycles the master spends launching one parallel region
/// (signalling workers, publishing the descriptor).
pub const REGION_DISPATCH_SERIAL_OPS: u64 = 120;

/// Configuration of a generic-mode target region.
#[derive(Debug, Clone, Copy)]
pub struct GenericRegionConfig {
    /// Threads per team the OpenMP runtime would launch (`thread_limit`).
    pub team_size: u32,
}

impl GenericRegionConfig {
    pub fn new(team_size: u32) -> Self {
        assert!(team_size > 0, "team size must be positive");
        GenericRegionConfig { team_size }
    }
}

/// The master thread's view of a generic-mode team.
pub struct TeamCtx<'a, 'b> {
    tc: &'b mut ThreadCtx<'a>,
    device: &'b Device,
    team_size: usize,
}

impl<'a, 'b> TeamCtx<'a, 'b> {
    /// `omp_get_team_num()`.
    pub fn team_num(&self) -> usize {
        self.tc.block_rank()
    }

    /// `omp_get_num_teams()`.
    pub fn num_teams(&self) -> usize {
        self.tc.grid_dim_x() * self.tc.grid_dim_y() * self.tc.grid_dim_z()
    }

    /// `omp_get_team_size()` — the modeled thread count of this team.
    pub fn team_size(&self) -> usize {
        self.team_size
    }

    /// Raw access to the master's thread context (for memory traffic in
    /// sequential sections; prefer [`TeamCtx::seq`] so the serialization is
    /// charged).
    pub fn thread(&mut self) -> &mut ThreadCtx<'a> {
        self.tc
    }

    /// Run a sequential (master-only) section and charge its work as
    /// serialized: the team's other threads are parked in the state machine
    /// while this executes.
    pub fn seq<R>(&mut self, f: impl FnOnce(&mut ThreadCtx<'a>) -> R) -> R {
        let before = self.tc.counters;
        let r = f(self.tc);
        let after = self.tc.counters;
        let mem_ops = (after.global_load_bytes - before.global_load_bytes
            + after.global_store_bytes
            - before.global_store_bytes)
            / 8;
        let delta = (after.flops - before.flops)
            + (after.int_ops - before.int_ops)
            + (after.shared_accesses - before.shared_accesses)
            + mem_ops;
        self.tc.counters.serial_ops += delta;
        r
    }

    /// Execute an OpenMP `parallel for` over `0..n` with static scheduling.
    ///
    /// Functionally every iteration runs (on the simulated master, in
    /// order); the state-machine fork/join costs of a real `team_size`-wide
    /// region are charged.
    pub fn parallel_for(&mut self, n: usize, mut body: impl FnMut(&mut ThreadCtx<'a>, usize)) {
        self.charge_region();
        for i in 0..n {
            body(self.tc, i);
        }
    }

    /// Execute a raw `parallel` region: `body(tc, thread_num)` once per
    /// modeled team thread.
    pub fn parallel(&mut self, mut body: impl FnMut(&mut ThreadCtx<'a>, usize)) {
        self.charge_region();
        for t in 0..self.team_size {
            body(self.tc, t);
        }
    }

    /// Execute a `parallel for` with a scalar reduction. The combiner must
    /// be associative and commutative (OpenMP reduction semantics).
    pub fn parallel_for_reduce<T: Copy>(
        &mut self,
        n: usize,
        init: T,
        mut body: impl FnMut(&mut ThreadCtx<'a>, usize) -> T,
        mut combine: impl FnMut(T, T) -> T,
    ) -> T {
        self.charge_region();
        // The tree-combine of a real reduction costs log2(team) steps/thread.
        let tree_steps = (self.team_size as f64).log2().ceil() as u64;
        self.tc.counters.int_ops += tree_steps * self.team_size as u64;
        let mut acc = init;
        for i in 0..n {
            let v = body(self.tc, i);
            acc = combine(acc, v);
        }
        acc
    }

    fn charge_region(&mut self) {
        let ts = self.team_size as u64;
        // Fork + join barriers: every team thread participates in both.
        self.tc.counters.barriers += 2 * ts;
        // Work-descriptor handling per thread.
        self.tc.counters.int_ops += DESCRIPTOR_OPS_PER_THREAD * ts;
        // Master-side dispatch is serialized.
        self.tc.counters.serial_ops += REGION_DISPATCH_SERIAL_OPS;
    }

    /// Allocate a globalized team-local array on the runtime's device heap
    /// (the default placement — global-memory traffic).
    pub fn globalized_heap<T: DeviceScalar>(&mut self, len: usize) -> GlobalizedArray<'a, T> {
        GlobalizedArray::Heap(self.device.alloc(len))
    }

    /// Use a shared-memory slot (declared on the launch config) as the
    /// backing store for a globalized array — LLVM's heap-to-shared
    /// optimization (§4.2.2 of the paper).
    pub fn globalized_shared<T: DeviceScalar>(&self, slot: usize) -> GlobalizedArray<'a, T> {
        GlobalizedArray::Shared(self.tc.shared::<T>(slot))
    }
}

/// Build a generic-mode kernel from a region body.
///
/// The returned kernel must be launched with [`generic_launch_config`] (one
/// simulated thread per team); use [`GenericRegionConfig::team_size`] when
/// reporting geometry to the timing model.
pub fn generic_kernel(
    name: impl Into<String>,
    device: &Device,
    cfg: GenericRegionConfig,
    region: impl Fn(&mut TeamCtx<'_, '_>) + Send + Sync + 'static,
) -> Kernel {
    let device = device.clone();
    let region = Arc::new(region);
    Kernel::new(name, move |tc: &mut ThreadCtx<'_>| {
        let mut team = TeamCtx { tc, device: &device, team_size: cfg.team_size as usize };
        region(&mut team);
    })
}

/// The launch configuration for a generic-mode kernel: one simulated master
/// per team. `shared_slots` carries any heap-to-shared declarations.
pub fn generic_launch_config(num_teams: usize) -> LaunchConfig {
    LaunchConfig::new(Dim3::x(num_teams.max(1) as u32), Dim3::x(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::device::DeviceProfile;

    fn dev() -> Device {
        Device::new(DeviceProfile::test_small())
    }

    #[test]
    fn parallel_for_executes_all_iterations() {
        let d = dev();
        let out = d.alloc::<u32>(64);
        let cfg = GenericRegionConfig::new(32);
        let k = generic_kernel("gk", &d, cfg, {
            let out = out.clone();
            move |team| {
                let base = team.team_num() * 16;
                team.parallel_for(16, |tc, i| {
                    tc.write(&out, base + i, (base + i) as u32);
                });
            }
        });
        d.launch(&k, generic_launch_config(4)).unwrap();
        let got = out.to_vec();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn regions_charge_state_machine_costs() {
        let d = dev();
        let cfg = GenericRegionConfig::new(64);
        let k = generic_kernel("costs", &d, cfg, move |team| {
            team.parallel_for(1, |_tc, _i| {});
            team.parallel_for(1, |_tc, _i| {});
        });
        let stats = d.launch(&k, generic_launch_config(2)).unwrap();
        // 2 teams x 2 regions x 2 barriers x 64 threads.
        assert_eq!(stats.barriers, 2 * 2 * 2 * 64);
        assert_eq!(stats.int_ops, 2 * 2 * DESCRIPTOR_OPS_PER_THREAD * 64);
        assert_eq!(stats.serial_ops, 2 * 2 * REGION_DISPATCH_SERIAL_OPS);
    }

    #[test]
    fn seq_sections_serialize_their_work() {
        let d = dev();
        let data = d.alloc_from(&[1.0f64; 8]);
        let cfg = GenericRegionConfig::new(32);
        let k = generic_kernel("seq", &d, cfg, {
            let data = data.clone();
            move |team| {
                team.seq(|tc| {
                    let mut s = 0.0;
                    for i in 0..8 {
                        s += tc.read(&data, i);
                        tc.flops(1);
                    }
                    assert_eq!(s, 8.0);
                });
            }
        });
        let stats = d.launch(&k, generic_launch_config(1)).unwrap();
        // 8 flops + 8 loads (64 bytes / 8) = 16 serialized ops.
        assert_eq!(stats.serial_ops, 16);
        assert_eq!(stats.flops, 8); // still counted as regular work too
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let d = dev();
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let buf = d.alloc_from(&data);
        let cfg = GenericRegionConfig::new(16);
        let result = d.alloc::<f64>(1);
        let k = generic_kernel("reduce", &d, cfg, {
            let (buf, result) = (buf.clone(), result.clone());
            move |team| {
                let s =
                    team.parallel_for_reduce(100, 0.0f64, |tc, i| tc.read(&buf, i), |a, b| a + b);
                let tc = team.thread();
                tc.write(&result, 0, s);
            }
        });
        d.launch(&k, generic_launch_config(1)).unwrap();
        assert_eq!(result.get(0), (0..100).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn globalized_heap_vs_shared_traffic() {
        let d = dev();
        let mut launch = generic_launch_config(1);
        let slot = launch.shared_array::<f64>(8);
        let cfg = GenericRegionConfig::new(8);

        let k = generic_kernel("glob", &d, cfg, move |team| {
            let heap = team.globalized_heap::<f64>(8);
            let shared = team.globalized_shared::<f64>(slot);
            let tc = team.thread();
            for i in 0..8 {
                heap.set(tc, i, i as f64);
                shared.set(tc, i, i as f64);
            }
            for i in 0..8 {
                assert_eq!(heap.get(tc, i), i as f64);
                assert_eq!(shared.get(tc, i), i as f64);
            }
        });
        let stats = d.launch(&k, launch).unwrap();
        assert_eq!(stats.global_store_bytes, 8 * 8);
        assert_eq!(stats.global_load_bytes, 8 * 8);
        assert_eq!(stats.shared_accesses, 16);
    }

    #[test]
    fn raw_parallel_region_runs_once_per_modeled_thread() {
        let d = dev();
        let counts = d.alloc::<u32>(2);
        let cfg = GenericRegionConfig::new(24);
        let k = generic_kernel("rawpar", &d, cfg, {
            let counts = counts.clone();
            move |team| {
                let tn = team.team_num();
                team.parallel(|tc, thread_num| {
                    assert!(thread_num < 24);
                    tc.atomic_add(&counts, tn, 1);
                });
            }
        });
        d.launch(&k, generic_launch_config(2)).unwrap();
        assert_eq!(counts.to_vec(), vec![24, 24]);
    }

    #[test]
    #[should_panic(expected = "team size must be positive")]
    fn zero_team_size_rejected() {
        let _ = GenericRegionConfig::new(0);
    }

    #[test]
    fn team_identity_queries() {
        let d = dev();
        let out = d.alloc::<u32>(3);
        let cfg = GenericRegionConfig::new(128);
        let k = generic_kernel("ident", &d, cfg, {
            let out = out.clone();
            move |team| {
                assert_eq!(team.num_teams(), 3);
                assert_eq!(team.team_size(), 128);
                let tn = team.team_num();
                let tc = team.thread();
                tc.write(&out, tn, tn as u32 + 1);
            }
        });
        d.launch(&k, generic_launch_config(3)).unwrap();
        assert_eq!(out.to_vec(), vec![1, 2, 3]);
    }
}
