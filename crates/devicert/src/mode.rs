//! Kernel execution modes and their launch-time overheads.

use ompx_sim::timing::ModeOverheads;

/// How a target region executes on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// The paper's `ompx_bare` (§3.1): no device-runtime initialization, no
    /// globalization, all threads active — the SIMT model of CUDA/HIP.
    Bare,
    /// LLVM's SPMD mode: uniformly parallel regions, thin runtime.
    Spmd,
    /// LLVM's generic mode: master thread + worker state machine.
    Generic,
    /// Host fallback: the region executes on the host CPU (an `if(false)`
    /// clause, or no device available).
    Host,
}

impl ExecMode {
    /// Launch-time overheads of this mode, added on top of the device's
    /// base launch latency by the timing model.
    ///
    /// Values follow the measurements in Doerfert et al. (IPDPS'22), which
    /// reports near-zero overhead for optimized SPMD execution and
    /// microseconds-scale runtime initialization plus per-block state
    /// machine setup for generic mode.
    pub fn overheads(&self) -> ModeOverheads {
        match self {
            ExecMode::Bare => ModeOverheads::none(),
            ExecMode::Spmd => ModeOverheads {
                // Runtime init is mostly eliminated, a small constant stays.
                extra_launch_s: 0.8e-6,
                body_multiplier: 1.0,
                per_block_cycles: 20.0,
            },
            ExecMode::Host => ModeOverheads::none(),
            ExecMode::Generic => ModeOverheads {
                // Device runtime bring-up at launch, plus ~250 serialized
                // cycles of team-state/state-machine initialization per
                // team. With half a million teams (Stencil-1D) this term
                // alone is ~90 ms on the A100 — the §4.2.6 pathology; with
                // 40 teams (Adam) it is a few microseconds — the §4.2.5
                // slowdown.
                extra_launch_s: 2.5e-6,
                body_multiplier: 1.0,
                per_block_cycles: 170.0,
            },
        }
    }

    /// Label used in diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Bare => "bare",
            ExecMode::Spmd => "spmd",
            ExecMode::Generic => "generic",
            ExecMode::Host => "host",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ordering_matches_the_papers_hierarchy() {
        let bare = ExecMode::Bare.overheads();
        let spmd = ExecMode::Spmd.overheads();
        let generic = ExecMode::Generic.overheads();
        assert!(bare.extra_launch_s < spmd.extra_launch_s);
        assert!(spmd.extra_launch_s < generic.extra_launch_s);
        assert!(bare.per_block_cycles < spmd.per_block_cycles);
        assert!(spmd.per_block_cycles < generic.per_block_cycles);
    }

    #[test]
    fn labels() {
        assert_eq!(ExecMode::Bare.label(), "bare");
        assert_eq!(ExecMode::Spmd.label(), "spmd");
        assert_eq!(ExecMode::Generic.label(), "generic");
    }
}
