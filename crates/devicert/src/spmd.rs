//! SPMD-mode execution: uniformly parallel target regions.
//!
//! When a region is `target teams distribute parallel for` (or provably
//! equivalent), LLVM compiles it in SPMD mode: every thread of every team
//! is active from the start and executes the distributed loop directly.
//! Most of the device runtime disappears; what remains is a thin kernel
//! environment setup (charged through [`crate::mode::ExecMode::Spmd`]'s
//! overheads) and the workshare bookkeeping of the distributed loop.
//!
//! Unlike generic mode, SPMD kernels are simulated with their real thread
//! geometry — each simulated thread executes its own chunk, exactly like
//! the CUDA/`ompx` versions, so per-thread effects (latency-hiding
//! parallelism, the Adam 32-thread quirk) are captured functionally.

use ompx_sim::exec::Kernel;
use ompx_sim::thread::ThreadCtx;
use std::sync::Arc;

/// ALU cost per thread of computing its workshare bounds for one
/// distributed loop.
pub const WORKSHARE_SETUP_OPS: u64 = 12;

/// One SPMD thread's view of the combined `teams distribute parallel for`.
pub struct SpmdCtx<'a, 'b> {
    tc: &'b mut ThreadCtx<'a>,
}

impl<'a, 'b> SpmdCtx<'a, 'b> {
    /// `omp_get_team_num()`.
    pub fn team_num(&self) -> usize {
        self.tc.block_rank()
    }

    /// `omp_get_num_teams()`.
    pub fn num_teams(&self) -> usize {
        self.tc.grid_dim_x() * self.tc.grid_dim_y() * self.tc.grid_dim_z()
    }

    /// `omp_get_thread_num()` within the team.
    pub fn thread_num(&self) -> usize {
        self.tc.thread_rank()
    }

    /// `omp_get_team_size()`.
    pub fn team_size(&self) -> usize {
        self.tc.block_dim_x() * self.tc.block_dim_y() * self.tc.block_dim_z()
    }

    /// Raw thread context (memory access, annotations).
    pub fn thread(&mut self) -> &mut ThreadCtx<'a> {
        self.tc
    }

    /// `distribute parallel for` over `0..n`: this thread executes its
    /// grid-strided share of the iterations (LLVM's static-chunked
    /// schedule for combined constructs).
    pub fn distribute_parallel_for(
        &mut self,
        n: usize,
        mut body: impl FnMut(&mut ThreadCtx<'a>, usize),
    ) {
        self.tc.counters.int_ops += WORKSHARE_SETUP_OPS;
        let stride = self.tc.global_size();
        let mut i = self.tc.global_rank();
        while i < n {
            body(self.tc, i);
            i += stride;
        }
    }

    /// `distribute parallel for schedule(static, chunk)`: this thread
    /// executes whole chunks round-robin — the schedule HeCBench sources
    /// request when they need cache-friendly blocking. Every iteration of
    /// `0..n` is executed exactly once across the launch.
    pub fn distribute_parallel_for_chunked(
        &mut self,
        n: usize,
        chunk: usize,
        mut body: impl FnMut(&mut ThreadCtx<'a>, usize),
    ) {
        assert!(chunk > 0, "schedule(static, 0) is not a valid OpenMP schedule");
        self.tc.counters.int_ops += WORKSHARE_SETUP_OPS;
        let stride = self.tc.global_size();
        let mut c = self.tc.global_rank();
        let chunks = n.div_ceil(chunk);
        while c < chunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            for i in lo..hi {
                body(self.tc, i);
            }
            c += stride;
        }
    }

    /// `distribute parallel for` with a scalar reduction: returns this
    /// thread's partial; the runtime's cross-team combination is modeled as
    /// one global atomic per thread (what LLVM emits for team reductions on
    /// GPUs when the tree fallback is not used).
    pub fn distribute_parallel_for_reduce<T: Copy>(
        &mut self,
        n: usize,
        init: T,
        mut body: impl FnMut(&mut ThreadCtx<'a>, usize) -> T,
        mut combine: impl FnMut(T, T) -> T,
    ) -> T {
        self.tc.counters.int_ops += WORKSHARE_SETUP_OPS;
        let stride = self.tc.global_size();
        let mut i = self.tc.global_rank();
        let mut acc = init;
        while i < n {
            let v = body(self.tc, i);
            acc = combine(acc, v);
            i += stride;
        }
        acc
    }
}

/// Build an SPMD-mode kernel from a region body. Launch it with the real
/// geometry (`LaunchConfig::new(num_teams, team_size)`).
pub fn spmd_kernel(
    name: impl Into<String>,
    region: impl Fn(&mut SpmdCtx<'_, '_>) + Send + Sync + 'static,
) -> Kernel {
    let region = Arc::new(region);
    Kernel::new(name, move |tc: &mut ThreadCtx<'_>| {
        let mut ctx = SpmdCtx { tc };
        region(&mut ctx);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::device::{Device, DeviceProfile};
    use ompx_sim::dim::LaunchConfig;

    fn dev() -> Device {
        Device::new(DeviceProfile::test_small())
    }

    #[test]
    fn distribute_covers_every_iteration_once() {
        let d = dev();
        let n = 1000;
        let hits = d.alloc::<u32>(n);
        let k = spmd_kernel("cover", {
            let hits = hits.clone();
            move |ctx| {
                ctx.distribute_parallel_for(n, |tc, i| {
                    tc.atomic_add(&hits, i, 1);
                });
            }
        });
        d.launch(&k, LaunchConfig::new(4u32, 64u32)).unwrap();
        assert!(hits.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn results_identical_across_geometries() {
        // The same SPMD region must compute the same answer no matter how
        // many teams/threads execute it (OpenMP's promise).
        let d = dev();
        let n = 500;
        let run = |teams: u32, threads: u32| {
            let out = d.alloc::<f32>(n);
            let k = spmd_kernel("geom", {
                let out = out.clone();
                move |ctx| {
                    ctx.distribute_parallel_for(n, |tc, i| {
                        tc.flops(2);
                        tc.write(&out, i, (i as f32) * 2.0 + 1.0);
                    });
                }
            });
            d.launch(&k, LaunchConfig::new(teams, threads)).unwrap();
            out.to_vec()
        };
        let a = run(1, 32);
        let b = run(8, 128);
        let c = run(3, 7);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn chunked_schedule_covers_every_iteration_once() {
        let d = dev();
        for (n, chunk) in [(1000usize, 7usize), (64, 64), (100, 1), (5, 16)] {
            let hits = d.alloc::<u32>(n);
            let k = spmd_kernel("chunky", {
                let hits = hits.clone();
                move |ctx| {
                    ctx.distribute_parallel_for_chunked(n, chunk, |tc, i| {
                        tc.atomic_add(&hits, i, 1);
                    });
                }
            });
            d.launch(&k, LaunchConfig::new(3u32, 16u32)).unwrap();
            assert!(
                hits.to_vec().iter().all(|&v| v == 1),
                "n={n} chunk={chunk} missed or duplicated iterations"
            );
        }
    }

    #[test]
    fn chunked_assigns_contiguous_runs_to_one_thread() {
        // With chunk = 4, iterations 0..4 must be executed by the same
        // thread (recorded via global rank).
        let d = dev();
        let n = 64;
        let owner = d.alloc::<u32>(n);
        let k = spmd_kernel("chunk_owner", {
            let owner = owner.clone();
            move |ctx| {
                ctx.distribute_parallel_for_chunked(n, 4, |tc, i| {
                    tc.write(&owner, i, tc.global_rank() as u32);
                });
            }
        });
        d.launch(&k, LaunchConfig::new(2u32, 4u32)).unwrap();
        let o = owner.to_vec();
        for c in 0..n / 4 {
            let first = o[c * 4];
            assert!(o[c * 4..(c + 1) * 4].iter().all(|&v| v == first), "chunk {c} split");
        }
    }

    #[test]
    fn reduction_sums_partials() {
        let d = dev();
        let n = 256;
        let data = d.alloc_from(&(0..n).map(|i| i as f64).collect::<Vec<_>>());
        let acc = d.alloc::<f64>(1);
        let k = spmd_kernel("reduce", {
            let (data, acc) = (data.clone(), acc.clone());
            move |ctx| {
                let partial = ctx.distribute_parallel_for_reduce(
                    n,
                    0.0f64,
                    |tc, i| tc.read(&data, i),
                    |a, b| a + b,
                );
                let tc = ctx.thread();
                tc.atomic_add(&acc, 0, partial);
            }
        });
        d.launch(&k, LaunchConfig::new(2u32, 32u32)).unwrap();
        assert_eq!(acc.get(0), (0..n).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn identity_queries_match_geometry() {
        let d = dev();
        let out = d.alloc::<u32>(4);
        let k = spmd_kernel("ident", {
            let out = out.clone();
            move |ctx| {
                assert_eq!(ctx.num_teams(), 2);
                assert_eq!(ctx.team_size(), 2);
                let idx = ctx.team_num() * 2 + ctx.thread_num();
                let tc = ctx.thread();
                tc.write(&out, idx, idx as u32 + 1);
            }
        });
        d.launch(&k, LaunchConfig::new(2u32, 2u32)).unwrap();
        assert_eq!(out.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn workshare_setup_is_charged() {
        let d = dev();
        let k = spmd_kernel("setup", move |ctx| {
            ctx.distribute_parallel_for(1, |_tc, _i| {});
        });
        let stats = d.launch(&k, LaunchConfig::new(2u32, 16u32)).unwrap();
        assert_eq!(stats.int_ops, 32 * WORKSHARE_SETUP_OPS);
    }
}
