//! # ompx-devicert — the LLVM OpenMP *device* runtime, modeled
//!
//! When Clang compiles a traditional OpenMP `target teams` region for a GPU
//! it links a device runtime (Doerfert et al., IPDPS'22; Huber et al.,
//! CGO'22 — the paper's refs \[5\] and \[9\]) that makes the SIMT machine
//! behave like the OpenMP execution model:
//!
//! * **Generic mode** — when the region has sequential parts between
//!   `parallel` constructs, one *master* thread executes them while the
//!   remaining threads of the team idle in a **state machine**, waiting for
//!   the master to broadcast parallel-region work descriptors. Every
//!   `parallel` region costs two team-wide barriers plus descriptor
//!   handling, and the sequential parts are fully serialized.
//! * **Variable globalization** — locals that may be shared across the
//!   team cannot live in registers; the runtime moves them to a globalized
//!   heap in device memory (or, when the heap-to-shared optimization
//!   applies, into shared memory — the effect the paper observes for
//!   RSBench §4.2.2).
//! * **SPMD mode** — when the compiler can prove the region is uniformly
//!   parallel (`target teams distribute parallel for`), all threads execute
//!   it directly and most of the machinery disappears.
//!
//! The paper's `ompx_bare` extension (§3.1) exists precisely to bypass all
//! of this; the Figure 8 gaps between `omp` and `ompx` are this crate's
//! costs. We therefore implement the modes so the gap *emerges* from counted
//! events rather than being asserted:
//!
//! * Generic-mode regions run the master's work for real (functionally
//!   correct results) and charge the state-machine events — fork/join
//!   barrier participations, descriptor ops, serialized sequential cycles —
//!   to the same counters every other kernel uses.
//! * Globalized storage really lives in a [`ompx_sim::mem::DBuf`] (global
//!   memory traffic) or a shared-memory slot (heap-to-shared), so the
//!   traffic difference is measured, not configured.

pub mod generic;
pub mod globalization;
pub mod mode;
pub mod spmd;

pub use generic::{generic_kernel, GenericRegionConfig, TeamCtx};
pub use globalization::{GlobalizedArray, GlobalizedPlacement};
pub use mode::ExecMode;
pub use spmd::{spmd_kernel, SpmdCtx};
