//! OpenMP 5.1 interop objects (`omp_interop_t`).
//!
//! `#pragma omp interop init(targetsync: obj)` asks the runtime for a
//! synchronization object usable by foreign runtimes — on GPU targets, a
//! stream. The paper's §3.5 builds its extension on exactly this: an
//! interop object *is* a handle to a stream, and the new
//! `depend(interopobj: obj)` dependence type enqueues the construct into
//! that stream (implemented in the core `ompx` crate on top of this type).

use crate::runtime::OpenMp;
use ompx_sim::stream::{Event, Stream};

/// An `omp_interop_t` initialized with `targetsync`: wraps a device stream.
#[derive(Clone)]
pub struct InteropObj {
    stream: Stream,
}

impl InteropObj {
    /// `#pragma omp interop init(targetsync: obj)`.
    pub fn init_targetsync(omp: &OpenMp) -> Self {
        InteropObj { stream: Stream::new(omp.device()) }
    }

    /// `omp_get_interop_ptr(obj, omp_ipr_targetsync, …)` — the foreign
    /// stream behind the object.
    pub fn stream(&self) -> &Stream {
        &self.stream
    }

    /// Enqueue foreign work into the object's stream.
    pub fn enqueue(&self, op: impl FnOnce() + Send + 'static) {
        self.stream.enqueue(op);
    }

    /// Record an event after everything currently enqueued.
    pub fn record_event(&self) -> Event {
        self.stream.record_event()
    }

    /// Synchronize with the stream (`taskwait depend(interopobj: obj)` —
    /// the paper's Figure 5 idiom — or `omp interop destroy`'s implicit
    /// flush).
    pub fn synchronize(&self) {
        self.stream.synchronize();
    }

    /// Modeled device-busy seconds accumulated in this stream.
    pub fn modeled_busy_seconds(&self) -> f64 {
        self.stream.modeled_busy_seconds()
    }
}

impl std::fmt::Debug for InteropObj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InteropObj({:?})", self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn interop_wraps_an_ordered_stream() {
        let omp = OpenMp::test_system();
        let obj = InteropObj::init_targetsync(&omp);
        let log = Arc::new(AtomicUsize::new(0));
        for i in 1..=10 {
            let l = Arc::clone(&log);
            obj.enqueue(move || {
                // Each op asserts it is the i-th to run (strict ordering).
                let prev = l.fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev + 1, i);
            });
        }
        obj.synchronize();
        assert_eq!(log.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn clones_share_the_stream() {
        let omp = OpenMp::test_system();
        let a = InteropObj::init_targetsync(&omp);
        let b = a.clone();
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        a.enqueue(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        b.synchronize();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn events_cut_the_stream() {
        let omp = OpenMp::test_system();
        let obj = InteropObj::init_targetsync(&omp);
        let flag = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&flag);
        obj.enqueue(move || {
            f.store(7, Ordering::SeqCst);
        });
        let ev = obj.record_event();
        ev.wait();
        assert_eq!(flag.load(Ordering::SeqCst), 7);
    }
}
