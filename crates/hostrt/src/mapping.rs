//! The data-mapping environment: `map` clauses and the present table.
//!
//! OpenMP's device data environment (§2.6 of the paper) is reference
//! counted: entering a `target data` region with `map(to: a[0:n])`
//! allocates device storage and copies in *unless the data is already
//! present*, in which case only the reference count grows; the copy-out of
//! `map(from:)`/`map(tofrom:)` happens when the count returns to zero.
//! The API-based alternative (`omp_target_alloc`, `omp_target_memcpy`,
//! `omp_target_associate_ptr`) is mirrored by the direct methods here.
//!
//! Host arrays are identified the way `libomptarget` identifies them — by
//! base address (and length for overlap sanity checks).

use ompx_sim::device::Device;
use ompx_sim::mem::{DBuf, DeviceScalar};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Identity of a mapped host array (base pointer + length), the present
/// table key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostRef {
    addr: usize,
    len: usize,
}

impl HostRef {
    /// Identity of a host slice.
    pub fn of<T>(slice: &[T]) -> Self {
        HostRef { addr: slice.as_ptr() as usize, len: slice.len() }
    }
}

enum PresentEntry {
    F32 { buf: DBuf<f32>, refs: usize },
    F64 { buf: DBuf<f64>, refs: usize },
    U32 { buf: DBuf<u32>, refs: usize },
    U64 { buf: DBuf<u64>, refs: usize },
    I32 { buf: DBuf<i32>, refs: usize },
}

// The `panic!`s below are deliberate, per the error policy in ompx-sim's
// error.rs: a map-clause mismatch (wrong element type, exiting or updating
// an array that was never mapped) is a bug in the simulated *program*'s
// mapping structure — real libomptarget aborts with a fatal error here —
// not a host-side condition to report, so none of them convert to
// `OmpxError` returns and none are injectable faults.
macro_rules! present_impl {
    ($t:ty, $variant:ident, $enter:ident, $exit_from:ident, $exit_release:ident, $update_to:ident, $update_from:ident, $lookup:ident) => {
        /// Enter the data environment: allocate-and-copy-in unless present,
        /// else bump the reference count. Returns the device buffer
        /// (`map(to:)` / `map(tofrom:)` entry half).
        pub fn $enter(&self, host: &[$t]) -> DBuf<$t> {
            let key = HostRef::of(host);
            let mut table = self.table.lock();
            match table.get_mut(&key) {
                Some(PresentEntry::$variant { buf, refs }) => {
                    *refs += 1;
                    return buf.clone();
                }
                Some(_) => panic!(
                    "host array at {:p} is already mapped with a different element type",
                    host.as_ptr()
                ),
                None => {}
            }
            let buf = self.device.alloc_from(host);
            table.insert(key, PresentEntry::$variant { buf: buf.clone(), refs: 1 });
            drop(table);
            self.charge_transfer(std::mem::size_of_val(host));
            buf
        }

        /// Exit the data environment with copy-out (`map(from:)` /
        /// `map(tofrom:)` exit half): decrement the count; on zero, copy the
        /// device data back into `host` and release the device storage.
        pub fn $exit_from(&self, host: &mut [$t]) {
            let key = HostRef::of(&host[..]);
            let mut table = self.table.lock();
            match table.get_mut(&key) {
                Some(PresentEntry::$variant { buf, refs }) => {
                    *refs -= 1;
                    if *refs == 0 {
                        buf.copy_to_host(host);
                        let b = buf.clone();
                        table.remove(&key);
                        self.device.free(&b);
                        drop(table);
                        self.charge_transfer(std::mem::size_of_val(&host[..]));
                    }
                }
                _ => panic!("map(from:) exit for a host array that is not present"),
            }
        }

        /// Exit the data environment without copy-out (`map(to:)` /
        /// `map(alloc:)` exit half).
        pub fn $exit_release(&self, host: &[$t]) {
            let key = HostRef::of(host);
            let mut table = self.table.lock();
            match table.get_mut(&key) {
                Some(PresentEntry::$variant { buf, refs }) => {
                    *refs -= 1;
                    if *refs == 0 {
                        let b = buf.clone();
                        table.remove(&key);
                        self.device.free(&b);
                    }
                }
                _ => panic!("map exit for a host array that is not present"),
            }
        }

        /// `#pragma omp target update to(...)` — host → device refresh for a
        /// present array.
        pub fn $update_to(&self, host: &[$t]) {
            let key = HostRef::of(host);
            let table = self.table.lock();
            match table.get(&key) {
                Some(PresentEntry::$variant { buf, .. }) => buf.copy_from_host(host),
                _ => panic!("target update to(...) for a host array that is not present"),
            }
            drop(table);
            self.charge_transfer(std::mem::size_of_val(host));
        }

        /// `#pragma omp target update from(...)` — device → host refresh.
        pub fn $update_from(&self, host: &mut [$t]) {
            let key = HostRef::of(&host[..]);
            let table = self.table.lock();
            match table.get(&key) {
                Some(PresentEntry::$variant { buf, .. }) => buf.copy_to_host(host),
                _ => panic!("target update from(...) for a host array that is not present"),
            }
            drop(table);
            self.charge_transfer(std::mem::size_of_val(&host[..]));
        }

        /// Present-table lookup (the implicit map of a referenced array).
        pub fn $lookup(&self, host: &[$t]) -> Option<DBuf<$t>> {
            let table = self.table.lock();
            match table.get(&HostRef::of(host)) {
                Some(PresentEntry::$variant { buf, .. }) => Some(buf.clone()),
                _ => None,
            }
        }
    };
}

/// A device data environment (the state behind `target data` regions).
pub struct DataEnv {
    device: Device,
    table: Mutex<HashMap<HostRef, PresentEntry>>,
    /// Modeled seconds spent on host-device transfers by this environment
    /// (the explicit data-movement cost of the paper's §2.6).
    transfer_s: Mutex<f64>,
}

impl DataEnv {
    /// A fresh environment on `device`.
    pub fn new(device: Device) -> Self {
        DataEnv { device, table: Mutex::new(HashMap::new()), transfer_s: Mutex::new(0.0) }
    }

    fn charge_transfer(&self, bytes: usize) {
        *self.transfer_s.lock() += self.device.profile().transfer_seconds(bytes);
    }

    /// Total modeled host-device transfer seconds this environment has
    /// performed (map entries/exits with copies, `target update`s, and
    /// explicit `omp_target_memcpy` calls).
    pub fn modeled_transfer_seconds(&self) -> f64 {
        *self.transfer_s.lock()
    }

    /// The environment's device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Number of present entries.
    pub fn present_count(&self) -> usize {
        self.table.lock().len()
    }

    /// `omp_target_alloc` — uninitialized (zeroed) device storage outside
    /// the present table.
    pub fn target_alloc<T: DeviceScalar>(&self, n: usize) -> DBuf<T> {
        self.device.alloc(n)
    }

    /// `omp_target_free`.
    pub fn target_free<T: DeviceScalar>(&self, buf: &DBuf<T>) {
        self.device.free(buf);
    }

    /// `omp_target_memcpy`, host → device flavour.
    pub fn target_memcpy_to<T: DeviceScalar>(&self, dst: &DBuf<T>, src: &[T]) {
        dst.copy_from_host(src);
        self.charge_transfer(std::mem::size_of_val(src));
    }

    /// `omp_target_memcpy`, device → host flavour.
    pub fn target_memcpy_from<T: DeviceScalar>(&self, dst: &mut [T], src: &DBuf<T>) {
        src.copy_to_host(dst);
        self.charge_transfer(std::mem::size_of_val(&dst[..]));
    }

    present_impl!(
        f32,
        F32,
        map_to_f32,
        map_from_f32,
        map_release_f32,
        update_to_f32,
        update_from_f32,
        present_f32
    );
    present_impl!(
        f64,
        F64,
        map_to_f64,
        map_from_f64,
        map_release_f64,
        update_to_f64,
        update_from_f64,
        present_f64
    );
    present_impl!(
        u32,
        U32,
        map_to_u32,
        map_from_u32,
        map_release_u32,
        update_to_u32,
        update_from_u32,
        present_u32
    );
    present_impl!(
        u64,
        U64,
        map_to_u64,
        map_from_u64,
        map_release_u64,
        update_to_u64,
        update_from_u64,
        present_u64
    );
    present_impl!(
        i32,
        I32,
        map_to_i32,
        map_from_i32,
        map_release_i32,
        update_to_i32,
        update_from_i32,
        present_i32
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::device::DeviceProfile;

    fn env() -> DataEnv {
        DataEnv::new(Device::new(DeviceProfile::test_small()))
    }

    #[test]
    fn map_to_copies_in_and_from_copies_out() {
        let e = env();
        let mut host = vec![1.0f32, 2.0, 3.0];
        let dev = e.map_to_f32(&host);
        assert_eq!(dev.to_vec(), host);
        dev.set(1, 42.0);
        e.map_from_f32(&mut host);
        assert_eq!(host, vec![1.0, 42.0, 3.0]);
        assert_eq!(e.present_count(), 0);
    }

    #[test]
    fn nested_mapping_reference_counts() {
        let e = env();
        let mut host = vec![7u32; 4];
        let outer = e.map_to_u32(&host);
        let inner = e.map_to_u32(&host); // second map: refcount only
        assert!(outer.same_allocation(&inner));
        assert_eq!(e.present_count(), 1);

        outer.set(0, 99);
        // Inner exit: data must NOT copy back yet.
        e.map_from_u32(&mut host);
        assert_eq!(host[0], 7);
        assert_eq!(e.present_count(), 1);
        // Outer exit: now it does.
        e.map_from_u32(&mut host);
        assert_eq!(host[0], 99);
        assert_eq!(e.present_count(), 0);
    }

    #[test]
    fn release_exit_discards_device_changes() {
        let e = env();
        let host = vec![1.0f64; 8];
        let dev = e.map_to_f64(&host);
        dev.set(0, -1.0);
        e.map_release_f64(&host);
        assert_eq!(host[0], 1.0);
        assert_eq!(e.present_count(), 0);
    }

    #[test]
    fn target_update_both_directions() {
        let e = env();
        let mut host = vec![1i32, 2, 3];
        let dev = e.map_to_i32(&host);
        host[0] = 10;
        e.update_to_i32(&host);
        assert_eq!(dev.get(0), 10);
        dev.set(2, 30);
        e.update_from_i32(&mut host);
        assert_eq!(host, vec![10, 2, 30]);
        e.map_release_i32(&host);
    }

    #[test]
    fn present_lookup() {
        let e = env();
        let host = vec![5u64; 2];
        assert!(e.present_u64(&host).is_none());
        let dev = e.map_to_u64(&host);
        assert!(e.present_u64(&host).unwrap().same_allocation(&dev));
        e.map_release_u64(&host);
        assert!(e.present_u64(&host).is_none());
    }

    #[test]
    #[should_panic(expected = "different element type")]
    fn remapping_with_a_different_type_is_rejected() {
        let e = env();
        // Same base pointer and length, different element interpretation.
        let host_f32 = vec![0.0f32; 8];
        let alias: &[u32] =
            unsafe { std::slice::from_raw_parts(host_f32.as_ptr() as *const u32, 8) };
        let _a = e.map_to_f32(&host_f32);
        let _b = e.map_to_u32(alias); // must panic, not orphan the entry
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn exit_without_entry_is_a_runtime_error() {
        let e = env();
        let mut host = vec![0.0f32; 2];
        e.map_from_f32(&mut host);
    }

    #[test]
    fn api_based_management() {
        let e = env();
        let buf = e.target_alloc::<f32>(4);
        e.target_memcpy_to(&buf, &[1.0, 2.0, 3.0, 4.0]);
        let mut out = vec![0.0f32; 4];
        e.target_memcpy_from(&mut out, &buf);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
        e.target_free(&buf);
    }

    #[test]
    fn transfers_accumulate_modeled_cost() {
        let e = env();
        assert_eq!(e.modeled_transfer_seconds(), 0.0);
        let mut host = vec![0.0f64; 1 << 12];
        let _dev = e.map_to_f64(&host); // copy-in charged
        let after_in = e.modeled_transfer_seconds();
        assert!(after_in > 0.0);
        // A nested map copies nothing (already present).
        let _dev2 = e.map_to_f64(&host);
        assert_eq!(e.modeled_transfer_seconds(), after_in);
        e.map_release_f64(&host); // inner exit: no copy
        assert_eq!(e.modeled_transfer_seconds(), after_in);
        e.map_from_f64(&mut host); // outer exit: copy-out charged
        assert!(e.modeled_transfer_seconds() > after_in);
    }

    #[test]
    fn device_memory_is_released_on_final_exit() {
        let e = env();
        let host = vec![0.0f64; 100];
        let before = e.device().allocated_bytes();
        let _dev = e.map_to_f64(&host);
        assert_eq!(e.device().allocated_bytes(), before + 800);
        e.map_release_f64(&host);
        assert_eq!(e.device().allocated_bytes(), before);
    }
}
