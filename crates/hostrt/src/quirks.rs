//! Known LLVM OpenMP behaviours the paper reports for specific kernels.
//!
//! The paper's §4.2 attributes each `omp`-version anomaly to a concrete
//! LLVM OpenMP behaviour. We cannot run LLVM, so these behaviours are
//! recorded as per-kernel quirk entries that the target-region lowering
//! consults — the *mechanism* (generic-mode state machine, shared-memory
//! placement, thread-count cap) is then actually exercised, so the
//! performance effect is computed rather than asserted.
//!
//! | Kernel (paper) | Quirk | Paper evidence |
//! |---|---|---|
//! | Adam | `thread_cap = 32`, `force_generic` | §4.2.5: "an issue in LLVM OpenMP that results in the launch of only 32 threads per thread block"; `omp` is 8× slower |
//! | Stencil-1D | `force_generic` | §4.2.6: "the inability to rewrite the generic state machine" |
//! | RSBench | `heap_to_shared` | §4.2.2: "the omp version leverages 2KB of shared memory … heap-to-shared optimization" |
//! | XSBench | `invalid_result` | §4.2.1: "the benchmark reporting an invalid checksum" — results excluded |

use parking_lot::RwLock;
use std::collections::HashMap;

/// The quirks the modeled LLVM OpenMP toolchain applies to one kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuirkSet {
    /// The runtime launches at most this many threads per team (the Adam
    /// bug). `None` = no cap.
    pub thread_cap: Option<u32>,
    /// The compiler could not prove SPMD-ness; the region runs in generic
    /// mode even though the source is a combined worksharing construct.
    pub force_generic: bool,
    /// Globalized storage is placed in shared memory (LLVM's
    /// heap-to-shared optimization fired).
    pub heap_to_shared: bool,
    /// The produced results are known-invalid in the paper's configuration;
    /// the harness must flag (not plot) this series. Our port still
    /// computes correct results — this is a reporting marker only.
    pub invalid_result: bool,
}

/// Registry of per-kernel quirks.
#[derive(Default)]
pub struct KnownIssues {
    map: RwLock<HashMap<String, QuirkSet>>,
}

impl KnownIssues {
    /// An empty registry (no quirks anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry describing LLVM/Clang as evaluated by the paper.
    pub fn llvm_as_evaluated() -> Self {
        let k = Self::new();
        k.set("adam", QuirkSet { thread_cap: Some(32), force_generic: true, ..Default::default() });
        k.set("stencil1d", QuirkSet { force_generic: true, ..Default::default() });
        k.set("rsbench_lookup", QuirkSet { heap_to_shared: true, ..Default::default() });
        k.set("xsbench_lookup", QuirkSet { invalid_result: true, ..Default::default() });
        k
    }

    /// Record a quirk set for `kernel`.
    pub fn set(&self, kernel: &str, quirks: QuirkSet) {
        self.map.write().insert(kernel.to_string(), quirks);
    }

    /// Quirks for `kernel` (default = none).
    pub fn get(&self, kernel: &str) -> QuirkSet {
        self.map.read().get(kernel).copied().unwrap_or_default()
    }

    /// Number of kernels with recorded quirks.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no quirks are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quirk_free() {
        let k = KnownIssues::new();
        assert!(k.is_empty());
        assert_eq!(k.get("anything"), QuirkSet::default());
    }

    #[test]
    fn llvm_as_evaluated_covers_the_papers_observations() {
        let k = KnownIssues::llvm_as_evaluated();
        assert_eq!(k.get("adam").thread_cap, Some(32));
        assert!(k.get("adam").force_generic);
        assert!(k.get("stencil1d").force_generic);
        assert!(k.get("rsbench_lookup").heap_to_shared);
        assert!(k.get("xsbench_lookup").invalid_result);
        assert!(!k.get("su3").force_generic);
        assert_eq!(k.len(), 4);
    }

    #[test]
    fn set_overrides() {
        let k = KnownIssues::new();
        k.set("k", QuirkSet { thread_cap: Some(64), ..Default::default() });
        assert_eq!(k.get("k").thread_cap, Some(64));
        k.set("k", QuirkSet::default());
        assert_eq!(k.get("k"), QuirkSet::default());
    }
}
