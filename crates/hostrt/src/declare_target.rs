//! `declare target` global symbols (§2.2).
//!
//! In CUDA, device globals are marked `__device__`; in OpenMP, symbols
//! that must be visible on the device across translation units are placed
//! in a `declare target` region. The runtime keeps one device instance of
//! each such global and (via `target update`-style helpers) lets the host
//! refresh or read it — exactly the facility programs use for device-wide
//! counters, lookup tables, and configuration blocks.
//!
//! The registry is name-keyed per runtime (symbols are process-global in
//! real OpenMP; the runtime object plays the process here). Types are
//! validated on access, turning the C "extern with the wrong type" bug
//! class into a loud error.

use crate::runtime::OpenMp;
use ompx_sim::mem::{DBuf, DeviceScalar};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Registry of `declare target` globals, keyed by symbol name.
#[derive(Default)]
pub struct DeclareTargetRegistry {
    symbols: Mutex<HashMap<String, Box<dyn Any + Send + Sync>>>,
}

impl DeclareTargetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `#pragma omp declare target` for a global array: define (or look up)
/// the device instance of symbol `name` with `len` elements of `T`.
/// Defining the same symbol twice returns the same device storage
/// (one definition rule); defining it with a different type panics.
///
/// The panics here (and in [`lookup_target_global`]) are deliberate, per
/// the error policy in ompx-sim's error.rs: a symbol redefined with a
/// different type or length is an ODR violation in the simulated program
/// — a link-time error in a real toolchain — not a runtime condition to
/// report as `OmpxError`.
pub fn declare_target_global<T: DeviceScalar>(omp: &OpenMp, name: &str, len: usize) -> DBuf<T> {
    let reg = omp.declare_target();
    let mut symbols = reg.symbols.lock();
    if let Some(existing) = symbols.get(name) {
        let buf = existing
            .downcast_ref::<DBuf<T>>()
            .unwrap_or_else(|| {
                panic!(
                    "declare target symbol {name:?} redefined with type {} (was another type)",
                    std::any::type_name::<T>()
                )
            })
            .clone();
        assert_eq!(
            buf.len(),
            len,
            "declare target symbol {name:?} redefined with length {len} (was {})",
            buf.len()
        );
        return buf;
    }
    let buf = omp.device().alloc::<T>(len);
    symbols.insert(name.to_string(), Box::new(buf.clone()) as Box<dyn Any + Send + Sync>);
    buf
}

/// Look up a previously declared symbol without defining it (`extern`
/// declaration in another translation unit). `None` if never defined.
pub fn lookup_target_global<T: DeviceScalar>(omp: &OpenMp, name: &str) -> Option<DBuf<T>> {
    let reg = omp.declare_target();
    let symbols = reg.symbols.lock();
    symbols.get(name).map(|e| {
        e.downcast_ref::<DBuf<T>>()
            .unwrap_or_else(|| {
                panic!(
                    "declare target symbol {name:?} referenced with wrong type {}",
                    std::any::type_name::<T>()
                )
            })
            .clone()
    })
}

/// Shared handle type stored by the runtime.
pub type DeclareTargetHandle = Arc<DeclareTargetRegistry>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_definition_rule() {
        let omp = OpenMp::test_system();
        let a = declare_target_global::<f64>(&omp, "lut", 32);
        a.set(3, 9.5);
        // A second "translation unit" defining the same symbol sees the
        // same storage.
        let b = declare_target_global::<f64>(&omp, "lut", 32);
        assert!(a.same_allocation(&b));
        assert_eq!(b.get(3), 9.5);
    }

    #[test]
    fn lookup_without_definition() {
        let omp = OpenMp::test_system();
        assert!(lookup_target_global::<u32>(&omp, "missing").is_none());
        declare_target_global::<u32>(&omp, "present", 4);
        assert!(lookup_target_global::<u32>(&omp, "present").is_some());
    }

    #[test]
    #[should_panic(expected = "redefined with type")]
    fn type_confusion_panics() {
        let omp = OpenMp::test_system();
        declare_target_global::<f64>(&omp, "sym", 8);
        declare_target_global::<u32>(&omp, "sym", 8);
    }

    #[test]
    #[should_panic(expected = "redefined with length")]
    fn length_mismatch_panics() {
        let omp = OpenMp::test_system();
        declare_target_global::<f64>(&omp, "sym2", 8);
        declare_target_global::<f64>(&omp, "sym2", 16);
    }

    #[test]
    fn kernels_see_declared_globals() {
        let omp = OpenMp::test_system();
        let counter = declare_target_global::<u64>(&omp, "hit_counter", 1);
        omp.target("count")
            .num_teams(2)
            .thread_limit(16)
            .run_distribute_parallel_for(100, {
                let counter = counter.clone();
                move |tc, _i, _s| {
                    tc.atomic_add(&counter, 0, 1);
                }
            })
            .unwrap();
        // Another "TU" reads the symbol by name.
        let again = lookup_target_global::<u64>(&omp, "hit_counter").unwrap();
        assert_eq!(again.get(0), 100);
    }

    #[test]
    fn registries_are_per_runtime() {
        let a = OpenMp::test_system();
        let b = OpenMp::test_system();
        declare_target_global::<f32>(&a, "mine", 2);
        assert!(lookup_target_global::<f32>(&b, "mine").is_none());
    }
}
