//! The OpenMP runtime object: devices, ICVs, and the modeled toolchain.

use crate::quirks::KnownIssues;
use crate::task::TaskSystem;
use ompx_klang::toolchain::{CodegenDb, Toolchain};
use ompx_sim::device::{Device, DeviceProfile};
use std::sync::Arc;

pub(crate) struct OmpInner {
    pub device: Device,
    /// Additional devices beyond the default (device ids 1..): the
    /// multi-GPU configuration `omp_get_num_devices` exposes.
    pub extra_devices: Vec<Device>,
    pub toolchain: Toolchain,
    pub codegen: CodegenDb,
    pub quirks: KnownIssues,
    pub tasks: TaskSystem,
    pub declare_target: crate::declare_target::DeclareTargetHandle,
    /// Default number of teams when the program does not say (`num_teams`
    /// absent): LLVM picks a multiple of the SM count.
    pub default_teams: u32,
    /// Default `thread_limit` when absent (LLVM's GPU default).
    pub default_threads: u32,
}

/// A configured OpenMP runtime: one target device, one modeled toolchain,
/// the task system, and the known-issues registry.
///
/// Cheap to clone; clones share all state (the runtime is a process-global
/// singleton in real OpenMP).
#[derive(Clone)]
pub struct OpenMp {
    pub(crate) inner: Arc<OmpInner>,
}

impl OpenMp {
    /// Runtime targeting an explicit device, with explicit quirk registry.
    ///
    /// Defaults honour the standard environment ICVs when set:
    /// `OMP_NUM_TEAMS` overrides the default team count and
    /// `OMP_TEAMS_THREAD_LIMIT` the default thread limit (clamped to the
    /// device's block-size maximum).
    pub fn with_device(device: Device, toolchain: Toolchain, quirks: KnownIssues) -> Self {
        let sm = device.profile().sm_count;
        let env_u32 = |name: &str| {
            std::env::var(name).ok().and_then(|v| v.trim().parse::<u32>().ok()).filter(|&v| v > 0)
        };
        let default_teams = env_u32("OMP_NUM_TEAMS").unwrap_or(sm * 4);
        let default_threads = env_u32("OMP_TEAMS_THREAD_LIMIT")
            .unwrap_or(128)
            .min(device.profile().max_threads_per_block);
        OpenMp {
            inner: Arc::new(OmpInner {
                device,
                extra_devices: Vec::new(),
                toolchain,
                codegen: CodegenDb::new(),
                quirks,
                tasks: TaskSystem::new(4),
                declare_target: std::sync::Arc::new(
                    crate::declare_target::DeclareTargetRegistry::new(),
                ),
                default_teams,
                default_threads,
            }),
        }
    }

    /// The paper's NVIDIA system: A100 + LLVM/Clang OpenMP offloading,
    /// with the quirks the paper observed.
    pub fn nvidia_system() -> Self {
        Self::with_device(
            Device::new(DeviceProfile::a100()),
            Toolchain::ClangOpenmp,
            KnownIssues::llvm_as_evaluated(),
        )
    }

    /// The paper's AMD system: MI250 + LLVM/Clang OpenMP offloading.
    pub fn amd_system() -> Self {
        Self::with_device(
            Device::new(DeviceProfile::mi250()),
            Toolchain::ClangOpenmp,
            KnownIssues::llvm_as_evaluated(),
        )
    }

    /// A small test runtime with no quirks.
    pub fn test_system() -> Self {
        Self::with_device(
            Device::new(DeviceProfile::test_small()),
            Toolchain::ClangOpenmp,
            KnownIssues::new(),
        )
    }

    /// The target device (`omp_get_default_device` analogue).
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// Attach additional devices (a multi-GPU node). The default device
    /// keeps logical number 0; the attached devices are 1..=n.
    pub fn with_extra_devices(mut self, extra: Vec<Device>) -> Self {
        // Deliberate panic, not an injectable fault: calling this after the
        // runtime was cloned is a host-program construction bug (see the
        // error-policy note in ompx-sim's error.rs).
        let inner =
            Arc::get_mut(&mut self.inner).expect("attach extra devices before cloning the runtime");
        inner.extra_devices = extra;
        self
    }

    /// Retry policy the runtime applies to transient device faults
    /// (shared with the device; see [`ompx_sim::fault::RetryPolicy`]).
    pub fn retry_policy(&self) -> ompx_sim::fault::RetryPolicy {
        self.inner.device.retry_policy()
    }

    /// Replace the retry policy for transient device faults.
    pub fn set_retry_policy(&self, policy: ompx_sim::fault::RetryPolicy) {
        self.inner.device.set_retry_policy(policy);
    }

    /// Take and clear the last device error (CUDA's `cudaGetLastError`
    /// analogue). Sticky errors — device loss — are reported but *not*
    /// cleared; every later call keeps returning them.
    pub fn ompx_get_last_error(&self) -> Option<ompx_sim::error::SimError> {
        self.inner.device.take_last_error()
    }

    /// Inspect the last device error without clearing it
    /// (`cudaPeekAtLastError` analogue).
    pub fn ompx_peek_last_error(&self) -> Option<ompx_sim::error::SimError> {
        self.inner.device.peek_last_error()
    }

    /// `omp_get_num_devices()`.
    pub fn num_devices(&self) -> usize {
        1 + self.inner.extra_devices.len()
    }

    /// Device by logical number (`device(n)` clause): 0 is the default.
    pub fn device_n(&self, n: usize) -> &Device {
        if n == 0 {
            &self.inner.device
        } else {
            &self.inner.extra_devices[n - 1]
        }
    }

    /// `omp_target_memcpy` between two devices: the data bounces through
    /// host memory (no peer link modeled), so the modeled cost is two
    /// transfers. Returns the modeled seconds.
    pub fn target_memcpy_cross<T: ompx_sim::mem::DeviceScalar>(
        &self,
        dst_device: usize,
        dst: &ompx_sim::mem::DBuf<T>,
        src_device: usize,
        src: &ompx_sim::mem::DBuf<T>,
        n: usize,
    ) -> f64 {
        dst.copy_from_device(src, n);
        let bytes = n * std::mem::size_of::<T>();
        self.device_n(src_device).profile().transfer_seconds(bytes)
            + self.device_n(dst_device).profile().transfer_seconds(bytes)
    }

    /// Open a data environment on a specific device (`target data device(n)`).
    pub fn target_data_on(&self, n: usize) -> crate::mapping::DataEnv {
        crate::mapping::DataEnv::new(self.device_n(n).clone())
    }

    /// The modeled compiling toolchain.
    pub fn toolchain(&self) -> Toolchain {
        self.inner.toolchain
    }

    /// Codegen profile database for this toolchain.
    pub fn codegen(&self) -> &CodegenDb {
        &self.inner.codegen
    }

    /// Known-issues registry consulted by target-region lowering.
    pub fn quirks(&self) -> &KnownIssues {
        &self.inner.quirks
    }

    /// The `declare target` symbol registry (see
    /// [`crate::declare_target`]).
    pub fn declare_target(&self) -> &crate::declare_target::DeclareTargetHandle {
        &self.inner.declare_target
    }

    /// Begin building a target region (`#pragma omp target teams …`).
    pub fn target(&self, kernel_name: &str) -> crate::target::TargetRegion {
        crate::target::TargetRegion::new(self.clone(), kernel_name)
    }

    /// Open a structured data environment (`#pragma omp target data`).
    pub fn target_data(&self) -> crate::mapping::DataEnv {
        crate::mapping::DataEnv::new(self.device().clone())
    }

    /// `#pragma omp taskwait` — wait for all outstanding tasks.
    pub fn taskwait(&self) {
        self.inner.tasks.wait_all();
        if let Some(log) = ompx_sim::span::active() {
            log.host_op("taskwait", ompx_sim::span::SpanCategory::Sync, 0.0, 0);
        }
    }

    /// Default team count when the program gives none.
    pub fn default_teams(&self) -> u32 {
        self.inner.default_teams
    }

    /// Default thread limit when the program gives none.
    pub fn default_threads(&self) -> u32 {
        self.inner.default_threads
    }
}

impl std::fmt::Debug for OpenMp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OpenMp({}, {})", self.inner.device.profile().name, self.inner.toolchain.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompx_sim::Vendor;

    #[test]
    fn system_constructors_pick_the_right_hardware() {
        assert_eq!(OpenMp::nvidia_system().device().profile().vendor, Vendor::Nvidia);
        assert_eq!(OpenMp::amd_system().device().profile().vendor, Vendor::Amd);
        assert_eq!(OpenMp::nvidia_system().toolchain(), Toolchain::ClangOpenmp);
    }

    #[test]
    fn clones_share_state() {
        let a = OpenMp::test_system();
        let b = a.clone();
        a.quirks().set("k", crate::quirks::QuirkSet { thread_cap: Some(8), ..Default::default() });
        assert_eq!(b.quirks().get("k").thread_cap, Some(8));
    }

    #[test]
    fn multi_device_node() {
        let omp = OpenMp::test_system().with_extra_devices(vec![
            Device::new(DeviceProfile::test_small()),
            Device::new(DeviceProfile::a100()),
        ]);
        assert_eq!(omp.num_devices(), 3);
        assert_eq!(omp.device_n(0).id(), omp.device().id());
        assert_ne!(omp.device_n(1).id(), omp.device_n(2).id());
        assert_eq!(omp.device_n(2).profile().vendor, Vendor::Nvidia);

        // Cross-device copy bounces through the host with 2x transfer cost.
        let src = omp.device_n(1).alloc_from(&[1.0f32, 2.0, 3.0]);
        let dst = omp.device_n(2).alloc::<f32>(3);
        let t = omp.target_memcpy_cross(2, &dst, 1, &src, 3);
        assert_eq!(dst.to_vec(), vec![1.0, 2.0, 3.0]);
        let one_way = omp.device_n(1).profile().transfer_seconds(12);
        assert!(t > one_way, "cross-device copy must cost more than one transfer");

        // Data environments bind to their device.
        let env = omp.target_data_on(2);
        assert_eq!(env.device().id(), omp.device_n(2).id());
    }

    #[test]
    fn defaults_and_icv_environment_overrides() {
        // One test for both behaviours so the env mutation cannot race a
        // sibling test reading the same variables.
        let o = OpenMp::nvidia_system();
        assert_eq!(o.default_teams(), 108 * 4);
        assert_eq!(o.default_threads(), 128);

        // The ICVs are read at runtime construction, like `libomp` startup.
        unsafe {
            std::env::set_var("OMP_NUM_TEAMS", "33");
            std::env::set_var("OMP_TEAMS_THREAD_LIMIT", "99999");
        }
        let o = OpenMp::test_system();
        unsafe {
            std::env::remove_var("OMP_NUM_TEAMS");
            std::env::remove_var("OMP_TEAMS_THREAD_LIMIT");
        }
        assert_eq!(o.default_teams(), 33);
        // Clamped to the device's max threads per block.
        assert_eq!(o.default_threads(), o.device().profile().max_threads_per_block);
    }
}
