//! OpenMP memory allocators: `omp_alloc` + allocator traits (§2.5).
//!
//! OpenMP reaches the GPU memory hierarchy through *allocators over memory
//! spaces* (`omp_default_mem_space`, `omp_const_mem_space`,
//! `omp_high_bw_mem_space`, …) with traits like pinning — the mechanism
//! the paper's §2.5 contrasts with CUDA's storage keywords, and the
//! substrate for the `allocate` directive / future `groupprivate` work its
//! footnote 2 discusses.
//!
//! The reproduction models the allocation *placements* that matter to the
//! timing story:
//!
//! * device global memory (the default device space),
//! * constant memory (read-only broadcast space),
//! * pinned host staging (halves the modeled transfer latency — real
//!   pinned memory skips the bounce buffer).

use crate::runtime::OpenMp;
use ompx_sim::constant::CBuf;
use ompx_sim::mem::{DBuf, DeviceScalar};

/// An OpenMP memory space (subset relevant to GPU offloading).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// `omp_default_mem_space` on the device: global memory.
    DeviceDefault,
    /// `omp_const_mem_space`: constant memory.
    Constant,
    /// Host memory with the `pinned` trait set.
    HostPinned,
}

/// An allocator: a memory space plus traits (`omp_init_allocator`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmpAllocator {
    pub space: MemSpace,
    /// The `pinned` allocator trait.
    pub pinned: bool,
}

impl OmpAllocator {
    /// `omp_default_mem_alloc` for the device.
    pub fn device_default() -> Self {
        OmpAllocator { space: MemSpace::DeviceDefault, pinned: false }
    }

    /// `omp_const_mem_alloc`.
    pub fn const_mem() -> Self {
        OmpAllocator { space: MemSpace::Constant, pinned: false }
    }

    /// A pinned host allocator (`omp_init_allocator` with the pinned trait).
    pub fn host_pinned() -> Self {
        OmpAllocator { space: MemSpace::HostPinned, pinned: true }
    }
}

/// A pinned host buffer: plain host data whose transfers are faster.
#[derive(Debug, Clone)]
pub struct PinnedBuf<T: DeviceScalar> {
    data: Vec<T>,
}

impl<T: DeviceScalar> PinnedBuf<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Host view.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable host view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// `omp_alloc` against a device-default allocator: device global memory.
pub fn omp_alloc<T: DeviceScalar>(omp: &OpenMp, n: usize) -> DBuf<T> {
    omp.device().alloc(n)
}

/// `omp_alloc` against the constant-memory allocator; constant data is
/// initialized at allocation (it is read-only on the device).
pub fn omp_alloc_const<T: DeviceScalar>(omp: &OpenMp, data: &[T]) -> CBuf<T> {
    omp.device().alloc_const(data)
}

/// `omp_alloc` against a pinned host allocator.
pub fn omp_alloc_pinned<T: DeviceScalar>(_omp: &OpenMp, n: usize) -> PinnedBuf<T> {
    PinnedBuf { data: vec![T::default(); n] }
}

/// `omp_free` for device allocations.
pub fn omp_free<T: DeviceScalar>(omp: &OpenMp, buf: &DBuf<T>) {
    omp.device().free(buf);
}

/// Modeled seconds to transfer `bytes` between host and device through
/// this allocator's staging path. Pinned memory skips the bounce-buffer
/// copy: roughly half the base latency and full interconnect bandwidth.
pub fn modeled_transfer_seconds(omp: &OpenMp, alloc: OmpAllocator, bytes: usize) -> f64 {
    let p = omp.device().profile();
    let base = p.transfer_seconds(bytes);
    if alloc.pinned {
        p.pcie_latency_s * 0.5 + bytes as f64 / p.pcie_bw_bytes_per_s
    } else {
        // Pageable memory pays an extra host-side copy at ~system memcpy
        // bandwidth on top of the DMA.
        base + bytes as f64 / 20.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn omp() -> OpenMp {
        OpenMp::test_system()
    }

    #[test]
    fn device_alloc_roundtrip() {
        let o = omp();
        let b = omp_alloc::<f32>(&o, 16);
        b.set(3, 7.5);
        assert_eq!(b.get(3), 7.5);
        omp_free(&o, &b);
    }

    #[test]
    fn const_alloc_is_readable_in_kernels() {
        use ompx_sim::prelude::*;
        let o = omp();
        let table = omp_alloc_const(&o, &[10.0f64, 20.0, 30.0, 40.0]);
        let out = o.device().alloc::<f64>(8);
        let k = Kernel::new("const_read", {
            let (table, out) = (table.clone(), out.clone());
            move |tc: &mut ThreadCtx<'_>| {
                let i = tc.global_thread_id_x();
                let v = tc.cread(&table, i % 4);
                tc.write(&out, i, v * 2.0);
            }
        });
        let stats = o.device().launch(&k, LaunchConfig::new(1u32, 8u32)).unwrap();
        assert_eq!(out.to_vec(), vec![20.0, 40.0, 60.0, 80.0, 20.0, 40.0, 60.0, 80.0]);
        assert_eq!(stats.const_reads, 8);
        // Constant reads are not global traffic.
        assert_eq!(stats.global_load_bytes, 0);
    }

    #[test]
    fn pinned_buffers_transfer_faster() {
        let o = omp();
        let mut pb = omp_alloc_pinned::<f32>(&o, 1024);
        pb.as_mut_slice()[0] = 1.0;
        assert_eq!(pb.as_slice()[0], 1.0);
        assert_eq!(pb.len(), 1024);

        let bytes = 1 << 20;
        let pinned = modeled_transfer_seconds(&o, OmpAllocator::host_pinned(), bytes);
        let pageable = modeled_transfer_seconds(&o, OmpAllocator::device_default(), bytes);
        assert!(pinned < pageable, "pinned {pinned} should beat pageable {pageable}");
    }

    #[test]
    fn allocator_constructors() {
        assert_eq!(OmpAllocator::device_default().space, MemSpace::DeviceDefault);
        assert_eq!(OmpAllocator::const_mem().space, MemSpace::Constant);
        assert!(OmpAllocator::host_pinned().pinned);
    }
}
