//! # ompx-hostrt — the LLVM OpenMP *host* runtime, modeled
//!
//! The host half of OpenMP target offloading (`libomptarget` + `libomp` in
//! LLVM): device management, the data-mapping environment (`map` clauses,
//! `target data`, `target update`, present-table reference counting), target
//! regions (synchronous by default, `nowait` through hidden helper threads),
//! task dependences (`depend(in/out/inout)`), `taskwait`, and OpenMP 5.1
//! interop objects wrapping device streams.
//!
//! Traditional `omp` program versions in the evaluation run through this
//! crate: a [`target::TargetRegion`] is lowered to an SPMD- or generic-mode
//! device kernel (via `ompx-devicert`) according to what the modeled LLVM
//! compiler/runtime would have done — including its documented misbehaviours
//! ([`quirks::KnownIssues`]): the Adam 32-thread launch bug, the Stencil
//! generic-mode fallback, the RSBench heap-to-shared placement, and the
//! XSBench invalid-checksum exclusion (§4.2 of the paper).
//!
//! The paper's extensions (crate `ompx`) sit **on top of** this runtime and
//! bypass its device-side costs with `ompx_bare`.

pub mod allocator;
pub mod declare_target;
pub mod error;
pub mod interop;
pub mod mapping;
pub mod quirks;
pub mod runtime;
pub mod sanitizer;
pub mod target;
pub mod task;

pub use allocator::{MemSpace, OmpAllocator};
pub use declare_target::{declare_target_global, lookup_target_global};
pub use error::OmpxError;
pub use interop::InteropObj;
pub use mapping::DataEnv;
pub use quirks::{KnownIssues, QuirkSet};
pub use runtime::OpenMp;
pub use sanitizer::{
    ompx_sanitizer_attach, ompx_sanitizer_disable, ompx_sanitizer_enable, ompx_sanitizer_findings,
};
pub use target::{LaunchPlan, ScratchSpec, TargetRegion, TargetResult};
pub use task::{DepKey, TaskHandle};
